"""Simulation tasks and the yield-point vocabulary.

A :class:`SimTask` wraps a plain Python generator.  The generator *is* the
task body; every ``yield`` hands control back to the
:class:`~repro.sim.scheduler.SimScheduler`, which may run other tasks and
fire due timer events before resuming it.  What is yielded says why:

- ``yield`` / ``yield Yield()`` — cooperative yield; resume at the current
  cycle, after anything already queued for this instant (FIFO).
- ``yield Sleep(cycles)`` — resume once simulated time has advanced.
- ``yield SleepUntil(cycle)`` — resume at an absolute cycle deadline
  (drift-free cadences: fleet heartbeats tick on a fixed grid no matter
  how long the previous slice ran).
- ``yield WaitFor(predicate)`` — block until ``predicate()`` holds.
- ``yield Join(task)`` — block until another task finishes.

Tasks that drive a guest kernel carry their guest-process context across
yields: the scheduler records ``kernel.scheduler.current`` when a slice
ends and context-switches back before the next slice, so two workloads
interleaved on one kernel each see their own process running — and pay the
real context-switch cost for the privilege.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable, Generator, Optional

if TYPE_CHECKING:
    from repro.guestos.kernel import Kernel
    from repro.guestos.process import Task
    from repro.hw.cpu import Cpu


class Yield:
    """Plain cooperative yield (equivalent to yielding ``None``)."""

    __slots__ = ()


class Sleep:
    """Resume after ``cycles`` of simulated time."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: int):
        if cycles < 0:
            raise ValueError(f"cannot sleep {cycles} cycles")
        self.cycles = int(cycles)


class SleepUntil:
    """Resume once the clock reaches an absolute cycle deadline.  A deadline
    at or before the current cycle resumes immediately (FIFO)."""

    __slots__ = ("cycle",)

    def __init__(self, cycle: int):
        if cycle < 0:
            raise ValueError(f"cannot sleep until cycle {cycle}")
        self.cycle = int(cycle)


class WaitFor:
    """Block until ``predicate()`` returns truthy."""

    __slots__ = ("predicate", "desc")

    def __init__(self, predicate: Callable[[], bool], desc: str = ""):
        self.predicate = predicate
        self.desc = desc


class Join:
    """Block until another task reaches a terminal state."""

    __slots__ = ("task",)

    def __init__(self, task: "SimTask"):
        self.task = task


class SimState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"


class SimTask:
    """One cooperative task: a generator plus its scheduling state."""

    def __init__(self, gen: Generator, name: str, cpu: "Cpu",
                 kernel: Optional["Kernel"] = None,
                 proc: Optional["Task"] = None):
        self.gen = gen
        self.name = name
        self.cpu = cpu
        self.kernel = kernel
        #: guest process to re-install as ``scheduler.current`` before each
        #: slice; refreshed from the kernel after every slice
        self.guest_ctx: Optional["Task"] = proc
        self.state = SimState.READY
        self.result = None
        self.error: Optional[BaseException] = None
        self.slices = 0
        #: what the task is blocked on (WaitFor), if anything
        self.waiting: Optional[WaitFor] = None

    @property
    def finished(self) -> bool:
        return self.state in (SimState.DONE, SimState.FAILED)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SimTask {self.name!r} {self.state.value} "
                f"slices={self.slices}>")
