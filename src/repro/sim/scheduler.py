"""The deterministic cooperative scheduler.

One :class:`SimScheduler` drives one machine's worth of tasks on the shared
:class:`~repro.hw.clock.Clock`.  The run loop is a two-source merge:

- the **task heap** — ``(resume_cycle, seq, task)`` for READY tasks;
- the **clock queue** — pending :class:`~repro.hw.clock.TimerHandle`s.

Whichever has the smaller ``(deadline, seq)`` key goes next; both draw
their seq tickets from the clock's single counter, so the interleaving is a
pure function of simulated time and FIFO order — bit-reproducible.

Between slices (and at every :func:`preempt_point` a slice crosses) the
scheduler pumps the machine: due timer events fire and pending interrupt
vectors are delivered.  That is how a mode-switch request lands *inside* a
running workload — and why it can find the VO refcount nonzero: the
``sensitive`` wrapper's preempt point sits before the refcount is released,
exactly the window §5.1.1's quiesce check exists for.

Pump sites, and what a delivered switch sees there:

==========================================  =========================
site                                        VO refcount at delivery
==========================================  =========================
between slices (this module)                0 — commit allowed
``Kernel.user_compute`` end                 0 — commit allowed
``kernel.syscall`` finally (machine.poll)   0 — commit allowed
``sensitive`` wrapper, before exit          >= 1 — busy, retry armed
==========================================  =========================
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Generator, Optional

from repro import trace
from repro.sim.task import (Join, SimState, SimTask, Sleep, SleepUntil,
                            WaitFor, Yield)

if TYPE_CHECKING:
    from repro.guestos.kernel import Kernel
    from repro.guestos.process import Task
    from repro.hw.cpu import Cpu
    from repro.hw.machine import Machine


class SimError(RuntimeError):
    """Scheduler misuse or internal inconsistency."""


class SimDeadlock(SimError):
    """Every task is blocked and nothing can advance simulated time."""


#: the installed scheduler, if any (same pattern as ``repro.faults`` /
#: ``repro.trace``: one module-level slot, hot-path guard is one ``is None``
#: test)
_ACTIVE: Optional["SimScheduler"] = None


def active() -> Optional["SimScheduler"]:
    return _ACTIVE


def preempt_point(cpu: "Cpu") -> int:
    """An interrupt window: fire due events and deliver pending vectors.

    No-op unless a scheduler is running and ``cpu`` has interrupts enabled.
    Instrumented code (the ``sensitive`` wrapper, ``user_compute``) calls
    this so that timer deadlines landing mid-execution are serviced *where
    simulated time says they land*, not at the next run-to-completion
    boundary."""
    sched = _ACTIVE
    if sched is None:
        return 0
    return sched.pump(cpu)


def run_to_completion(gen: Generator, clock=None):
    """Drive a task generator without a scheduler: every yield resumes
    immediately, so the result is cycle-identical to the pre-generator
    sequential code.  ``Sleep`` advances ``clock`` when one is given;
    ``WaitFor``/``Join`` are scheduler-only and raise here."""
    try:
        point = next(gen)
        while True:
            if isinstance(point, Sleep):
                if clock is not None:
                    clock.advance(point.cycles)
            elif isinstance(point, SleepUntil):
                if clock is not None and point.cycle > clock.cycles:
                    clock.cycles = point.cycle
            elif isinstance(point, WaitFor):
                if not point.predicate():
                    raise SimError(
                        "WaitFor cannot block outside a SimScheduler")
            elif isinstance(point, Join):
                if not point.task.finished:
                    raise SimError(
                        "Join cannot block outside a SimScheduler")
            point = gen.send(None)
    except StopIteration as stop:
        return stop.value


class SimScheduler:
    """Cooperative round-robin over generator tasks, merged with the
    machine's timer-event queue in global ``(cycle, seq)`` order."""

    def __init__(self, machine: "Machine", max_steps: int = 5_000_000):
        self.machine = machine
        self.clock = machine.clock
        self.max_steps = max_steps
        self.tasks: list[SimTask] = []
        self._ready: list[tuple[int, int, SimTask]] = []
        self._blocked: list[SimTask] = []
        self._pumping = False
        self.steps = 0

    # ------------------------------------------------------------------
    # task admission
    # ------------------------------------------------------------------

    def spawn(self, gen: Generator, *, name: str = "",
              cpu: Optional["Cpu"] = None,
              kernel: Optional["Kernel"] = None,
              proc: Optional["Task"] = None) -> SimTask:
        """Register a task.  ``kernel``/``proc`` enable guest-context
        save/restore across yields (see :mod:`repro.sim.task`)."""
        cpu = cpu or self.machine.boot_cpu
        if kernel is not None and proc is None:
            proc = kernel.scheduler.current
        task = SimTask(gen, name or f"task{len(self.tasks)}", cpu,
                       kernel=kernel, proc=proc)
        self.tasks.append(task)
        self._make_ready(task)
        trace.instant(cpu.cpu_id, "sim.task-spawn", task=task.name)
        return task

    def _make_ready(self, task: SimTask, at_cycle: Optional[int] = None
                    ) -> None:
        task.state = SimState.READY
        task.waiting = None
        when = self.clock.cycles if at_cycle is None else at_cycle
        heapq.heappush(self._ready, (when, self.clock.next_seq(), task))

    # ------------------------------------------------------------------
    # the interrupt window
    # ------------------------------------------------------------------

    def pump(self, cpu: "Cpu") -> int:
        """Service due events + pending interrupts once, reentrancy-safe.

        Skipped while another pump is on the stack (a delivered handler's
        own sensitive calls must not recurse) and while ``cpu`` has
        interrupts masked (a mode-switch commit must not be perturbed by
        unrelated events)."""
        if self._pumping or not cpu.interrupts_enabled:
            return 0
        self._pumping = True
        try:
            return self.machine.poll()
        finally:
            self._pumping = False

    def _service_clock(self) -> None:
        """Advance to the earliest pending deadline and pump."""
        handle = self.clock.peek()
        if handle is not None and handle.deadline > self.clock.cycles:
            self.clock.cycles = handle.deadline
        self._pumping = True
        try:
            self.machine.poll()
        finally:
            self._pumping = False

    # ------------------------------------------------------------------
    # the run loop
    # ------------------------------------------------------------------

    def run(self) -> None:
        """Run until every task is finished.  Raises the first task
        exception, :class:`SimDeadlock` on a wedged system, or
        :class:`SimError` past ``max_steps``."""
        self._install()
        try:
            self._loop(None)
        finally:
            self._uninstall()

    def run_window(self, horizon: int) -> bool:
        """Advance every runnable work item keyed at or before ``horizon``.

        The windowed entry point for the sharded simulation: tasks and
        timer events whose ``(cycle, seq)`` key lies inside the window run
        exactly as :meth:`run` would run them; work keyed beyond the
        horizon stays queued for a later window.  Blocked tasks are *not* a
        deadlock here — a cross-shard message delivered at a later barrier
        may unblock them, so the fleet loop owns deadlock detection.
        Returns True once every task has finished."""
        self._install()
        try:
            self._loop(int(horizon))
        finally:
            self._uninstall()
        return self.finished

    def _install(self) -> None:
        global _ACTIVE
        if _ACTIVE is not None:
            raise SimError("a SimScheduler is already installed")
        _ACTIVE = self

    def _uninstall(self) -> None:
        global _ACTIVE
        _ACTIVE = None

    @property
    def finished(self) -> bool:
        """True when every spawned task reached a terminal state."""
        return all(t.finished for t in self.tasks)

    def next_work_cycle(self) -> Optional[int]:
        """Earliest cycle at which this scheduler has runnable work (ready
        task or pending timer event), or None when only blocked tasks — or
        nothing at all — remain.  A blocked task whose predicate already
        holds is admitted (and counted) here, so the fleet barrier never
        mistakes it for a deadlock."""
        self._admit_unblocked()
        while self._ready and self._ready[0][2].state is not SimState.READY:
            heapq.heappop(self._ready)  # stale entries
        candidates = []
        if self._ready:
            candidates.append(self._ready[0][0])
        event = self.clock.peek()
        if event is not None:
            candidates.append(event.deadline)
        return min(candidates) if candidates else None

    def blocked_names(self) -> tuple:
        """Names of currently blocked tasks (fleet deadlock reporting)."""
        return tuple(t.name for t in self._blocked if not t.finished)

    def _loop(self, horizon: Optional[int]) -> None:
        while True:
            self.steps += 1
            if self.steps > self.max_steps:
                raise SimError(f"scheduler exceeded {self.max_steps} steps")
            self._admit_unblocked()

            head = self._ready[0] if self._ready else None
            event = self.clock.peek()

            if head is None:
                if event is not None:
                    if horizon is not None and event.deadline > horizon:
                        return  # beyond this window
                    self._service_clock()
                    continue
                if not self._blocked:
                    return  # all tasks finished
                # one last interrupt window before giving up —
                # a pending vector may unblock someone
                if self.pump(self.machine.boot_cpu):
                    continue
                if horizon is not None:
                    return  # a later barrier exchange may unblock them
                names = ", ".join(t.name for t in self._blocked)
                raise SimDeadlock(
                    f"all runnable work exhausted; blocked: {names}")

            when, seq, task = head
            if event is not None and (event.deadline, event.seq) < (when, seq):
                if horizon is not None and event.deadline > horizon:
                    return
                self._service_clock()
                continue
            if horizon is not None and when > horizon:
                return
            heapq.heappop(self._ready)
            if task.state is not SimState.READY:
                continue  # stale heap entry
            if when > self.clock.cycles:
                self.clock.cycles = when
            self._run_slice(task)

    def _admit_unblocked(self) -> None:
        """Move blocked tasks whose predicate now holds to the ready heap,
        in blocking order (deterministic)."""
        still: list[SimTask] = []
        for task in self._blocked:
            wait = task.waiting
            if wait is not None and wait.predicate():
                self._make_ready(task)
            else:
                still.append(task)
        self._blocked = still

    # ------------------------------------------------------------------
    # one slice
    # ------------------------------------------------------------------

    def _run_slice(self, task: SimTask) -> None:
        cpu = task.cpu
        task.state = SimState.RUNNING
        task.slices += 1
        if task.kernel is not None:
            self._restore_guest_context(task)
        try:
            with trace.span(cpu.cpu_id, "sim.slice", task=task.name):
                point = task.gen.send(None)
        except StopIteration as stop:
            task.state = SimState.DONE
            task.result = stop.value
            trace.instant(cpu.cpu_id, "sim.task-end", task=task.name)
            self._save_guest_context(task)
            return
        except BaseException as exc:
            task.state = SimState.FAILED
            task.error = exc
            trace.instant(cpu.cpu_id, "sim.task-fail", task=task.name)
            self._save_guest_context(task)
            raise
        self._save_guest_context(task)
        self._park(task, point)

    def _park(self, task: SimTask, point) -> None:
        """Requeue a task according to what it yielded."""
        if point is None or isinstance(point, Yield):
            self._make_ready(task)
        elif isinstance(point, Sleep):
            self._make_ready(task, at_cycle=self.clock.cycles + point.cycles)
            trace.instant(task.cpu.cpu_id, "sim.task-sleep", task=task.name,
                          cycles=point.cycles)
        elif isinstance(point, SleepUntil):
            self._make_ready(task,
                             at_cycle=max(self.clock.cycles, point.cycle))
            trace.instant(task.cpu.cpu_id, "sim.task-sleep", task=task.name,
                          until_cycle=point.cycle)
        elif isinstance(point, Join):
            target = point.task
            self._block(task, WaitFor(lambda: target.finished,
                                      desc=f"join {target.name}"))
        elif isinstance(point, WaitFor):
            self._block(task, point)
        else:
            raise SimError(
                f"task {task.name!r} yielded {point!r}; expected None, "
                f"Yield, Sleep, SleepUntil, WaitFor, or Join")

    def _block(self, task: SimTask, wait: WaitFor) -> None:
        # a predicate that already holds skips the blocked list entirely
        if wait.predicate():
            self._make_ready(task)
            return
        task.state = SimState.BLOCKED
        task.waiting = wait
        self._blocked.append(task)
        trace.instant(task.cpu.cpu_id, "sim.task-block", task=task.name)

    # ------------------------------------------------------------------
    # guest-process context
    # ------------------------------------------------------------------

    def _restore_guest_context(self, task: SimTask) -> None:
        ctx = task.guest_ctx
        if ctx is None:
            return
        task.kernel.scheduler.ensure_running(task.cpu, ctx)

    def _save_guest_context(self, task: SimTask) -> None:
        if task.kernel is not None:
            task.guest_ctx = task.kernel.scheduler.current
