"""The sharded fleet driver and the parallel-episode pool.

Two parallelism shapes, both deterministic:

- :class:`ShardedSim` — ONE fleet of interacting machines, partitioned
  round-robin across shards and advanced in lock-step time windows.  The
  barrier protocol (below) guarantees a ``workers=k`` run is
  byte-identical to ``workers=1``.
- :func:`parallel_episodes` — MANY independent episodes (crash-matrix
  cells, fault-sweep points, chaos episodes) fanned across worker
  processes; each episode derives everything from its own parameters, so
  results are position-identical to the serial map.

Barrier protocol (window ``W``, horizons on the ``W`` grid)::

    horizon = W
    loop:
      batch   = pending messages with deliver_cycle <= horizon,
                sorted by (deliver_cycle, src, src_seq, dst)
      reports = every shard: inject its slice of batch, run_window(horizon)
      pending += all outbound messages from reports
      done when all shards finished, no runnable work, nothing pending
      deadlock when only blocked tasks remain and nothing is in flight
      earliest = min(shard next-work cycles, pending deliver cycles)
      horizon  = max(horizon + W, W * ceil(earliest / W))   # skip idle gaps

Every quantity steering the loop (batch membership and order, the horizon
schedule, termination) is computed from *global* information, so the
schedule cannot depend on how machines were partitioned — that, plus
per-machine local purity and latency >= W (see :mod:`repro.sim.shard`),
is the whole determinism argument.
"""

from __future__ import annotations

import json
import multiprocessing
from dataclasses import dataclass, field
from math import ceil
from typing import Any, Callable, Iterable, Optional, Sequence

from repro import trace
from repro.hw.machine import isolated_machine_ids
from repro.metrics import MetricsSnapshot
from repro.sim.scheduler import SimDeadlock
from repro.sim.shard import (FleetMessage, NodeBuilder, Shard, ShardError,
                             ShardReport, sort_batch)

#: default barrier window: 200k cycles ~= 66 us at 3 GHz, comfortably
#: above every per-slice cost in the model yet short against workloads
DEFAULT_WINDOW_CYCLES = 200_000


def _build_shard(shard_id: int, indices: Sequence[int],
                 builder: NodeBuilder, seed: int, kwargs: dict,
                 min_latency: int) -> Shard:
    """Construct one shard's nodes.  Each builder call runs under a fresh
    machine-id allocator, so node identity is a pure function of
    ``(index, seed, kwargs)`` — not of which shard (or process) builds it
    or in what order."""
    shard = Shard(shard_id, min_latency)
    for index in indices:
        with isolated_machine_ids():
            node = builder(index, seed, **kwargs)
        if node.index != index:
            raise ShardError(
                f"builder returned node index {node.index} for machine "
                f"{index}")
        shard.add(node)
    return shard


class _InlineShard:
    """Shard hosted in this process (workers=1, and property tests that
    want k-shard behavior without process startup)."""

    def __init__(self, shard_id, indices, builder, seed, kwargs,
                 min_latency):
        self._shard = _build_shard(shard_id, indices, builder, seed,
                                   kwargs, min_latency)
        self._report: Optional[ShardReport] = None

    def step_begin(self, horizon, inbound) -> None:
        self._report = self._shard.step(horizon, inbound)

    def step_end(self) -> ShardReport:
        report, self._report = self._report, None
        return report

    def collect(self) -> dict:
        return self._shard.collect()

    def close(self) -> None:
        pass


def _shard_worker(conn, shard_id, indices, builder, seed, kwargs,
                  min_latency) -> None:
    """Worker-process loop: build once, then step/collect/exit on demand.
    Errors are forwarded as ("error", text) so the parent can raise with
    context instead of hanging on a dead pipe."""
    try:
        shard = _build_shard(shard_id, indices, builder, seed, kwargs,
                             min_latency)
        conn.send(("ready", None))
        while True:
            op, arg = conn.recv()
            if op == "step":
                horizon, inbound = arg
                conn.send(("report", shard.step(horizon, inbound)))
            elif op == "collect":
                conn.send(("data", shard.collect()))
            elif op == "exit":
                return
            else:  # pragma: no cover - protocol misuse
                raise ShardError(f"unknown shard op {op!r}")
    except BaseException as exc:
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:  # pragma: no cover - parent already gone
            pass
    finally:
        conn.close()


class _ProcessShard:
    """Shard hosted in a spawned worker process, driven over a pipe."""

    def __init__(self, ctx, shard_id, indices, builder, seed, kwargs,
                 min_latency):
        self.shard_id = shard_id
        self._conn, child = ctx.Pipe()
        self._proc = ctx.Process(
            target=_shard_worker,
            args=(child, shard_id, indices, builder, seed, kwargs,
                  min_latency),
            daemon=True)
        self._proc.start()
        child.close()
        self._expect("ready")

    def _expect(self, tag: str):
        try:
            kind, payload = self._conn.recv()
        except EOFError:
            raise ShardError(
                f"shard {self.shard_id} worker died (exitcode="
                f"{self._proc.exitcode})") from None
        if kind == "error":
            raise ShardError(f"shard {self.shard_id} failed: {payload}")
        if kind != tag:  # pragma: no cover - protocol misuse
            raise ShardError(
                f"shard {self.shard_id}: expected {tag!r}, got {kind!r}")
        return payload

    def step_begin(self, horizon, inbound) -> None:
        self._conn.send(("step", (horizon, inbound)))

    def step_end(self) -> ShardReport:
        return self._expect("report")

    def collect(self) -> dict:
        self._conn.send(("collect", None))
        return self._expect("data")

    def close(self) -> None:
        try:
            self._conn.send(("exit", None))
        except (BrokenPipeError, OSError):
            pass
        self._proc.join(timeout=10)
        if self._proc.is_alive():  # pragma: no cover - hung worker
            self._proc.terminate()
            self._proc.join(timeout=10)
        self._conn.close()


@dataclass
class FleetResult:
    """Merged outcome of a sharded fleet run.

    ``canonical_output`` deliberately excludes worker count and transport:
    the byte-identity contract is that those cannot matter."""

    num_machines: int
    window_cycles: int
    windows: int
    messages: int
    #: machine index -> that node's ``result()`` dict
    node_results: dict = field(default_factory=dict)
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)
    #: fleet-wide canonical trace (``m{idx}|``-prefixed lines)
    canonical: list = field(default_factory=list)
    trace_dropped: int = 0

    def canonical_output(self) -> str:
        head = {
            "machines": self.num_machines,
            "messages": self.messages,
            "nodes": {str(i): self.node_results[i]
                      for i in sorted(self.node_results)},
            "window_cycles": self.window_cycles,
            "windows": self.windows,
        }
        body = json.dumps(head, indent=1, sort_keys=True)
        return body + "\n" + "\n".join(self.canonical) + "\n"


class ShardedSim:
    """Drive one fleet of ``num_machines`` machines across ``workers``
    shards with conservative time-window barriers.

    ``builder(index, seed, **builder_kwargs)`` must be a module-level
    callable returning a :class:`~repro.sim.shard.FleetNode` — worker
    processes import it by reference.  ``transport`` defaults to
    ``"inline"`` for one worker (the serial fallback) and ``"process"``
    otherwise; property tests force ``"inline"`` with several shards to
    check partition-independence without process startup."""

    def __init__(self, builder: NodeBuilder, num_machines: int, *,
                 seed: int = 0, workers: int = 1,
                 window_cycles: int = DEFAULT_WINDOW_CYCLES,
                 min_latency: Optional[int] = None,
                 transport: Optional[str] = None,
                 builder_kwargs: Optional[dict] = None,
                 max_windows: int = 100_000):
        if num_machines < 1:
            raise ShardError("need at least one machine")
        if workers < 1:
            raise ShardError("need at least one worker")
        if window_cycles < 1:
            raise ShardError("window must be positive")
        self.builder = builder
        self.num_machines = num_machines
        self.seed = seed
        self.workers = min(workers, num_machines)
        self.window_cycles = int(window_cycles)
        self.min_latency = self.window_cycles if min_latency is None \
            else int(min_latency)
        if self.min_latency < self.window_cycles:
            raise ShardError(
                f"min_latency {self.min_latency} < window "
                f"{self.window_cycles}: conservative barriers need "
                f"lookahead >= the window")
        self.transport = transport or (
            "inline" if self.workers == 1 else "process")
        if self.transport not in ("inline", "process"):
            raise ShardError(f"unknown transport {self.transport!r}")
        self.builder_kwargs = dict(builder_kwargs or {})
        self.max_windows = max_windows
        #: machine index -> shard id (round-robin)
        self.shard_of = {i: i % self.workers for i in range(num_machines)}

    # ------------------------------------------------------------------

    def _spawn_handles(self) -> list:
        ctx = multiprocessing.get_context("spawn") \
            if self.transport == "process" else None
        handles = []
        for shard_id in range(self.workers):
            indices = [i for i in range(self.num_machines)
                       if self.shard_of[i] == shard_id]
            args = (shard_id, indices, self.builder, self.seed,
                    self.builder_kwargs, self.min_latency)
            if ctx is None:
                handles.append(_InlineShard(*args))
            else:
                handles.append(_ProcessShard(ctx, *args))
        return handles

    def run(self) -> FleetResult:
        """Run the fleet to quiescence and return the merged result."""
        handles = self._spawn_handles()
        try:
            windows, messages = self._barrier_loop(handles)
            return self._gather(handles, windows, messages)
        finally:
            for handle in handles:
                handle.close()

    def _barrier_loop(self, handles: list) -> tuple:
        window = self.window_cycles
        pending: list[FleetMessage] = []
        horizon = window
        windows = 0
        messages = 0
        while True:
            windows += 1
            if windows > self.max_windows:
                raise ShardError(
                    f"fleet still live after {self.max_windows} windows "
                    f"(horizon {horizon}); runaway workload or too-small "
                    f"window")
            batch = sort_batch(
                [m for m in pending if m.deliver_cycle <= horizon])
            pending = [m for m in pending if m.deliver_cycle > horizon]
            for handle, shard_id in zip(handles, range(self.workers)):
                slice_ = [m for m in batch
                          if self.shard_of[m.dst] == shard_id]
                handle.step_begin(horizon, slice_)
            reports = [handle.step_end() for handle in handles]
            outbound = [m for r in reports for m in r.outbound]
            messages += len(outbound)
            pending.extend(outbound)

            all_finished = all(r.finished for r in reports)
            next_cycles = [r.next_cycle for r in reports
                           if r.next_cycle is not None]
            if not next_cycles and not pending:
                if all_finished:
                    return windows, messages
                blocked = ", ".join(
                    f"m{idx}:{name}" for r in reports
                    for idx, name in r.blocked)
                raise SimDeadlock(
                    f"fleet wedged at horizon {horizon}: no runnable "
                    f"work, no messages in flight; blocked: {blocked}")
            earliest = min(next_cycles +
                           [m.deliver_cycle for m in pending])
            horizon = max(horizon + window,
                          window * ceil(earliest / window))

    def _gather(self, handles: list, windows: int, messages: int
                ) -> FleetResult:
        node_results: dict[int, dict] = {}
        snapshots: dict[int, MetricsSnapshot] = {}
        canonical: dict[int, list] = {}
        dropped_total = 0
        for handle in handles:
            data = handle.collect()
            node_results.update(data["results"])
            snapshots.update(data["snapshots"])
            for index, (rows, dropped) in data["rings"].items():
                events = trace.import_ring(rows)
                errors = trace.validate(events, dropped)
                if errors:
                    raise ShardError(
                        f"machine {index} trace ill-formed: "
                        + "; ".join(errors[:3]))
                canonical[index] = trace.canonical_lines(events)
                dropped_total += dropped
        merged = MetricsSnapshot.merge(
            snapshots[i] for i in sorted(snapshots))
        return FleetResult(
            num_machines=self.num_machines,
            window_cycles=self.window_cycles,
            windows=windows,
            messages=messages,
            node_results=node_results,
            metrics=merged,
            canonical=trace.merge_canonical(canonical),
            trace_dropped=dropped_total)


# ---------------------------------------------------------------------------
# independent-episode fan-out
# ---------------------------------------------------------------------------

def parallel_episodes(fn: Callable, params: Iterable, *,
                      workers: int = 1,
                      chunksize: Optional[int] = None) -> list:
    """Map ``fn`` over parameter tuples, optionally across processes.

    The parallel path is ``spawn``-based (no inherited state) and
    order-preserving (``Pool.starmap``), so with a per-episode-pure ``fn``
    the result list is identical at every worker count.  ``fn`` must be a
    module-level callable and every parameter/result picklable.  Scalars
    in ``params`` are promoted to 1-tuples."""
    jobs = [tuple(p) if isinstance(p, (list, tuple)) else (p,)
            for p in params]
    if workers <= 1 or len(jobs) <= 1:
        return [fn(*job) for job in jobs]
    procs = min(workers, len(jobs))
    if chunksize is None:
        chunksize = max(1, len(jobs) // (procs * 4))
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(processes=procs) as pool:
        return pool.starmap(fn, jobs, chunksize=chunksize)
