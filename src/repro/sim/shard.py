"""Fleet sharding: machines, messages, and the per-shard step engine.

The sharded simulation (:mod:`repro.sim.pool`) partitions a fleet of
machines across shards — each shard a plain object here, hosted either
in-process or in a worker process.  Every machine keeps its *own*
:class:`~repro.hw.clock.Clock`, :class:`~repro.sim.scheduler.SimScheduler`
and :class:`~repro.trace.Tracer`; machines interact **only** through
:class:`FleetMessage` values exchanged at time-window barriers.

The determinism contract has three legs:

1. **Local purity.**  A machine's evolution is a pure function of its
   build parameters and the sequence of inbound messages (with their
   delivery cycles).  Nothing else crosses the machine boundary.
2. **Conservative lookahead.**  Every message carries latency >= the
   barrier window, so a message posted during one window can only take
   effect in a later one — no shard can ever need information another
   shard has not yet produced.
3. **Canonical batch order.**  At each barrier the pool sorts the global
   batch by ``(deliver_cycle, src, src_seq, dst)`` before handing shards
   their slice.  Each machine therefore sees its inbound messages in the
   same order whatever the partition, and schedules them with the same
   local seq tickets.

Together these make a ``workers=k`` run byte-identical to the
``workers=1`` serial fallback, which executes the very same barrier
algorithm on a single shard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from repro import trace
from repro.hw.machine import Machine
from repro.metrics import MetricsCollector, MetricsSnapshot
from repro.sim.scheduler import SimError, SimScheduler


class ShardError(SimError):
    """Fleet misuse: lookahead violation, unknown destination, a worker
    process that died, or a barrier loop that cannot make progress."""


@dataclass(frozen=True)
class FleetMessage:
    """One cross-machine event, exchanged at a barrier.

    ``src_seq`` is the sender's local FIFO ticket
    (:meth:`~repro.hw.clock.Clock.next_seq`) at post time; it makes the
    global sort key a total order without consulting any global state."""

    src: int
    dst: int
    kind: str
    payload: Any
    send_cycle: int
    deliver_cycle: int
    src_seq: int

    def sort_key(self) -> tuple:
        return (self.deliver_cycle, self.src, self.src_seq, self.dst)


def sort_batch(messages: list[FleetMessage]) -> list[FleetMessage]:
    """Canonical barrier-batch order (see module docstring, leg 3)."""
    return sorted(messages, key=FleetMessage.sort_key)


class FleetNode:
    """One machine of the fleet: scheduler + tracer + message endpoints.

    Subclass per scenario: build the machine stack in ``__init__`` (the
    pool runs builders under :func:`~repro.hw.machine.isolated_machine_ids`
    so identity is a pure function of ``(index, seed)``), spawn workload
    tasks with :meth:`spawn_traced`, react to messages in
    :meth:`on_message`, and report scenario numbers from :meth:`result`.
    """

    def __init__(self, index: int, machine: Machine,
                 trace_capacity: int = trace.DEFAULT_CAPACITY):
        self.index = index
        self.machine = machine
        self.sched = SimScheduler(machine)
        self.tracer = trace.Tracer(machine.clock,
                                   capacity_per_cpu=trace_capacity)
        #: minimum cross-machine latency, imposed by the pool (= the
        #: barrier window); set when the node joins a shard
        self.min_latency = 0
        self.inbox: list[FleetMessage] = []
        self._outbox: list[FleetMessage] = []
        self.messages_sent = 0
        self.messages_received = 0
        #: node-local fault attribution — scenarios that inject faults
        #: into this machine's stack increment this themselves; the
        #: process-global plan counter is meaningless in a fleet
        self.faults_injected = 0

    # -- messaging -------------------------------------------------------

    def post(self, dst: int, kind: str, payload: Any = None,
             latency_cycles: Optional[int] = None) -> FleetMessage:
        """Queue a message to machine ``dst``; picked up at the next
        barrier.  Latency defaults to the minimum (the window) and may be
        anything above it; below it is a lookahead violation."""
        latency = self.min_latency if latency_cycles is None \
            else int(latency_cycles)
        if latency < self.min_latency:
            raise ShardError(
                f"machine {self.index} posted {kind!r} with latency "
                f"{latency} < window {self.min_latency}; conservative "
                f"barriers need latency >= the window")
        now = self.machine.clock.cycles
        msg = FleetMessage(src=self.index, dst=dst, kind=kind,
                           payload=payload, send_cycle=now,
                           deliver_cycle=now + latency,
                           src_seq=self.machine.clock.next_seq())
        self._outbox.append(msg)
        self.messages_sent += 1
        trace.instant(0, "fleet.msg-post", kind=kind)
        return msg

    def take_outbox(self) -> list[FleetMessage]:
        out, self._outbox = self._outbox, []
        return out

    def on_message(self, msg: FleetMessage) -> None:
        """Delivery callback, fired by the node's own clock at
        ``deliver_cycle`` (or at the next poll if the local clock already
        ran past it).  Default: record into :attr:`inbox`."""
        self.inbox.append(msg)
        self.messages_received += 1
        trace.instant(0, "fleet.msg-deliver", kind=msg.kind)

    # -- execution -------------------------------------------------------

    def spawn_traced(self, gen: Generator, **kwargs):
        """Spawn a task with this node's tracer installed, so the spawn
        event lands in this node's ring (builders run outside
        :meth:`advance`)."""
        with trace.tracing(self.tracer):
            return self.sched.spawn(gen, **kwargs)

    def advance(self, horizon: int) -> bool:
        """Run this machine's window under its own tracer."""
        with trace.tracing(self.tracer):
            return self.sched.run_window(horizon)

    @property
    def finished(self) -> bool:
        return self.sched.finished

    # -- reporting -------------------------------------------------------

    def collector(self) -> MetricsCollector:
        """Override to wire kernel/VMM/Mercury counters into snapshots."""
        return MetricsCollector(self.machine)

    def snapshot(self) -> MetricsSnapshot:
        snap = self.collector().snapshot()
        # The collector reads two process-globals — the installed fault
        # plan's counter and the *active* tracer — that cannot be
        # attributed to one machine of a fleet and would make the
        # snapshot depend on which process hosts the node (breaking leg
        # 1 of the determinism contract).  Rebind them to this node's
        # own structures.
        snap.faults_injected = self.faults_injected
        snap.trace_events = self.tracer.recorded
        snap.trace_dropped = self.tracer.dropped
        return snap

    def canonical_trace(self) -> list[str]:
        return trace.canonical_lines(self.tracer.events())

    def result(self) -> dict:
        """Scenario-visible numbers; subclasses extend.  Everything here
        must be deterministic (it feeds ``FleetResult.canonical_output``).
        """
        return {
            "cycles": self.machine.clock.cycles,
            "messages_received": self.messages_received,
            "messages_sent": self.messages_sent,
        }


#: builder signature the pool expects: ``builder(index, seed, **kwargs)``
NodeBuilder = Callable[..., FleetNode]


@dataclass
class ShardReport:
    """What a shard tells the pool after one window (picklable)."""

    shard_id: int
    outbound: list[FleetMessage]
    finished: bool
    #: earliest cycle any hosted machine has runnable work at, or None
    next_cycle: Optional[int]
    #: (machine index, task name) pairs still blocked, for deadlock reports
    blocked: list = field(default_factory=list)
    delivered: int = 0


class Shard:
    """A bundle of fleet nodes stepped together between barriers."""

    def __init__(self, shard_id: int, min_latency: int):
        self.shard_id = shard_id
        self.min_latency = min_latency
        self.nodes: dict[int, FleetNode] = {}

    def add(self, node: FleetNode) -> None:
        if node.index in self.nodes:
            raise ShardError(f"duplicate machine index {node.index}")
        node.min_latency = self.min_latency
        self.nodes[node.index] = node

    def _deliver(self, msg: FleetMessage) -> None:
        node = self.nodes.get(msg.dst)
        if node is None:
            raise ShardError(
                f"message {msg.kind!r} addressed to machine {msg.dst}, "
                f"not hosted on shard {self.shard_id}")
        node.machine.clock.schedule_at(
            msg.deliver_cycle, lambda m=msg, n=node: n.on_message(m))

    def step(self, horizon: int, inbound: list[FleetMessage]) -> ShardReport:
        """Inject this window's batch, run every node to ``horizon``, and
        report outbound messages plus progress state.

        ``inbound`` arrives pre-sorted in canonical order; scheduling the
        deliveries in that order assigns each machine's clock tickets
        identically under every partition."""
        for msg in inbound:
            self._deliver(msg)
        outbound: list[FleetMessage] = []
        all_finished = True
        next_cycles: list[int] = []
        blocked: list = []
        for index in sorted(self.nodes):
            node = self.nodes[index]
            finished = node.advance(horizon)
            all_finished = all_finished and finished
            outbound.extend(node.take_outbox())
            cycle = node.sched.next_work_cycle()
            if cycle is not None:
                next_cycles.append(cycle)
            blocked.extend((index, name)
                           for name in node.sched.blocked_names())
        return ShardReport(
            shard_id=self.shard_id,
            outbound=outbound,
            finished=all_finished,
            next_cycle=min(next_cycles) if next_cycles else None,
            blocked=blocked,
            delivered=len(inbound))

    def collect(self) -> dict:
        """Final per-node data, in picklable primitives + dataclasses."""
        return {
            "results": {i: self.nodes[i].result()
                        for i in sorted(self.nodes)},
            "snapshots": {i: self.nodes[i].snapshot()
                          for i in sorted(self.nodes)},
            "rings": {i: (trace.export_ring(self.nodes[i].tracer),
                          self.nodes[i].tracer.dropped)
                      for i in sorted(self.nodes)},
        }
