"""Deterministic cooperative simulation scheduler.

The substrate that lets run-to-completion layers *interleave*: workloads
become generator tasks yielding at syscall/IO/compute boundaries, the
switch engine's retry timer and device events fire between (and inside)
slices, and a mode switch can genuinely observe a nonzero VO refcount
because another task is mid-sensitive-call — the live-application race of
§4.3 that the refcount-gated commit (§5.1.1) exists for.

Determinism contract: everything that can run is ordered by
``(cycle deadline, FIFO seq)`` where the seq is a ticket from the shared
:class:`~repro.hw.clock.Clock` counter.  No wall clock, no randomness, no
dict-order dependence — two runs of the same scenario produce bit-identical
traces and metrics.

Sequential entry points stay sequential: :func:`run_to_completion` drives a
workload generator without a scheduler installed, which is cycle-identical
to the pre-generator code path.

Scaling out, the same contract survives process boundaries: the sharded
fleet (:mod:`repro.sim.shard` / :mod:`repro.sim.pool`) partitions machines
across workers under conservative time-window barriers, and
``workers=k`` is byte-identical to ``workers=1``.
"""

from repro.sim.task import (Join, SimState, SimTask, Sleep, SleepUntil,
                            WaitFor, Yield)
from repro.sim.scheduler import (SimDeadlock, SimError, SimScheduler, active,
                                 preempt_point, run_to_completion)
from repro.sim.shard import (FleetMessage, FleetNode, Shard, ShardError,
                             ShardReport, sort_batch)
from repro.sim.pool import (DEFAULT_WINDOW_CYCLES, FleetResult, ShardedSim,
                            parallel_episodes)

__all__ = [
    "Join", "SimState", "SimTask", "Sleep", "SleepUntil", "WaitFor", "Yield",
    "SimDeadlock", "SimError", "SimScheduler", "active", "preempt_point",
    "run_to_completion",
    "FleetMessage", "FleetNode", "Shard", "ShardError", "ShardReport",
    "sort_batch",
    "DEFAULT_WINDOW_CYCLES", "FleetResult", "ShardedSim",
    "parallel_episodes",
]
