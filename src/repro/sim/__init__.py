"""Deterministic cooperative simulation scheduler.

The substrate that lets run-to-completion layers *interleave*: workloads
become generator tasks yielding at syscall/IO/compute boundaries, the
switch engine's retry timer and device events fire between (and inside)
slices, and a mode switch can genuinely observe a nonzero VO refcount
because another task is mid-sensitive-call — the live-application race of
§4.3 that the refcount-gated commit (§5.1.1) exists for.

Determinism contract: everything that can run is ordered by
``(cycle deadline, FIFO seq)`` where the seq is a ticket from the shared
:class:`~repro.hw.clock.Clock` counter.  No wall clock, no randomness, no
dict-order dependence — two runs of the same scenario produce bit-identical
traces and metrics.

Sequential entry points stay sequential: :func:`run_to_completion` drives a
workload generator without a scheduler installed, which is cycle-identical
to the pre-generator code path.
"""

from repro.sim.task import Join, SimState, SimTask, Sleep, WaitFor, Yield
from repro.sim.scheduler import (SimDeadlock, SimError, SimScheduler, active,
                                 preempt_point, run_to_completion)

__all__ = [
    "Join", "SimState", "SimTask", "Sleep", "WaitFor", "Yield",
    "SimDeadlock", "SimError", "SimScheduler", "active", "preempt_point",
    "run_to_completion",
]
