"""Exception hierarchy for the Mercury reproduction.

Every error raised by the simulator derives from :class:`ReproError` so that
callers can catch simulator faults without masking programming errors.  The
hierarchy mirrors the layering of the system: hardware faults, guest-OS
faults, VMM faults and Mercury (self-virtualization) faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# --------------------------------------------------------------------------
# Hardware-level faults
# --------------------------------------------------------------------------

class HardwareError(ReproError):
    """Base class for faults raised by the simulated hardware."""


class GeneralProtectionFault(HardwareError):
    """A privilege violation: executing a privileged operation from an
    insufficiently privileged level, or loading an inconsistent segment
    selector (the fault §5.1.2 of the paper guards against with the
    segment-selector fixup stub)."""


class PageFault(HardwareError):
    """A memory access could not be translated or violated PTE permissions.

    Carries enough information for the guest OS (or the VMM) to service the
    fault: the faulting virtual address, whether the access was a write, and
    whether the fault came from user mode.
    """

    def __init__(self, vaddr: int, write: bool, user: bool, message: str = ""):
        super().__init__(message or f"page fault at {vaddr:#x} (write={write}, user={user})")
        self.vaddr = vaddr
        self.write = write
        self.user = user


class InvalidPhysicalAddress(HardwareError):
    """An access referenced a frame outside installed physical memory."""


class MachineCheck(HardwareError):
    """Unrecoverable hardware error (used by failure-injection in the HPC
    cluster scenario)."""


class DeviceError(HardwareError):
    """A simulated device rejected or failed an operation."""


# --------------------------------------------------------------------------
# Guest OS faults
# --------------------------------------------------------------------------

class GuestOSError(ReproError):
    """Base class for guest-OS-level errors."""


class NoSuchProcess(GuestOSError):
    """A PID did not name a live task."""


class OutOfMemory(GuestOSError):
    """The kernel could not allocate frames or virtual address space."""


class FileSystemError(GuestOSError):
    """VFS/ext3-like filesystem error (missing file, bad offset, ...)."""


class NetworkError(GuestOSError):
    """Socket/network-stack error."""


class SyscallError(GuestOSError):
    """A system call failed; carries a Unix-style errno name."""

    def __init__(self, errno: str, message: str = ""):
        super().__init__(message or errno)
        self.errno = errno


class SignalDelivered(GuestOSError):
    """A fault was resolved by running a registered signal handler; the
    faulting operation is abandoned (the handler longjmp'd out, as
    lmbench's fault handlers do)."""

    def __init__(self, sig: int, vaddr: int = 0):
        super().__init__(f"signal {sig} handled (fault at {vaddr:#x})")
        self.sig = sig
        self.vaddr = vaddr


# --------------------------------------------------------------------------
# VMM faults
# --------------------------------------------------------------------------

class VMMError(ReproError):
    """Base class for hypervisor-level errors."""


class HypercallError(VMMError):
    """A hypercall was rejected (bad arguments, failed validation)."""


class PageValidationError(VMMError):
    """A page could not be validated/pinned as the requested type, e.g. a
    would-be page-table page containing a writable mapping of another
    page-table page, or a PTE pointing at a foreign domain's frame."""


class DomainError(VMMError):
    """Domain lifecycle error (bad domain id, double-destroy, ...)."""


class GrantError(VMMError):
    """Grant-table error (bad grant reference, revoked grant, ...)."""


class RingError(VMMError):
    """Shared-memory I/O ring protocol violation (overrun, bad index)."""


class VmmCorruption(VMMError):
    """A VMI-style watchdog scan found corrupted VMM/guest structures.

    The verdict names the failed invariant so recovery and tests can key
    off *what* broke, not just that something did; ``detail`` carries the
    human-readable evidence from the scan."""

    def __init__(self, invariant: str, detail: str = ""):
        super().__init__(f"VMM corruption: {invariant}"
                         + (f" ({detail})" if detail else ""))
        self.invariant = invariant
        self.detail = detail


# --------------------------------------------------------------------------
# Mercury (self-virtualization) faults
# --------------------------------------------------------------------------

class MercuryError(ReproError):
    """Base class for self-virtualization errors."""


class ModeSwitchError(MercuryError):
    """A mode switch could not be performed (illegal target mode,
    inconsistent state, ...)."""


class SwitchBusy(MercuryError):
    """A mode switch could not commit because some CPU was executing inside
    a virtualization object (non-zero reference count).  The switch engine
    turns this into a retry via the 10 ms timer; it only escapes to callers
    that asked for a non-blocking switch."""


class RendezvousTimeout(MercuryError):
    """The SMP rendezvous protocol did not gather all CPUs in time."""


class TransferAborted(MercuryError):
    """A state-transfer function (§5.1.2) aborted partway through; the
    switch engine's undo log rolls the completed steps back."""


class ReloadFailure(MercuryError):
    """A CPU failed to reload its hardware control state (§5.1.3) during a
    switch — the hard case, because the control processor's work has
    already committed when a secondary's reload dies."""


class SwitchAborted(MercuryError):
    """A mode switch exhausted its bounded retry budget and was terminally
    aborted.  The kernel was rolled back to (or never left) its pre-switch
    mode; ``last_error`` carries the final attempt's failure, if any."""

    def __init__(self, direction, retries: int,
                 last_error: "Exception | None" = None):
        detail = f": {last_error}" if last_error is not None else ""
        super().__init__(
            f"mode switch {getattr(direction, 'value', direction)} aborted "
            f"after {retries} retries{detail}")
        self.direction = direction
        self.retries = retries
        self.last_error = last_error


class ConsistencyViolation(MercuryError):
    """An internal invariant check failed.  This should never escape in a
    correct build; tests assert that specific misuse raises it."""


class RecoveryError(MercuryError):
    """VMM-fault recovery (emergency detach + microreboot + re-attach)
    could not restore a healthy attached state."""


# --------------------------------------------------------------------------
# Scenario-level faults
# --------------------------------------------------------------------------

class ScenarioError(ReproError):
    """Base class for usage-scenario errors (§6)."""


class MigrationError(ScenarioError):
    """Live migration failed or was aborted."""


class CheckpointError(ScenarioError):
    """Checkpoint/restore failure (corrupt image, wrong machine shape)."""


class LiveUpdateError(ScenarioError):
    """A live kernel update could not be applied or rolled back."""


class HealingError(ScenarioError):
    """Self-healing could not repair the detected anomaly."""
