"""Native-mode virtualization object: direct hardware manipulation (§5.3).

Every sensitive operation executes privileged instructions directly — the
kernel runs at PL0 and owns the machine.  The only overhead relative to an
unmodified kernel is the function-table indirection charged by
:func:`~repro.core.vobject.sensitive` and (optionally) the ACTIVE
page-accounting hook (§5.1.2's first alternative, benchmarked in the
ablation).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.vobject import VirtualizationObject, sensitive
from repro.hw.cpu import PrivilegeLevel
from repro.params import PAGE_SIZE

if TYPE_CHECKING:
    from repro.core.accounting import ActiveAccountant, MmuAccounting
    from repro.hw.devices import BlockRequest, Packet
    from repro.hw.interrupts import Idt
    from repro.hw.machine import Machine
    from repro.hw.paging import AddressSpace, Pte


class NativeVO(VirtualizationObject):
    """VO implementation for an OS running on bare hardware.

    The lazy-MMU region markers inherit the base-class no-ops: native PTE
    writes are plain stores, so there is nothing to batch."""

    mode_name = "native"

    def __init__(self, machine: "Machine",
                 accountant: Optional["ActiveAccountant"] = None,
                 mmu_log: Optional["MmuAccounting"] = None):
        super().__init__()
        self.machine = machine
        self.data.kernel_segment_dpl = 0
        #: when the ACTIVE accounting strategy is selected, Mercury keeps the
        #: pre-cached VMM's page type/count info up to date from native mode
        #: at a small per-operation cost (§5.1.2)
        self.accountant = accountant
        if mmu_log is None:
            from repro.core.accounting import MmuAccounting
            mmu_log = MmuAccounting()  # standalone VO: marks go nowhere
        #: dirty-root tracker for the incremental attach recompute; the
        #: mark itself is a one-bit note folded into the PT write, so no
        #: cycles are charged here
        self.mmu_log = mmu_log
        self._dirty_roots = mmu_log.dirty

    # -- sensitive CPU operations -------------------------------------------

    @sensitive
    def write_cr3(self, cpu, pgd_frame: int) -> None:
        cpu.write_cr3(pgd_frame)

    @sensitive
    def load_idt(self, cpu, idt: "Idt") -> None:
        cpu.load_idt(idt)
        self.data.idt = idt

    @sensitive
    def set_segment_dpl(self, cpu, dpl: int) -> None:
        for desc in cpu.gdt.values():
            desc.dpl = dpl
        self.data.kernel_segment_dpl = dpl

    @sensitive
    def irq_disable(self, cpu) -> None:
        cpu.cli()

    @sensitive
    def irq_enable(self, cpu) -> None:
        cpu.sti()

    @sensitive
    def stack_switch(self, cpu, to_task) -> None:
        cpu.charge(cpu.cost.cyc_privop_native)  # load the new esp0

    # -- kernel entry/exit -------------------------------------------------

    @sensitive
    def kernel_entry(self, cpu) -> None:
        # every syscall passes through here: direct clock add (constant cost)
        cpu.clock.cycles += cpu.cost.cyc_kernel_entry
        cpu.set_privilege(PrivilegeLevel.PL0)

    @sensitive
    def kernel_exit(self, cpu) -> None:
        cpu.clock.cycles += cpu.cost.cyc_kernel_exit
        cpu.set_privilege(PrivilegeLevel.PL3)

    @sensitive
    def fault_entry(self, cpu) -> None:
        cpu.charge(cpu.cost.cyc_fault_hw)
        cpu.set_privilege(PrivilegeLevel.PL0)

    # -- sensitive memory operations ------------------------------------------

    @sensitive
    def set_pte(self, cpu, aspace: "AddressSpace", vaddr: int, pte: "Pte") -> None:
        cpu.charge(cpu.cost.cyc_pte_write)
        old = aspace.get_pte(vaddr) if self.accountant is not None else None
        aspace.set_pte(vaddr, pte)
        self._dirty_roots.add(aspace.pgd.frame)
        if self.accountant is not None:
            self.accountant.on_set_pte(cpu, aspace, vaddr, pte, old)

    @sensitive
    def clear_pte(self, cpu, aspace: "AddressSpace", vaddr: int) -> None:
        cpu.charge(cpu.cost.cyc_pte_write)
        old = aspace.clear_pte(vaddr)
        cpu.tlb.invalidate(vaddr // PAGE_SIZE)
        self._dirty_roots.add(aspace.pgd.frame)
        if self.accountant is not None and old is not None:
            self.accountant.on_clear_pte(cpu, aspace, vaddr, old)

    @sensitive
    def update_pte_flags(self, cpu, aspace: "AddressSpace", vaddr: int, *,
                         writable=None, present=None, cow=None) -> None:
        cpu.charge(cpu.cost.cyc_pte_write)
        pte = aspace.get_pte(vaddr)
        if pte is None:
            return
        if writable is not None:
            pte.writable = writable
        if present is not None:
            pte.present = present
        if cow is not None:
            pte.cow = cow
        cpu.tlb.invalidate(vaddr // PAGE_SIZE)
        self._dirty_roots.add(aspace.pgd.frame)
        if self.accountant is not None:
            self.accountant.on_update_pte(cpu, aspace, vaddr, pte)

    @sensitive
    def apply_pte_region(self, cpu, aspace: "AddressSpace", updates: list) -> None:
        self._dirty_roots.add(aspace.pgd.frame)
        cpu.charge(cpu.cost.cyc_pte_write * len(updates))
        accountant = self.accountant
        if accountant is None:
            # hot path (fork child install, exec teardown, mmap populate):
            # plain stores, one lump charge for the whole region
            set_pte = aspace.set_pte
            clear_pte = aspace.clear_pte
            drop = cpu.tlb.drop
            for vaddr, pte in updates:
                if pte is None:
                    clear_pte(vaddr)
                    drop(vaddr // PAGE_SIZE, None)
                else:
                    set_pte(vaddr, pte)
            return
        for vaddr, pte in updates:
            old = aspace.get_pte(vaddr)
            if pte is None:
                removed = aspace.clear_pte(vaddr)
                cpu.tlb.invalidate(vaddr // PAGE_SIZE)
                if removed is not None:
                    accountant.on_clear_pte(cpu, aspace, vaddr, removed)
            else:
                aspace.set_pte(vaddr, pte)
                accountant.on_set_pte(cpu, aspace, vaddr, pte, old)

    @sensitive
    def new_address_space(self, cpu, aspace: "AddressSpace") -> None:
        # Bare hardware needs nothing: the MMU will happily walk any frames.
        self.mmu_log.on_new_root(aspace)
        if self.accountant is not None:
            self.accountant.on_new_address_space(cpu, aspace)

    @sensitive
    def destroy_address_space(self, cpu, aspace: "AddressSpace") -> None:
        self.mmu_log.on_destroy_root(aspace)
        if self.accountant is not None:
            self.accountant.on_destroy_address_space(cpu, aspace)
        aspace.destroy()

    @sensitive
    def flush_tlb(self, cpu) -> None:
        cpu.charge(cpu.cost.cyc_tlb_flush)
        cpu.tlb.flush()

    @sensitive
    def invlpg(self, cpu, vaddr: int) -> None:
        cpu.charge(cpu.cost.cyc_privop_native)
        cpu.tlb.invalidate(vaddr // PAGE_SIZE)

    # -- sensitive I/O operations -------------------------------------------

    @sensitive
    def bind_irq(self, cpu, line: str, cpu_id: int, vector: int) -> None:
        cpu.charge(cpu.cost.cyc_privop_native)
        self.machine.intc.bind_line(line, cpu_id, vector)
        self.data.irq_bindings[line] = (cpu_id, vector)

    @sensitive
    def disk_submit(self, cpu, req: "BlockRequest") -> None:
        cpu.charge(cpu.cost.cyc_disk_submit)
        self.machine.disk.submit(req)

    @sensitive
    def net_transmit(self, cpu, pkt: "Packet") -> None:
        cost = cpu.cost
        cpu.clock.cycles += (cost.cyc_net_per_packet
                             + cost.cyc_net_copy_per_kb
                             * max(1, pkt.size_bytes // 1024))
        self.machine.nic.transmit(pkt)
