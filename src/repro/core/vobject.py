"""Virtualization objects (VOes) — §4.2 and §5.3 of the paper.

A VO groups *all* virtualization-sensitive code and data behind one
interface: a function table (the methods below) plus a data table
(:class:`VoData` — control registers, descriptor tables).  The guest kernel
never touches sensitive hardware state directly; it calls through the VO
installed by Mercury.  Relocating the OS between execution modes is then a
single pointer swap — plus the state transfer/reload work in
:mod:`repro.core.transfer` and :mod:`repro.core.reload`.

Every function-table call is **reference counted** on entry and exit
(§5.1.1): a mode switch may only commit when the count is zero, which
guarantees no CPU is midway through mode-dependent code.  The
:func:`sensitive` decorator implements the counting and also charges the
pointer-indirection cost — the *entire* steady-state overhead Mercury adds
in native mode (measured at <2% in §7.3, reproduced in Fig. 3/4 benches).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.errors import ConsistencyViolation
from repro.sim import scheduler as _sim

if TYPE_CHECKING:
    from repro.hw.cpu import Cpu
    from repro.hw.devices import BlockRequest, Packet
    from repro.hw.interrupts import Idt
    from repro.hw.paging import AddressSpace, Pte


@dataclass
class VoData:
    """The VO data table: global sensitive data (§5.3) — control-register
    images and descriptor tables, kept per-mode so a switch can reload
    them."""

    idt: Optional["Idt"] = None
    #: descriptor-privilege level of the kernel code/data segments: 0 in
    #: native mode, 1 in virtual mode (§5.1.2 item 2)
    kernel_segment_dpl: int = 0
    #: interrupt line -> (cpu, vector) bindings this mode uses
    irq_bindings: dict = field(default_factory=dict)


def sensitive(fn):
    """Mark a VO method as virtualization-sensitive code.

    Wraps the method with entry/exit reference counting and charges the
    function-table indirection cost to the issuing CPU.  The first
    positional argument of every sensitive method is the CPU doing the work.

    Under a running :class:`~repro.sim.scheduler.SimScheduler` the wrapper
    is also an interrupt window: before releasing the refcount it services
    timer deadlines that landed while the method ran.  A mode-switch
    request delivered there observes ``refcount >= 1`` — the genuine
    some-CPU-is-inside-sensitive-code race of §5.1.1 — and must retry.
    (The window sits *before* :meth:`VirtualizationObject.exit` so the
    count still covers this call; it never sits before ``enter``, where a
    commit could swap the VO under an already-bound method.)
    """

    @functools.wraps(fn)
    def wrapper(self: "VirtualizationObject", cpu: "Cpu", *args, **kwargs):
        # enter()/exit() inlined: this wrapper runs on every sensitive op,
        # so the two method dispatches are measurable across a workload.
        # ``charges_indirect`` is the class knob the N-L baseline clears.
        # The charge is a direct clock add — the cost is a constant, so
        # Cpu.charge's negative guard is dead weight here.
        if self.charges_indirect:
            cpu.clock.cycles += cpu.cost.cyc_vo_indirect
        self.refcount += 1
        self.entries += 1
        try:
            return fn(self, cpu, *args, **kwargs)
        finally:
            # preempt_point inlined: the no-scheduler guard is one global
            # load here instead of a call on every sensitive op
            sched = _sim._ACTIVE
            if sched is not None:
                sched.pump(cpu)
            if self.refcount <= 0:
                raise ConsistencyViolation("VO refcount underflow")
            self.refcount -= 1

    wrapper.__sensitive__ = True
    return wrapper


class VirtualizationObject:
    """Abstract VO: the unified interface of §4.2.

    Subclasses provide the native-mode implementation (direct hardware
    manipulation) and the virtual-mode implementation (hypercalls into the
    attached VMM).  Methods are grouped exactly as §5.3 groups them:
    sensitive CPU operations, sensitive memory operations, sensitive I/O
    operations, and kernel entry/exit paths.
    """

    mode_name = "abstract"
    #: True for paravirtual (de-privileged, VMM-mediated) implementations;
    #: mode-dependent kernel paths (fault penalties, pin-on-restore) key
    #: off this rather than string-matching mode_name
    is_virtual = False
    #: whether entering sensitive code charges the function-table
    #: indirection cost — every Mercury VO does; the unmodified-kernel
    #: baseline (``BareMetalVO``) clears it
    charges_indirect = True

    def __init__(self):
        self.data = VoData()
        self.refcount = 0
        self.entries = 0          # lifetime count of sensitive-code entries
        self._cost = None         # set on install

    # -- reference counting (§5.1.1) ---------------------------------------

    def enter(self, cpu: "Cpu") -> None:
        if self.charges_indirect:
            cpu.charge(cpu.cost.cyc_vo_indirect)
        self.refcount += 1
        self.entries += 1

    def exit(self, cpu: "Cpu") -> None:
        if self.refcount <= 0:
            raise ConsistencyViolation("VO refcount underflow")
        self.refcount -= 1

    def busy(self) -> bool:
        """True while any CPU is executing inside this VO."""
        return self.refcount != 0

    # -- sensitive CPU operations -------------------------------------------

    def write_cr3(self, cpu: "Cpu", pgd_frame: int) -> None:
        raise NotImplementedError

    def load_idt(self, cpu: "Cpu", idt: "Idt") -> None:
        raise NotImplementedError

    def set_segment_dpl(self, cpu: "Cpu", dpl: int) -> None:
        raise NotImplementedError

    def irq_disable(self, cpu: "Cpu") -> None:
        raise NotImplementedError

    def irq_enable(self, cpu: "Cpu") -> None:
        raise NotImplementedError

    def stack_switch(self, cpu: "Cpu", to_task) -> None:
        """Switch kernel stacks during a context switch (under a VMM this
        is the ``stack_switch`` hypercall — the VMM must know the stack to
        push the next interrupt frame onto)."""
        raise NotImplementedError

    # -- kernel entry/exit paths ---------------------------------------------

    def kernel_entry(self, cpu: "Cpu") -> None:
        """User -> kernel transition (syscall/interrupt prologue)."""
        raise NotImplementedError

    def kernel_exit(self, cpu: "Cpu") -> None:
        """Kernel -> user transition (IRET/sysexit epilogue)."""
        raise NotImplementedError

    def fault_entry(self, cpu: "Cpu") -> None:
        """Hardware fault delivery into the kernel's fault handler."""
        raise NotImplementedError

    # -- sensitive memory operations -------------------------------------------

    def set_pte(self, cpu: "Cpu", aspace: "AddressSpace", vaddr: int,
                pte: "Pte") -> None:
        raise NotImplementedError

    def clear_pte(self, cpu: "Cpu", aspace: "AddressSpace", vaddr: int) -> None:
        raise NotImplementedError

    def update_pte_flags(self, cpu: "Cpu", aspace: "AddressSpace", vaddr: int,
                         *, writable: Optional[bool] = None,
                         present: Optional[bool] = None,
                         cow: Optional[bool] = None) -> None:
        raise NotImplementedError

    def apply_pte_region(self, cpu: "Cpu", aspace: "AddressSpace",
                         updates: list) -> None:
        """Apply a batch of ``(vaddr, Pte-or-None)`` updates to one address
        space.  Region paths (mmap populate, munmap) use this: a native
        kernel just streams the stores; a para-virtual kernel folds them
        into batched ``mmu_update`` multicalls."""
        raise NotImplementedError

    # -- lazy-MMU batching (Xen-Linux's lazy MMU mode) -------------------------

    def lazy_mmu_begin(self, cpu: "Cpu") -> None:
        """Open a lazy-MMU region: PTE updates issued until the matching
        :meth:`lazy_mmu_end` *may* be queued and applied as one batched
        ``mmu_update`` multicall.  Regions nest; only the outermost end
        flushes.  Native mode applies updates directly, so this is a no-op
        everywhere except the para-virtual direct-paging VO."""

    def lazy_mmu_end(self, cpu: "Cpu") -> None:
        """Close a lazy-MMU region, flushing any queued updates.  Calling
        it with no region open is a no-op (this happens when a mode switch
        drained and retired the region mid-flight)."""

    def lazy_mmu_flush(self, cpu: "Cpu") -> None:
        """Flush queued updates without closing the region.  Implicitly
        invoked on every operation that needs current page tables: CR3
        load, TLB flush/invlpg, fault entry, pin/unpin."""

    def lazy_mmu_drain(self, cpu: "Cpu") -> None:
        """Flush every CPU's queue and forcibly retire open regions.  The
        mode-switch engine calls this before a commit: queued state must be
        drained before the VO pointer swap (§4.3 consistency)."""

    def lazy_mmu_pending(self) -> int:
        """Number of queued-but-unapplied PTE updates across all CPUs."""
        return 0

    def new_address_space(self, cpu: "Cpu", aspace: "AddressSpace") -> None:
        """Register a freshly-built address space (virtual mode: pin it)."""
        raise NotImplementedError

    def destroy_address_space(self, cpu: "Cpu", aspace: "AddressSpace") -> None:
        raise NotImplementedError

    def flush_tlb(self, cpu: "Cpu") -> None:
        raise NotImplementedError

    def invlpg(self, cpu: "Cpu", vaddr: int) -> None:
        raise NotImplementedError

    # -- sensitive I/O operations ------------------------------------------------

    def bind_irq(self, cpu: "Cpu", line: str, cpu_id: int, vector: int) -> None:
        raise NotImplementedError

    def disk_submit(self, cpu: "Cpu", req: "BlockRequest") -> None:
        raise NotImplementedError

    def net_transmit(self, cpu: "Cpu", pkt: "Packet") -> None:
        raise NotImplementedError

    # ----------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} refcount={self.refcount} entries={self.entries}>"
