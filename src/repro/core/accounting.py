"""Page type/count maintenance strategies — the §5.1.2 design choice.

The VMM's page-info table goes stale the moment the VMM deactivates.  Two
ways to have it correct again at the next attach:

- **RECOMPUTE** (the paper's default): rebuild it during the switch by
  re-validating every page-table page.  Free in native mode; costs the bulk
  of the 0.22 ms native→virtual switch.
- **ACTIVE**: keep it warm from native mode by shadowing every PT operation
  with cheap bookkeeping (:class:`ActiveAccountant`, hooked into
  :class:`~repro.core.native_vo.NativeVO`).  The paper measured this at
  2–3% runtime overhead for only a small switch-time saving — the ablation
  benchmark reproduces that trade-off.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.hw.cpu import Cpu
    from repro.hw.paging import AddressSpace, Pte
    from repro.vmm.page_info import PageInfoTable


class AccountingStrategy(enum.Enum):
    RECOMPUTE = "recompute"
    ACTIVE = "active"


class ActiveAccountant:
    """Strategy 1: adapt the VMM's count information on every PT change
    made from native mode."""

    def __init__(self, page_info: "PageInfoTable"):
        self.page_info = page_info
        self.tracked_ops = 0

    def _charge(self, cpu: "Cpu") -> None:
        cpu.charge(cpu.cost.cyc_active_track_per_op)
        self.tracked_ops += 1

    # hooks called by NativeVO -------------------------------------------------

    def on_set_pte(self, cpu: "Cpu", aspace: "AddressSpace", vaddr: int,
                   pte: "Pte", old_pte: "Pte" = None) -> None:
        self._charge(cpu)
        if old_pte is not None:
            self.page_info.track_clear_pte(old_pte)
        leaf = aspace.leaf_for(vaddr)
        if leaf is not None and not self.page_info.is_pt_frame(leaf.frame):
            # a fresh leaf page-table page appeared under this write
            self.page_info.track_new_pt_page(leaf.frame, level=1)
        self.page_info.track_set_pte(pte, aspace.owner)

    def on_clear_pte(self, cpu: "Cpu", aspace: "AddressSpace", vaddr: int,
                     old_pte: "Pte") -> None:
        self._charge(cpu)
        self.page_info.track_clear_pte(old_pte)

    def on_update_pte(self, cpu: "Cpu", aspace: "AddressSpace", vaddr: int,
                      pte: "Pte") -> None:
        # flag changes don't move frame references; counts are unaffected
        self._charge(cpu)

    def on_new_address_space(self, cpu: "Cpu", aspace: "AddressSpace") -> None:
        self._charge(cpu)
        self.page_info.track_new_pt_page(aspace.pgd.frame, level=2)
        for leaf in aspace.pgd.entries.values():
            if not self.page_info.is_pt_frame(leaf.frame):
                self.page_info.track_new_pt_page(leaf.frame, level=1)

    def on_destroy_address_space(self, cpu: "Cpu", aspace: "AddressSpace") -> None:
        self._charge(cpu)
        for leaf in aspace.pgd.entries.values():
            for pte in leaf.entries.values():
                self.page_info.track_clear_pte(pte)
            self.page_info.track_drop_pt_page(leaf.frame)
        self.page_info.track_drop_pt_page(aspace.pgd.frame)
