"""Page type/count maintenance strategies — the §5.1.2 design choice.

The VMM's page-info table goes stale the moment the VMM deactivates.  Two
ways to have it correct again at the next attach:

- **RECOMPUTE** (the paper's default): rebuild it during the switch by
  re-validating every page-table page.  Free in native mode; costs the bulk
  of the 0.22 ms native→virtual switch.
- **ACTIVE**: keep it warm from native mode by shadowing every PT operation
  with cheap bookkeeping (:class:`ActiveAccountant`, hooked into
  :class:`~repro.core.native_vo.NativeVO`).  The paper measured this at
  2–3% runtime overhead for only a small switch-time saving — the ablation
  benchmark reproduces that trade-off.

:class:`MmuAccounting` sharpens the RECOMPUTE trade-off with a *dirty-root
set*: at detach it captures, per pinned page-table root, exactly what that
root contributes to the page-info columns; in native mode every PT
operation marks its root dirty (a one-bit note folded into the op — unlike
ACTIVE it maintains no counts and charges no cycles); the next attach then
revalidates only dirty/new roots, subtracts the captured contribution of
dead ones, and merely re-pins the clean rest.  First attach, an epoch bump
(:meth:`~repro.vmm.page_info.PageInfoTable.reset`) or a rolled-back switch
all distrust the tracker and fall back to the full recompute.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Iterable

from repro.vmm.page_info import RootContribution

if TYPE_CHECKING:
    from repro.hw.cpu import Cpu
    from repro.hw.paging import AddressSpace, Pte
    from repro.vmm.page_info import PageInfoTable


class AccountingStrategy(enum.Enum):
    RECOMPUTE = "recompute"
    ACTIVE = "active"


class MmuAccounting:
    """Dirty-root tracking for the incremental attach recompute.

    State machine: ``trusted`` is True only between a committed detach
    (which captured per-root contributions) and the next attach commit or
    rollback.  While native, the VO layer calls the ``on_*`` hooks; they
    cost zero simulated cycles — the mark is a single bit that rides the
    PT write itself, which is the point of the design: unlike the ACTIVE
    strategy there is no per-operation accounting work to charge.

    All state is transactional: :meth:`checkpoint` / :meth:`restore` give
    the switch undo-log an exact snapshot, so a ``SwitchAborted`` rollback
    can never leave a phantom-clean root that would dodge revalidation on
    the retry."""

    def __init__(self):
        #: pgd frames of roots touched (or created) since the last detach.
        #: Identity-stable: the VO hot paths cache this very set object, so
        #: every mutation below is in-place (clear/update), never a rebind.
        self.dirty: set[int] = set()
        #: pgd frame -> contribution captured at the last detach
        self.contributions: dict[int, RootContribution] = {}
        #: contributions of captured roots destroyed in native mode,
        #: keyed by their (possibly since-reused) pgd frame
        self.dead: dict[int, RootContribution] = {}
        self.trusted = False
        #: page-info epoch the contributions were captured against
        self.epoch = -1
        #: attach statistics (benchmarks and traces read these)
        self.roots_trusted = 0
        self.roots_revalidated = 0
        self.full_recomputes = 0
        #: roots dirtied by balloon traffic specifically (the elasticity
        #: bench reads this to attribute attach-time drift to churn)
        self.balloon_marks = 0

    # -- native/virtual VO hooks (zero simulated cycles) -----------------

    def on_pt_write(self, aspace: "AddressSpace") -> None:
        self.dirty.add(aspace.pgd.frame)

    def on_balloon(self, aspace: "AddressSpace") -> None:
        """A balloon operation (inflate unmap / deflate repopulate) touched
        this root.  The PTE work itself already rode :meth:`on_pt_write`
        through the VO; this explicit mark keeps the recompute exact even
        for balloon paths that bypass the VO hot path, and counts how much
        of the dirty set balloon churn is responsible for."""
        self.dirty.add(aspace.pgd.frame)
        self.balloon_marks += 1

    def on_new_root(self, aspace: "AddressSpace") -> None:
        self.dirty.add(aspace.pgd.frame)

    def on_destroy_root(self, aspace: "AddressSpace") -> None:
        pgd = aspace.pgd.frame
        contrib = self.contributions.pop(pgd, None)
        if contrib is not None:
            # captured at detach, torn down in native mode: its column
            # contribution must be subtracted at the next attach
            self.dead[pgd] = contrib
        self.dirty.discard(pgd)

    # -- detach: capture -------------------------------------------------

    def capture_at_detach(self, pinned_roots: Iterable["AddressSpace"],
                          page_info: "PageInfoTable") -> None:
        """Record the canonical per-root contributions of every root that
        was pinned when the detach began (an unpinned root has no column
        contribution and will be validated from scratch at the next
        attach).  Called after the lazy-MMU drain, so no PT update is
        still in flight."""
        self.contributions = {
            a.pgd.frame: RootContribution.capture(a) for a in pinned_roots
        }
        self.dead = {}
        self.dirty.clear()
        self.epoch = page_info.epoch
        self.trusted = True

    # -- attach: trust decision ------------------------------------------

    def can_trust(self, page_info: "PageInfoTable") -> bool:
        """The columns still hold what the last detach left behind: no
        rollback distrusted us and nobody reset the table under us."""
        return self.trusted and self.epoch == page_info.epoch

    def consume(self) -> None:
        """An attach committed: the table is live again and hypercalls
        maintain it; captured contributions are spent."""
        self.contributions = {}
        self.dead = {}
        self.dirty.clear()
        self.trusted = False

    def distrust(self) -> None:
        self.trusted = False

    # -- transactional snapshot (the switch undo-log seam) ---------------

    def checkpoint(self) -> tuple:
        return (set(self.dirty), dict(self.contributions), dict(self.dead),
                self.trusted, self.epoch)

    def restore(self, ck: tuple) -> None:
        dirty, contributions, dead, trusted, epoch = ck
        # copy again: one checkpoint may be restored more than once (each
        # journalled undo step of a transfer loop restores it idempotently)
        self.dirty.clear()
        self.dirty.update(dirty)
        self.contributions = dict(contributions)
        self.dead = dict(dead)
        self.trusted = trusted
        self.epoch = epoch


class ActiveAccountant:
    """Strategy 1: adapt the VMM's count information on every PT change
    made from native mode."""

    def __init__(self, page_info: "PageInfoTable"):
        self.page_info = page_info
        self.tracked_ops = 0

    def _charge(self, cpu: "Cpu") -> None:
        cpu.charge(cpu.cost.cyc_active_track_per_op)
        self.tracked_ops += 1

    # hooks called by NativeVO -------------------------------------------------

    def on_set_pte(self, cpu: "Cpu", aspace: "AddressSpace", vaddr: int,
                   pte: "Pte", old_pte: "Pte" = None) -> None:
        self._charge(cpu)
        if old_pte is not None:
            self.page_info.track_clear_pte(old_pte)
        leaf = aspace.leaf_for(vaddr)
        if leaf is not None and not self.page_info.is_pt_frame(leaf.frame):
            # a fresh leaf page-table page appeared under this write
            self.page_info.track_new_pt_page(leaf.frame, level=1)
        self.page_info.track_set_pte(pte, aspace.owner)

    def on_clear_pte(self, cpu: "Cpu", aspace: "AddressSpace", vaddr: int,
                     old_pte: "Pte") -> None:
        self._charge(cpu)
        self.page_info.track_clear_pte(old_pte)

    def on_update_pte(self, cpu: "Cpu", aspace: "AddressSpace", vaddr: int,
                      pte: "Pte") -> None:
        # flag changes don't move frame references; counts are unaffected
        self._charge(cpu)

    def on_new_address_space(self, cpu: "Cpu", aspace: "AddressSpace") -> None:
        self._charge(cpu)
        self.page_info.track_new_pt_page(aspace.pgd.frame, level=2)
        for leaf in aspace.pgd.entries.values():
            if not self.page_info.is_pt_frame(leaf.frame):
                self.page_info.track_new_pt_page(leaf.frame, level=1)

    def on_destroy_address_space(self, cpu: "Cpu", aspace: "AddressSpace") -> None:
        self._charge(cpu)
        for leaf in aspace.pgd.entries.values():
            for pte in leaf.entries.values():
                self.page_info.track_clear_pte(pte)
            self.page_info.track_drop_pt_page(leaf.frame)
        self.page_info.track_drop_pt_page(aspace.pgd.frame)
