"""VMM pre-caching (§4.1).

Booting a VMM from cold takes seconds — unusable inside an interrupt
handler.  Mercury instead warms the VMM up once at machine boot and keeps it
resident but inactive: "the pre-cached VMM already contains most required
data structures in memory".  The only state left to synchronize at attach
time is the in-time execution context, the page type/count information and
the interrupt bindings — the job of the state transfer/reload functions.

The space-time trade-off: the resident VMM reserves a small chunk of
physical memory (tracked so the benches can report it) in exchange for a
sub-millisecond attach instead of a multi-second boot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.vmm.hypervisor import Hypervisor

if TYPE_CHECKING:
    from repro.hw.machine import Machine

#: cycles to warm up the VMM at boot (~120 ms at 3 GHz: image load + data
#: structure construction).  Paid once, off the switch path — the whole
#: point of pre-caching.
WARMUP_CYCLES = 360_000_000

#: cycles a cold VMM boot would take (~4 s): the alternative Mercury avoids
COLD_BOOT_CYCLES = 12_000_000_000


@dataclass
class PrecacheInfo:
    """What pre-caching cost and reserved."""

    warmup_cycles: int
    reserved_frames: int
    reserved_kb: int


def precache_vmm(machine: "Machine", charge_boot_time: bool = True) -> tuple[Hypervisor, PrecacheInfo]:
    """Build and warm up a resident-but-inactive VMM on ``machine``."""
    vmm = Hypervisor(machine)
    free_before = machine.memory.free_frames
    vmm.warm_up()
    reserved = free_before - machine.memory.free_frames
    if charge_boot_time:
        machine.clock.advance(WARMUP_CYCLES)
    info = PrecacheInfo(
        warmup_cycles=WARMUP_CYCLES if charge_boot_time else 0,
        reserved_frames=reserved,
        reserved_kb=reserved * 4)
    return vmm, info
