"""System-wide consistency invariants.

The behaviour-consistency requirements of §4.3, expressed as executable
checks over a whole Mercury stack.  ``check_all`` returns a list of
violation descriptions (empty = consistent); the property tests run it
after randomized workloads interleaved with mode switches, and the
failure-resistant switch uses the related sensor suite.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.mercury import Mode
from repro.guestos.process import TaskState

if TYPE_CHECKING:
    from repro.core.mercury import Mercury


def check_mode_coherence(mercury: "Mercury") -> list[str]:
    """Mode flag, installed VO, and VMM activation must agree."""
    out = []
    kernel = mercury.kernel
    native = mercury.mode is Mode.NATIVE
    if native and kernel.vo is not mercury.native_vo:
        out.append("mode NATIVE but a non-native VO is installed")
    if not native and mercury.virtual_vo is not None and \
            kernel.vo is not mercury.virtual_vo:
        out.append(f"mode {mercury.mode.value} but the virtual VO is not installed")
    if native and mercury.vmm.active:
        out.append("mode NATIVE but the VMM is active")
    if not native and not mercury.vmm.active:
        out.append(f"mode {mercury.mode.value} but the VMM is inactive")
    dpl = kernel.vo.data.kernel_segment_dpl
    if native and dpl != 0:
        out.append(f"native mode with kernel segment DPL {dpl}")
    if not native and dpl != 1:
        out.append(f"virtual mode with kernel segment DPL {dpl}")
    return out


def check_vo_quiescent(mercury: "Mercury") -> list[str]:
    """At rest (between operations) no CPU is inside sensitive code."""
    if mercury.kernel.vo.busy():
        return [f"VO refcount {mercury.kernel.vo.refcount} at rest"]
    return []


def check_frame_ownership(mercury: "Mercury") -> list[str]:
    """Every frame mapped by any address space belongs to the kernel."""
    out = []
    kernel = mercury.kernel
    mem = mercury.machine.memory
    for aspace in kernel.aspaces:
        for frame in aspace.mapped_frames():
            if mem.owner_of(frame) != kernel.owner_id:
                out.append(
                    f"mapped frame {frame} owned by {mem.owner_of(frame)}, "
                    f"not {kernel.owner_id}")
    return out


def check_frame_refcounts(mercury: "Mercury") -> list[str]:
    """The COW share counters equal the actual PTE reference counts."""
    out = []
    kernel = mercury.kernel
    actual: dict[int, int] = {}
    for aspace in kernel.aspaces:
        for frame in aspace.mapped_frames():
            actual[frame] = actual.get(frame, 0) + 1
    for frame, refs in kernel.vmem._frame_refs.items():
        have = actual.get(frame, 0)
        if refs != have:
            out.append(f"frame {frame}: refcount {refs} but {have} mappings")
    for frame, have in actual.items():
        if frame not in kernel.vmem._frame_refs:
            out.append(f"frame {frame}: {have} mappings but no refcount")
    return out


def check_scheduler(mercury: "Mercury") -> list[str]:
    out = []
    sched = mercury.kernel.scheduler
    seen = set()
    for task in sched.runqueue:
        if task.pid in seen:
            out.append(f"pid {task.pid} duplicated on the runqueue")
        seen.add(task.pid)
        if task.state == TaskState.ZOMBIE:
            out.append(f"zombie pid {task.pid} on the runqueue")
    if sched.current is not None and \
            sched.current.state != TaskState.RUNNING:
        out.append(f"current task {sched.current.pid} not RUNNING")
    return out


def check_pinning(mercury: "Mercury") -> list[str]:
    """Direct mode: in virtual mode every live address space is pinned, in
    native mode nothing is.  Shadow mode: nothing is ever pinned, but in
    virtual mode every live address space has a coherent shadow."""
    from repro.core.mercury import PagingMode

    out = []
    kernel = mercury.kernel
    pinned = mercury.vmm.page_info.pinned
    if mercury.paging is PagingMode.SHADOW:
        if pinned:
            out.append(f"{len(pinned)} pinned frames in shadow mode")
        if mercury.mode is not Mode.NATIVE and mercury.pager is not None:
            for aspace in kernel.aspaces:
                if id(aspace) not in mercury.pager.shadows:
                    out.append(f"PGD {aspace.pgd_frame} has no shadow")
                elif not mercury.pager.verify_coherent(aspace):
                    out.append(f"shadow of PGD {aspace.pgd_frame} incoherent")
        return out
    if mercury.mode is Mode.NATIVE:
        for aspace in kernel.aspaces:
            if aspace.pgd_frame in pinned:
                out.append(f"PGD {aspace.pgd_frame} pinned in native mode")
    else:
        for aspace in kernel.aspaces:
            if aspace.pgd_frame not in pinned:
                out.append(f"PGD {aspace.pgd_frame} unpinned in virtual mode")
    return out


def check_tlb_coherence(mercury: "Mercury") -> list[str]:
    """No CPU's TLB holds a translation that disagrees with the current
    address space's page tables (stale entries after an invalidate/flush
    would be silent memory corruption on real hardware)."""
    out = []
    kernel = mercury.kernel
    current = kernel.scheduler.current
    if current is None:
        return out
    aspace = current.aspace
    from repro.params import PAGE_SIZE
    for cpu in kernel.machine.cpus:
        if cpu.cr3 != aspace.pgd_frame:
            continue  # this CPU runs something else (or the VMM/shadow)
        for vpn, (frame, writable) in list(cpu.tlb._entries.items()):
            pte = aspace.get_pte(vpn * PAGE_SIZE)
            if pte is None or not pte.present:
                out.append(f"cpu{cpu.cpu_id}: stale TLB entry for vpn {vpn:#x}")
            elif pte.frame != frame:
                out.append(f"cpu{cpu.cpu_id}: TLB frame {frame} != PTE "
                           f"frame {pte.frame} for vpn {vpn:#x}")
            elif writable and not pte.writable:
                out.append(f"cpu{cpu.cpu_id}: TLB grants write to "
                           f"read-only vpn {vpn:#x}")
    return out


def check_lazy_mmu(mercury: "Mercury") -> list[str]:
    """At rest no lazy-MMU updates may be queued: a pending queue means
    page tables the hardware could walk disagree with what the kernel
    believes it wrote (and a mode switch must never commit over one)."""
    pending = mercury.kernel.vo.lazy_mmu_pending()
    if pending:
        return [f"{pending} lazy-MMU updates queued at rest"]
    return []


def check_filesystem(mercury: "Mercury") -> list[str]:
    from repro.guestos.fs import BLOCK_SIZE
    out = []
    for path, inode in mercury.kernel.fs.inodes.items():
        if inode.size > len(inode.blocks) * BLOCK_SIZE:
            out.append(f"{path}: size {inode.size} exceeds "
                       f"{len(inode.blocks)} blocks")
        if inode.nlink < 1:
            out.append(f"{path}: nlink {inode.nlink}")
    return out


ALL_CHECKS = (check_mode_coherence, check_vo_quiescent,
              check_frame_ownership, check_frame_refcounts,
              check_scheduler, check_pinning, check_tlb_coherence,
              check_lazy_mmu, check_filesystem)


def check_all(mercury: "Mercury") -> list[str]:
    """Run every invariant; returns all violations found."""
    out: list[str] = []
    for check in ALL_CHECKS:
        out.extend(check(mercury))
    return out
