"""Multicore mode-switch coordination (§5.4).

"Mercury uses the IPI mechanism and shared variables to control the mode
switch of each processor": the control processor (CP) — the one that
received the switch request — IPIs every other core; each core acknowledges
by incrementing a shared counter and spins on a shared flag; the CP raises
the flag once the counter equals the CPU count; every core then performs its
per-CPU share of the switch; completion is gathered through a second shared
counter.

Timing model: the CP's heavy work (state transfer, page-info recompute, VMM
(de)activation) is charged to the global clock as usual.  The secondaries'
per-CPU reloads happen *concurrently* with it, so their cycles are measured,
overlapped against the CP timeline, and only the straggler extends the
total — giving the switch-time-vs-core-count curve of the scalability
ablation (§8's 'performance scalability of Mercury' concern).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro import faults, trace
from repro.errors import RendezvousTimeout
from repro.hw.interrupts import VEC_SV_RENDEZVOUS

#: how much longer a fault-delayed IPI takes than a healthy delivery
IPI_DELAY_FACTOR = 50

if TYPE_CHECKING:
    from repro.hw.cpu import Cpu
    from repro.hw.machine import Machine


@dataclass
class RendezvousResult:
    """Timeline of one coordinated switch, all values in cycles."""

    num_cpus: int
    start: int
    #: when every CPU had acknowledged the IPI (shared count == num CPUs)
    gathered: int
    #: when the control processor finished its heavy work
    cp_done: int
    #: when the last secondary finished its per-CPU reload
    secondaries_done: int
    #: overall completion
    finish: int
    ipis_sent: int = 0

    @property
    def total_cycles(self) -> int:
        return self.finish - self.start

    @property
    def gather_cycles(self) -> int:
        return self.gathered - self.start


class SmpCoordinator:
    """Executes the shared-counter/flag rendezvous protocol."""

    def __init__(self, machine: "Machine"):
        self.machine = machine
        # shared variables of the protocol (§5.4), exposed for tests
        self.ready_count = 0
        self.go_flag = False
        self.done_count = 0

    def _make_ack(self, c: "Cpu") -> Callable[[], None]:
        """The secondary's IPI acknowledgement: consume the vector, mask,
        charge the refcount check, bump the shared counter."""
        def ack() -> None:
            clock = self.machine.clock
            self.machine.intc.consume_vector(c.cpu_id, VEC_SV_RENDEZVOUS)
            c.interrupts_enabled = False
            clock.advance(c.cost.cyc_refcount_check)
            self.ready_count += 1
        return ack

    def coordinated_switch(self, cp: "Cpu",
                           cp_work: Callable[["Cpu"], None],
                           secondary_work: Callable[["Cpu"], None]
                           ) -> RendezvousResult:
        """Run ``cp_work`` on the control processor and ``secondary_work``
        on every other core, under the rendezvous protocol."""
        clock = self.machine.clock
        cost = cp.cost
        cpus = self.machine.cpus
        secondaries = [c for c in cpus if c is not cp]
        t_start = clock.cycles

        self.ready_count = 1  # the CP itself
        self.go_flag = False
        self.done_count = 0

        with trace.span(cp.cpu_id, "smp.rendezvous"):
            # 1. CP notifies the other processors (a dropped IPI never
            # reaches its core: the gather below comes up short and times
            # out)
            ipis = 0
            reached: list["Cpu"] = []
            for c in secondaries:
                if faults.fire(faults.IPI_DROPPED, cpu_id=c.cpu_id):
                    continue
                self.machine.intc.send_ipi(cp, c.cpu_id, VEC_SV_RENDEZVOUS)
                trace.instant(cp.cpu_id, "smp.ipi", target=f"cpu{c.cpu_id}")
                reached.append(c)
                ipis += 1

            try:
                # 2. each secondary receives the IPI (in parallel), masks
                # its own interrupts, and bumps the shared count.  Each
                # acknowledgement is a *scheduled event* on the shared
                # clock at the cycle the serial handshake reaches that
                # core; the CP, spinning on the count, drives exactly
                # those events to their deadlines.  Targeted
                # :meth:`Clock.fire` (not ``run_due``) keeps unrelated due
                # timers from running inside the masked rendezvous window.
                with trace.span(cp.cpu_id, "smp.gather"):
                    acks = []
                    if reached:
                        deadline = clock.cycles + cost.cyc_ipi_deliver
                        for c in reached:
                            if faults.fire(faults.IPI_DELAYED,
                                           cpu_id=c.cpu_id):
                                deadline += (cost.cyc_ipi_deliver *
                                             IPI_DELAY_FACTOR)
                            acks.append(clock.schedule(
                                deadline - clock.cycles,
                                self._make_ack(c)))
                            deadline += cost.cyc_refcount_check
                    for handle in acks:
                        clock.fire(handle)
                    if faults.fire(faults.RENDEZVOUS_TIMEOUT):
                        raise RendezvousTimeout(
                            f"injected: gather stalled at {self.ready_count}"
                            f"/{len(cpus)} CPUs")
                    if self.ready_count != len(cpus):
                        raise RendezvousTimeout(
                            f"gathered {self.ready_count}/{len(cpus)} CPUs")
                    t_gathered = clock.cycles

                # 3. CP raises the flag and performs the heavy switch work
                self.go_flag = True
                cp_work(cp)
                t_cp_done = clock.cycles

                # 4. the secondaries saw the flag at t_gathered and reloaded
                # their own state concurrently with the CP's work: execute
                # their reloads for state correctness, overlap their cycle
                # cost against the CP
                t_secondaries_done = t_gathered
                for c in secondaries:
                    before = clock.cycles
                    with trace.span(c.cpu_id, "reload.secondary"):
                        secondary_work(c)
                    self.done_count += 1
                    delta = clock.cycles - before
                    clock.cycles = before  # overlapped with cp_work
                    t_secondaries_done = max(t_secondaries_done,
                                             t_gathered + delta)
            except BaseException:
                # a failed rendezvous/switch must not strand secondaries
                # with interrupts masked — the rollback path runs with the
                # machine responsive again
                for c in secondaries:
                    c.interrupts_enabled = True
                raise

        # 5. completion: the switch is over when the straggler finishes
        t_finish = max(t_cp_done, t_secondaries_done)
        clock.cycles = max(clock.cycles, t_finish)
        self.done_count += 1  # the CP

        for c in secondaries:
            c.interrupts_enabled = True

        return RendezvousResult(
            num_cpus=len(cpus), start=t_start, gathered=t_gathered,
            cp_done=t_cp_done, secondaries_done=t_secondaries_done,
            finish=t_finish, ipis_sent=ipis)
