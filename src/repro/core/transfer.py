"""State-transfer functions (§5.1.2): make virtualization-sensitive data
semantically equivalent in the target mode.

Three sets of kernel state move during a switch:

1. **Page-table pages** — read-only (pinned, validated) in virtual mode,
   writable in native mode.  Going virtual also requires the VMM's page
   type/count info to be correct: recomputed here (or trusted, under the
   ACTIVE strategy).
2. **Kernel segment privilege** — DPL 0 native, DPL 1 virtual; including
   the *stack-cached* copies in every suspended task's interrupt frame (the
   fixup stub of §5.1.2, without which the first IRET after a switch takes
   a general protection fault).
3. **Interrupt handlers and bindings** — the guest IDT drives the hardware
   directly in native mode; in virtual mode the hardware IDT is the VMM's
   and guest handlers are reached through its forwarding gates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.accounting import AccountingStrategy
from repro.hw.cpu import PrivilegeLevel

if TYPE_CHECKING:
    from repro.guestos.kernel import Kernel
    from repro.hw.cpu import Cpu
    from repro.vmm.domain import Domain
    from repro.vmm.hypervisor import Hypervisor


def transfer_page_tables_to_virtual(cpu: "Cpu", kernel: "Kernel",
                                    vmm: "Hypervisor", domain: "Domain",
                                    strategy: AccountingStrategy) -> int:
    """Hand the OS's page tables to the VMM: register every address space
    with the domain and make the page-info table correct.

    Returns the number of page-table pages processed (the dominant cost
    driver of the native→virtual switch, §7.4)."""
    processed = 0
    for aspace in kernel.aspaces:
        domain.register_aspace(aspace)
        processed += aspace.num_pt_pages()

    if strategy is AccountingStrategy.RECOMPUTE:
        # full re-validation: the expensive, paper-default path
        vmm.page_info.recompute(cpu, kernel.aspaces, domain.domain_id)
    else:
        # ACTIVE: counts were maintained from native mode; only the pin
        # markers and a light re-protection pass are needed
        for aspace in kernel.aspaces:
            for pt in aspace.pt_pages():
                cpu.charge(cpu.cost.cyc_transfer_per_pt_page)
                vmm.page_info.pinned.add(pt.frame)
    return processed


def transfer_page_tables_to_native(cpu: "Cpu", kernel: "Kernel",
                                   vmm: "Hypervisor", domain: "Domain") -> int:
    """Give the page tables back to the OS: unpin (make writable again) and
    unregister.  The page-info table is left as-is; it is stale from this
    moment (unless the ACTIVE accountant keeps it warm)."""
    processed = 0
    for aspace in list(kernel.aspaces):
        for pt in aspace.pt_pages():
            cpu.charge(cpu.cost.cyc_transfer_per_pt_page)
            vmm.page_info.pinned.discard(pt.frame)
            processed += 1
        if aspace in domain.aspaces:
            domain.unregister_aspace(aspace)
    return processed


def transfer_segments(cpu: "Cpu", kernel: "Kernel", new_dpl: int) -> int:
    """Re-privilege the kernel segments and fix every stack-cached selector
    (§5.1.2: 'a code stub to check and fix the cached segment selectors').

    Returns the number of task frames fixed."""
    for c in kernel.machine.cpus:
        for desc in c.gdt.values():
            if desc.name.startswith("kernel"):
                desc.dpl = new_dpl
    # NOTE: each VO's data table is mode-constant (NativeVO: DPL 0,
    # VirtualVO: DPL 1) — the switch installs the other object rather than
    # mutating this one, so nothing to update here beyond the hardware.

    fixed = 0
    for task in kernel.procs.live_tasks():
        if task.stack_cached_selector_dpl is not None and \
                task.stack_cached_selector_dpl != new_dpl:
            cpu.charge(cpu.cost.cyc_iret_fixup)
            task.stack_cached_selector_dpl = new_dpl
            fixed += 1
    return fixed


def transfer_irq_bindings_to_virtual(cpu: "Cpu", kernel: "Kernel",
                                     vmm: "Hypervisor", domain: "Domain") -> None:
    """Move interrupt delivery under the VMM: register the guest's handlers
    as the domain trap table and install the VMM's forwarding IDT."""
    table = {vec: entry.handler for vec, entry in kernel.idt.gates.items()}
    domain.trap_table = table
    cpu.charge(cpu.cost.cyc_privop_native * max(1, len(table)))
    vmm.install_idt_for(domain)


def transfer_irq_bindings_to_native(cpu: "Cpu", kernel: "Kernel") -> None:
    """Point the hardware back at the guest's own IDT."""
    cpu.charge(cpu.cost.cyc_privop_native * max(1, len(kernel.idt.gates)))
    for c in kernel.machine.cpus:
        saved, c.pl = c.pl, PrivilegeLevel.PL0
        try:
            c.load_idt(kernel.idt)
        finally:
            c.pl = saved
