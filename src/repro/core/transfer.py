"""State-transfer functions (§5.1.2): make virtualization-sensitive data
semantically equivalent in the target mode.

Three sets of kernel state move during a switch:

1. **Page-table pages** — read-only (pinned, validated) in virtual mode,
   writable in native mode.  Going virtual also requires the VMM's page
   type/count info to be correct: recomputed here (or trusted, under the
   ACTIVE strategy).
2. **Kernel segment privilege** — DPL 0 native, DPL 1 virtual; including
   the *stack-cached* copies in every suspended task's interrupt frame (the
   fixup stub of §5.1.2, without which the first IRET after a switch takes
   a general protection fault).
3. **Interrupt handlers and bindings** — the guest IDT drives the hardware
   directly in native mode; in virtual mode the hardware IDT is the VMM's
   and guest handlers are reached through its forwarding gates.

Every function takes an optional :class:`SwitchTransaction`: as each step
completes it journals an inverse operation, so a fault raised partway
through a switch (see :mod:`repro.faults`) unwinds exactly the completed
steps and the kernel lands back in a consistent pre-switch mode.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro import faults, trace
from repro.core.accounting import AccountingStrategy
from repro.errors import ConsistencyViolation, HypercallError, TransferAborted
from repro.hw.cpu import PrivilegeLevel

if TYPE_CHECKING:
    from repro.core.accounting import MmuAccounting
    from repro.guestos.kernel import Kernel
    from repro.hw.cpu import Cpu
    from repro.vmm.domain import Domain
    from repro.vmm.hypervisor import Hypervisor


class SwitchTransaction:
    """Undo log for one mode-switch attempt.

    Each completed transfer step registers the closure that reverses it;
    :meth:`rollback` runs them newest-first.  An undo closure must itself be
    infallible for state the simulator owns — if one raises anyway, the
    remaining entries still run and a :class:`ConsistencyViolation`
    surfaces afterwards (a failed unwind is a bug, not a recoverable
    condition)."""

    def __init__(self):
        self._undo: list[tuple[str, Callable[["Cpu"], None]]] = []

    def did(self, step: str, undo: Callable[["Cpu"], None]) -> None:
        """Journal one completed step and its inverse."""
        self._undo.append((step, undo))

    @property
    def steps(self) -> list[str]:
        return [name for name, _ in self._undo]

    def rollback(self, cpu: "Cpu") -> int:
        """Unwind every journalled step, newest first; returns the number
        of undo entries executed."""
        errors: list[str] = []
        ran = 0
        while self._undo:
            step, undo = self._undo.pop()
            trace.instant(cpu.cpu_id, "rollback.step", step=step)
            try:
                undo(cpu)
            except Exception as exc:  # noqa: BLE001 - collected, re-raised
                errors.append(f"{step}: {exc!r}")
            ran += 1
        if errors:
            raise ConsistencyViolation(
                f"rollback itself failed: {errors}")
        return ran


def _fire_transfer_faults(processed: int) -> None:
    """The two injection seams every per-aspace transfer loop passes."""
    if faults.fire(faults.TRANSFER_HYPERCALL):
        raise HypercallError(
            "injected: transient hypercall failure during state transfer")
    if faults.fire(faults.PT_TRANSFER_ABORT):
        raise TransferAborted(
            f"injected: page-table transfer aborted after {processed} pages")


def transfer_page_tables_to_virtual(cpu: "Cpu", kernel: "Kernel",
                                    vmm: "Hypervisor", domain: "Domain",
                                    strategy: AccountingStrategy,
                                    txn: Optional[SwitchTransaction] = None,
                                    tracker: Optional["MmuAccounting"] = None
                                    ) -> int:
    """Hand the OS's page tables to the VMM: register every address space
    with the domain and make the page-info table correct.

    Under RECOMPUTE the table is normally rebuilt from scratch — the
    expensive, paper-default path.  When ``tracker`` still trusts the
    contributions it captured at the last detach, only roots dirtied (or
    created/destroyed) since then pay revalidation; the clean rest are
    merely re-pinned.  First attach, a table reset, or a rolled-back switch
    all force the full path.

    Returns the number of page-table pages processed (the dominant cost
    driver of the native→virtual switch, §7.4)."""
    processed = 0
    page_info = vmm.page_info
    with trace.span(cpu.cpu_id, "transfer.page-tables",
                    strategy=strategy.value):
        if strategy is AccountingStrategy.RECOMPUTE:
            if txn is not None:
                ck = tracker.checkpoint() if tracker is not None else None

                def undo_recompute(c: "Cpu") -> None:
                    # the wipe returns the table to native mode's "VMM lost
                    # track" rest state, which undoes a partial recompute
                    # and a partial incremental pass alike.  The tracker is
                    # restored exactly (no phantom-clean roots) but
                    # distrusted, so the retry takes the full path against
                    # the now-wiped table.
                    page_info.reset()
                    if tracker is not None:
                        tracker.restore(ck)
                        tracker.distrust()

                txn.did("pageinfo-recompute", undo_recompute)
            if tracker is not None and tracker.can_trust(page_info):
                processed = _revalidate_incremental(cpu, kernel, vmm, domain,
                                                    txn, tracker)
            else:
                # full re-validation from scratch
                page_info.reset()
                if tracker is not None:
                    tracker.full_recomputes += 1
                for aspace in kernel.aspaces:
                    _fire_transfer_faults(processed)
                    domain.register_aspace(aspace)
                    if txn is not None:
                        txn.did(f"register-aspace-{aspace.pgd_frame}",
                                lambda c, a=aspace: domain.unregister_aspace(a))
                    page_info.validate_pgd(cpu, aspace, domain.domain_id)
                    processed += aspace.num_pt_pages()
                if tracker is not None:
                    tracker.consume()
        else:
            # ACTIVE: counts were maintained from native mode; only the pin
            # markers and a light re-protection pass are needed
            for aspace in kernel.aspaces:
                _fire_transfer_faults(processed)
                domain.register_aspace(aspace)
                if txn is not None:
                    txn.did(f"register-aspace-{aspace.pgd_frame}",
                            lambda c, a=aspace: domain.unregister_aspace(a))
                added: list[int] = []
                for pt in aspace.pt_pages():
                    cpu.charge(cpu.cost.cyc_transfer_per_pt_page)
                    if page_info.pin_frame(pt.frame):
                        added.append(pt.frame)
                if txn is not None and added:
                    txn.did(f"pin-aspace-{aspace.pgd_frame}",
                            lambda c, fr=tuple(added):
                            page_info.unpin_frames(fr))
                processed += aspace.num_pt_pages()
    return processed


def _revalidate_incremental(cpu: "Cpu", kernel: "Kernel", vmm: "Hypervisor",
                            domain: "Domain", txn: Optional[SwitchTransaction],
                            tracker: "MmuAccounting") -> int:
    """The incremental attach recompute: subtract the captured contribution
    of every root that died while native, revalidate dirty/new roots, and
    re-pin the clean rest whose column state is still exact.

    Per-page work is charged at the transfer re-protection rate
    (``cyc_transfer_per_pt_page``) for trusted and subtracted roots — the
    same light pass the detach direction pays — while only revalidated
    roots pay the full-width ``validate_pgd`` scans."""
    page_info = vmm.page_info
    per_pt = cpu.cost.cyc_transfer_per_pt_page
    processed = 0
    n_dead = len(tracker.dead)
    for contrib in tracker.dead.values():
        cpu.charge(per_pt * contrib.num_pt_pages())
        page_info.subtract_root(contrib)
    dirty = tracker.dirty
    contributions = tracker.contributions
    trusted = revalidated = 0
    for aspace in kernel.aspaces:
        _fire_transfer_faults(processed)
        domain.register_aspace(aspace)
        if txn is not None:
            txn.did(f"register-aspace-{aspace.pgd_frame}",
                    lambda c, a=aspace: domain.unregister_aspace(a))
        contrib = contributions.get(aspace.pgd.frame)
        if contrib is not None and aspace.pgd.frame not in dirty:
            # clean root: detach removed only the pin marks, so the columns
            # already hold exactly what a full validation would rebuild
            cpu.charge(per_pt * contrib.num_pt_pages())
            page_info.repin_root(contrib)
            trusted += 1
        else:
            if contrib is not None:
                # dirtied since capture: drop the stale contribution first,
                # then validate the current structure from scratch
                cpu.charge(per_pt * contrib.num_pt_pages())
                page_info.subtract_root(contrib)
            page_info.validate_pgd(cpu, aspace, domain.domain_id)
            revalidated += 1
        processed += aspace.num_pt_pages()
    tracker.roots_trusted += trusted
    tracker.roots_revalidated += revalidated
    tracker.consume()
    trace.instant(cpu.cpu_id, "transfer.pt-incremental",
                  trusted=trusted, revalidated=revalidated, dead=n_dead)
    return processed


def transfer_page_tables_to_native(cpu: "Cpu", kernel: "Kernel",
                                   vmm: "Hypervisor", domain: "Domain",
                                   txn: Optional[SwitchTransaction] = None,
                                   tracker: Optional["MmuAccounting"] = None
                                   ) -> int:
    """Give the page tables back to the OS: unpin (make writable again) and
    unregister.  The page-info table is left as-is; it is stale from this
    moment (unless the ACTIVE accountant keeps it warm).

    When a ``tracker`` is present, the sweep also captures each pinned
    root's exact column contribution so the *next* attach can trust
    untouched roots (§5.1.2 made incremental).  The capture itself charges
    nothing: in a real kernel the page-info table simply persists — walking
    the structures here is a modeling artifact riding the per-page
    re-protection charge this loop already pays."""
    processed = 0
    page_info = vmm.page_info
    ck = tracker.checkpoint() if tracker is not None else None

    def _restore_tracker(c: "Cpu") -> None:
        # folded into the existing per-aspace undo closures (rollback runs
        # them newest-first, and restoring the same checkpoint twice is
        # idempotent) so the undo-log step names — and with them the golden
        # rollback traces — stay exactly as before
        if tracker is not None:
            tracker.restore(ck)

    with trace.span(cpu.cpu_id, "transfer.page-tables"):
        pinned_roots = [a for a in kernel.aspaces
                        if page_info.is_pinned(a.pgd.frame)]
        for aspace in list(kernel.aspaces):
            _fire_transfer_faults(processed)
            unpinned: list[int] = []
            for pt in aspace.pt_pages():
                cpu.charge(cpu.cost.cyc_transfer_per_pt_page)
                if page_info.unpin_frame(pt.frame):
                    unpinned.append(pt.frame)
                processed += 1
            if txn is not None and unpinned:
                def undo_unpin(c: "Cpu", fr=tuple(unpinned)) -> None:
                    _restore_tracker(c)
                    page_info.pin_frames(fr)
                txn.did(f"unpin-aspace-{aspace.pgd_frame}", undo_unpin)
            if aspace in domain.aspaces:
                domain.unregister_aspace(aspace)
                if txn is not None:
                    def undo_unregister(c: "Cpu", a=aspace) -> None:
                        _restore_tracker(c)
                        domain.register_aspace(a)
                    txn.did(f"unregister-aspace-{aspace.pgd_frame}",
                            undo_unregister)
        if tracker is not None:
            tracker.capture_at_detach(pinned_roots, page_info)
    return processed


def transfer_segments(cpu: "Cpu", kernel: "Kernel", new_dpl: int,
                      txn: Optional[SwitchTransaction] = None) -> int:
    """Re-privilege the kernel segments and fix every stack-cached selector
    (§5.1.2: 'a code stub to check and fix the cached segment selectors').

    Returns the number of task frames fixed."""
    with trace.span(cpu.cpu_id, "transfer.segments"):
        if txn is not None:
            old_dpl = kernel.vo.data.kernel_segment_dpl
            txn.did(f"segments-dpl{new_dpl}",
                    lambda c: transfer_segments(c, kernel, new_dpl=old_dpl))
        for c in kernel.machine.cpus:
            for desc in c.gdt.values():
                if desc.name.startswith("kernel"):
                    desc.dpl = new_dpl
        # NOTE: each VO's data table is mode-constant (NativeVO: DPL 0,
        # VirtualVO: DPL 1) — the switch installs the other object rather
        # than mutating this one, so nothing to update here beyond the
        # hardware.

        fixed = 0
        for task in kernel.procs.live_tasks():
            if task.stack_cached_selector_dpl is not None and \
                    task.stack_cached_selector_dpl != new_dpl:
                cpu.charge(cpu.cost.cyc_iret_fixup)
                task.stack_cached_selector_dpl = new_dpl
                fixed += 1
    return fixed


def _snapshot_idts(kernel: "Kernel") -> dict[int, object]:
    return {c.cpu_id: c.idt_base for c in kernel.machine.cpus}


def _restore_idts(kernel: "Kernel", old_idts: dict[int, object]) -> None:
    """Put back *exactly* the per-CPU hardware IDTs a failed switch found —
    including 'never loaded' on an AP that hasn't switched yet.  An undo
    must not re-derive which IDT is correct; it restores what was there."""
    for c in kernel.machine.cpus:
        prev = old_idts[c.cpu_id]
        saved, c.pl = c.pl, PrivilegeLevel.PL0
        try:
            if prev is not None:
                c.load_idt(prev)
            else:
                c.idt_base = None
        finally:
            c.pl = saved


def transfer_irq_bindings_to_virtual(cpu: "Cpu", kernel: "Kernel",
                                     vmm: "Hypervisor", domain: "Domain",
                                     txn: Optional[SwitchTransaction] = None
                                     ) -> None:
    """Move interrupt delivery under the VMM: register the guest's handlers
    as the domain trap table and install the VMM's forwarding IDT."""
    with trace.span(cpu.cpu_id, "transfer.irq-bindings"):
        if txn is not None:
            old_table = domain.trap_table
            old_idts = _snapshot_idts(kernel)

            def undo(c: "Cpu") -> None:
                domain.trap_table = old_table
                _restore_idts(kernel, old_idts)

            txn.did("irq-to-virtual", undo)
        table = {vec: entry.handler
                 for vec, entry in kernel.idt.gates.items()}
        domain.trap_table = table
        cpu.charge(cpu.cost.cyc_privop_native * max(1, len(table)))
        vmm.install_idt_for(domain)


def transfer_irq_bindings_to_native(cpu: "Cpu", kernel: "Kernel",
                                    vmm: Optional["Hypervisor"] = None,
                                    domain: Optional["Domain"] = None,
                                    txn: Optional[SwitchTransaction] = None
                                    ) -> None:
    """Point the hardware back at the guest's own IDT.  (``vmm``/``domain``
    are accepted for call-site symmetry; the journalled undo restores the
    captured per-CPU IDTs rather than re-deriving the forwarding IDT.)"""
    with trace.span(cpu.cpu_id, "transfer.irq-bindings"):
        if txn is not None:
            old_idts = _snapshot_idts(kernel)
            txn.did("irq-to-native",
                    lambda c: _restore_idts(kernel, old_idts))
        cpu.charge(cpu.cost.cyc_privop_native * max(1, len(kernel.idt.gates)))
        for c in kernel.machine.cpus:
            saved, c.pl = c.pl, PrivilegeLevel.PL0
            try:
                c.load_idt(kernel.idt)
            finally:
                c.pl = saved
