"""Virtual-mode VO for shadow paging (ablation A4).

With shadow paging the guest's own page tables are never installed in the
MMU, so the guest may write them freely — but every write traps and is
re-translated into the VMM-owned shadow, and CR3 loads must resolve to the
shadow's root.  Compare :class:`~repro.core.virtual_vo.VirtualVO` (direct
mode), where the guest's tables are the live ones and updates go through
validated hypercalls instead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.virtual_vo import VirtualVO
from repro.core.vobject import sensitive
from repro.errors import HypercallError
from repro.hw.cpu import PrivilegeLevel

if TYPE_CHECKING:
    from repro.hw.machine import Machine
    from repro.hw.paging import AddressSpace, Pte
    from repro.vmm.domain import Domain
    from repro.vmm.hypervisor import Hypervisor
    from repro.vmm.shadow import ShadowPager


class ShadowVirtualVO(VirtualVO):
    """De-privileged VO whose MMU operations maintain shadows."""

    mode_name = "virtual-shadow"

    def __init__(self, machine: "Machine", vmm: "Hypervisor",
                 domain: "Domain", pager: "ShadowPager"):
        super().__init__(machine, vmm, domain)
        self.pager = pager

    # -- CPU ----------------------------------------------------------------

    @sensitive
    def write_cr3(self, cpu, pgd_frame: int) -> None:
        aspace = self.domain.aspace_by_pgd.get(pgd_frame)
        if aspace is None:
            raise HypercallError(
                f"CR3 load of unregistered PGD frame {pgd_frame}")
        shadow = self.pager.shadow_of(aspace)
        # the VMM installs the *shadow* root
        cpu.charge(cpu.cost.cyc_emulate_privop)
        saved, cpu.pl = cpu.pl, PrivilegeLevel.PL0
        try:
            cpu.write_cr3(shadow.pgd_frame)
        finally:
            cpu.pl = saved

    # -- lazy MMU: shadow mode cannot batch ------------------------------------
    # Every guest page-table write traps individually and is re-translated
    # into the shadow; there is no multicall to fold updates into, so the
    # region markers degrade to no-ops (inherited VirtualVO queueing is
    # bypassed because set/clear/update below never consult the queue).

    def lazy_mmu_begin(self, cpu) -> None:
        pass

    def lazy_mmu_end(self, cpu) -> None:
        pass

    def lazy_mmu_flush(self, cpu) -> None:
        pass

    def lazy_mmu_drain(self, cpu) -> None:
        pass

    def lazy_mmu_pending(self) -> int:
        return 0

    # -- MMU: direct guest writes + trapped shadow syncs -----------------------

    @sensitive
    def set_pte(self, cpu, aspace: "AddressSpace", vaddr: int,
                pte: "Pte") -> None:
        cpu.charge(cpu.cost.cyc_pte_write)
        aspace.set_pte(vaddr, pte)
        if id(aspace) in self.pager.shadows:
            self.pager.sync_pte(cpu, aspace, vaddr)

    @sensitive
    def clear_pte(self, cpu, aspace: "AddressSpace", vaddr: int) -> None:
        cpu.charge(cpu.cost.cyc_pte_write)
        aspace.clear_pte(vaddr)
        if id(aspace) in self.pager.shadows:
            self.pager.sync_pte(cpu, aspace, vaddr)

    @sensitive
    def update_pte_flags(self, cpu, aspace: "AddressSpace", vaddr: int, *,
                         writable=None, present=None, cow=None) -> None:
        pte = aspace.get_pte(vaddr)
        if pte is None:
            return
        cpu.charge(cpu.cost.cyc_pte_write)
        if writable is not None:
            pte.writable = writable
        if present is not None:
            pte.present = present
        if cow is not None:
            pte.cow = cow
        if id(aspace) in self.pager.shadows:
            self.pager.sync_pte(cpu, aspace, vaddr)

    @sensitive
    def apply_pte_region(self, cpu, aspace: "AddressSpace",
                         updates: list) -> None:
        # shadow mode cannot batch: every write is an individual trap
        for vaddr, pte in updates:
            cpu.charge(cpu.cost.cyc_pte_write)
            if pte is None:
                aspace.clear_pte(vaddr)
            else:
                aspace.set_pte(vaddr, pte)
            if id(aspace) in self.pager.shadows:
                self.pager.sync_pte(cpu, aspace, vaddr)

    @sensitive
    def new_address_space(self, cpu, aspace: "AddressSpace") -> None:
        self.domain.register_aspace(aspace)
        self.pager.build(cpu, aspace)

    @sensitive
    def destroy_address_space(self, cpu, aspace: "AddressSpace") -> None:
        self.pager.drop(cpu, aspace)
        self.domain.unregister_aspace(aspace)
        aspace.destroy()
