"""Mercury — the paper's primary contribution.

Self-virtualization lets a running OS attach a full-fledged VMM underneath
itself and detach it again, on demand.  The pieces (paper section in
parentheses):

- :mod:`repro.core.vobject` — virtualization objects: function table + data
  table, reference-counted on entry/exit (§4.2, §5.3).
- :mod:`repro.core.native_vo` / :mod:`repro.core.virtual_vo` — the two VO
  implementations: direct hardware access vs. hypercalls (§5.3).
- :mod:`repro.core.precache` — pre-cached VMM warmed up at boot (§4.1).
- :mod:`repro.core.transfer` — state-transfer functions (§5.1.2).
- :mod:`repro.core.reload` — hardware state reloading (§5.1.3).
- :mod:`repro.core.accounting` — page type/count strategies (§5.1.2).
- :mod:`repro.core.switch` — the mode-switch engine (§5.1).
- :mod:`repro.core.smp` — multicore IPI rendezvous (§5.4).
- :mod:`repro.core.mercury` — the top-level controller (§4.4).
"""

from repro.core.mercury import Mercury, Mode
from repro.core.vobject import VirtualizationObject

__all__ = ["Mercury", "Mode", "VirtualizationObject"]
