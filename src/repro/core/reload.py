"""State reloading of hardware control state (§5.1.3).

When the execution mode changes, the *hardware* must be told: the page-table
base, the interrupt descriptor table, the global/local descriptor tables all
get reloaded, and the privilege level the interrupted kernel will return to
is edited in the interrupt return frame ("this is accomplished by modifying
the privileged level in the return stack of the interrupt").

Reloading must not be interrupted — it runs inside Mercury's switch
interrupt handler with interrupts disabled (the handler itself guarantees
that), and this module asserts it.

Split per-CPU: the control processor runs
:func:`reload_control_processor` (fixed VMM (de)activation cost + its own
registers); every other core runs :func:`reload_secondary` for its own
registers inside the SMP rendezvous (§5.4), so the cost parallelizes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro import faults, trace
from repro.errors import ConsistencyViolation, ReloadFailure
from repro.hw.cpu import PrivilegeLevel

if TYPE_CHECKING:
    from repro.guestos.kernel import Kernel
    from repro.hw.cpu import Cpu


def _reload_own_registers(cpu: "Cpu", kernel: "Kernel",
                          native_target: bool) -> None:
    """Reload this CPU's GDT/IDT/CR3 (must already be at an uninterruptible
    point)."""
    saved, cpu.pl = cpu.pl, PrivilegeLevel.PL0
    try:
        cpu.load_gdt(cpu.gdt)
        trace.instant(cpu.cpu_id, "reload.gdt")
        if native_target:
            # native mode: the guest IDT goes live (virtual mode leaves the
            # VMM's forwarding IDT installed by the transfer step)
            cpu.load_idt(kernel.idt)
            trace.instant(cpu.cpu_id, "reload.idt")
        current = kernel.scheduler.current
        if current is not None:
            cpu.write_cr3(current.aspace.pgd_frame)
            trace.instant(cpu.cpu_id, "reload.cr3")
        cpu.tlb.flush()
        trace.instant(cpu.cpu_id, "reload.tlb-flush")
    finally:
        cpu.pl = saved


def reload_control_processor(cpu: "Cpu", kernel: "Kernel",
                             target_kernel_pl: PrivilegeLevel) -> None:
    """The control processor's reload: VMM (de)activation bookkeeping plus
    its own register state.  Caller must hold interrupts disabled."""
    if cpu.interrupts_enabled:
        raise ConsistencyViolation(
            "state reloading entered with interrupts enabled")
    with trace.span(cpu.cpu_id, "reload.cp"):
        cpu.charge(cpu.cost.cyc_reload_fixed)
        _reload_own_registers(
            cpu, kernel,
            native_target=(target_kernel_pl == PrivilegeLevel.PL0))

        # the interrupt frame we will IRET through: return the kernel at its
        # new privilege level (§5.1.3's "privileged-level switch right after
        # a mode switch")
        if hasattr(cpu, "_iret_pl"):
            cpu._iret_pl = target_kernel_pl


def reload_secondary(cpu: "Cpu", kernel: "Kernel",
                     target_kernel_pl: PrivilegeLevel) -> None:
    """A secondary core's share of the reload, run from its rendezvous IPI
    handler."""
    if faults.fire(faults.RELOAD_SECONDARY, cpu_id=cpu.cpu_id):
        raise ReloadFailure(
            f"injected: cpu{cpu.cpu_id} failed its state reload")
    _reload_own_registers(cpu, kernel,
                          native_target=(target_kernel_pl == PrivilegeLevel.PL0))


def reload_secondary_rollback(cpu: "Cpu", kernel: "Kernel",
                              prev_idt: object = None) -> None:
    """Undo a committed secondary reload after the switch failed elsewhere.

    Like :func:`reload_secondary` but with two rollback-specific rules:

    - it never traverses the fault-injection seam (a rollback must be
      infallible, so a fault still armed at the reload site must not
      re-fire while unwinding);
    - the hardware IDT goes back to *exactly* what this CPU held before
      the failed switch — which may be the VMM's forwarding IDT, the
      guest's, or unset on an AP that never switched.  Which IDT is
      correct is decided by the control processor's IRQ-binding transfer
      (and its undo), not per secondary."""
    saved, cpu.pl = cpu.pl, PrivilegeLevel.PL0
    try:
        cpu.load_gdt(cpu.gdt)
        if prev_idt is not None:
            cpu.load_idt(prev_idt)
        else:
            cpu.idt_base = None
        current = kernel.scheduler.current
        if current is not None:
            cpu.write_cr3(current.aspace.pgd_frame)
        cpu.tlb.flush()
    finally:
        cpu.pl = saved
