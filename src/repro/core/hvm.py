"""Hardware-assisted self-virtualization (the §8 extension, implemented).

The software Mercury relocates the OS by swapping virtualization objects
and re-validating every page-table page.  With VT-x-style hardware
(:mod:`repro.hw.vtx`) the same attach becomes:

1. ``vmxon`` + fill the VMCS guest-state area (one capture — replaces the
   piecewise state transfer of §5.1.2/§5.1.3);
2. build the EPT from frame ownership (a vectorized pass — replaces the
   page type/count recompute that dominated the 0.22 ms software switch);
3. ``vmentry`` — the OS continues de-privileged, its own page tables
   untouched and still writable (EPT provides the isolation).

Detach is ``vmexit`` + ``vmxoff`` + restoring the host area.

:class:`HvmMercury` exposes the same attach/detach surface as
:class:`~repro.core.mercury.Mercury`, so the ablation bench can compare
the two switch implementations directly.  The guest kernel keeps using a
*native* VO while attached — exactly the OS-transparency gain the paper
anticipated ("more clear and independent to OS evolutions").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.native_vo import NativeVO
from repro.errors import ModeSwitchError
from repro.hw.cpu import PrivilegeLevel
from repro.hw.vtx import EptTable, Vmcs, VtxUnit

if TYPE_CHECKING:
    from repro.guestos.kernel import Kernel
    from repro.hw.cpu import Cpu
    from repro.hw.machine import Machine


class HvmMode(enum.Enum):
    NATIVE = "native"
    GUEST = "guest"         # running de-privileged under VT-x + EPT


@dataclass
class HvmSwitchRecord:
    """One hardware-assisted mode switch, RDTSC-measured like §7.4."""

    direction: str          # "to_guest" | "to_native"
    start_tsc: int
    end_tsc: int
    ept_frames: int = 0

    @property
    def cycles(self) -> int:
        return self.end_tsc - self.start_tsc

    def us(self, freq_mhz: int = 3000) -> float:
        return self.cycles / freq_mhz

    def ms(self, freq_mhz: int = 3000) -> float:
        return self.us(freq_mhz) / 1000.0


class HvmVO(NativeVO):
    """The VO an HVM guest uses: structurally the *native* object — direct
    page-table writes, direct descriptor loads — because EPT isolation and
    VMCS interception make paravirtual rewriting unnecessary.  Only the
    exit-controlled operations pay a VM exit."""

    mode_name = "hvm-guest"

    def __init__(self, machine: "Machine", vtx: VtxUnit):
        super().__init__(machine)
        self.vtx = vtx
        self.data.kernel_segment_dpl = 0  # the guest *believes* it is PL0

    def write_cr3(self, cpu, pgd_frame: int) -> None:
        # CR3 writes are exit-controlled: one vmexit + emulated load
        if self.vtx.current_vmcs is not None:
            self.vtx.vmexit("write_cr3")
            saved, cpu.pl = cpu.pl, PrivilegeLevel.PL0
            try:
                cpu.write_cr3(pgd_frame)
            finally:
                cpu.pl = saved
            self.vtx.current_vmcs.vmentries += 1
            cpu.charge(900)  # the re-entry
        else:
            super().write_cr3(cpu, pgd_frame)


class HvmMercury:
    """Self-virtualization through VT-x + EPT instead of paravirt."""

    def __init__(self, machine: "Machine"):
        self.machine = machine
        self.vtx_units = [VtxUnit(c) for c in machine.cpus]
        self.vmcs = Vmcs(vm_id=1)
        self.native_vo = NativeVO(machine)
        self.hvm_vo: Optional[HvmVO] = None
        self.ept: Optional[EptTable] = None
        self.kernel: Optional["Kernel"] = None
        self.mode = HvmMode.NATIVE
        self.records: list[HvmSwitchRecord] = []

    def create_kernel(self, name: str = "hvm-linux", owner_id: int = 0,
                      image_pages: int = 96) -> "Kernel":
        from repro.guestos.kernel import Kernel
        if self.kernel is not None:
            raise ModeSwitchError("HvmMercury already has a kernel")
        self.kernel = Kernel(self.machine, self.native_vo,
                             owner_id=owner_id, name=name)
        self.kernel.boot(image_pages=image_pages)
        self.ept = EptTable(self.machine.memory, owner_id)
        self.hvm_vo = HvmVO(self.machine, self.vtx_units[0])
        return self.kernel

    # ------------------------------------------------------------------

    def attach(self, cpu: Optional["Cpu"] = None) -> HvmSwitchRecord:
        """Native -> guest mode, hardware-assisted."""
        if self.mode is not HvmMode.NATIVE:
            raise ModeSwitchError(f"attach from {self.mode}")
        cpu = cpu or self.machine.boot_cpu
        start = cpu.rdtsc()

        # the switch runs in (simulated) interrupt context at PL0, exactly
        # like the software engine's handler
        unit = self.vtx_units[cpu.cpu_id]
        saved_pl, cpu.pl = cpu.pl, PrivilegeLevel.PL0
        try:
            unit.vmxon()
            # 1. one capture into the VMCS replaces piecewise transfer+reload
            self.vmcs.capture_guest(cpu)
            self.vmcs.guest.privilege_level = int(saved_pl)
            # 2. EPT build replaces the page type/count recompute
            frames = self.ept.build(cpu)
            # 3. enter the guest
            unit.vmentry(self.vmcs, self.ept)
        finally:
            cpu.pl = saved_pl
        self.kernel.vo = self.hvm_vo
        self.mode = HvmMode.GUEST

        rec = HvmSwitchRecord("to_guest", start, cpu.rdtsc(),
                              ept_frames=frames)
        self.records.append(rec)
        return rec

    def detach(self, cpu: Optional["Cpu"] = None) -> HvmSwitchRecord:
        """Guest -> native mode."""
        if self.mode is not HvmMode.GUEST:
            raise ModeSwitchError(f"detach from {self.mode}")
        cpu = cpu or self.machine.boot_cpu
        start = cpu.rdtsc()
        unit = self.vtx_units[cpu.cpu_id]
        saved_pl, cpu.pl = cpu.pl, PrivilegeLevel.PL0
        try:
            unit.vmexit("detach")
            unit.vmxoff()
        finally:
            cpu.pl = saved_pl
        self.kernel.vo = self.native_vo
        self.mode = HvmMode.NATIVE
        rec = HvmSwitchRecord("to_native", start, cpu.rdtsc())
        self.records.append(rec)
        return rec

    # ------------------------------------------------------------------

    def mean_switch_us(self, direction: str) -> Optional[float]:
        recs = [r for r in self.records if r.direction == direction]
        if not recs:
            return None
        freq = self.machine.config.cost.freq_mhz
        return sum(r.us(freq) for r in recs) / len(recs)

    def enable_dirty_logging(self) -> None:
        """Write-protect every guest frame in the EPT (migration's dirty
        tracking without touching guest page tables — the EPT benefit)."""
        if self.ept is None:
            raise ModeSwitchError("no EPT yet")
        import numpy as np
        self.ept.writable[:] = False

    def dirty_frames_and_reset(self) -> list[int]:
        """Frames whose protection tripped since logging was enabled
        (simulated via write-enable on first touch)."""
        import numpy as np
        owned = self.machine.memory.owner_np == self.ept.domain_id
        dirty = np.flatnonzero(owned & self.ept.writable)
        self.ept.writable[:] = False
        return [int(f) for f in dirty]
