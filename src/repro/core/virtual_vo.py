"""Virtual-mode virtualization object: hypercalls into the attached VMM.

The de-privileged twin of :class:`~repro.core.native_vo.NativeVO` (§5.3):
every sensitive operation becomes a hypercall (or relies on trap-and-
emulate for the non-performance-critical cases).  The kernel runs at PL1;
the VMM validates everything.

Two details matter for fidelity:

- **Unpinned page tables are plain memory.**  A new address space under
  construction (fork building the child's tables) is written directly at
  native cost; only when it is *pinned* (``new_address_space``) does the
  VMM validate it, and from then on every update must go through
  ``mmu_update``.  This is exactly Xen's lifecycle and the reason fork's
  slowdown comes from COW re-protection + teardown rather than child
  construction.
- **Syscalls pay a de-privileging tax** (§3.2.1): entry/exit bounce
  through the VMM's fast path and the segment fixups, charged here.
- **Lazy-MMU batching.**  Xen-Linux 2.6.16 brackets bulk page-table work
  (fork's COW sweep, exit's teardown, mmap/munmap) in a *lazy MMU mode*:
  PTE updates are queued per CPU and issued as one multi-entry
  ``mmu_update`` multicall, amortizing the hypercall trap.  The queue is
  flushed at region end and — because stale tables are never allowed to be
  *observed* — at every CR3 load, TLB flush, fault entry, pin/unpin, and
  before a mode switch commits (the flush-before-commit invariant).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.vobject import VirtualizationObject, sensitive
from repro.errors import HypercallError
from repro.hw.cpu import PrivilegeLevel
from repro.params import PAGE_SIZE

if TYPE_CHECKING:
    from repro.core.accounting import MmuAccounting
    from repro.hw.devices import BlockRequest, Packet
    from repro.hw.interrupts import Idt
    from repro.hw.machine import Machine
    from repro.hw.paging import AddressSpace, Pte
    from repro.vmm.domain import Domain
    from repro.vmm.hypervisor import Hypervisor


class _LazyMmuState:
    """One CPU's lazy-MMU queue: region nesting depth, the ordered update
    queue, and a read-back index so in-region read-modify-write sees its
    own queued writes."""

    __slots__ = ("depth", "queue", "pending")

    def __init__(self):
        self.depth = 0
        #: ordered ``(aspace, vaddr, Pte-or-None)`` updates, exactly the
        #: shape ``mmu_update`` consumes
        self.queue: list = []
        #: ``(id(aspace), vaddr) -> latest queued Pte-or-None``
        self.pending: dict = {}


class VirtualVO(VirtualizationObject):
    """VO implementation for an OS running on the VMM."""

    mode_name = "virtual"
    is_virtual = True

    def __init__(self, machine: "Machine", vmm: "Hypervisor", domain: "Domain",
                 mmu_log: Optional["MmuAccounting"] = None):
        super().__init__()
        self.machine = machine
        self.vmm = vmm
        self.domain = domain
        self.data.kernel_segment_dpl = 1
        #: per-CPU lazy-MMU queues, keyed by cpu_id
        self._lazy: dict[int, _LazyMmuState] = {}
        if mmu_log is None:
            from repro.core.accounting import MmuAccounting
            mmu_log = MmuAccounting()  # standalone VO: marks go nowhere
        #: dirty-root tracker shared with the NativeVO.  Pinned tables are
        #: maintained live by the VMM, but *unpinned* tables are plain
        #: memory — direct writes mark their root so the invariant "every
        #: structural PT write dirties its root" holds in both modes.
        self.mmu_log = mmu_log
        self._dirty_roots = mmu_log.dirty

    # -- helpers -----------------------------------------------------------

    def _hcall(self, cpu, name: str, *args):
        return self.vmm.hypercall(cpu, self.domain, name, *args)

    def _pinned(self, aspace: "AddressSpace") -> bool:
        return self.vmm.page_info.pinned_map[aspace.pgd.frame] != 0

    # -- lazy-MMU batching --------------------------------------------------

    def _lazy_state(self, cpu) -> _LazyMmuState:
        st = self._lazy.get(cpu.cpu_id)
        if st is None:
            st = self._lazy[cpu.cpu_id] = _LazyMmuState()
        return st

    def lazy_mmu_begin(self, cpu) -> None:
        self._lazy_state(cpu).depth += 1

    def lazy_mmu_end(self, cpu) -> None:
        st = self._lazy_state(cpu)
        if st.depth == 0:
            return  # region was retired by a mode-switch drain
        st.depth -= 1
        if st.depth == 0:
            self._flush(cpu, st)

    def lazy_mmu_flush(self, cpu) -> None:
        self._flush(cpu, self._lazy_state(cpu))

    def lazy_mmu_drain(self, cpu) -> None:
        # the mode-switch commit path: every CPU's queue is issued by the
        # control processor (secondaries are parked in the rendezvous) and
        # open regions are retired — their lazy_mmu_end becomes a no-op
        for st in self._lazy.values():
            self._flush(cpu, st)
            st.depth = 0

    def lazy_mmu_pending(self) -> int:
        return sum(len(st.queue) for st in self._lazy.values())

    def _flush(self, cpu, st: _LazyMmuState) -> None:
        if not st.queue:
            return
        queue, st.queue, st.pending = st.queue, [], {}
        batch = cpu.cost.mmu_batch_size
        for i in range(0, len(queue), batch):
            try:
                self._hcall(cpu, "mmu_update", queue[i:i + batch])
            except HypercallError:
                # a transient refusal applies nothing from the batch —
                # restore it (plus the unsent remainder) so the next flush
                # point retries instead of silently dropping PTE updates
                rest = queue[i:] + st.queue
                st.queue = rest
                st.pending = {(id(a), v): p for a, v, p in rest}
                raise

    def _queue_update(self, cpu, st: _LazyMmuState, aspace, vaddr: int,
                      pte) -> None:
        st.queue.append((aspace, vaddr, pte))
        st.pending[(id(aspace), vaddr)] = pte

    # -- sensitive CPU operations -------------------------------------------

    @sensitive
    def write_cr3(self, cpu, pgd_frame: int) -> None:
        self.lazy_mmu_flush(cpu)
        aspace = self.domain.aspace_by_pgd.get(pgd_frame)
        if aspace is None:
            raise HypercallError(
                f"CR3 load of unregistered PGD frame {pgd_frame}")
        if not self._pinned(aspace):
            self._hcall(cpu, "mmuext_op", "pin_table", aspace)
        self._hcall(cpu, "mmuext_op", "new_baseptr", aspace)

    @sensitive
    def load_idt(self, cpu, idt: "Idt") -> None:
        # the hardware IDT belongs to the VMM; the guest registers handlers
        table = {vec: entry.handler for vec, entry in idt.gates.items()}
        self._hcall(cpu, "set_trap_table", table)
        self.data.idt = idt

    @sensitive
    def set_segment_dpl(self, cpu, dpl: int) -> None:
        self._hcall(cpu, "set_gdt", max(dpl, 1))  # VMM refuses PL0 segments
        self.data.kernel_segment_dpl = max(dpl, 1)

    @sensitive
    def irq_disable(self, cpu) -> None:
        # virtual IF: a cheap write to the shared-info page, no hypercall
        cpu.charge(2)
        vcpu = self._vcpu(cpu)
        if vcpu is not None:
            vcpu.saved_if = False

    @sensitive
    def irq_enable(self, cpu) -> None:
        cpu.charge(2)
        vcpu = self._vcpu(cpu)
        if vcpu is not None:
            vcpu.saved_if = True

    @sensitive
    def stack_switch(self, cpu, to_task) -> None:
        self.lazy_mmu_flush(cpu)
        # beyond the hypercall itself, a Xen guest context switch updates
        # descriptors and takes segment/FPU trap storms
        cpu.charge(cpu.cost.cyc_virt_ctx_extra)
        self._hcall(cpu, "stack_switch", id(to_task))

    # -- kernel entry/exit ----------------------------------------------------

    @sensitive
    def kernel_entry(self, cpu) -> None:
        # every syscall passes through here: direct clock add (constant cost)
        cpu.clock.cycles += (cpu.cost.cyc_kernel_entry
                             + cpu.cost.cyc_syscall_virt_extra)
        cpu.set_privilege(PrivilegeLevel.PL1)

    @sensitive
    def kernel_exit(self, cpu) -> None:
        cpu.clock.cycles += cpu.cost.cyc_kernel_exit + cpu.cost.cyc_iret_fixup
        cpu.set_privilege(PrivilegeLevel.PL3)

    @sensitive
    def fault_entry(self, cpu) -> None:
        # the fault handler will read page tables — queued updates must be
        # visible before it runs
        self.lazy_mmu_flush(cpu)
        # fault -> VMM -> reflected into the guest handler (the secondary
        # cache/iTLB damage is charged on the fixup paths in vmem)
        cpu.charge(cpu.cost.cyc_fault_hw + cpu.cost.cyc_trap_roundtrip)
        cpu.set_privilege(PrivilegeLevel.PL1)

    # -- sensitive memory operations --------------------------------------------

    @sensitive
    def set_pte(self, cpu, aspace: "AddressSpace", vaddr: int, pte: "Pte") -> None:
        if self._pinned(aspace):
            st = self._lazy_state(cpu)
            if st.depth > 0:
                self._queue_update(cpu, st, aspace, vaddr, pte)
            else:
                self._hcall(cpu, "update_va_mapping", aspace, vaddr, pte)
        else:
            # unpinned tables are plain memory: direct write, validated later
            cpu.charge(cpu.cost.cyc_pte_write)
            aspace.set_pte(vaddr, pte)
            self._dirty_roots.add(aspace.pgd.frame)

    @sensitive
    def clear_pte(self, cpu, aspace: "AddressSpace", vaddr: int) -> None:
        if self._pinned(aspace):
            st = self._lazy_state(cpu)
            if st.depth > 0:
                self._queue_update(cpu, st, aspace, vaddr, None)
            else:
                self._hcall(cpu, "update_va_mapping", aspace, vaddr, None)
        else:
            cpu.charge(cpu.cost.cyc_pte_write)
            aspace.clear_pte(vaddr)
            self._dirty_roots.add(aspace.pgd.frame)

    @sensitive
    def update_pte_flags(self, cpu, aspace: "AddressSpace", vaddr: int, *,
                         writable=None, present=None, cow=None) -> None:
        st = self._lazy_state(cpu)
        in_region = st.depth > 0 and self._pinned(aspace)
        if in_region:
            # read-modify-write must see this region's own queued writes
            key = (id(aspace), vaddr)
            pte = st.pending[key] if key in st.pending else aspace.get_pte(vaddr)
        else:
            pte = aspace.get_pte(vaddr)
        if pte is None:
            return
        new = pte.clone()
        if writable is not None:
            new.writable = writable
        if present is not None:
            new.present = present
        if cow is not None:
            new.cow = cow
        if in_region:
            self._queue_update(cpu, st, aspace, vaddr, new)
        elif self._pinned(aspace):
            self._hcall(cpu, "update_va_mapping", aspace, vaddr, new)
        else:
            cpu.charge(cpu.cost.cyc_pte_write)
            aspace.set_pte(vaddr, new)
            self._dirty_roots.add(aspace.pgd.frame)
        cpu.tlb.invalidate(vaddr // PAGE_SIZE)

    @sensitive
    def apply_pte_region(self, cpu, aspace: "AddressSpace", updates: list) -> None:
        if not self._pinned(aspace):
            self._dirty_roots.add(aspace.pgd.frame)
            cpu.charge(cpu.cost.cyc_pte_write * len(updates))
            set_pte = aspace.set_pte
            clear_pte = aspace.clear_pte
            for vaddr, pte in updates:
                if pte is None:
                    clear_pte(vaddr)
                else:
                    set_pte(vaddr, pte)
            return
        st = self._lazy_state(cpu)
        if st.depth > 0:
            for vaddr, pte in updates:
                self._queue_update(cpu, st, aspace, vaddr, pte)
            return
        # pinned, no region open: batched mmu_update multicalls
        batch = cpu.cost.mmu_batch_size
        for i in range(0, len(updates), batch):
            chunk = [(aspace, vaddr, pte)
                     for vaddr, pte in updates[i:i + batch]]
            self._hcall(cpu, "mmu_update", chunk)

    @sensitive
    def new_address_space(self, cpu, aspace: "AddressSpace") -> None:
        self.lazy_mmu_flush(cpu)
        self.domain.register_aspace(aspace)
        self._hcall(cpu, "mmuext_op", "pin_table", aspace)

    @sensitive
    def destroy_address_space(self, cpu, aspace: "AddressSpace") -> None:
        # flush before unpin: queued clears applied after _unaccount_leaf
        # would double-count in the PageInfoTable
        self.lazy_mmu_flush(cpu)
        self.mmu_log.on_destroy_root(aspace)
        if self._pinned(aspace):
            self._hcall(cpu, "mmuext_op", "unpin_table", aspace)
        self.domain.unregister_aspace(aspace)
        aspace.destroy()

    @sensitive
    def flush_tlb(self, cpu) -> None:
        self.lazy_mmu_flush(cpu)
        self._hcall(cpu, "mmuext_op", "tlb_flush_local")

    @sensitive
    def invlpg(self, cpu, vaddr: int) -> None:
        self.lazy_mmu_flush(cpu)
        self._hcall(cpu, "mmuext_op", "invlpg_local", None, vaddr)

    # -- sensitive I/O operations ---------------------------------------------

    @sensitive
    def bind_irq(self, cpu, line: str, cpu_id: int, vector: int) -> None:
        # only the driver domain may touch real interrupt routing
        if not self.domain.is_driver_domain:
            raise HypercallError(
                f"domain {self.domain.domain_id} has no direct irq access")
        cpu.charge(cpu.cost.cyc_event_channel)
        self.machine.intc.bind_line(line, cpu_id, vector)
        self.data.irq_bindings[line] = (cpu_id, vector)

    @sensitive
    def disk_submit(self, cpu, req: "BlockRequest") -> None:
        if not self.domain.is_driver_domain:
            raise HypercallError(
                f"domain {self.domain.domain_id} has no direct disk access")
        # direct device access, but completion will arrive VMM-mediated
        cpu.charge(cpu.cost.cyc_disk_submit)
        self.machine.disk.submit(req)

    @sensitive
    def net_transmit(self, cpu, pkt: "Packet") -> None:
        if not self.domain.is_driver_domain:
            raise HypercallError(
                f"domain {self.domain.domain_id} has no direct NIC access")
        # per-packet cost plus the VMM-mediated TX-completion interrupt
        # (event channel + hypervisor delivery latency), the dominant
        # per-packet tax — one direct clock add on this hot path
        cost = cpu.cost
        cpu.clock.cycles += (cost.cyc_net_per_packet
                             + cost.cyc_net_copy_per_kb
                             * max(1, pkt.size_bytes // 1024)
                             + cost.cyc_event_channel
                             + cost.cyc_vmm_irq_latency)
        self.machine.nic.transmit(pkt)

    # ------------------------------------------------------------------

    def _vcpu(self, cpu):
        for vcpu in self.domain.vcpus:
            if vcpu.vcpu_id == cpu.cpu_id:
                return vcpu
        return None
