"""Mercury — the top-level self-virtualization controller (§4.4).

One :class:`Mercury` instance per machine.  It owns the pre-cached VMM, the
native/virtual VO pair, and the mode-switch engine, and it exposes the
operations the usage scenarios (§6) are built from:

- :meth:`attach` / :meth:`detach` — move the OS between native and
  partial-virtual mode (VMM underneath, OS as driver domain);
- :meth:`full_virtualize` / :meth:`departial` — prepare the OS for being
  treated as a migratable guest (full-virtual mode);
- :meth:`host_guest` — run an unmodified para-virtual guest OS on top of
  the self-virtualized OS (the M-U configuration of §7).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

from repro.core.accounting import (AccountingStrategy, ActiveAccountant,
                                   MmuAccounting)
from repro.core.native_vo import NativeVO
from repro.core.precache import PrecacheInfo, precache_vmm
from repro.core.switch import Direction, ModeSwitchEngine, SwitchRecord
from repro.core.virtual_vo import VirtualVO
from repro.errors import ModeSwitchError
from repro.guestos.kernel import Kernel
from repro.guestos.splitio import (connect_split_balloon, connect_split_block,
                                   connect_split_net)

if TYPE_CHECKING:
    from repro.hw.cpu import Cpu
    from repro.hw.machine import Machine
    from repro.vmm.domain import Domain


class Mode(enum.Enum):
    """Execution modes of a self-virtualized OS (§6 terminology)."""

    NATIVE = "native"
    #: VMM attached; the OS is the driver domain and may host other guests
    PARTIAL_VIRTUAL = "partial-virtual"
    #: VMM attached and the OS prepared as a migratable guest
    FULL_VIRTUAL = "full-virtual"


class PagingMode(enum.Enum):
    """Physical-address handling in virtual mode (§3.2.2).

    DIRECT is the paper's choice: guest page tables are installed in the
    MMU read-only after validation.  SHADOW is the alternative it avoided:
    the VMM runs the hardware on translated copies — implemented here so
    the design choice can be measured (ablation A4)."""

    DIRECT = "direct"
    SHADOW = "shadow"


class Mercury:
    """Self-virtualization support for one machine + kernel."""

    def __init__(self, machine: "Machine",
                 strategy: AccountingStrategy = AccountingStrategy.RECOMPUTE,
                 paging: PagingMode = PagingMode.DIRECT,
                 charge_boot_time: bool = False,
                 incremental_attach: bool = True):
        self.machine = machine
        self.strategy = strategy
        self.paging = paging
        #: shadow pager (created on first attach when paging=SHADOW)
        self.pager = None

        # §4.1: warm the VMM up at boot and keep it resident
        self.vmm, self.precache_info = precache_vmm(
            machine, charge_boot_time=charge_boot_time)

        accountant = None
        if strategy is AccountingStrategy.ACTIVE:
            accountant = ActiveAccountant(self.vmm.page_info)
        self.accountant = accountant

        #: dirty-root tracker for the incremental attach recompute (§5.1.2
        #: sharpened); ``incremental_attach=False`` reproduces the paper's
        #: full recompute on every attach
        self.mmu_log = MmuAccounting() if incremental_attach else None

        self.native_vo = NativeVO(machine, accountant=accountant,
                                  mmu_log=self.mmu_log)
        self.virtual_vo: Optional[VirtualVO] = None
        self.kernel: Optional[Kernel] = None
        self.domain: Optional["Domain"] = None
        self.engine = ModeSwitchEngine(self)
        self.mode = Mode.NATIVE
        self._guests: list[Kernel] = []
        #: split-driver backends serving hosted guests (watchdog scan set)
        self._backends: list = []
        #: ``owner_id -> (guest_addr, num_vcpus, has_balloon, mem_floor)`` —
        #: enough to re-host a guest after a VMM microreboot (the old
        #: Domain dies with the VMM; the *current* reservation is read back
        #: from the owner column, so a ballooned guest re-hosts at its
        #: resized footprint, not its original one)
        self._guest_meta: dict[int, tuple[str, int, bool, int]] = {}
        #: ``owner_id -> (BalloonFront, BalloonBack)`` for every connected
        #: balloon (hosted guests and, for dom0 ballooning, the kernel)
        self._balloons: dict = {}
        #: installed by repro.watchdog.Watchdog / core.recovery.RecoveryManager
        self.watchdog = None
        self.recovery = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def create_kernel(self, name: str = "mercury-linux", owner_id: int = 0,
                      boot: bool = True, image_pages: int = 96) -> Kernel:
        """Build the self-virtualizable kernel on this machine."""
        if self.kernel is not None:
            raise ModeSwitchError("Mercury already has a kernel")
        self.kernel = Kernel(self.machine, self.native_vo, owner_id=owner_id,
                             name=name)
        if boot:
            self.kernel.boot(image_pages=image_pages)
        self.engine.install_handlers()
        return self.kernel

    def adopt_kernel(self, kernel: Kernel) -> None:
        """Adopt an externally-built kernel (it must use our native VO)."""
        if kernel.vo is not self.native_vo:
            raise ModeSwitchError("adopted kernel must run on Mercury's native VO")
        self.kernel = kernel
        self.engine.install_handlers()

    def ensure_domain(self) -> "Domain":
        """The driver domain backing the self-virtualized OS (created on
        first attach, with the kernel's frame-owner identity)."""
        if self.domain is None:
            self.domain = self.vmm.create_domain(
                self.kernel.name, num_vcpus=len(self.machine.cpus),
                is_driver_domain=True, domain_id=self.kernel.owner_id)
            self.domain.guest = self.kernel
            if self.paging is PagingMode.SHADOW:
                from repro.core.shadow_vo import ShadowVirtualVO
                from repro.vmm.shadow import ShadowPager
                self.pager = ShadowPager(self.machine.memory,
                                         self.kernel.owner_id)
                self.virtual_vo = ShadowVirtualVO(self.machine, self.vmm,
                                                  self.domain, self.pager)
            else:
                self.virtual_vo = VirtualVO(self.machine, self.vmm,
                                            self.domain,
                                            mmu_log=self.mmu_log)
        return self.domain

    # ------------------------------------------------------------------
    # mode switching
    # ------------------------------------------------------------------

    def attach(self, cpu: Optional["Cpu"] = None,
               wait: bool = True) -> Optional[SwitchRecord]:
        """Native → partial-virtual: attach the pre-cached VMM underneath
        the running OS.  Returns the switch record once committed (drains
        the retry timer if ``wait``)."""
        if self.mode is not Mode.NATIVE:
            raise ModeSwitchError(f"attach from mode {self.mode}")
        before = len(self.engine.records)
        self.engine.request(Direction.TO_VIRTUAL, cpu)
        if wait:
            self._drain_until_committed(before)
        if len(self.engine.records) > before:
            self.mode = Mode.PARTIAL_VIRTUAL
            return self.engine.records[-1]
        return None

    def detach(self, cpu: Optional["Cpu"] = None,
               wait: bool = True) -> Optional[SwitchRecord]:
        """Partial-virtual → native: detach the VMM, OS back on bare
        hardware."""
        if self.mode is Mode.NATIVE:
            raise ModeSwitchError("detach while already native")
        if self._guests:
            raise ModeSwitchError(
                f"cannot detach while hosting {len(self._guests)} guest(s)")
        before = len(self.engine.records)
        self.engine.request(Direction.TO_NATIVE, cpu)
        if wait:
            self._drain_until_committed(before)
        if len(self.engine.records) > before:
            self.mode = Mode.NATIVE
            return self.engine.records[-1]
        return None

    def full_virtualize(self, cpu: Optional["Cpu"] = None) -> None:
        """Enter full-virtual mode: attach if needed, then quiesce the OS
        as a migratable guest (flush dirty file state; device frontends are
        re-created post-migration, §5.2)."""
        if self.mode is Mode.NATIVE:
            self.attach(cpu)
        cpu = cpu or self.machine.boot_cpu
        self.kernel.fs.sync_all(cpu)
        self.mode = Mode.FULL_VIRTUAL

    def departial(self) -> None:
        """Leave full-virtual mode back to partial-virtual (after a
        migration returns, for instance)."""
        if self.mode is not Mode.FULL_VIRTUAL:
            raise ModeSwitchError(f"departial from mode {self.mode}")
        self.mode = Mode.PARTIAL_VIRTUAL

    def _drain_until_committed(self, before: int,
                               max_rounds: int = 10_000) -> None:
        """Let the retry timer fire until the pending switch commits."""
        for _ in range(max_rounds):
            if len(self.engine.records) > before:
                return
            if self.machine.clock.next_deadline() is None:
                return  # nothing pending: request must have failed hard
            self.machine.clock.drain_until_idle(max_events=1)
            self.machine.poll()

    # ------------------------------------------------------------------
    # hosting unmodified guests (M-U)
    # ------------------------------------------------------------------

    def host_guest(self, name: str = "domU", owner_id: Optional[int] = None,
                   image_pages: int = 96, num_vcpus: int = 1,
                   guest_addr: Optional[str] = None,
                   mem_pages: Optional[int] = None, mem_floor: int = 0,
                   balloon: bool = False,
                   balloon_pool: Optional[list] = None) -> Kernel:
        """Create and boot an unmodified Xen-Linux guest on top of the
        self-virtualized OS (which serves as its driver domain).

        ``mem_pages`` (or ``balloon=True``) makes the guest's reservation
        elastic: a balloon pair is connected, the reservation is topped up
        to ``mem_pages`` with cold pool frames, and the elastic controller
        may reclaim it down to ``mem_floor``.  ``balloon_pool`` seeds the
        frontend pool (the re-host path uses it)."""
        if self.mode is Mode.NATIVE:
            raise ModeSwitchError("host_guest requires an attached VMM")
        if owner_id is None:
            owner_id = max([d for d in self.vmm.domains] + [0]) + 1
        domain = self.vmm.create_domain(name, num_vcpus=num_vcpus,
                                        domain_id=owner_id)
        guest_vo = VirtualVO(self.machine, self.vmm, domain)
        guest = Kernel(self.machine, guest_vo, owner_id=owner_id, name=name,
                       has_devices=False)
        domain.guest = guest
        addr = guest_addr or f"{self.machine.nic.addr}:u{owner_id}"
        _, blk_back = connect_split_block(guest, self.kernel, self.vmm)
        _, net_back = connect_split_net(guest, self.kernel, self.vmm, addr)
        self._backends.extend([blk_back, net_back])
        has_balloon = balloon or mem_pages is not None
        self._guest_meta[owner_id] = (addr, num_vcpus, has_balloon, mem_floor)
        guest.boot(image_pages=image_pages)
        self._guests.append(guest)
        if has_balloon:
            self._connect_balloon_for(guest, domain, mem_pages, mem_floor,
                                      balloon_pool)
        return guest

    def _connect_balloon_for(self, guest: Kernel, domain: "Domain",
                             mem_pages: Optional[int], mem_floor: int,
                             pool: Optional[list] = None) -> None:
        """Wire a balloon pair for ``guest`` and establish its reservation
        ledger from the frames it actually owns."""
        mmu_log = self.mmu_log if guest is self.kernel else None
        front, back = connect_split_balloon(guest, self.kernel, self.vmm,
                                            mmu_log=mmu_log, pool=pool)
        self._backends.append(back)
        self._balloons[guest.owner_id] = (front, back)
        domain.mem_floor = mem_floor
        owned = len(self.machine.memory.frames_owned_by(guest.owner_id))
        if mem_pages is not None and mem_pages > owned:
            front.fill_pool(guest.boot_cpu, mem_pages - owned)
            owned = mem_pages
        domain.mem_pages = owned

    def connect_balloon(self, mem_pages: Optional[int] = None,
                        mem_floor: int = 0):
        """Dom0 ballooning: make the self-virtualized OS's own reservation
        elastic.  The kernel is its own driver domain, so front and back
        both live in dom0 — exactly Xen's arrangement.  Returns the
        ``(front, back)`` pair."""
        if self.mode is Mode.NATIVE:
            raise ModeSwitchError("connect_balloon requires an attached VMM")
        domain = self.ensure_domain()
        self._connect_balloon_for(self.kernel, domain, mem_pages, mem_floor)
        return self._balloons[self.kernel.owner_id]

    @property
    def balloons(self) -> dict:
        return dict(self._balloons)

    def shutdown_guest(self, guest: Kernel) -> None:
        if guest not in self._guests:
            raise ModeSwitchError("unknown guest")
        self._guests.remove(guest)
        pair = self._balloons.pop(guest.owner_id, None)
        if pair is not None and pair[1] in self._backends:
            self._backends.remove(pair[1])
        domain = self.vmm.domains.get(guest.owner_id)
        if domain is not None:
            self.vmm.destroy_domain(domain)

    @property
    def guests(self) -> list[Kernel]:
        return list(self._guests)

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------

    @property
    def switch_records(self) -> list[SwitchRecord]:
        return self.engine.records

    def mean_switch_us(self, direction: Direction) -> Optional[float]:
        recs = [r for r in self.engine.records if r.direction is direction]
        if not recs:
            return None
        freq = self.machine.config.cost.freq_mhz
        return sum(r.us(freq) for r in recs) / len(recs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Mercury(mode={self.mode.value}, strategy={self.strategy.value}, "
                f"switches={len(self.engine.records)})")
