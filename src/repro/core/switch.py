"""The mode-switch engine (§5.1): interrupt-driven attach/detach.

A switch request raises one of the two dedicated self-virtualization
vectors (§5.1.3: "Mercury adds two interrupt handlers for mode switches").
The handler:

1. checks the VO reference count (§5.1.1) — if some CPU is inside
   virtualization-sensitive code the switch cannot commit, so a retry timer
   re-raises the request every 10 ms until the count reaches zero;
2. disables interrupts, runs the state-transfer functions (§5.1.2) and the
   hardware state reload (§5.1.3) — on SMP machines under the IPI
   rendezvous (§5.4);
3. swaps the kernel's VO pointer (§4.2's "relocation ... by changing the
   object pointer") and activates/deactivates the pre-cached VMM;
4. measures its own duration with RDTSC, exactly as §7.4 does.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core.accounting import AccountingStrategy
from repro.core.reload import reload_control_processor, reload_secondary
from repro.core.smp import RendezvousResult, SmpCoordinator
from repro.core import transfer
from repro.errors import ModeSwitchError, SwitchBusy
from repro.hw.cpu import PrivilegeLevel
from repro.hw.interrupts import VEC_SV_ATTACH, VEC_SV_DETACH

if TYPE_CHECKING:
    from repro.core.mercury import Mercury
    from repro.hw.cpu import Cpu

#: retry period for a busy switch (§5.1.1: "every time interval (e.g.,
#: every 10 ms)")
RETRY_PERIOD_MS = 10


class Direction(enum.Enum):
    TO_VIRTUAL = "to_virtual"
    TO_NATIVE = "to_native"


@dataclass
class SwitchRecord:
    """One committed mode switch, RDTSC-measured."""

    direction: Direction
    start_tsc: int
    end_tsc: int
    pt_pages: int = 0
    retries: int = 0
    rendezvous: Optional[RendezvousResult] = None

    @property
    def cycles(self) -> int:
        return self.end_tsc - self.start_tsc

    def us(self, freq_mhz: int = 3000) -> float:
        return self.cycles / freq_mhz

    def ms(self, freq_mhz: int = 3000) -> float:
        return self.us(freq_mhz) / 1000.0


class ModeSwitchEngine:
    """Owns the switch interrupt handlers and the commit protocol."""

    def __init__(self, mercury: "Mercury"):
        self.mercury = mercury
        self.machine = mercury.machine
        self.smp = SmpCoordinator(self.machine)
        self.records: list[SwitchRecord] = []
        self.pending_retries = 0
        self.failed_attempts = 0

    # ------------------------------------------------------------------
    # handler installation
    # ------------------------------------------------------------------

    def install_handlers(self) -> None:
        """Register the attach vector in the guest IDT (taken in native
        mode) and the detach vector in the VMM's permanent gates (taken in
        virtual mode, where the hardware IDT belongs to the VMM —
        the VO-assistant of §4.4)."""
        kernel = self.mercury.kernel
        kernel.idt.set_gate(VEC_SV_ATTACH, self._attach_handler,
                            handler_pl=0, name="sv-attach")
        self.mercury.vmm.extra_gates[VEC_SV_DETACH] = self._detach_handler

    # ------------------------------------------------------------------
    # request entry points
    # ------------------------------------------------------------------

    def request(self, direction: Direction, cpu: Optional["Cpu"] = None) -> None:
        """Raise the switch interrupt; the handler does the rest when the
        machine polls."""
        cpu = cpu or self.machine.boot_cpu
        vector = (VEC_SV_ATTACH if direction is Direction.TO_VIRTUAL
                  else VEC_SV_DETACH)
        self.machine.intc.raise_vector(cpu.cpu_id, vector)
        self.machine.poll()

    # ------------------------------------------------------------------
    # interrupt handlers
    # ------------------------------------------------------------------

    def _attach_handler(self, cpu: "Cpu", vector: int) -> None:
        self._handle(cpu, Direction.TO_VIRTUAL)

    def _detach_handler(self, cpu: "Cpu", vector: int) -> None:
        self._handle(cpu, Direction.TO_NATIVE)

    def _handle(self, cpu: "Cpu", direction: Direction) -> None:
        mercury = self.mercury
        start_tsc = cpu.rdtsc()
        cpu.charge(cpu.cost.cyc_switch_interrupt)

        # a stale/duplicate request (e.g. a retry that raced an already-
        # committed switch) is dropped silently — switches are idempotent
        # per target mode
        if direction is Direction.TO_VIRTUAL and mercury.vmm.active and \
                mercury.kernel.vo is mercury.virtual_vo:
            self.pending_retries = 0
            return
        if direction is Direction.TO_NATIVE and \
                mercury.kernel.vo is mercury.native_vo:
            self.pending_retries = 0
            return

        # §5.1.1: only commit at refcount zero
        cpu.charge(cpu.cost.cyc_refcount_check)
        if mercury.kernel.vo.busy():
            self.failed_attempts += 1
            self._arm_retry(cpu, direction)
            return

        retries = self.pending_retries
        self.pending_retries = 0
        record = self._commit(cpu, direction, start_tsc, retries)
        self.records.append(record)

    def _arm_retry(self, cpu: "Cpu", direction: Direction) -> None:
        """Busy: register a timer that re-raises the request (§5.1.1)."""
        self.pending_retries += 1
        vector = (VEC_SV_ATTACH if direction is Direction.TO_VIRTUAL
                  else VEC_SV_DETACH)
        period_cycles = RETRY_PERIOD_MS * 1000 * cpu.cost.freq_mhz
        self.machine.clock.schedule(
            period_cycles,
            lambda: self.machine.intc.raise_vector(cpu.cpu_id, vector))

    # ------------------------------------------------------------------
    # the commit
    # ------------------------------------------------------------------

    def _commit(self, cpu: "Cpu", direction: Direction, start_tsc: int,
                retries: int) -> SwitchRecord:
        mercury = self.mercury
        kernel = mercury.kernel
        if direction is Direction.TO_VIRTUAL and mercury.vmm.active and \
                kernel.vo is mercury.virtual_vo:
            raise ModeSwitchError("already in virtual mode")
        if direction is Direction.TO_NATIVE and kernel.vo is mercury.native_vo:
            raise ModeSwitchError("already in native mode")

        # uninterruptible from here (the handler context already raised us
        # to PL0; we additionally mask)
        saved_if, cpu.interrupts_enabled = cpu.interrupts_enabled, False
        # flush-before-commit: queued lazy-MMU updates are mode-dependent
        # state (they assume hypercalls into the current VMM); drain them
        # before the VO pointer swap and refuse to commit on a dirty queue
        kernel.vo.lazy_mmu_drain(cpu)
        if kernel.vo.lazy_mmu_pending():
            cpu.interrupts_enabled = saved_if
            raise ModeSwitchError(
                "lazy-MMU queue not empty at mode-switch commit")
        pt_pages = 0
        try:
            if direction is Direction.TO_VIRTUAL:
                pt_pages, rendezvous = self._to_virtual(cpu)
            else:
                pt_pages, rendezvous = self._to_native(cpu)
        finally:
            cpu.interrupts_enabled = saved_if
        end_tsc = cpu.rdtsc()

        # the committed mode is a property of the switch, not of whoever
        # requested it — deferred (retried) switches update it here
        from repro.core.mercury import Mode
        mercury.mode = (Mode.PARTIAL_VIRTUAL
                        if direction is Direction.TO_VIRTUAL else Mode.NATIVE)
        return SwitchRecord(direction=direction, start_tsc=start_tsc,
                            end_tsc=end_tsc, pt_pages=pt_pages,
                            retries=retries, rendezvous=rendezvous)

    def _to_virtual(self, cpu: "Cpu") -> tuple[int, Optional[RendezvousResult]]:
        mercury = self.mercury
        kernel = mercury.kernel
        vmm = mercury.vmm
        domain = mercury.ensure_domain()
        state = {"pt_pages": 0}

        def cp_work(cp: "Cpu") -> None:
            from repro.core.mercury import PagingMode
            if mercury.paging is PagingMode.SHADOW:
                # §3.2.2 shadow mode: translate every guest table into a
                # VMM-owned shadow instead of validating + pinning
                for aspace in kernel.aspaces:
                    domain.register_aspace(aspace)
                state["pt_pages"] = mercury.pager.build_all(cp, kernel.aspaces)
            else:
                state["pt_pages"] = transfer.transfer_page_tables_to_virtual(
                    cp, kernel, vmm, domain, mercury.strategy)
            transfer.transfer_segments(cp, kernel, new_dpl=1)
            transfer.transfer_irq_bindings_to_virtual(cp, kernel, vmm, domain)
            vmm.activate()
            reload_control_processor(cp, kernel, PrivilegeLevel.PL1)
            kernel.vo = mercury.virtual_vo
            if mercury.paging is PagingMode.SHADOW and \
                    kernel.scheduler.current is not None:
                # the hardware must run on the shadow root, not the guest's
                kernel.vo.write_cr3(
                    cp, kernel.scheduler.current.aspace.pgd_frame)

        def secondary_work(c: "Cpu") -> None:
            reload_secondary(c, kernel, PrivilegeLevel.PL1)

        rendezvous = self._run(cpu, cp_work, secondary_work)
        return state["pt_pages"], rendezvous

    def _to_native(self, cpu: "Cpu") -> tuple[int, Optional[RendezvousResult]]:
        mercury = self.mercury
        kernel = mercury.kernel
        vmm = mercury.vmm
        domain = mercury.ensure_domain()
        state = {"pt_pages": 0}

        def cp_work(cp: "Cpu") -> None:
            from repro.core.mercury import PagingMode
            if mercury.paging is PagingMode.SHADOW:
                mercury.pager.drop_all(cp)
                for aspace in list(domain.aspaces):
                    domain.unregister_aspace(aspace)
                state["pt_pages"] = sum(a.num_pt_pages()
                                        for a in kernel.aspaces)
            else:
                state["pt_pages"] = transfer.transfer_page_tables_to_native(
                    cp, kernel, vmm, domain)
            transfer.transfer_segments(cp, kernel, new_dpl=0)
            vmm.deactivate()
            transfer.transfer_irq_bindings_to_native(cp, kernel)
            reload_control_processor(cp, kernel, PrivilegeLevel.PL0)
            kernel.vo = mercury.native_vo

        def secondary_work(c: "Cpu") -> None:
            reload_secondary(c, kernel, PrivilegeLevel.PL0)

        rendezvous = self._run(cpu, cp_work, secondary_work)
        return state["pt_pages"], rendezvous

    def _run(self, cpu: "Cpu", cp_work, secondary_work
             ) -> Optional[RendezvousResult]:
        if len(self.machine.cpus) > 1:
            return self.smp.coordinated_switch(cpu, cp_work, secondary_work)
        cp_work(cpu)
        return None
