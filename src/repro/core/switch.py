"""The mode-switch engine (§5.1): interrupt-driven attach/detach.

A switch request raises one of the two dedicated self-virtualization
vectors (§5.1.3: "Mercury adds two interrupt handlers for mode switches").
The handler:

1. checks the VO reference count (§5.1.1) — if some CPU is inside
   virtualization-sensitive code the switch cannot commit, so a retry timer
   re-raises the request (10 ms initially, backing off exponentially) until
   the count reaches zero or the bounded retry budget runs out;
2. disables interrupts, runs the state-transfer functions (§5.1.2) and the
   hardware state reload (§5.1.3) — on SMP machines under the IPI
   rendezvous (§5.4);
3. swaps the kernel's VO pointer (§4.2's "relocation ... by changing the
   object pointer") and activates/deactivates the pre-cached VMM;
4. measures its own duration with RDTSC, exactly as §7.4 does.

The commit is **transactional**: every transfer step journals its inverse
in a :class:`~repro.core.transfer.SwitchTransaction`, so a fault raised
anywhere inside the pipeline (see :mod:`repro.faults`) unwinds exactly the
completed steps and the kernel lands back in its pre-switch mode.  A
transient fault is retried with exponential backoff; after
``max_retries`` the attempt terminally fails with
:class:`~repro.errors.SwitchAborted`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro import faults, trace
from repro.core.accounting import AccountingStrategy
from repro.core.reload import (reload_control_processor, reload_secondary,
                               reload_secondary_rollback)
from repro.core.smp import RendezvousResult, SmpCoordinator
from repro.core import transfer
from repro.core.transfer import SwitchTransaction
from repro.errors import (HypercallError, ModeSwitchError, ReloadFailure,
                          RendezvousTimeout, SwitchAborted, SwitchBusy,
                          TransferAborted)
from repro.hw.cpu import PrivilegeLevel
from repro.hw.interrupts import VEC_SV_ATTACH, VEC_SV_DETACH

if TYPE_CHECKING:
    from repro.core.mercury import Mercury
    from repro.hw.clock import TimerHandle
    from repro.hw.cpu import Cpu

#: initial retry period for a busy/faulted switch (§5.1.1: "every time
#: interval (e.g., every 10 ms)")
RETRY_PERIOD_MS = 10
#: each retry doubles the period ...
BACKOFF_FACTOR = 2
#: ... up to this ceiling
MAX_RETRY_BACKOFF_MS = 160
#: default bounded retry budget; exceeding it aborts the switch terminally
MAX_SWITCH_RETRIES = 8

#: mid-transfer failures the engine treats as transient (retry with
#: backoff); anything else rolls back and propagates immediately
TRANSIENT_ERRORS = (HypercallError, RendezvousTimeout, TransferAborted,
                    ReloadFailure, SwitchBusy)


class Direction(enum.Enum):
    TO_VIRTUAL = "to_virtual"
    TO_NATIVE = "to_native"


@dataclass
class SwitchRecord:
    """One committed mode switch, RDTSC-measured."""

    direction: Direction
    start_tsc: int
    end_tsc: int
    pt_pages: int = 0
    #: retries consumed by *this* switch (busy re-arms + fault re-arms)
    retries: int = 0
    #: rollbacks this switch survived before committing
    rollbacks: int = 0
    rendezvous: Optional[RendezvousResult] = None

    @property
    def cycles(self) -> int:
        return self.end_tsc - self.start_tsc

    def us(self, freq_mhz: int = 3000) -> float:
        return self.cycles / freq_mhz

    def ms(self, freq_mhz: int = 3000) -> float:
        return self.us(freq_mhz) / 1000.0


@dataclass
class PendingSwitch:
    """Book-keeping for one not-yet-committed switch request."""

    direction: Direction
    retries: int = 0
    rollbacks: int = 0
    #: errors observed across this attempt's failed commits
    errors: list = field(default_factory=list)


class ModeSwitchEngine:
    """Owns the switch interrupt handlers and the commit protocol."""

    def __init__(self, mercury: "Mercury",
                 max_retries: int = MAX_SWITCH_RETRIES):
        self.mercury = mercury
        self.machine = mercury.machine
        self.smp = SmpCoordinator(self.machine)
        self.records: list[SwitchRecord] = []
        self.max_retries = max_retries
        #: per-direction in-flight attempts (retry timers armed)
        self._pending: dict[Direction, PendingSwitch] = {}
        #: armed backoff timers, cancelled on commit/stale-drop so a retry
        #: never outlives the switch it was armed for (the PR-2 stale-timer
        #: bug class, closed structurally rather than by gate checks)
        self._retry_timers: dict[Direction, "TimerHandle"] = {}
        #: lifetime count of requests that found the VO busy
        self.failed_attempts = 0
        #: attempts unwound back to the pre-switch mode (mid-transfer
        #: faults *and* terminally-abandoned pending requests)
        self.switch_rollbacks = 0
        #: undo-log entries executed across all rollbacks
        self.rollback_steps = 0
        #: switches terminally aborted after the retry budget
        self.switch_aborts = 0
        #: committed-retry distribution: retries-consumed -> #switches
        self.retry_histogram: dict[int, int] = {}

    @property
    def pending_retries(self) -> int:
        """Retries consumed by attempts still in flight."""
        return sum(p.retries for p in self._pending.values())

    @property
    def total_retries(self) -> int:
        """Retries consumed by committed switches (histogram mass)."""
        return sum(retries * n for retries, n in self.retry_histogram.items())

    # ------------------------------------------------------------------
    # handler installation
    # ------------------------------------------------------------------

    def install_handlers(self) -> None:
        """Register both switch vectors in the guest IDT (live in native
        mode) and the detach vector additionally in the VMM's permanent
        gates (virtual mode, where the hardware IDT belongs to the VMM —
        the VO-assistant of §4.4).

        Both vectors must be deliverable in *both* modes: a backoff retry
        timer can outlive the mode it was armed in (e.g. a detach retry
        firing after the detach already committed), and a vector with no
        gate is a triple fault.  A stale delivery lands in :meth:`_handle`
        and is dropped there."""
        kernel = self.mercury.kernel
        kernel.idt.set_gate(VEC_SV_ATTACH, self._attach_handler,
                            handler_pl=0, name="sv-attach")
        kernel.idt.set_gate(VEC_SV_DETACH, self._detach_handler,
                            handler_pl=0, name="sv-detach")
        self.mercury.vmm.extra_gates[VEC_SV_DETACH] = self._detach_handler

    # ------------------------------------------------------------------
    # request entry points
    # ------------------------------------------------------------------

    def request(self, direction: Direction, cpu: Optional["Cpu"] = None) -> None:
        """Raise the switch interrupt; the handler does the rest when the
        machine polls."""
        cpu = cpu or self.machine.boot_cpu
        vector = (VEC_SV_ATTACH if direction is Direction.TO_VIRTUAL
                  else VEC_SV_DETACH)
        self.machine.intc.raise_vector(cpu.cpu_id, vector)
        self.machine.poll()

    def request_async(self, direction: Direction,
                      cpu: Optional["Cpu"] = None) -> None:
        """Raise the switch vector without polling.  Delivery happens at
        the machine's next interrupt window — which, under the simulation
        scheduler, is wherever the running workload happens to be.  This
        is how contended-switch scenarios land requests mid-syscall."""
        cpu = cpu or self.machine.boot_cpu
        vector = (VEC_SV_ATTACH if direction is Direction.TO_VIRTUAL
                  else VEC_SV_DETACH)
        self.machine.intc.raise_vector(cpu.cpu_id, vector)

    # ------------------------------------------------------------------
    # interrupt handlers
    # ------------------------------------------------------------------

    def _attach_handler(self, cpu: "Cpu", vector: int) -> None:
        self._handle(cpu, Direction.TO_VIRTUAL)

    def _detach_handler(self, cpu: "Cpu", vector: int) -> None:
        self._handle(cpu, Direction.TO_NATIVE)

    def _handle(self, cpu: "Cpu", direction: Direction) -> None:
        with trace.span(cpu.cpu_id, "switch.attempt",
                        direction=direction.value):
            self._handle_traced(cpu, direction)

    def _handle_traced(self, cpu: "Cpu", direction: Direction) -> None:
        mercury = self.mercury
        start_tsc = cpu.rdtsc()
        cpu.charge(cpu.cost.cyc_switch_interrupt)

        # a stale/duplicate request (e.g. a retry that raced an already-
        # committed switch) is dropped silently — switches are idempotent
        # per target mode
        if direction is Direction.TO_VIRTUAL and mercury.vmm.active and \
                mercury.kernel.vo is mercury.virtual_vo:
            self._pending.pop(direction, None)
            self._cancel_retry(direction)
            trace.instant(cpu.cpu_id, "switch.stale-drop")
            return
        if direction is Direction.TO_NATIVE and \
                mercury.kernel.vo is mercury.native_vo:
            self._pending.pop(direction, None)
            self._cancel_retry(direction)
            trace.instant(cpu.cpu_id, "switch.stale-drop")
            return

        # §5.1.1: only commit at refcount zero (a fault armed at the
        # refcount site simulates a CPU wedged inside sensitive code)
        with trace.span(cpu.cpu_id, "switch.quiesce"):
            cpu.charge(cpu.cost.cyc_refcount_check)
            busy = faults.fire(faults.REFCOUNT_STUCK, cpu_id=cpu.cpu_id) or \
                mercury.kernel.vo.busy()
        if busy:
            self.failed_attempts += 1
            trace.instant(cpu.cpu_id, "switch.busy",
                          refcount=mercury.kernel.vo.refcount)
            self._retry_or_abort(cpu, direction, cause=None)
            return

        attempt = self._pending.pop(direction, None)
        try:
            record = self._commit(cpu, direction, start_tsc, attempt)
        except TRANSIENT_ERRORS as exc:
            # _commit already rolled the machine back; arm a backoff retry
            # (or terminally abort once the budget is gone)
            if attempt is None:
                attempt = PendingSwitch(direction)
            attempt.rollbacks += 1
            attempt.errors.append(exc)
            self._pending[direction] = attempt
            self._retry_or_abort(cpu, direction, cause=exc)
            return
        self.records.append(record)
        self._cancel_retry(direction)
        trace.instant(cpu.cpu_id, "switch.committed",
                      direction=direction.value, cycles=record.cycles)
        retries = record.retries
        self.retry_histogram[retries] = \
            self.retry_histogram.get(retries, 0) + 1

    def _cancel_retry(self, direction: Direction) -> None:
        """Disarm any backoff timer still pending for ``direction``."""
        handle = self._retry_timers.pop(direction, None)
        if handle is not None:
            handle.cancel()

    def _retry_or_abort(self, cpu: "Cpu", direction: Direction,
                        cause: Optional[Exception]) -> None:
        """Bounded retry with exponential backoff; terminal SwitchAborted
        once the budget is exhausted."""
        attempt = self._pending.setdefault(direction,
                                           PendingSwitch(direction))
        if attempt.retries >= self.max_retries:
            self._pending.pop(direction, None)
            self._cancel_retry(direction)
            self.switch_aborts += 1
            if cause is None:
                # busy-abort: nothing was transferred, but the pending
                # request itself is unwound to the pre-switch state
                self.switch_rollbacks += 1
                cause = attempt.errors[-1] if attempt.errors else None
            trace.instant(cpu.cpu_id, "switch.abort",
                          direction=direction.value)
            raise SwitchAborted(direction, attempt.retries, cause)
        attempt.retries += 1
        delay_ms = min(
            RETRY_PERIOD_MS * BACKOFF_FACTOR ** (attempt.retries - 1),
            MAX_RETRY_BACKOFF_MS)
        trace.instant(cpu.cpu_id, "switch.retry-armed",
                      direction=direction.value, delay_ms=delay_ms)
        vector = (VEC_SV_ATTACH if direction is Direction.TO_VIRTUAL
                  else VEC_SV_DETACH)
        period_cycles = delay_ms * 1000 * cpu.cost.freq_mhz
        self._cancel_retry(direction)  # at most one armed timer per direction
        self._retry_timers[direction] = self.machine.clock.schedule(
            period_cycles,
            lambda: self.machine.intc.raise_vector(cpu.cpu_id, vector))

    # ------------------------------------------------------------------
    # the commit
    # ------------------------------------------------------------------

    def _commit(self, cpu: "Cpu", direction: Direction, start_tsc: int,
                attempt: Optional[PendingSwitch]) -> SwitchRecord:
        mercury = self.mercury
        kernel = mercury.kernel
        if direction is Direction.TO_VIRTUAL and mercury.vmm.active and \
                kernel.vo is mercury.virtual_vo:
            raise ModeSwitchError("already in virtual mode")
        if direction is Direction.TO_NATIVE and kernel.vo is mercury.native_vo:
            raise ModeSwitchError("already in native mode")

        with trace.span(cpu.cpu_id, "switch.commit",
                        direction=direction.value):
            # uninterruptible from here (the handler context already raised
            # us to PL0; we additionally mask)
            saved_if, cpu.interrupts_enabled = cpu.interrupts_enabled, False
            # flush-before-commit: queued lazy-MMU updates are
            # mode-dependent state (they assume hypercalls into the current
            # VMM); drain them before the VO pointer swap and refuse to
            # commit on a dirty queue
            with trace.span(cpu.cpu_id, "switch.lazy-drain"):
                kernel.vo.lazy_mmu_drain(cpu)
            if kernel.vo.lazy_mmu_pending():
                cpu.interrupts_enabled = saved_if
                raise ModeSwitchError(
                    "lazy-MMU queue not empty at mode-switch commit")
            pt_pages = 0
            txn = SwitchTransaction()
            try:
                try:
                    if direction is Direction.TO_VIRTUAL:
                        pt_pages, rendezvous = self._to_virtual(cpu, txn)
                    else:
                        pt_pages, rendezvous = self._to_native(cpu, txn)
                except BaseException:
                    # unwind the completed steps newest-first; interrupts
                    # are still masked here, which the reload undo requires
                    with trace.span(cpu.cpu_id, "switch.rollback"):
                        self.rollback_steps += txn.rollback(cpu)
                    self.switch_rollbacks += 1
                    raise
            finally:
                cpu.interrupts_enabled = saved_if
            end_tsc = cpu.rdtsc()

        # the committed mode is a property of the switch, not of whoever
        # requested it — deferred (retried) switches update it here
        from repro.core.mercury import Mode
        mercury.mode = (Mode.PARTIAL_VIRTUAL
                        if direction is Direction.TO_VIRTUAL else Mode.NATIVE)
        return SwitchRecord(direction=direction, start_tsc=start_tsc,
                            end_tsc=end_tsc, pt_pages=pt_pages,
                            retries=attempt.retries if attempt else 0,
                            rollbacks=attempt.rollbacks if attempt else 0,
                            rendezvous=rendezvous)

    def _to_virtual(self, cpu: "Cpu", txn: SwitchTransaction
                    ) -> tuple[int, Optional[RendezvousResult]]:
        mercury = self.mercury
        kernel = mercury.kernel
        vmm = mercury.vmm
        domain = mercury.ensure_domain()
        state = {"pt_pages": 0}

        def cp_work(cp: "Cpu") -> None:
            from repro.core.mercury import PagingMode
            if mercury.paging is PagingMode.SHADOW:
                # §3.2.2 shadow mode: translate every guest table into a
                # VMM-owned shadow instead of validating + pinning
                with trace.span(cp.cpu_id, "transfer.shadow-build"):
                    if faults.fire(faults.PT_TRANSFER_ABORT):
                        raise TransferAborted(
                            "injected: shadow build aborted before start")
                    for aspace in kernel.aspaces:
                        domain.register_aspace(aspace)
                    txn.did("register-aspaces",
                            lambda c: [domain.unregister_aspace(a)
                                       for a in list(domain.aspaces)])
                    state["pt_pages"] = mercury.pager.build_all(
                        cp, kernel.aspaces)
                    txn.did("shadow-build",
                            lambda c: mercury.pager.drop_all(c))
            else:
                state["pt_pages"] = transfer.transfer_page_tables_to_virtual(
                    cp, kernel, vmm, domain, mercury.strategy, txn=txn,
                    tracker=mercury.mmu_log)
            transfer.transfer_segments(cp, kernel, new_dpl=1, txn=txn)
            transfer.transfer_irq_bindings_to_virtual(cp, kernel, vmm, domain,
                                                      txn=txn)
            vmm.activate()
            trace.instant(cp.cpu_id, "vmm.activate")
            txn.did("vmm-activate", lambda c: vmm.deactivate())
            reload_control_processor(cp, kernel, PrivilegeLevel.PL1)
            txn.did("cp-reload",
                    lambda c: reload_control_processor(c, kernel,
                                                       PrivilegeLevel.PL0))
            old_vo = kernel.vo
            kernel.vo = mercury.virtual_vo
            trace.instant(cp.cpu_id, "switch.vo-swap", to="virtual")
            txn.did("vo-swap", lambda c: setattr(kernel, "vo", old_vo))
            if mercury.paging is PagingMode.SHADOW and \
                    kernel.scheduler.current is not None:
                # the hardware must run on the shadow root, not the guest's
                kernel.vo.write_cr3(
                    cp, kernel.scheduler.current.aspace.pgd_frame)

        def secondary_work(c: "Cpu") -> None:
            prev_idt = c.idt_base
            reload_secondary(c, kernel, PrivilegeLevel.PL1)
            txn.did(f"secondary-reload-cpu{c.cpu_id}",
                    lambda cp_, sec=c, idt=prev_idt:
                        reload_secondary_rollback(sec, kernel, idt))

        rendezvous = self._run(cpu, cp_work, secondary_work)
        return state["pt_pages"], rendezvous

    def _to_native(self, cpu: "Cpu", txn: SwitchTransaction
                   ) -> tuple[int, Optional[RendezvousResult]]:
        mercury = self.mercury
        kernel = mercury.kernel
        vmm = mercury.vmm
        domain = mercury.ensure_domain()
        state = {"pt_pages": 0}

        def cp_work(cp: "Cpu") -> None:
            from repro.core.mercury import PagingMode
            if mercury.paging is PagingMode.SHADOW:
                with trace.span(cp.cpu_id, "transfer.shadow-drop"):
                    if faults.fire(faults.PT_TRANSFER_ABORT):
                        raise TransferAborted(
                            "injected: shadow drop aborted before start")
                    mercury.pager.drop_all(cp)
                    txn.did("shadow-drop",
                            lambda c: mercury.pager.build_all(
                                c, kernel.aspaces))
                    for aspace in list(domain.aspaces):
                        domain.unregister_aspace(aspace)
                        txn.did(f"unregister-aspace-{aspace.pgd_frame}",
                                lambda c, a=aspace: domain.register_aspace(a))
                    state["pt_pages"] = sum(a.num_pt_pages()
                                            for a in kernel.aspaces)
            else:
                state["pt_pages"] = transfer.transfer_page_tables_to_native(
                    cp, kernel, vmm, domain, txn=txn,
                    tracker=mercury.mmu_log)
            transfer.transfer_segments(cp, kernel, new_dpl=0, txn=txn)
            vmm.deactivate()
            trace.instant(cp.cpu_id, "vmm.deactivate")
            txn.did("vmm-deactivate", lambda c: vmm.activate())
            transfer.transfer_irq_bindings_to_native(cp, kernel, vmm, domain,
                                                     txn=txn)
            reload_control_processor(cp, kernel, PrivilegeLevel.PL0)
            txn.did("cp-reload",
                    lambda c: reload_control_processor(c, kernel,
                                                       PrivilegeLevel.PL1))
            old_vo = kernel.vo
            kernel.vo = mercury.native_vo
            trace.instant(cp.cpu_id, "switch.vo-swap", to="native")
            txn.did("vo-swap", lambda c: setattr(kernel, "vo", old_vo))

        def secondary_work(c: "Cpu") -> None:
            prev_idt = c.idt_base
            reload_secondary(c, kernel, PrivilegeLevel.PL0)
            txn.did(f"secondary-reload-cpu{c.cpu_id}",
                    lambda cp_, sec=c, idt=prev_idt:
                        reload_secondary_rollback(sec, kernel, idt))

        rendezvous = self._run(cpu, cp_work, secondary_work)
        return state["pt_pages"], rendezvous

    def _run(self, cpu: "Cpu", cp_work, secondary_work
             ) -> Optional[RendezvousResult]:
        if len(self.machine.cpus) > 1:
            return self.smp.coordinated_switch(cpu, cp_work, secondary_work)
        cp_work(cpu)
        return None
