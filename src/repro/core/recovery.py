"""ReHype-style VMM-fault recovery: microreboot the hypervisor under the OS.

ReHype (PAPERS.md) showed that a hypervisor failure need not take down its
guests: the hypervisor can be microrebooted *in place* while guest memory
images survive, and the new instance re-derives its state from the guests.
Mercury is unusually well positioned for this trick — the VMM is already
designed to come and go underneath the running OS, so "reboot the VMM"
decomposes into operations the switch pipeline already has:

1. **Emergency detach** (:meth:`RecoveryManager.emergency_detach`): put
   the OS back on bare hardware *without trusting anything the corrupt
   VMM owns*.  The normal detach path recomputes page-info state, drains
   event channels and asks the VMM to unpin tables; the emergency path
   must not — a poisoned grant table or corrupt page-info column would
   propagate into the "recovered" state.  Instead it reuses the two
   state-transfer steps that only touch *guest-owned* structures
   (:func:`~repro.core.transfer.transfer_segments`,
   :func:`~repro.core.transfer.transfer_irq_bindings_to_native`), reloads
   every CPU's control registers, and marks the incremental-attach
   accounting distrusted (the same
   :meth:`~repro.core.accounting.MmuAccounting.distrust` path a failed
   switch rollback takes), forcing the next attach to recompute from the
   guest's page tables — the only surviving source of truth.
2. **Re-precache**: throw the corrupt VMM away wholesale (free its
   reserved frames) and build a fresh one with
   :func:`~repro.core.precache.precache_vmm` — a microreboot, not a
   repair.  Nothing from the old instance is consulted.
3. **Re-attach**: a normal :meth:`~repro.core.mercury.Mercury.attach`
   through the switch engine — the incremental recompute path sees the
   distrust mark and re-derives the page-info table from scratch.
4. **Re-host guests**: hosted guest kernels keep their memory image,
   processes and file state (they are never re-booted); each gets a fresh
   domain, a fresh VO, re-registered/re-pinned address spaces, a restored
   trap table and re-connected split-driver rings, exactly ReHype's
   "recover hypervisor state from guest state".

Each incident is timed detection → resumed as an MTTR trace span
(``recovery.microreboot`` wrapping ``recovery.emergency-detach`` /
``recovery.re-precache`` / ``recovery.re-attach``) and recorded in
:attr:`RecoveryManager.incidents` for the chaos campaign's percentiles.

Re-entrancy: ``recover`` and ``emergency_detach`` are idempotent.  A
second emergency detach while one is in flight (or after the stack is
already native) is a no-op — the watchdog, the self-healer and a panicky
caller may all race to trigger recovery without compounding the damage.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro import trace
from repro.core.accounting import ActiveAccountant
from repro.core.precache import precache_vmm
from repro.core.reload import _reload_own_registers, reload_control_processor
from repro.core.switch import Direction
from repro.core.transfer import (transfer_irq_bindings_to_native,
                                 transfer_segments)
from repro.core.virtual_vo import VirtualVO
from repro.errors import RecoveryError, VmmCorruption
from repro.hw.cpu import PrivilegeLevel

if TYPE_CHECKING:
    from repro.core.mercury import Mercury
    from repro.hw.cpu import Cpu

#: cycle cost of the emergency re-precache (≈1 ms at 3 GHz): building the
#: fresh VMM image is charged as one lump, standing in for the boot work
#: the normal pre-cache does at machine boot (§4.1) — an emergency cannot
#: hide it there
CYC_EMERGENCY_REPRECACHE = 3_000_000


class RecoveryRecord:
    """One recovery incident, detection to resumption."""

    __slots__ = ("invariant", "detail", "detected_at", "completed_at",
                 "success", "guests_rehosted", "error")

    def __init__(self, invariant: str, detail: str, detected_at: int):
        self.invariant = invariant
        self.detail = detail
        self.detected_at = detected_at
        self.completed_at: Optional[int] = None
        self.success = False
        self.guests_rehosted = 0
        self.error: Optional[str] = None

    @property
    def mttr_cycles(self) -> Optional[int]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.detected_at

    def mttr_us(self, freq_mhz: int) -> Optional[float]:
        cycles = self.mttr_cycles
        return None if cycles is None else cycles / freq_mhz

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RecoveryRecord({self.invariant!r}, "
                f"mttr={self.mttr_cycles}, success={self.success})")


class RecoveryManager:
    """Owns the detect → microreboot → resume pipeline for one stack."""

    def __init__(self, mercury: "Mercury", watchdog=None):
        self.mercury = mercury
        self.machine = mercury.machine
        self.watchdog = (watchdog if watchdog is not None
                         else getattr(mercury, "watchdog", None))
        self.incidents: list[RecoveryRecord] = []
        self.recoveries = 0
        self.recovery_failures = 0
        self.emergency_detaches = 0
        self._in_progress = False
        mercury.recovery = self

    @property
    def in_progress(self) -> bool:
        return self._in_progress

    # ------------------------------------------------------------------
    # the full pipeline
    # ------------------------------------------------------------------

    def recover(self, verdict: Optional[VmmCorruption] = None,
                cpu: Optional["Cpu"] = None) -> Optional[RecoveryRecord]:
        """Run the whole microreboot pipeline for one corruption verdict.

        Returns the incident record, or None when called re-entrantly
        (a recovery is already running) — the idempotence contract.
        """
        if self._in_progress:
            return None
        if verdict is None and self.watchdog is not None:
            verdict = self.watchdog.take_verdict()
        if verdict is None:
            verdict = VmmCorruption("operator-request", "no watchdog verdict")
        mercury = self.mercury
        cpu = cpu or self.machine.boot_cpu
        detected_at = getattr(verdict, "detected_cycles",
                              self.machine.clock.cycles)
        record = RecoveryRecord(verdict.invariant, verdict.detail, detected_at)
        self.incidents.append(record)
        self._in_progress = True
        try:
            with trace.span(cpu.cpu_id, "recovery.microreboot",
                            invariant=verdict.invariant):
                with trace.span(cpu.cpu_id, "recovery.emergency-detach"):
                    saved_guests = self.emergency_detach(cpu)
                with trace.span(cpu.cpu_id, "recovery.re-precache"):
                    self._microreboot(cpu)
                with trace.span(cpu.cpu_id, "recovery.re-attach"):
                    switch = mercury.attach(cpu)
                    if switch is None:
                        raise RecoveryError(
                            "re-attach did not commit after microreboot")
                record.guests_rehosted = self._rehost_guests(cpu,
                                                             saved_guests)
        except Exception as exc:
            record.error = f"{type(exc).__name__}: {exc}"
            self.recovery_failures += 1
            record.completed_at = self.machine.clock.cycles
            raise
        else:
            record.success = True
            record.completed_at = self.machine.clock.cycles
            self.recoveries += 1
        finally:
            self._in_progress = False
            if self.watchdog is not None:
                # the verdict that triggered us is resolved; stale repeats
                # must not trigger a second microreboot
                self.watchdog.pending_verdict = None
                self.watchdog._suspects.clear()
        return record

    # ------------------------------------------------------------------
    # stage 1: emergency detach (distrusts all VMM state)
    # ------------------------------------------------------------------

    def emergency_detach(self, cpu: Optional["Cpu"] = None) -> list:
        """Force the OS back to native without consulting the VMM.

        Returns the list of hosted guests stripped from the stack (so a
        full recovery can re-host them).  A no-op returning ``[]`` when
        the kernel is already on the native VO — calling it twice is safe.
        """
        mercury = self.mercury
        kernel = mercury.kernel
        if kernel is None or kernel.vo is mercury.native_vo:
            return []
        cpu = cpu or self.machine.boot_cpu
        self.emergency_detaches += 1

        # silence the switch engine: a half-retried attach/detach against
        # the corrupt VMM must not fire mid-recovery
        engine = mercury.engine
        for direction in Direction:
            engine._cancel_retry(direction)
        engine._pending.clear()

        # strip hosted guests — their kernels (memory image, processes,
        # files) survive; their VMM-side shells die with the VMM
        saved_guests = list(mercury._guests)
        mercury._guests.clear()
        mercury._backends = []
        # balloon pairs die with the VMM too; each guest kernel still holds
        # its frontend (pool + region bookkeeping), which is guest-owned
        # state the re-host stage transplants into a fresh pair
        mercury._balloons.clear()

        # guest-owned state only: re-privilege segments, point the
        # hardware back at the kernel's own IDT, reload every CPU
        transfer_segments(cpu, kernel, new_dpl=0)
        saved_if, cpu.interrupts_enabled = cpu.interrupts_enabled, False
        try:
            transfer_irq_bindings_to_native(cpu, kernel)
            reload_control_processor(cpu, kernel, PrivilegeLevel.PL0)
            for other in self.machine.cpus:
                if other is not cpu:
                    # never the fault-injection seam: an emergency detach,
                    # like a rollback, must be infallible
                    _reload_own_registers(other, kernel, native_target=True)
        finally:
            cpu.interrupts_enabled = saved_if

        if mercury.vmm.active:
            mercury.vmm.deactivate()
        kernel.vo = mercury.native_vo
        from repro.core.mercury import Mode
        mercury.mode = Mode.NATIVE
        if mercury.mmu_log is not None:
            # the distrust-after-rollback path: nothing the corrupt VMM
            # validated may seed the next attach's incremental recompute
            mercury.mmu_log.distrust()
        trace.instant(cpu.cpu_id, "recovery.detached",
                      guests=len(saved_guests))
        return saved_guests

    # ------------------------------------------------------------------
    # stage 2: microreboot — discard and re-precache the VMM
    # ------------------------------------------------------------------

    def _microreboot(self, cpu: "Cpu") -> None:
        from repro.vmm.hypervisor import VMM_OWNER
        mercury = self.mercury
        memory = self.machine.memory
        for frame in memory.frames_owned_by(VMM_OWNER):
            memory.free(int(frame))
        cpu.charge(CYC_EMERGENCY_REPRECACHE)
        new_vmm, info = precache_vmm(self.machine, charge_boot_time=False)
        mercury.vmm = new_vmm
        mercury.precache_info = info
        mercury.domain = None
        mercury.virtual_vo = None
        if mercury.accountant is not None:
            mercury.accountant = ActiveAccountant(new_vmm.page_info)
            mercury.native_vo.accountant = mercury.accountant
        mercury.pager = None
        # re-register the switch-request gates on the fresh VMM
        mercury.engine.install_handlers()

    # ------------------------------------------------------------------
    # stage 3: re-host surviving guests (ReHype's state re-derivation)
    # ------------------------------------------------------------------

    def _rehost_guests(self, cpu: "Cpu", guests: list) -> int:
        from repro.guestos.splitio import (connect_split_balloon,
                                           connect_split_block,
                                           connect_split_net)
        mercury = self.mercury
        vmm = mercury.vmm
        for guest in guests:
            addr, num_vcpus, has_balloon, mem_floor = mercury._guest_meta.get(
                guest.owner_id,
                (f"{self.machine.nic.addr}:u{guest.owner_id}", 1, False, 0))
            old_domain = getattr(guest.vo, "domain", None)
            domain = vmm.create_domain(guest.name, num_vcpus=num_vcpus,
                                       domain_id=guest.owner_id)
            guest.vo = VirtualVO(self.machine, vmm, domain)
            domain.guest = guest
            # the guest's registered handlers survive in its own IDT;
            # rebuild the domain trap table from them
            domain.trap_table = {vec: entry.handler
                                 for vec, entry in guest.idt.gates.items()}
            # re-derive VMM page-info state from the guest's live address
            # spaces — validation is charged to the recovering CPU, it is
            # part of the MTTR
            aspaces = list(old_domain.aspaces) if old_domain is not None \
                else []
            for aspace in aspaces:
                domain.register_aspace(aspace)
                vmm.page_info.validate_pgd(cpu, aspace, domain.domain_id)
            _, blk_back = connect_split_block(guest, mercury.kernel, vmm)
            _, net_back = connect_split_net(guest, mercury.kernel, vmm, addr)
            mercury._backends.extend([blk_back, net_back])
            mercury._guests.append(guest)
            if has_balloon:
                # the resized footprint survives in the owner column; the
                # fresh domain's ledger is re-derived from it, NOT from the
                # original host_guest reservation
                old_front = getattr(guest, "balloon_front", None)
                front, bal_back = connect_split_balloon(
                    guest, mercury.kernel, vmm,
                    pool=list(old_front.pool) if old_front is not None else None)
                if old_front is not None:
                    # region bookkeeping is guest-owned state: it survives
                    # the microreboot with the kernel, like the page tables
                    front._rmap = old_front._rmap
                    front._order = old_front._order
                    front.victim_unmaps = old_front.victim_unmaps
                mercury._backends.append(bal_back)
                mercury._balloons[guest.owner_id] = (front, bal_back)
                domain.mem_floor = mem_floor
                domain.mem_pages = len(
                    self.machine.memory.frames_owned_by(guest.owner_id))
            trace.instant(cpu.cpu_id, "recovery.guest-rehosted",
                          guest=guest.name)
        return len(guests)
