"""Loosely-coupled SMP rendezvous (the §8 extension, implemented).

"With the number of cores per-chip increasing continuously ... a more
loosely-coupled synchronization protocol might be necessary when
detaching/attaching a VMM, instead of current protocols using IPI and
shared variables."

The flat protocol (§5.4, :mod:`repro.core.smp`) has the control processor
IPI every core and collect every acknowledgement itself: O(n) serial work
on the CP.  The tree protocol here fans the notification out through a
binary tree — each core forwards the IPI to its two children and
aggregates its subtree's acknowledgements — so the CP's serial work is
O(log n) and the gather completes in tree-depth rounds.

Both protocols produce identical state (every core reloaded, same shared
flags); the ablation bench compares their gather latency as the core count
grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.smp import RendezvousResult
from repro.errors import RendezvousTimeout
from repro.hw.interrupts import VEC_SV_RENDEZVOUS

if TYPE_CHECKING:
    from repro.hw.cpu import Cpu
    from repro.hw.machine import Machine


class TreeSmpCoordinator:
    """Binary-tree fan-out/fan-in rendezvous."""

    def __init__(self, machine: "Machine"):
        self.machine = machine
        self.ready_count = 0
        self.go_flag = False
        self.done_count = 0

    @staticmethod
    def _children(idx: int, n: int) -> list[int]:
        return [c for c in (2 * idx + 1, 2 * idx + 2) if c < n]

    @staticmethod
    def tree_depth(n: int) -> int:
        depth = 0
        span = 1
        while span < n:
            span *= 2
            depth += 1
        return depth

    def coordinated_switch(self, cp: "Cpu",
                           cp_work: Callable[["Cpu"], None],
                           secondary_work: Callable[["Cpu"], None]
                           ) -> RendezvousResult:
        clock = self.machine.clock
        cost = cp.cost
        cpus = self.machine.cpus
        n = len(cpus)
        # order cores so the CP is the tree root
        order = [cp.cpu_id] + [c.cpu_id for c in cpus if c is not cp]
        t_start = clock.cycles

        self.ready_count = 0
        self.go_flag = False
        self.done_count = 0

        # --- fan-out: each tree level forwards in parallel ---------------
        ipis = 0
        depth = self.tree_depth(n)
        for level in range(depth):
            # all sends within one level overlap; we charge the CP's clock
            # once per level (a forwarding core's send overlaps its peers')
            level_sent = 0
            lo, hi = (2 ** level) - 1, (2 ** (level + 1)) - 1
            for idx in range(lo, min(hi, n)):
                for child in self._children(idx, n):
                    self.machine.intc.raise_vector(order[child],
                                                   VEC_SV_RENDEZVOUS)
                    level_sent += 1
            if level_sent:
                clock.advance(cost.cyc_ipi_send + cost.cyc_ipi_deliver)
                ipis += level_sent

        # --- fan-in: acknowledgements aggregate up the tree ----------------
        for c in cpus:
            self.machine.intc.consume_vector(c.cpu_id, VEC_SV_RENDEZVOUS)
            c.interrupts_enabled = False
        # each level of aggregation is one shared-variable update deep
        clock.advance(cost.cyc_refcount_check * depth)
        self.ready_count = n
        if self.ready_count != n:  # pragma: no cover - defensive
            raise RendezvousTimeout(f"{self.ready_count}/{n}")
        t_gathered = clock.cycles

        # --- the switch work (same as the flat protocol) -------------------
        self.go_flag = True
        cp_work(cp)
        t_cp_done = clock.cycles

        t_secondaries_done = t_gathered
        for c in cpus:
            if c is cp:
                continue
            before = clock.cycles
            secondary_work(c)
            self.done_count += 1
            delta = clock.cycles - before
            clock.cycles = before
            t_secondaries_done = max(t_secondaries_done, t_gathered + delta)

        t_finish = max(t_cp_done, t_secondaries_done)
        clock.cycles = max(clock.cycles, t_finish)
        self.done_count += 1
        for c in cpus:
            c.interrupts_enabled = True

        return RendezvousResult(
            num_cpus=n, start=t_start, gathered=t_gathered,
            cp_done=t_cp_done, secondaries_done=t_secondaries_done,
            finish=t_finish, ipis_sent=ipis)


def use_tree_protocol(mercury) -> None:
    """Swap a Mercury instance's rendezvous for the tree protocol."""
    mercury.engine.smp = TreeSmpCoordinator(mercury.machine)
