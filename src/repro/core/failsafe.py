"""Failure-resistant mode switching (the §8 extension, implemented).

"We have not considered the case where the operating systems might have
already been in an incorrect state during the mode switch.  An OS not in a
correct state might make the mode switch fail.  Hence, a failure-resistant
mode switch will be necessary to improve the dependability of Mercury
itself."

:class:`FailsafeSwitch` wraps Mercury's attach/detach with:

1. **pre-switch validation** — the §6.2 sensor suite runs *before* the
   switch commits; a corrupted OS never enters the transfer functions in
   an undefined state;
2. **repair-then-retry** — with ``repair=True`` the detected anomalies are
   healed (using the sensors' repairers, under the still-consistent
   current mode) and the switch retried;
3. **rollback backstop** — the switch engine itself is transactional (its
   undo log in :class:`~repro.core.transfer.SwitchTransaction` unwinds a
   faulted transfer, with bounded backoff retries before a terminal
   :class:`~repro.errors.SwitchAborted`); if an error still escapes, this
   layer re-runs the idempotent unwind from a mode snapshot so even a
   failed *rollback* cannot strand the OS half-transferred.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core.mercury import Mercury, Mode
from repro.errors import ModeSwitchError
from repro.scenarios.healing import Sensor, default_sensors

if TYPE_CHECKING:
    from repro.core.switch import SwitchRecord
    from repro.hw.cpu import Cpu


@dataclass
class FailsafeReport:
    """What one guarded switch did."""

    committed: bool
    anomalies_found: list[str] = field(default_factory=list)
    repaired: list[str] = field(default_factory=list)
    rolled_back: bool = False
    #: engine-level rollbacks observed during this guarded switch (the
    #: transactional unwinds of :mod:`repro.core.switch`)
    engine_rollbacks: int = 0
    record: Optional["SwitchRecord"] = None


class SwitchVetoed(ModeSwitchError):
    """The pre-switch validation refused to proceed."""

    def __init__(self, anomalies: list[str]):
        super().__init__(
            f"mode switch vetoed; OS state anomalies: {anomalies}")
        self.anomalies = anomalies


class FailsafeSwitch:
    """A guarded attach/detach around one Mercury instance."""

    def __init__(self, mercury: Mercury,
                 sensors: Optional[list[Sensor]] = None,
                 repair: bool = True):
        self.mercury = mercury
        self.sensors = sensors if sensors is not None else default_sensors()
        self.repair = repair
        self.history: list[FailsafeReport] = []

    # ------------------------------------------------------------------

    def attach(self, cpu: Optional["Cpu"] = None) -> FailsafeReport:
        return self._guarded(cpu, to_virtual=True)

    def detach(self, cpu: Optional["Cpu"] = None) -> FailsafeReport:
        return self._guarded(cpu, to_virtual=False)

    # ------------------------------------------------------------------

    def _guarded(self, cpu: Optional["Cpu"], to_virtual: bool) -> FailsafeReport:
        mercury = self.mercury
        kernel = mercury.kernel
        cpu = cpu or mercury.machine.boot_cpu
        report = FailsafeReport(committed=False)

        # 1. pre-switch validation (in the current, consistent mode)
        firing = [s for s in self.sensors if s.detect(kernel)]
        report.anomalies_found = [s.name for s in firing]
        if firing:
            if not self.repair:
                self.history.append(report)
                raise SwitchVetoed(report.anomalies_found)
            for sensor in firing:
                cpu.charge(cpu.cost.cyc_refcount_check)
                sensor.repair(kernel, cpu)
                if sensor.detect(kernel):
                    self.history.append(report)
                    raise SwitchVetoed([sensor.name])
                report.repaired.append(sensor.name)

        # 2. transactional commit (the engine retries transient faults with
        # backoff and unwinds its own undo log; we keep a snapshot so even
        # an escaped error lands back in a consistent mode)
        snapshot = self._mode_snapshot()
        rollbacks_before = mercury.engine.switch_rollbacks
        try:
            record = (mercury.attach(cpu) if to_virtual
                      else mercury.detach(cpu))
            report.record = record
            report.committed = record is not None
        except Exception:
            self._rollback(cpu, snapshot)
            report.rolled_back = True
            report.engine_rollbacks = (mercury.engine.switch_rollbacks
                                       - rollbacks_before)
            self.history.append(report)
            raise
        report.engine_rollbacks = (mercury.engine.switch_rollbacks
                                   - rollbacks_before)
        self.history.append(report)
        return report

    # ------------------------------------------------------------------
    # rollback machinery
    # ------------------------------------------------------------------

    def _mode_snapshot(self) -> dict:
        mercury = self.mercury
        return {
            "mode": mercury.mode,
            "vo": mercury.kernel.vo,
            "vmm_active": mercury.vmm.active,
            "dpl": mercury.kernel.vo.data.kernel_segment_dpl,
        }

    def _rollback(self, cpu: "Cpu", snapshot: dict) -> None:
        """Return to the pre-switch mode after a mid-transfer failure.

        A to-virtual attempt may have died at any point: page tables
        possibly transferred, segments possibly re-privileged, the VMM
        possibly activated.  Every unwind step below is idempotent, so we
        run them all regardless of how far the attempt got."""
        from repro.core import transfer
        from repro.core.reload import reload_control_processor
        from repro.hw.cpu import PrivilegeLevel

        mercury = self.mercury
        kernel = mercury.kernel
        mercury.mode = snapshot["mode"]
        kernel.vo = snapshot["vo"]

        if snapshot["mode"] is Mode.NATIVE:
            domain = mercury.ensure_domain()
            transfer.transfer_page_tables_to_native(cpu, kernel,
                                                    mercury.vmm, domain)
            transfer.transfer_segments(cpu, kernel, new_dpl=snapshot["dpl"])
            if mercury.vmm.active:
                mercury.vmm.deactivate()
            transfer.transfer_irq_bindings_to_native(cpu, kernel)
            saved, cpu.interrupts_enabled = cpu.interrupts_enabled, False
            try:
                reload_control_processor(cpu, kernel, PrivilegeLevel.PL0)
            finally:
                cpu.interrupts_enabled = saved
