"""VMI-style corruption watchdog for the attached VMM (ROADMAP item 4).

The low-overhead VMI monitoring line of work (PAPERS.md) shows that an
observer *outside* the monitored TCB can detect kernel/hypervisor object
corruption by periodically re-deriving invariants over a handful of
critical structures — without pausing the system and at a per-scan cost
that is noise next to the workload.  This module is that observer for the
Mercury stack: a :class:`Watchdog` owns a catalogue of invariant checks
over the attached VMM's structures (trap tables, the columnar
:class:`~repro.vmm.page_info.PageInfoTable`, event-channel masks, grant
entries, split-driver backends, I/O ring indices, balloon-ring doorbells,
VO reference counts)
and produces a **typed verdict** — a :class:`~repro.errors.VmmCorruption`
naming the failed invariant — instead of letting the corruption fester
until a guest-visible crash.

Design points that matter for determinism and honesty:

- Scans read simulator state directly (the "trace/metrics plane"): they
  never call into the VMM under scrutiny, so a wedged backend or poisoned
  grant table cannot hang the scanner.  The one derived check — the
  page-info digest — rebuilds a *fresh* reference table from the pinned
  address spaces and compares it with
  :meth:`~repro.vmm.page_info.PageInfoTable.semantically_equal`; the
  reference recompute runs on an uncharged stub CPU so the digest costs
  the scan budget, not a full re-validation.
- A scan charges a flat ``CYC_SCAN`` to the clock.  At the default
  2 ms interval that is well under the 2 % steady-state overhead gate.
- Liveness-style checks (backend stuck in poll, channel pending+masked)
  can be *legitimately* true mid-operation: ``BlkBack`` runs timer events
  while polling with its channel masked.  Those checks therefore use a
  double-observation rule — a victim must look wedged for
  ``suspect_scans`` consecutive scans before the verdict fires.  Property
  tests that scan a quiescent stack pass ``suspect_scans=1`` to get the
  within-one-scan-period detection guarantee.
- The watchdog never recovers anything itself.  It records the verdict in
  ``pending_verdict`` (and emits a ``watchdog.corruption`` trace instant);
  the recovery manager (:mod:`repro.core.recovery`) or the self-healer
  consumes it from task context, where the VO refcounts are quiescent.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro import trace
from repro.errors import PageValidationError, RingError, VmmCorruption
from repro.vmm.page_info import PageInfoTable

if TYPE_CHECKING:
    from repro.core.mercury import Mercury
    from repro.hw.clock import TimerHandle

#: flat per-scan cycle charge (≈0.7 µs at 3 GHz) — the "low overhead" in
#: low-overhead VMI; the page-info digest is folded into this constant
#: rather than re-charged per PTE
CYC_SCAN = 2_000

#: default scan period: 2 ms of simulated time
DEFAULT_INTERVAL_CYCLES = 6_000_000

#: a healthy VO refcount is 0 at rest and single digits mid-pump; anything
#: past this is a runaway count that would wedge every future mode switch
#: (the ``vmm.refcount-runaway`` site — "balloon" now means the memory
#: balloon driver, not this)
REFCOUNT_SUSPECT_THRESHOLD = 512


class _UnchargedCpu:
    """Stub CPU for the reference page-info recompute: validation logic
    runs, cycle accounting doesn't."""

    class _Cost:
        cyc_pte_validate = 0

    cost = _Cost()

    def charge(self, cycles: int) -> None:
        pass


class Watchdog:
    """Periodic invariant scanner over one Mercury stack."""

    def __init__(self, mercury: "Mercury", *,
                 suspect_scans: int = 2,
                 refcount_threshold: int = REFCOUNT_SUSPECT_THRESHOLD):
        self.mercury = mercury
        self.machine = mercury.machine
        self.suspect_scans = max(1, suspect_scans)
        self.refcount_threshold = refcount_threshold
        #: first undelivered verdict; recovery consumes and clears it
        self.pending_verdict: Optional[VmmCorruption] = None
        self.scans = 0
        self.detections = 0
        self._timer: Optional["TimerHandle"] = None
        self._interval = DEFAULT_INTERVAL_CYCLES
        #: consecutive-suspect counters for the liveness-style checks,
        #: keyed by a stable identity tuple
        self._suspects: dict[tuple, int] = {}
        mercury.watchdog = self

    # -- periodic scheduling ------------------------------------------------

    @property
    def running(self) -> bool:
        return self._timer is not None and self._timer.pending

    def start(self, interval_cycles: int = DEFAULT_INTERVAL_CYCLES) -> None:
        """Begin periodic scanning on the machine clock."""
        self._interval = max(1, int(interval_cycles))
        self.stop()
        self._timer = self.machine.clock.schedule(self._interval, self._tick)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _tick(self) -> None:
        self._timer = None
        self.scan()
        # keep scanning until stopped — detection does not end monitoring,
        # recovery needs the watchdog to confirm the repaired state
        self._timer = self.machine.clock.schedule(self._interval, self._tick)

    # -- scanning -----------------------------------------------------------

    def scan(self, cpu=None) -> Optional[VmmCorruption]:
        """Run every invariant check once; return (and record) the first
        failing verdict, or None if the stack looks healthy.

        Skipped (returns None) while detached — there is no attached VMM
        to monitor — and while a recovery is mid-flight, when the stack is
        deliberately inconsistent.
        """
        from repro.core.mercury import Mode
        mercury = self.mercury
        recovery = getattr(mercury, "recovery", None)
        if recovery is not None and recovery.in_progress:
            return None
        if mercury.mode is Mode.NATIVE:
            self._suspects.clear()
            return None
        self.scans += 1
        if cpu is not None:
            cpu.charge(CYC_SCAN)
        else:
            self.machine.clock.advance(CYC_SCAN)
        verdict = self._run_checks()
        if verdict is not None:
            self.detections += 1
            verdict.detected_cycles = self.machine.clock.cycles
            if self.pending_verdict is None:
                self.pending_verdict = verdict
            trace.instant(cpu.cpu_id if cpu is not None else 0,
                          "watchdog.corruption",
                          invariant=verdict.invariant)
        return verdict

    def take_verdict(self) -> Optional[VmmCorruption]:
        """Consume the pending verdict (recovery calls this)."""
        verdict, self.pending_verdict = self.pending_verdict, None
        return verdict

    # -- individual invariants ---------------------------------------------

    def _run_checks(self):
        return (self._check_trap_table()
                or self._check_vo_refcounts()
                or self._check_rings()
                or self._check_grants()
                or self._check_page_info()
                or self._check_channels()
                or self._check_backends()
                or self._check_balloons())

    def _check_trap_table(self) -> Optional[VmmCorruption]:
        """Every gate the kernel registered must still be reachable via
        the driver domain's trap table, or an interrupt will be silently
        dropped by ``forward_irq``."""
        mercury = self.mercury
        if mercury.domain is None:
            return None
        table = mercury.domain.trap_table
        for vector in sorted(mercury.kernel.idt.gates):
            if vector not in table:
                return VmmCorruption(
                    "trap-table",
                    f"vector {vector:#x} missing from driver-domain table")
        return None

    def _check_vo_refcounts(self) -> Optional[VmmCorruption]:
        mercury = self.mercury
        vos = [("kernel", mercury.kernel.vo)]
        if (mercury.virtual_vo is not None
                and mercury.virtual_vo is not mercury.kernel.vo):
            vos.append(("virtual", mercury.virtual_vo))
        for guest in getattr(mercury, "_guests", []):
            vos.append((guest.name, guest.vo))
        for label, vo in vos:
            if vo.refcount > self.refcount_threshold:
                return VmmCorruption(
                    "vo-refcount",
                    f"{label} VO refcount stuck at {vo.refcount}")
        return None

    def _check_rings(self) -> Optional[VmmCorruption]:
        for key, ring in self._rings():
            try:
                ring.check_invariants()
            except RingError as exc:
                return VmmCorruption("ring-indices", f"{key}: {exc}")
        return None

    def _check_grants(self) -> Optional[VmmCorruption]:
        from repro.vmm.hypervisor import VMM_OWNER
        vmm = self.mercury.vmm
        mem = self.machine.memory
        entries = vmm.grants._entries
        for key in sorted(entries):
            entry = entries[key]
            if entry.revoked:
                continue
            if entry.active_maps < 0:
                return VmmCorruption(
                    "grant-refs",
                    f"grant {key} active_maps={entry.active_maps}")
            owner = mem.owner_of(entry.frame)
            if owner != entry.granting_domain or owner == VMM_OWNER:
                return VmmCorruption(
                    "grant-refs",
                    f"grant {key} frame {entry.frame} owned by {owner}, "
                    f"granted by {entry.granting_domain}")
        return None

    def _check_page_info(self) -> Optional[VmmCorruption]:
        """Digest check: re-derive the page-info columns from the pinned
        address spaces into a fresh table and compare semantically."""
        vmm = self.mercury.vmm
        live = vmm.page_info
        reference = PageInfoTable(self.machine.memory)
        stub = _UnchargedCpu()
        for domain_id in sorted(vmm.domains):
            domain = vmm.domains[domain_id]
            for aspace in domain.aspaces:
                if not live.pinned_map[aspace.pgd.frame]:
                    continue
                try:
                    reference.validate_pgd(stub, aspace, domain.domain_id)
                except PageValidationError as exc:
                    return VmmCorruption(
                        "page-info",
                        f"reference recompute rejected domain {domain_id}: "
                        f"{exc}")
        if not reference.semantically_equal(live):
            return VmmCorruption(
                "page-info", "column digest diverged from reference recompute")
        return None

    def _check_channels(self) -> Optional[VmmCorruption]:
        """A *connected* channel that is pending while masked delivers
        nothing, forever — unless someone is about to unmask it, which is
        why this is a double-observation check."""
        chans = self.mercury.vmm.events._channels
        for key in sorted(chans):
            ch = chans[key]
            suspect = (ch.peer_domain is not None
                       and ch.pending and ch.masked)
            verdict = self._suspect(
                ("channel", key), suspect,
                VmmCorruption("channel-masks",
                              f"channel {key} pending while masked"))
            if verdict is not None:
                return verdict
        return None

    def _check_backends(self) -> Optional[VmmCorruption]:
        """A backend that stays inside ``poll`` across scans is dead or
        spinning; re-entrant kicks silently bounce off ``_in_poll``."""
        for idx, back in enumerate(getattr(self.mercury, "_backends", [])):
            suspect = bool(getattr(back, "_in_poll", False))
            verdict = self._suspect(
                ("backend", idx), suspect,
                VmmCorruption(
                    "backend-liveness",
                    f"{type(back).__name__} wedged in poll"))
            if verdict is not None:
                return verdict
        return None

    def _check_balloons(self) -> Optional[VmmCorruption]:
        """Balloon rings must drain promptly — the elasticity controller
        blocks on them.  A ring whose advertised wakeup index sits past any
        reachable producer index has lost its doorbell (structural, caught
        immediately); posted extents that survive consecutive scans
        unconsumed mean the backend missed its kick (double-observation,
        since a scan can land between submit and poll)."""
        from repro.vmm.backend import BalloonBack
        for idx, back in enumerate(getattr(self.mercury, "_backends", [])):
            if not isinstance(back, BalloonBack):
                continue
            ring = back.ring
            if (ring.c.req_event > ring.c.req_prod + 1
                    or ring.c.rsp_event > ring.c.rsp_prod + 1):
                return VmmCorruption(
                    "balloon-ring",
                    f"BalloonBack[{idx}] doorbell lost: event indices "
                    f"(req {ring.c.req_event}, rsp {ring.c.rsp_event}) past "
                    f"any reachable producer "
                    f"(req {ring.c.req_prod}, rsp {ring.c.rsp_prod})")
            suspect = ring.has_requests() and not back._in_poll
            verdict = self._suspect(
                ("balloon", idx), suspect,
                VmmCorruption(
                    "balloon-ring",
                    f"BalloonBack[{idx}] extents posted but never consumed"))
            if verdict is not None:
                return verdict
        return None

    def _suspect(self, key: tuple, suspect: bool,
                 verdict: VmmCorruption) -> Optional[VmmCorruption]:
        if not suspect:
            self._suspects.pop(key, None)
            return None
        count = self._suspects.get(key, 0) + 1
        self._suspects[key] = count
        if count >= self.suspect_scans:
            return verdict
        return None

    def _rings(self):
        for idx, back in enumerate(getattr(self.mercury, "_backends", [])):
            for attr in ("ring", "tx_ring", "rx_ring"):
                ring = getattr(back, attr, None)
                if ring is not None:
                    yield f"{type(back).__name__}[{idx}].{attr}", ring
