"""Deterministic fault injection for the mode-switch pipeline (§8).

The paper's dependability argument (§4.3, §5.1) requires that a mode switch
never leaves the kernel half-transferred.  Proving that needs faults raised
*inside* the switch — not just resource exhaustion around it — at every
point where the pipeline touches shared state: the refcount gate, the SMP
rendezvous, the state-transfer loops, and the per-CPU hardware reloads.

Faults here are **deterministic**: a :class:`FaultPlan` arms a named
:class:`FaultSite` by *hit ordinal* (fire on the Nth time execution reaches
the site) and *count* (fire that many consecutive times, or forever).  No
wall-clock, no randomness — the same plan against the same workload injects
at exactly the same instruction, every run, which is what lets the crash
matrix bisect a rollback bug to a single site.

The pipeline hooks call :func:`fire`; it is a no-op (one ``is None`` test)
unless a plan is installed via :func:`install_plan` / :func:`injected`, so
production paths pay nothing.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro import trace


@dataclass(frozen=True)
class FaultSite:
    """One named seam in the switch pipeline where a fault can be armed."""

    name: str
    description: str
    #: the site only exists on multi-CPU machines (IPI/rendezvous seams)
    smp_only: bool = False
    #: the site is reached during a mode switch (matrix-testable); False
    #: for workload-time seams like the hypercall dispatcher
    during_switch: bool = True


# -- the switch-pipeline site catalogue (docs/architecture.md mirrors it) --

REFCOUNT_STUCK = "switch.refcount-stuck"
IPI_DROPPED = "smp.ipi-dropped"
IPI_DELAYED = "smp.ipi-delayed"
RENDEZVOUS_TIMEOUT = "smp.rendezvous-timeout"
TRANSFER_HYPERCALL = "transfer.hypercall-error"
PT_TRANSFER_ABORT = "transfer.pt-abort"
RELOAD_SECONDARY = "reload.secondary-failure"
#: workload-time seam: a transient failure in the mmu_update hypercall
MMU_UPDATE_TRANSIENT = "vmm.mmu-update-transient"

#: the registry the crash matrix iterates: every site reached by the
#: attach/detach pipeline
SWITCH_SITES: tuple[FaultSite, ...] = (
    FaultSite(REFCOUNT_STUCK,
              "the VO reference count reads as stuck non-zero at the "
              "commit gate (§5.1.1), forcing the retry path"),
    FaultSite(IPI_DROPPED,
              "the rendezvous IPI to a secondary CPU is lost (§5.4)",
              smp_only=True),
    FaultSite(IPI_DELAYED,
              "the rendezvous IPI to a secondary CPU is delivered late, "
              "stretching the gather phase", smp_only=True),
    FaultSite(RENDEZVOUS_TIMEOUT,
              "the shared-counter gather never completes", smp_only=True),
    FaultSite(TRANSFER_HYPERCALL,
              "a transient HypercallError strikes mid state transfer "
              "(§5.1.2)"),
    FaultSite(PT_TRANSFER_ABORT,
              "the page-table transfer aborts partway, leaving some "
              "address spaces transferred and some not"),
    FaultSite(RELOAD_SECONDARY,
              "a secondary CPU's hardware state reload fails (§5.1.3) "
              "after the control processor already committed its work",
              smp_only=True),
)

#: seams outside the switch pipeline (stress/storm tests use these)
WORKLOAD_SITES: tuple[FaultSite, ...] = (
    FaultSite(MMU_UPDATE_TRANSIENT,
              "the mmu_update hypercall fails transiently under workload",
              during_switch=False),
)

# -- in-attached-mode VMM corruption sites (ReHype-style, chaos campaign) --

VMM_PAGEINFO_CORRUPT = "vmm.pageinfo-corrupt"
VMM_CHANNEL_WEDGED = "vmm.event-channel-wedged"
VMM_BACKEND_DEAD = "vmm.backend-dead"
VMM_GRANT_POISONED = "vmm.grant-poisoned"
VMM_REFCOUNT_RUNAWAY = "vmm.refcount-runaway"
#: compat alias — the site predates the balloon *driver* (memory
#: elasticity); the old name collided with that vocabulary
VMM_REFCOUNT_BALLOON = VMM_REFCOUNT_RUNAWAY
VMM_TRAP_VECTOR_DROPPED = "vmm.trap-vector-dropped"
VMM_BALLOON_WEDGED = "vmm.balloon-ring-wedged"

#: corruption of the *attached* VMM's own structures — not switch-pipeline
#: seams.  These are state corruptors injected by :func:`inject_vmm_fault`
#: while a workload runs; the watchdog must notice and recovery must
#: microreboot the VMM under the live guest (ReHype, PAPERS.md)
VMM_SITES: tuple[FaultSite, ...] = (
    FaultSite(VMM_PAGEINFO_CORRUPT,
              "a PageInfoTable column cell (type or type_count) is "
              "silently corrupted, poisoning later validations",
              during_switch=False),
    FaultSite(VMM_CHANNEL_WEDGED,
              "a connected event channel is left pending+masked forever, "
              "so its upcall never runs again", during_switch=False),
    FaultSite(VMM_BACKEND_DEAD,
              "a split-driver backend wedges inside poll (its re-entry "
              "guard sticks), going dead to all future kicks",
              during_switch=False),
    FaultSite(VMM_GRANT_POISONED,
              "a grant entry is poisoned: retargeted at a VMM-owned frame "
              "or given an impossible negative map count",
              during_switch=False),
    FaultSite(VMM_REFCOUNT_RUNAWAY,
              "the switch-gating VO reference count runs away upward, "
              "wedging every future mode-switch commit", during_switch=False),
    FaultSite(VMM_TRAP_VECTOR_DROPPED,
              "a registered trap-table vector vanishes, so the VMM "
              "silently drops that interrupt", during_switch=False),
    FaultSite(VMM_BALLOON_WEDGED,
              "a balloon backend's ring wedges: the deflate doorbell is "
              "lost (req_event pushed past any reachable producer index), "
              "so posted extents are never consumed", during_switch=False),
)

ALL_SITES: tuple[FaultSite, ...] = SWITCH_SITES + WORKLOAD_SITES + VMM_SITES
_SITE_BY_NAME = {s.name: s for s in ALL_SITES}


def site(name: str) -> FaultSite:
    """Look up a site by name (KeyError on an unknown site)."""
    return _SITE_BY_NAME[name]


@dataclass
class ArmedFault:
    """One armed site: deterministic trigger bookkeeping."""

    site: str
    #: fire starting at this hit ordinal (1 = the first time the site runs)
    trigger_at: int = 1
    #: how many consecutive hits fire; ``None`` = every hit from trigger_at
    times: Optional[int] = 1
    #: restrict to one CPU's traversal of the site (None = any CPU)
    cpu_id: Optional[int] = None
    hits: int = 0
    fired: int = 0

    def matches(self, cpu_id: Optional[int]) -> bool:
        return self.cpu_id is None or self.cpu_id == cpu_id

    def should_fire(self) -> bool:
        """Record one hit; True if this hit is within the armed window."""
        self.hits += 1
        if self.hits < self.trigger_at:
            return False
        if self.times is not None and self.fired >= self.times:
            return False
        self.fired += 1
        return True


class FaultPlan:
    """A deterministic set of armed faults, installable as the active plan."""

    def __init__(self):
        self._armed: dict[str, list[ArmedFault]] = {}
        self.injected = 0
        #: (site, cpu_id) log of every firing, in order — the audit trail
        self.log: list[tuple[str, Optional[int]]] = []

    def arm(self, site_name: str, trigger_at: int = 1,
            times: Optional[int] = 1,
            cpu_id: Optional[int] = None) -> ArmedFault:
        if site_name not in _SITE_BY_NAME:
            raise KeyError(f"unknown fault site {site_name!r}")
        fault = ArmedFault(site_name, trigger_at=trigger_at, times=times,
                           cpu_id=cpu_id)
        self._armed.setdefault(site_name, []).append(fault)
        return fault

    def disarm(self, site_name: str) -> None:
        self._armed.pop(site_name, None)

    def disarm_all(self) -> None:
        self._armed.clear()

    def armed_sites(self) -> list[str]:
        return sorted(self._armed)

    def check(self, site_name: str, cpu_id: Optional[int] = None) -> bool:
        """Record one traversal of ``site_name``; True if a fault fires."""
        fired = False
        for fault in self._armed.get(site_name, ()):
            if fault.matches(cpu_id) and fault.should_fire():
                fired = True
        if fired:
            self.injected += 1
            self.log.append((site_name, cpu_id))
            global _INJECTED_TOTAL
            _INJECTED_TOTAL += 1
            trace.instant(cpu_id if cpu_id is not None else 0,
                          "fault.injected", site=site_name)
        return fired


# ---------------------------------------------------------------------------
# the active plan (the simulator is single-threaded; module scope is the
# natural "machine-wide" scope)
# ---------------------------------------------------------------------------

_ACTIVE: Optional[FaultPlan] = None
#: lifetime count of injected faults, monotonic across plans — what the
#: metrics layer snapshots (plans come and go; snapshots are diffed)
_INJECTED_TOTAL = 0


def install_plan(plan: FaultPlan) -> None:
    global _ACTIVE
    _ACTIVE = plan


def clear_plan() -> None:
    global _ACTIVE
    _ACTIVE = None


def active_plan() -> Optional[FaultPlan]:
    return _ACTIVE


def injected_total() -> int:
    return _INJECTED_TOTAL


def fire(site_name: str, cpu_id: Optional[int] = None) -> bool:
    """The pipeline hook: does the active plan (if any) inject here, now?"""
    if _ACTIVE is None:
        return False
    return _ACTIVE.check(site_name, cpu_id)


@contextlib.contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of a with-block (tests' main door)."""
    install_plan(plan)
    try:
        yield plan
    finally:
        clear_plan()


# ---------------------------------------------------------------------------
# VMM-state corruptors (the chaos campaign's injection arm)
# ---------------------------------------------------------------------------
#
# Unlike the switch-pipeline sites — which raise an exception *at* a seam the
# pipeline traverses — VMM sites corrupt resident state in place and return.
# Nothing fails at injection time; the damage is latent until the watchdog
# scan (or a later workload touch) trips over it.  ``variant`` selects the
# victim deterministically (index-mod over the eligible set) so hypothesis
# can sweep single-field corruptions without randomness.

#: how far the runaway refcount jumps (well past the watchdog threshold)
REFCOUNT_RUNAWAY_AMOUNT = 1000
REFCOUNT_BALLOON_AMOUNT = REFCOUNT_RUNAWAY_AMOUNT  # compat alias


def _record_injection(site_name: str, cpu_id: Optional[int] = None) -> None:
    """Mirror :meth:`FaultPlan.check`'s bookkeeping for a direct injection:
    the lifetime counter, the active plan's audit log, and the trace mark."""
    global _INJECTED_TOTAL
    _INJECTED_TOTAL += 1
    if _ACTIVE is not None:
        _ACTIVE.injected += 1
        _ACTIVE.log.append((site_name, cpu_id))
    trace.instant(cpu_id if cpu_id is not None else 0,
                  "fault.injected", site=site_name)


def inject_vmm_fault(site_name: str, mercury, variant: int = 0) -> str:
    """Corrupt one piece of the *attached* VMM's state in place.

    Returns a short description of what was corrupted (victim + field) for
    episode logs.  Raises :class:`VMMError` when the stack has no eligible
    victim for the site (e.g. no connected channel to wedge) and
    ``ValueError`` on an unknown VMM site — both before any damage is done.
    """
    from repro.errors import VMMError

    vmm = mercury.vmm
    if site_name == VMM_PAGEINFO_CORRUPT:
        pi = vmm.page_info
        victim = variant % len(pi.type_count)
        if (variant // len(pi.type_count)) % 2:
            pi.type[victim] ^= 1
            what = f"type[{victim}] bit-flipped"
        else:
            pi.type_count[victim] += 7
            what = f"type_count[{victim}] skewed"
    elif site_name == VMM_CHANNEL_WEDGED:
        chans = vmm.events._channels
        connected = [chans[k] for k in sorted(chans)
                     if chans[k].peer_domain is not None]
        if not connected:
            raise VMMError("no connected event channel to wedge")
        ch = connected[variant % len(connected)]
        ch.masked = True
        ch.pending = True
        what = f"channel ({ch.owner_domain},{ch.port}) wedged pending+masked"
    elif site_name == VMM_BACKEND_DEAD:
        backends = getattr(mercury, "_backends", [])
        if not backends:
            raise VMMError("no split-driver backend to kill")
        back = backends[variant % len(backends)]
        back._in_poll = True
        what = f"{type(back).__name__} wedged in poll"
    elif site_name == VMM_GRANT_POISONED:
        entries = vmm.grants._entries
        live = [entries[k] for k in sorted(entries) if not entries[k].revoked]
        if not live:
            raise VMMError("no live grant entry to poison")
        entry = live[variant % len(live)]
        if (variant // max(1, len(live))) % 2:
            entry.active_maps = -3
            what = (f"grant ({entry.granting_domain},{entry.ref}) "
                    f"active_maps poisoned")
        else:
            entry.frame = vmm._reserved_frames[0]
            what = (f"grant ({entry.granting_domain},{entry.ref}) retargeted "
                    f"at a VMM frame")
    elif site_name == VMM_REFCOUNT_RUNAWAY:
        if mercury.virtual_vo is None:
            raise VMMError("no virtual VO whose refcount could run away")
        mercury.virtual_vo.refcount += REFCOUNT_RUNAWAY_AMOUNT
        what = f"virtual VO refcount +{REFCOUNT_RUNAWAY_AMOUNT}"
    elif site_name == VMM_BALLOON_WEDGED:
        from repro.vmm.backend import BalloonBack
        balloons = [b for b in getattr(mercury, "_backends", [])
                    if isinstance(b, BalloonBack)]
        if not balloons:
            raise VMMError("no balloon backend whose ring could wedge")
        back = balloons[variant % len(balloons)]
        ring = back.ring
        if (variant // max(1, len(balloons))) % 2:
            ring.c.rsp_event = ring.c.rsp_prod + 10 * ring.size
            what = (f"balloon ring completion doorbell lost (rsp_event "
                    f"pushed to {ring.c.rsp_event})")
        else:
            ring.c.req_event = ring.c.req_prod + 10 * ring.size
            what = (f"balloon ring deflate doorbell lost (req_event "
                    f"pushed to {ring.c.req_event})")
    elif site_name == VMM_TRAP_VECTOR_DROPPED:
        if mercury.domain is None:
            raise VMMError("no driver domain whose trap table could decay")
        table = mercury.domain.trap_table
        vectors = sorted(v for v in mercury.kernel.idt.gates if v in table)
        if not vectors:
            raise VMMError("no registered trap vector to drop")
        vector = vectors[variant % len(vectors)]
        del table[vector]
        what = f"trap vector {vector:#x} dropped"
    else:
        raise ValueError(f"not a VMM fault site: {site_name!r}")
    _record_injection(site_name)
    return what
