"""The system-call table.

Workloads enter the kernel exclusively through
:meth:`repro.guestos.kernel.Kernel.syscall`, which dispatches here.  Each
handler receives ``(kernel, cpu, task, *args)``.  The entry/exit costs (and
their native/virtual difference) are charged by the kernel's VO before and
after dispatch, so this table contains only the service logic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import SyscallError

if TYPE_CHECKING:
    from repro.guestos.kernel import Kernel
    from repro.guestos.process import Task
    from repro.hw.cpu import Cpu


def sys_fork(kernel: "Kernel", cpu: "Cpu", task: "Task") -> int:
    child = kernel.procs.fork(cpu, task)
    return child.pid


def sys_exec(kernel: "Kernel", cpu: "Cpu", task: "Task", name: str,
             image_pages: int) -> int:
    kernel.procs.exec(cpu, task, name, image_pages)
    return 0


def sys_exit(kernel: "Kernel", cpu: "Cpu", task: "Task", code: int) -> int:
    kernel.procs.exit(cpu, task, code)
    return 0


def sys_wait(kernel: "Kernel", cpu: "Cpu", task: "Task") -> tuple[int, int]:
    return kernel.procs.wait(cpu, task)


def sys_mmap(kernel: "Kernel", cpu: "Cpu", task: "Task", length: int,
             populate: bool = False, writable: bool = True) -> int:
    return kernel.vmem.mmap(cpu, task, length, populate=populate,
                            writable=writable)


def sys_munmap(kernel: "Kernel", cpu: "Cpu", task: "Task", base: int,
               length: int) -> int:
    kernel.vmem.munmap(cpu, task, base, length)
    return 0


def sys_mprotect(kernel: "Kernel", cpu: "Cpu", task: "Task", base: int,
                 length: int, writable: bool) -> int:
    kernel.vmem.mprotect(cpu, task, base, length, writable)
    return 0


def sys_brk(kernel: "Kernel", cpu: "Cpu", task: "Task", new_brk: int) -> int:
    return kernel.vmem.brk(cpu, task, new_brk)


def sys_sched_yield(kernel: "Kernel", cpu: "Cpu", task: "Task") -> int:
    kernel.scheduler.yield_to_next(cpu)
    return 0


def sys_getpid(kernel: "Kernel", cpu: "Cpu", task: "Task") -> int:
    return task.pid


# -- filesystem --------------------------------------------------------------

def sys_open(kernel: "Kernel", cpu: "Cpu", task: "Task", path: str,
             create: bool = False) -> int:
    kernel.fs.open_check(cpu, path, create)
    fd = task.next_fd
    task.next_fd += 1
    task.fds[fd] = [path, 0]
    return fd


def sys_close(kernel: "Kernel", cpu: "Cpu", task: "Task", fd: int) -> int:
    if fd in task.pipe_fds:
        kernel.ipc.close_pipe_fd(task, fd)
        return 0
    if fd not in task.fds:
        raise SyscallError("EBADF", f"close of bad fd {fd}")
    del task.fds[fd]
    return 0


def sys_read(kernel: "Kernel", cpu: "Cpu", task: "Task", fd: int,
             nbytes: int = 0) -> object:
    if fd in task.pipe_fds:
        return kernel.ipc.pipe_read(cpu, task, fd)
    path, offset = _fd(task, fd)
    data, advanced = kernel.fs.read(cpu, path, offset, nbytes)
    task.fds[fd][1] = offset + advanced
    return data


def sys_write(kernel: "Kernel", cpu: "Cpu", task: "Task", fd: int,
              data: object, nbytes: int) -> int:
    if fd in task.pipe_fds:
        return kernel.ipc.pipe_write(cpu, task, fd, data, nbytes)
    path, offset = _fd(task, fd)
    advanced = kernel.fs.write(cpu, path, offset, data, nbytes)
    task.fds[fd][1] = offset + advanced
    return advanced


def sys_pipe(kernel: "Kernel", cpu: "Cpu", task: "Task") -> tuple[int, int]:
    return kernel.ipc.create_pipe(cpu, task)


def sys_sigaction(kernel: "Kernel", cpu: "Cpu", task: "Task", sig: int,
                  handler) -> int:
    kernel.ipc.register_handler(task, sig, handler)
    return 0


def sys_kill(kernel: "Kernel", cpu: "Cpu", task: "Task", pid: int,
             sig: int) -> int:
    kernel.ipc.kill(cpu, task, pid, sig)
    return 0


def sys_fsync(kernel: "Kernel", cpu: "Cpu", task: "Task", fd: int) -> int:
    path, _ = _fd(task, fd)
    kernel.fs.fsync(cpu, path)
    return 0


def sys_unlink(kernel: "Kernel", cpu: "Cpu", task: "Task", path: str) -> int:
    kernel.fs.unlink(cpu, path)
    return 0


def sys_stat(kernel: "Kernel", cpu: "Cpu", task: "Task", path: str) -> dict:
    return kernel.fs.stat(cpu, path)


def sys_lseek(kernel: "Kernel", cpu: "Cpu", task: "Task", fd: int,
              offset: int) -> int:
    _fd(task, fd)
    task.fds[fd][1] = offset
    return offset


# -- network ------------------------------------------------------------------

def sys_socket(kernel: "Kernel", cpu: "Cpu", task: "Task", proto: str) -> int:
    return kernel.net.socket(cpu, proto)


def sys_sendto(kernel: "Kernel", cpu: "Cpu", task: "Task", sock: int,
               dst: str, nbytes: int, payload: object = None) -> int:
    return kernel.net.sendto(cpu, sock, dst, nbytes, payload)


def sys_recvfrom(kernel: "Kernel", cpu: "Cpu", task: "Task", sock: int,
                 block: bool = True) -> object:
    return kernel.net.recvfrom(cpu, sock, block=block)


def _fd(task: "Task", fd: int) -> tuple[str, int]:
    try:
        path, offset = task.fds[fd]
    except KeyError:
        raise SyscallError("EBADF", f"bad fd {fd}") from None
    return path, offset


#: name -> handler
SYSCALL_TABLE: dict[str, Callable] = {
    "fork": sys_fork,
    "exec": sys_exec,
    "exit": sys_exit,
    "wait": sys_wait,
    "mmap": sys_mmap,
    "munmap": sys_munmap,
    "mprotect": sys_mprotect,
    "brk": sys_brk,
    "sched_yield": sys_sched_yield,
    "getpid": sys_getpid,
    "open": sys_open,
    "close": sys_close,
    "read": sys_read,
    "write": sys_write,
    "pipe": sys_pipe,
    "sigaction": sys_sigaction,
    "kill": sys_kill,
    "fsync": sys_fsync,
    "unlink": sys_unlink,
    "stat": sys_stat,
    "lseek": sys_lseek,
    "socket": sys_socket,
    "sendto": sys_sendto,
    "recvfrom": sys_recvfrom,
}
