"""Pipes and signals — the IPC surface lmbench's benchmarks exercise.

lmbench's context-switch benchmark passes a token through pipes, and its
fault benchmarks install SIGSEGV handlers.  Implementing both for real
keeps the workloads structurally faithful instead of charging synthetic
costs.

Pipes are classic byte channels with bounded capacity: write fills, read
drains, ends close independently, EPIPE/EOF semantics as on Unix.  Fork
shares the pipe (both ends reference the same object); the data lives in
kernel memory.

Signals are the minimal delivery machinery the benchmarks need: per-task
handler tables, synchronous delivery on faults (SIGSEGV), and a kill()
syscall for SIGTERM-style termination.  Unhandled fatal signals terminate
the task.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import SyscallError

if TYPE_CHECKING:
    from repro.guestos.kernel import Kernel
    from repro.guestos.process import Task
    from repro.hw.cpu import Cpu

#: default pipe capacity, bytes (Linux's classic 64 KiB)
PIPE_CAPACITY = 65536

# signal numbers (the subset the workloads use)
SIGSEGV = 11
SIGTERM = 15
SIGUSR1 = 10

#: cycles to deliver one signal (frame setup + handler dispatch)
CYC_SIGNAL_DELIVERY = 1_400


class Pipe:
    """One pipe: a bounded byte channel with independent end lifetimes."""

    def __init__(self, capacity: int = PIPE_CAPACITY):
        self.capacity = capacity
        self._chunks: deque[object] = deque()
        self._bytes = 0
        self.read_open = True
        self.write_open = True
        self.total_written = 0

    def write(self, data: object, nbytes: int) -> int:
        if not self.read_open:
            raise SyscallError("EPIPE", "write to a pipe with no reader")
        if not self.write_open:
            raise SyscallError("EBADF", "write end closed")
        if self._bytes + nbytes > self.capacity:
            raise SyscallError("EAGAIN", "pipe full")
        self._chunks.append((data, nbytes))
        self._bytes += nbytes
        self.total_written += nbytes
        return nbytes

    def read(self) -> tuple[Optional[object], int]:
        """Read one chunk; (None, 0) means EOF (writer gone, drained)."""
        if not self.read_open:
            raise SyscallError("EBADF", "read end closed")
        if not self._chunks:
            if not self.write_open:
                return None, 0          # EOF
            raise SyscallError("EAGAIN", "pipe empty")
        data, nbytes = self._chunks.popleft()
        self._bytes -= nbytes
        return data, nbytes

    @property
    def buffered_bytes(self) -> int:
        return self._bytes


@dataclass
class SignalState:
    """Per-task signal handling state."""

    handlers: dict[int, Callable] = field(default_factory=dict)
    delivered: int = 0
    pending_fatal: Optional[int] = None


class IpcManager:
    """Kernel-side pipe and signal bookkeeping."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.pipes_created = 0
        self.signals_delivered = 0

    # ------------------------------------------------------------------
    # pipes
    # ------------------------------------------------------------------

    def create_pipe(self, cpu: "Cpu", task: "Task") -> tuple[int, int]:
        """pipe(): returns (read fd, write fd)."""
        cpu.charge(cpu.cost.cyc_fs_op_fixed // 2)
        pipe = Pipe()
        rfd = task.next_fd
        wfd = task.next_fd + 1
        task.next_fd += 2
        task.pipe_fds[rfd] = (pipe, "r")
        task.pipe_fds[wfd] = (pipe, "w")
        self.pipes_created += 1
        return rfd, wfd

    def pipe_write(self, cpu: "Cpu", task: "Task", fd: int, data: object,
                   nbytes: int) -> int:
        pipe, end = self._pipe_end(task, fd)
        if end != "w":
            raise SyscallError("EBADF", f"fd {fd} is the read end")
        # the copy into the kernel buffer
        cpu.charge(cpu.cost.cyc_mem_touch_per_kb * max(1, nbytes // 1024))
        return pipe.write(data, nbytes)

    def pipe_read(self, cpu: "Cpu", task: "Task", fd: int) -> object:
        pipe, end = self._pipe_end(task, fd)
        if end != "r":
            raise SyscallError("EBADF", f"fd {fd} is the write end")
        data, nbytes = pipe.read()
        if nbytes:
            cpu.charge(cpu.cost.cyc_mem_touch_per_kb * max(1, nbytes // 1024))
        return data

    def close_pipe_fd(self, task: "Task", fd: int) -> None:
        pipe, end = self._pipe_end(task, fd)
        del task.pipe_fds[fd]
        # an end stays open while any task still holds it
        still_held = any(p is pipe and e == end
                         for t in self.kernel.procs.tasks.values()
                         for p, e in t.pipe_fds.values())
        if not still_held:
            if end == "r":
                pipe.read_open = False
            else:
                pipe.write_open = False

    def _pipe_end(self, task: "Task", fd: int) -> tuple[Pipe, str]:
        try:
            return task.pipe_fds[fd]
        except KeyError:
            raise SyscallError("EBADF", f"fd {fd} is not a pipe") from None

    # ------------------------------------------------------------------
    # signals
    # ------------------------------------------------------------------

    def register_handler(self, task: "Task", sig: int,
                         handler: Callable) -> None:
        task.signals.handlers[sig] = handler

    def deliver(self, cpu: "Cpu", task: "Task", sig: int,
                info: object = None) -> bool:
        """Deliver ``sig`` to ``task``.  Returns True if a handler ran;
        False means the default (fatal) action applies.  The delivery cost
        (signal frame setup + handler dispatch) is only paid when a
        handler actually runs; the default action is a cheap kernel-side
        decision."""
        self.signals_delivered += 1
        task.signals.delivered += 1
        handler = task.signals.handlers.get(sig)
        if handler is not None:
            cpu.charge(CYC_SIGNAL_DELIVERY)
            handler(task, sig, info)
            return True
        task.signals.pending_fatal = sig
        return False

    def kill(self, cpu: "Cpu", sender: "Task", pid: int, sig: int) -> None:
        target = self.kernel.procs.get(pid)
        handled = self.deliver(cpu, target, sig)
        if not handled and sig in (SIGTERM, SIGSEGV):
            # default action: terminate the target
            self.kernel.procs.exit(cpu, target, 128 + sig)
