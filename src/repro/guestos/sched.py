"""The kernel CPU scheduler: a round-robin runqueue with O(1) pick.

A context switch is virtualization-sensitive twice over: the CR3 load and
the kernel-stack switch both go through the VO (under Xen they become the
``new_baseptr`` and ``stack_switch`` hypercalls — the source of the 3x
context-switch gap in Table 1).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.guestos.process import Task, TaskState

if TYPE_CHECKING:
    from repro.guestos.kernel import Kernel
    from repro.hw.cpu import Cpu


class Scheduler:
    """Round-robin over READY tasks."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.runqueue: deque[Task] = deque()
        self.current: Optional[Task] = None
        self.switches = 0

    def enqueue(self, task: Task) -> None:
        task.state = TaskState.READY
        if task not in self.runqueue:
            self.runqueue.append(task)

    def dequeue(self, task: Task) -> None:
        try:
            self.runqueue.remove(task)
        except ValueError:
            pass
        if self.current is task:
            self.current = None

    def pick_next(self) -> Optional[Task]:
        while self.runqueue:
            task = self.runqueue.popleft()
            if task.state == TaskState.READY:
                return task
        return None

    def context_switch(self, cpu: "Cpu", to_task: Task) -> None:
        """Switch ``cpu`` to ``to_task``: scheduler bookkeeping, kernel
        stack switch, address-space switch."""
        kernel = self.kernel
        cpu.charge(cpu.cost.cyc_sched_pick)
        if kernel.machine.config.num_cpus > 1:
            cpu.charge(cpu.cost.cyc_smp_ctx_extra)
        kernel.smp_lock(cpu)
        prev = self.current
        if prev is not None and prev.state == TaskState.RUNNING:
            prev.state = TaskState.READY
            if prev not in self.runqueue:
                self.runqueue.append(prev)
            # the interrupt frame that suspended `prev` caches the kernel
            # segment selectors (and with them the current privilege level)
            prev.stack_cached_selector_dpl = kernel.vo.data.kernel_segment_dpl
        # the incoming task leaves the runqueue: it is now *running*
        try:
            self.runqueue.remove(to_task)
        except ValueError:
            pass
        kernel.vo.stack_switch(cpu, to_task)
        kernel.vo.write_cr3(cpu, to_task.aspace.pgd_frame)
        # the incoming task immediately re-touches its resident code/stack
        # pages through the cold TLB
        cpu.charge(cpu.cost.cyc_tlb_refill_per_page
                   * cpu.cost.cyc_ctx_resident_pages)
        to_task.state = TaskState.RUNNING
        self.current = to_task
        self.switches += 1

    def ensure_running(self, cpu: "Cpu", task: Task) -> None:
        """Make ``task`` the current task if it is not already — the
        re-entry path the simulation scheduler uses when it resumes a
        workload whose guest process was switched away between slices.
        Enters the kernel (the resume is user-initiated, like any context
        switch) and pays the full switch cost; a no-op when ``task`` is
        already current or has exited."""
        if task is self.current or task.state == TaskState.ZOMBIE:
            return
        vo = self.kernel.vo
        vo.kernel_entry(cpu)
        try:
            self.context_switch(cpu, task)
        finally:
            vo.kernel_exit(cpu)

    def yield_to_next(self, cpu: "Cpu") -> Optional[Task]:
        """sched_yield: move on to the next READY task (if any)."""
        nxt = self.pick_next()
        if nxt is None or nxt is self.current:
            if nxt is not None:
                nxt.state = TaskState.RUNNING
                self.current = nxt
            return self.current
        self.context_switch(cpu, nxt)
        return nxt
