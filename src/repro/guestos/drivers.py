"""Native device drivers: direct hardware access through the VO.

The block driver submits requests straight to the disk controller and
fields its completion interrupts; the network driver hands frames to the
NIC and drains its receive queue.  These are the drivers a native OS — or
the *driver domain* under Xen/Mercury, which keeps direct device access
(§5.2) — uses.  DomainU guests use :mod:`repro.guestos.splitio` instead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import DeviceError
from repro.hw.devices import BlockRequest, Packet

if TYPE_CHECKING:
    from repro.guestos.kernel import Kernel
    from repro.hw.cpu import Cpu


class NativeBlockDriver:
    """Direct-attached disk driver (synchronous request API over the
    asynchronous device, as the kernel's block layer presents it)."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.irqs_handled = 0

    def read_block(self, cpu: "Cpu", block: int) -> object:
        req = BlockRequest(op="read", block=block)
        self.kernel.vo.disk_submit(cpu, req)
        self.kernel.wait_for(cpu, lambda: req.done)
        return req.result

    def write_block(self, cpu: "Cpu", block: int, data: object) -> None:
        req = BlockRequest(op="write", block=block, data=data)
        self.kernel.vo.disk_submit(cpu, req)
        self.kernel.wait_for(cpu, lambda: req.done)

    def write_blocks(self, cpu: "Cpu", blocks: list[tuple[int, object]]) -> None:
        """Batch write: submit everything, then wait once — requests
        overlap at the device, so a sorted batch pays one head move."""
        reqs = [BlockRequest(op="write", block=b, data=d) for b, d in blocks]
        for req in reqs:
            self.kernel.vo.disk_submit(cpu, req)
        self.kernel.wait_for(cpu, lambda: all(r.done for r in reqs))

    def flush(self, cpu: "Cpu") -> None:
        """Barrier: nothing buffered in this driver, so nothing to do
        beyond the controller cost."""
        cpu.charge(cpu.cost.cyc_disk_submit)

    def irq(self, cpu: "Cpu", vector: int) -> None:
        """Disk completion interrupt: acknowledge completions."""
        cpu.charge(cpu.cost.cyc_disk_irq)
        disk = self.kernel.machine.disk
        while disk.completed:
            disk.completed.popleft()
            self.irqs_handled += 1


class NativeNetDriver:
    """Direct-attached NIC driver."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.irqs_handled = 0

    def transmit(self, cpu: "Cpu", pkt: Packet, more: bool = False) -> None:
        # ``more`` is the stack's batching hint; a direct-attached NIC has
        # no doorbell worth deferring, so it is ignored here
        self.kernel.vo.net_transmit(cpu, pkt)

    def irq(self, cpu: "Cpu", vector: int) -> None:
        """NIC receive interrupt: push frames into the network stack."""
        nic = self.kernel.machine.nic
        while nic.rx_queue:
            pkt = nic.rx_queue.popleft()
            self.irqs_handled += 1
            self.kernel.net_rx(cpu, pkt)
