"""Virtual memory: vm areas, demand paging, copy-on-write, mmap.

The fault path here is the one lmbench's "Page Fault" and "Prot Fault" rows
measure, and mmap/munmap is the "Mmap LT" row.  All PTE manipulation goes
through the installed VO; frame refcounts (for COW sharing) are the
kernel's own bookkeeping and mode-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional

from repro.errors import PageFault, SyscallError
from repro.hw.paging import Pte
from repro.params import PAGE_SIZE, PT_ENTRIES

if TYPE_CHECKING:
    from repro.guestos.kernel import Kernel
    from repro.guestos.process import Task
    from repro.hw.cpu import Cpu

#: base of the mmap area in each address space
MMAP_BASE = 0x4000_0000
#: base of the text/data image
IMAGE_BASE = 0x0040_0000


@dataclass
class Vma:
    """One virtual memory area."""

    start: int
    end: int                  # exclusive
    writable: bool = True
    user: bool = True
    name: str = "anon"

    def contains(self, vaddr: int) -> bool:
        return self.start <= vaddr < self.end

    @property
    def pages(self) -> int:
        return (self.end - self.start) // PAGE_SIZE

    def clone(self) -> "Vma":
        return replace(self)


class VirtualMemory:
    """The kernel's VM subsystem."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        #: frame -> share count for COW (only frames mapped by tasks)
        self._frame_refs: dict[int, int] = {}
        self.minor_faults = 0
        self.cow_breaks = 0
        self.prot_faults = 0
        self.oom_kills = 0

    # ------------------------------------------------------------------
    # OOM handling
    # ------------------------------------------------------------------

    def _alloc_or_reclaim(self, cpu: "Cpu", task: "Task") -> int:
        """Allocate a frame; under memory pressure, run the OOM killer:
        sacrifice the largest *other* task and retry (Linux's badness
        heuristic, simplified to resident size)."""
        from repro.errors import OutOfMemory
        mem = self.kernel.machine.memory
        while True:
            try:
                return mem.alloc(self.kernel.owner_id)
            except OutOfMemory:
                victim = self._pick_oom_victim(exclude=task)
                if victim is None:
                    raise
                cpu.charge(cpu.cost.cyc_fault_handler_fixed)
                self.oom_kills += 1
                self.kernel.procs.exit(cpu, victim, 137)  # 128 + SIGKILL

    def _pick_oom_victim(self, exclude) -> "Task":
        from repro.guestos.process import TaskState
        candidates = [
            t for t in self.kernel.procs.live_tasks()
            if t is not exclude and t is not self.kernel.scheduler.current
            and t.pid != 1  # init is unkillable
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda t: t.aspace.mapped_count())

    # ------------------------------------------------------------------
    # frame sharing bookkeeping
    # ------------------------------------------------------------------

    def claim_frame(self, frame: int) -> None:
        self._frame_refs[frame] = 1

    def share_frame(self, frame: int) -> None:
        self._frame_refs[frame] = self._frame_refs.get(frame, 1) + 1

    def release_frame(self, cpu: "Cpu", frame: int) -> None:
        refs = self._frame_refs.get(frame, 1) - 1
        if refs <= 0:
            self._frame_refs.pop(frame, None)
            self.kernel.machine.memory.free(frame)
        else:
            self._frame_refs[frame] = refs

    def release_frames(self, cpu: "Cpu", frames: list) -> None:
        """Drop one reference on each of ``frames`` (teardown/munmap bulk
        path — same semantics as :meth:`release_frame` per frame, without
        a method dispatch per page)."""
        frame_refs = self._frame_refs
        get = frame_refs.get
        pop = frame_refs.pop
        free = self.kernel.machine.memory.free
        for frame in frames:
            refs = get(frame, 1) - 1
            if refs <= 0:
                pop(frame, None)
                free(frame)
            else:
                frame_refs[frame] = refs

    def frame_refs(self, frame: int) -> int:
        return self._frame_refs.get(frame, 0)

    # ------------------------------------------------------------------
    # mapping
    # ------------------------------------------------------------------

    def map_image(self, cpu: "Cpu", task: "Task", pages: int) -> None:
        """Map and populate a process image (text+data+stack), as exec
        does.  Populated eagerly — image pages are read from the (cached)
        executable, not demand-zeroed."""
        vma = Vma(IMAGE_BASE, IMAGE_BASE + pages * PAGE_SIZE, name="image")
        task.vmas.append(vma)
        mem = self.kernel.machine.memory
        # per-page: one frame alloc plus copying the image page from the
        # (warm) page cache; charged in one lump for the populated range
        per_page = cpu.cost.cyc_page_alloc + cpu.cost.cyc_mem_touch_per_kb * 4
        frames = mem.alloc_many(self.kernel.owner_id, pages)
        cpu.charge(per_page * pages)
        self._frame_refs.update(dict.fromkeys(frames, 1))
        base = vma.start
        updates = [(base + i * PAGE_SIZE, Pte(frame=frames[i]))
                   for i in range(pages)]
        self.kernel.vo.apply_pte_region(cpu, task.aspace, updates)

    def mmap(self, cpu: "Cpu", task: "Task", length: int, *,
             writable: bool = True, populate: bool = False,
             name: str = "anon") -> int:
        """Create a new anonymous mapping; returns its base address."""
        if length <= 0:
            raise SyscallError("EINVAL", "mmap length must be positive")
        pages = (length + PAGE_SIZE - 1) // PAGE_SIZE
        base = self._find_hole(task, pages)
        vma = Vma(base, base + pages * PAGE_SIZE, writable=writable, name=name)
        task.vmas.append(vma)
        if populate:
            mem = self.kernel.machine.memory
            # per-page: one frame alloc plus MAP_POPULATE zeroing/copying
            # the page in; charged in one lump for the whole range
            per_page = (cpu.cost.cyc_page_alloc
                        + cpu.cost.cyc_mem_touch_per_kb * 4)
            frames = mem.alloc_many(self.kernel.owner_id, pages)
            cpu.charge(per_page * pages)
            self._frame_refs.update(dict.fromkeys(frames, 1))
            updates = [(base + i * PAGE_SIZE,
                        Pte(frame=frames[i], writable=writable))
                       for i in range(pages)]
            self.kernel.vo.apply_pte_region(cpu, task.aspace, updates)
        return base

    def munmap(self, cpu: "Cpu", task: "Task", base: int, length: int) -> None:
        pages = (length + PAGE_SIZE - 1) // PAGE_SIZE
        end = base + pages * PAGE_SIZE
        vma = self._vma_at(task, base)
        if vma is None or vma.start != base or vma.end != end:
            raise SyscallError("EINVAL", f"munmap of unmapped range {base:#x}")
        task.vmas.remove(vma)
        updates = []
        freed = []
        # walk the range leaf-by-leaf instead of a full table walk per page
        pgd_entries = task.aspace.pgd.entries
        vpn = base // PAGE_SIZE
        leaf = None
        leaf_idx = -1
        for i in range(pages):
            pgd_idx, idx = divmod(vpn + i, PT_ENTRIES)
            if pgd_idx != leaf_idx:
                leaf = pgd_entries.get(pgd_idx)
                leaf_idx = pgd_idx
            pte = leaf.entries.get(idx) if leaf is not None else None
            if pte is not None and pte.present:
                updates.append((base + i * PAGE_SIZE, None))
                freed.append(pte.frame)
        self.kernel.vo.apply_pte_region(cpu, task.aspace, updates)
        self.release_frames(cpu, freed)

    def steal_page(self, cpu: "Cpu", task: "Task", vaddr: int) -> Optional[int]:
        """Balloon-driver path: detach one mapped page from ``task`` and
        return its frame *without* freeing it — the caller (the balloon
        frontend) surrenders the frame to the host through the grant
        mechanism, so ownership must still read as this kernel when the
        backend verifies the grant.  The vaddr stays inside its VMA and
        faults back in (a fresh demand-zero frame) on the next touch —
        which is exactly the victim-page fault the hypervisor-driven
        reclaim ablation measures.  Returns None if nothing was mapped."""
        pte = task.aspace.get_pte(vaddr)
        if pte is None or not pte.present:
            return None
        frame = pte.frame
        self.kernel.vo.clear_pte(cpu, task.aspace, vaddr)
        self._frame_refs.pop(frame, None)
        return frame

    def brk(self, cpu: "Cpu", task: "Task", new_brk: int) -> int:
        """Grow (only) the heap; pages appear on demand."""
        if new_brk <= task.brk:
            return task.brk
        vma = Vma(task.brk, new_brk, name="heap")
        task.vmas.append(vma)
        task.brk = new_brk
        return new_brk

    # ------------------------------------------------------------------
    # memory access + fault handling
    # ------------------------------------------------------------------

    def access(self, cpu: "Cpu", task: "Task", vaddr: int, *,
               write: bool) -> int:
        """One user memory access: TLB, hardware walk, fault service.

        Returns the frame backing the access."""
        vpn = vaddr // PAGE_SIZE
        hit = cpu.tlb.lookup(vpn)
        if hit is not None and (not write or hit[1]):
            return hit[0]
        while True:
            try:
                pte = task.aspace.walk(vaddr, write=write, user=True)
                cpu.charge(cpu.cost.cyc_tlb_refill_per_page)
                cpu.tlb.fill(vpn, pte.frame, pte.writable)
                return pte.frame
            except PageFault as fault:
                self.handle_fault(cpu, task, fault)

    def handle_fault(self, cpu: "Cpu", task: "Task", fault: PageFault) -> None:
        """The kernel page-fault handler (demand paging, COW, protection)."""
        kernel = self.kernel
        kernel.vo.fault_entry(cpu)
        cpu.charge(cpu.cost.cyc_fault_handler_fixed)
        if kernel.machine.config.num_cpus > 1:
            cpu.charge(cpu.cost.cyc_smp_fault_extra)  # mmap_sem contention
        vaddr = fault.vaddr & ~(PAGE_SIZE - 1)
        vma = self._vma_at(task, vaddr)
        if vma is None:
            self.prot_faults += 1
            kernel.vo.kernel_exit(cpu)
            self._sigsegv(cpu, task, fault.vaddr,
                          f"segfault at {fault.vaddr:#x}")

        pte = task.aspace.get_pte(vaddr)
        if pte is not None and pte.present and fault.write and pte.cow:
            self._break_cow(cpu, task, vaddr, pte)
        elif pte is not None and pte.present and fault.write and not pte.writable:
            # genuine protection fault (mprotect'd page): deliver SIGSEGV
            self.prot_faults += 1
            kernel.vo.kernel_exit(cpu)
            self._sigsegv(cpu, task, fault.vaddr,
                          f"write to protected page {vaddr:#x}")
        elif pte is None or not pte.present:
            self._demand_page(cpu, task, vaddr, vma)
        kernel.vo.kernel_exit(cpu)

    def _demand_page(self, cpu: "Cpu", task: "Task", vaddr: int, vma: Vma) -> None:
        mem = self.kernel.machine.memory
        frame = self._alloc_or_reclaim(cpu, task)
        cpu.charge(cpu.cost.cyc_page_alloc)
        # zeroing the new page: 4 KiB of memory touch
        cpu.charge(cpu.cost.cyc_mem_touch_per_kb * 4)
        if self.kernel.vo.is_virtual:
            # secondary cache/iTLB damage of a VMM-mediated fault fixup
            cpu.charge(cpu.cost.cyc_virt_fault_penalty)
        self.claim_frame(frame)
        self.kernel.vo.set_pte(cpu, task.aspace, vaddr,
                               Pte(frame=frame, writable=vma.writable))
        self.minor_faults += 1

    def _break_cow(self, cpu: "Cpu", task: "Task", vaddr: int, pte: Pte) -> None:
        mem = self.kernel.machine.memory
        if self.kernel.vo.is_virtual:
            cpu.charge(cpu.cost.cyc_virt_fault_penalty)
        if self.frame_refs(pte.frame) > 1:
            new_frame = mem.alloc(self.kernel.owner_id)
            cpu.charge(cpu.cost.cyc_page_alloc)
            cpu.charge(cpu.cost.cyc_cow_copy_page)
            content = mem.read(pte.frame) if mem.owner_of(pte.frame) >= 0 else None
            if content is not None:
                mem.write(new_frame, content)
            self.claim_frame(new_frame)
            self.release_frame(cpu, pte.frame)
            self.kernel.vo.set_pte(cpu, task.aspace, vaddr,
                                   Pte(frame=new_frame, writable=True))
        else:
            # last reference: just make it writable again
            self.kernel.vo.update_pte_flags(cpu, task.aspace, vaddr,
                                            writable=True, cow=False)
        self.cow_breaks += 1

    def _sigsegv(self, cpu: "Cpu", task: "Task", vaddr: int,
                 message: str) -> None:
        """Deliver SIGSEGV: a registered handler runs (and the faulting
        access is abandoned, as via longjmp); otherwise the default action
        surfaces as the classic SyscallError."""
        from repro.errors import SignalDelivered
        from repro.guestos.ipc import SIGSEGV
        if self.kernel.ipc.deliver(cpu, task, SIGSEGV, info=vaddr):
            raise SignalDelivered(SIGSEGV, vaddr)
        raise SyscallError("SIGSEGV", message)

    def mprotect(self, cpu: "Cpu", task: "Task", base: int, length: int,
                 writable: bool) -> None:
        pages = (length + PAGE_SIZE - 1) // PAGE_SIZE
        vma = self._vma_at(task, base)
        if vma is None:
            raise SyscallError("EINVAL", f"mprotect of unmapped {base:#x}")
        vma.writable = writable
        # batched like Linux's change_protection: one lazy-MMU region over
        # the whole range instead of a trap per PTE
        with self.kernel.lazy_mmu(cpu):
            for i in range(pages):
                vaddr = base + i * PAGE_SIZE
                pte = task.aspace.get_pte(vaddr)
                if pte is not None and pte.present:
                    self.kernel.vo.update_pte_flags(cpu, task.aspace, vaddr,
                                                    writable=writable)

    # ------------------------------------------------------------------

    def _vma_at(self, task: "Task", vaddr: int) -> Optional[Vma]:
        for vma in task.vmas:
            if vma.contains(vaddr):
                return vma
        return None

    def _find_hole(self, task: "Task", pages: int) -> int:
        """First-fit search in the mmap area."""
        base = MMAP_BASE
        need = pages * PAGE_SIZE
        occupied = sorted((v.start, v.end) for v in task.vmas
                          if v.start >= MMAP_BASE)
        for start, end in occupied:
            if base + need <= start:
                return base
            base = max(base, end)
        return base
