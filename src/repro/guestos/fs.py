"""VFS + an ext3-like journaling filesystem with a buffer cache.

Structure mirrors what dbench and OSDB exercise on the paper's testbed
(ext3 on a SCSI disk, §7.1): path resolution, inodes with block lists, a
write-back buffer cache, and a metadata journal whose commits are what
fsync pays for.

Block I/O leaves through ``kernel.block_read/block_write``, which route to
whichever block driver is installed — the native driver (direct device
access through the VO) or the para-virtual frontend (ring to the driver
domain's backend).  The same filesystem code therefore produces the
native/dom0/domU performance split of Fig. 3 by construction.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.errors import FileSystemError
from repro.params import PAGE_SIZE

if TYPE_CHECKING:
    from repro.guestos.kernel import Kernel
    from repro.hw.cpu import Cpu

#: filesystem block size (one disk block, 4 KiB)
BLOCK_SIZE = 4096
#: buffer-cache capacity in blocks (256 MiB worth on the paper's box, but
#: scaled down; what matters is hit/miss behaviour under the workloads)
CACHE_BLOCKS = 4096


@dataclass
class Inode:
    path: str
    size: int = 0
    blocks: list[int] = field(default_factory=list)
    nlink: int = 1
    generation: int = 0


class BufferCache:
    """Write-back LRU block cache."""

    def __init__(self, capacity: int = CACHE_BLOCKS):
        self.capacity = capacity
        self._cache: OrderedDict[int, object] = OrderedDict()
        self.dirty: set[int] = set()
        self.hits = 0
        self.misses = 0

    def get(self, block: int) -> tuple[bool, object]:
        if block in self._cache:
            self._cache.move_to_end(block)
            self.hits += 1
            return True, self._cache[block]
        self.misses += 1
        return False, None

    def put(self, block: int, data: object, dirty: bool) -> list[tuple[int, object]]:
        """Insert a block; returns evicted dirty blocks that must be
        written back."""
        evicted: list[tuple[int, object]] = []
        if block in self._cache:
            self._cache.move_to_end(block)
        self._cache[block] = data
        if dirty:
            self.dirty.add(block)
        while len(self._cache) > self.capacity:
            old_block, old_data = self._cache.popitem(last=False)
            if old_block in self.dirty:
                self.dirty.discard(old_block)
                evicted.append((old_block, old_data))
        return evicted

    def pop_dirty(self) -> list[tuple[int, object]]:
        out = [(b, self._cache[b]) for b in sorted(self.dirty) if b in self._cache]
        self.dirty.clear()
        return out

    def invalidate(self) -> None:
        self._cache.clear()
        self.dirty.clear()


class FileSystem:
    """The mounted filesystem instance."""

    def __init__(self, kernel: "Kernel", journal: bool = True):
        self.kernel = kernel
        self.journaled = journal
        self.inodes: dict[str, Inode] = {}
        self.cache = BufferCache()
        self._next_block = 1024  # blocks below are superblock/journal area
        self._journal_tx_open = False
        self.journal_commits = 0
        self.creates = 0
        self.unlinks = 0

    # ------------------------------------------------------------------
    # namespace
    # ------------------------------------------------------------------

    def open_check(self, cpu: "Cpu", path: str, create: bool) -> Inode:
        cpu.charge(cpu.cost.cyc_fs_op_fixed)
        inode = self.inodes.get(path)
        if inode is None:
            if not create:
                raise FileSystemError(f"no such file: {path}")
            inode = Inode(path)
            self.inodes[path] = inode
            self.creates += 1
            self._journal(cpu)
        return inode

    def unlink(self, cpu: "Cpu", path: str) -> None:
        cpu.charge(cpu.cost.cyc_fs_op_fixed)
        inode = self._inode(path)
        inode.nlink -= 1
        if inode.nlink == 0:
            del self.inodes[path]
        self.unlinks += 1
        self._journal(cpu)

    def stat(self, cpu: "Cpu", path: str) -> dict:
        cpu.charge(cpu.cost.cyc_fs_op_fixed)
        inode = self._inode(path)
        return {"size": inode.size, "blocks": len(inode.blocks),
                "nlink": inode.nlink}

    def exists(self, path: str) -> bool:
        return path in self.inodes

    # ------------------------------------------------------------------
    # data
    # ------------------------------------------------------------------

    def read(self, cpu: "Cpu", path: str, offset: int,
             nbytes: int) -> tuple[list[object], int]:
        """Read up to ``nbytes`` from ``offset``; returns (block datas,
        bytes advanced)."""
        cost = cpu.cost
        cpu.clock.cycles += cost.cyc_fs_op_fixed
        inode = self._inode(path)
        if offset >= inode.size:
            return [], 0
        nbytes = min(nbytes, inode.size - offset)
        first = offset // BLOCK_SIZE
        last = (offset + nbytes - 1) // BLOCK_SIZE
        cyc_copy = cost.cyc_mem_touch_per_kb * (BLOCK_SIZE // 1024)
        out = []
        for idx in range(first, last + 1):
            block = inode.blocks[idx]
            hit, data = self.cache.get(block)
            if not hit:
                data = self.kernel.block_read(cpu, block)
                for evb, evd in self.cache.put(block, data, dirty=False):
                    self.kernel.block_write(cpu, evb, evd)
            # copying the block to the user buffer
            cpu.clock.cycles += cyc_copy
            out.append(data)
        return out, nbytes

    def write(self, cpu: "Cpu", path: str, offset: int, data: object,
              nbytes: int) -> int:
        """Write ``nbytes`` at ``offset`` (write-back through the cache)."""
        cpu.charge(cpu.cost.cyc_fs_op_fixed)
        inode = self._inode(path)
        end = offset + nbytes
        while len(inode.blocks) * BLOCK_SIZE < end:
            inode.blocks.append(self._alloc_block())
            self._journal(cpu)  # block allocation is a metadata change
        first = offset // BLOCK_SIZE
        last = (end - 1) // BLOCK_SIZE
        for idx in range(first, last + 1):
            block = inode.blocks[idx]
            cpu.charge(cpu.cost.cyc_mem_touch_per_kb * (BLOCK_SIZE // 1024))
            for evb, evd in self.cache.put(block, data, dirty=True):
                self.kernel.block_write(cpu, evb, evd)
        if end > inode.size:
            inode.size = end
        inode.generation += 1
        return nbytes

    def fsync(self, cpu: "Cpu", path: str) -> None:
        """Flush the file's dirty blocks and commit the journal."""
        cpu.charge(cpu.cost.cyc_fs_op_fixed)
        inode = self._inode(path)
        mine = set(inode.blocks)
        batch = []
        for block, data in self.cache.pop_dirty():
            if block in mine:
                batch.append((block, data))
            else:
                self.cache.dirty.add(block)  # keep others dirty
        if batch:
            # one batched submission — a split-driver ring carries the
            # whole file's dirty set behind a single doorbell
            self.kernel.block_write_many(cpu, batch)
        if self.journaled:
            cpu.charge(cpu.cost.cyc_journal_commit)
            self.journal_commits += 1
        self.kernel.block_flush(cpu)

    def writeback(self, cpu: "Cpu", max_blocks: int = 4) -> int:
        """Background writeback (pdflush-style): push up to ``max_blocks``
        of the oldest dirty blocks to the device, no journal commit."""
        victims = sorted(self.cache.dirty)[:max_blocks]
        if not victims:
            return 0
        batch = []
        for block in victims:
            self.cache.dirty.discard(block)
            hit, data = self.cache.get(block)
            if hit:
                batch.append((block, data))
        if batch:
            self.kernel.block_write_many(cpu, batch)
        return len(batch)

    def sync_all(self, cpu: "Cpu") -> int:
        """Flush every dirty block (periodic writeback / unmount)."""
        batch = list(self.cache.pop_dirty())
        flushed = len(batch)
        if batch:
            self.kernel.block_write_many(cpu, batch)
        if self.journaled and flushed:
            cpu.charge(cpu.cost.cyc_journal_commit)
            self.journal_commits += 1
        self.kernel.block_flush(cpu)
        return flushed

    # ------------------------------------------------------------------

    def _inode(self, path: str) -> Inode:
        inode = self.inodes.get(path)
        if inode is None:
            raise FileSystemError(f"no such file: {path}")
        return inode

    def _alloc_block(self) -> int:
        block = self._next_block
        self._next_block += 1
        return block

    def _journal(self, cpu: "Cpu") -> None:
        """Record a metadata change; the cost of the *commit* is charged at
        fsync/sync time, a cheap in-memory append here."""
        if self.journaled:
            cpu.charge(50)
