"""A Linux-like guest operating system.

The OS the workloads run on.  It talks to sensitive hardware state
exclusively through the virtualization object Mercury installs
(:mod:`repro.core.vobject`), which is what makes it relocatable between
native and virtual mode at runtime.

Subsystems: process management (:mod:`repro.guestos.process`), the
scheduler (:mod:`repro.guestos.sched`), virtual memory with demand paging
and COW (:mod:`repro.guestos.vmem`), syscall dispatch
(:mod:`repro.guestos.syscalls`), a journaling filesystem
(:mod:`repro.guestos.fs`), a TCP/UDP-lite network stack
(:mod:`repro.guestos.net`), native drivers (:mod:`repro.guestos.drivers`)
and para-virtual frontend drivers (:mod:`repro.guestos.splitio`).
"""

from repro.guestos.kernel import Kernel

__all__ = ["Kernel"]
