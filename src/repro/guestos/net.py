"""Socket layer and a TCP/UDP-lite network stack.

Supports the paper's network benchmarks: ping (ICMP echo RTT) and
iperf-style TCP/UDP bulk transfer (§7.3).  Transmission leaves through the
installed network driver — native (direct NIC via the VO) or netfront
(rings to the driver domain) — so per-packet costs diverge across the six
configurations without any per-configuration code here.

TCP is modelled at the level that matters for goodput accounting: MSS-sized
segments, a static window that forces periodic ACK waits, and per-segment
stack costs.  There is no loss/retransmission on the simulated switch.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.errors import NetworkError
from repro.hw.devices import Packet

if TYPE_CHECKING:
    from repro.guestos.kernel import Kernel
    from repro.hw.cpu import Cpu

#: maximum segment size (standard ethernet MTU minus headers)
MSS = 1448
#: static send window in segments (enough to keep a LAN pipe full)
TCP_WINDOW = 44


@dataclass
class Socket:
    sock_id: int
    proto: str
    rx: deque = field(default_factory=deque)
    tx_bytes: int = 0
    rx_bytes: int = 0
    # --- reliable-delivery state (the §5.2 "solved at the network
    # protocol level" machinery) ---
    #: sender: seq -> (size, payload) awaiting cumulative ack
    tx_unacked: dict = field(default_factory=dict)
    tx_acked_through: int = -1
    retransmissions: int = 0
    #: receiver: next in-order sequence + out-of-order stash
    rx_next_seq: int = 0
    rx_ooo: dict = field(default_factory=dict)
    #: receiver: in-order reassembled payload chunks
    rx_delivered: list = field(default_factory=list)


class NetworkStack:
    """Per-kernel network state."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.sockets: dict[int, Socket] = {}
        self._next_sock = 1
        self.icmp_replies = 0
        self.rx_packets = 0
        #: RTT of the last completed ping, in cycles
        self.last_ping_rtt_cycles: Optional[int] = None
        self._ping_sent_at: Optional[int] = None
        self._awaiting_pong = False

    # ------------------------------------------------------------------
    # sockets
    # ------------------------------------------------------------------

    def socket(self, cpu: "Cpu", proto: str) -> int:
        if proto not in ("tcp", "udp"):
            raise NetworkError(f"unknown protocol {proto!r}")
        sock = Socket(self._next_sock, proto)
        self._next_sock += 1
        self.sockets[sock.sock_id] = sock
        return sock.sock_id

    def sendto(self, cpu: "Cpu", sock_id: int, dst: str, nbytes: int,
               payload: object = None) -> int:
        """Send ``nbytes`` as MSS-sized segments.  For TCP, waits for the
        window to reopen every TCP_WINDOW segments (ACK round trip)."""
        sock = self._sock(sock_id)
        kernel = self.kernel
        src = kernel.machine.nic.addr
        proto = sock.proto
        is_tcp = proto == "tcp"
        net_transmit = kernel.net_transmit  # reads net_driver per call
        sent = 0
        in_window = 0
        seq = 0
        while sent < nbytes:
            seg = min(MSS, nbytes - sent)
            pkt = Packet(src=src, dst=dst, proto=proto, size_bytes=seg,
                         payload=payload, seq=seq)
            # xmit_more: another segment follows unless this one ends the
            # transfer or closes the TCP window — batching drivers coalesce
            # the burst behind one doorbell
            more = sent + seg < nbytes
            if is_tcp and in_window + 1 >= TCP_WINDOW:
                more = False
            net_transmit(cpu, pkt, more=more)
            sent += seg
            seq += 1
            sock.tx_bytes += seg
            in_window += 1
            if is_tcp and in_window >= TCP_WINDOW:
                # wait for the cumulative ACK before reopening the window
                kernel.drain_events(cpu)
                in_window = 0
        kernel.net_tx_flush(cpu)
        return sent

    def recvfrom(self, cpu: "Cpu", sock_id: int, block: bool = True) -> object:
        sock = self._sock(sock_id)
        if block:
            self.kernel.wait_for(cpu, lambda: len(sock.rx) > 0)
        if not sock.rx:
            return None
        pkt = sock.rx.popleft()
        return pkt.payload

    # ------------------------------------------------------------------
    # ping
    # ------------------------------------------------------------------

    def ping(self, cpu: "Cpu", dst: str, size_bytes: int = 64) -> float:
        """ICMP echo round trip; returns the RTT in microseconds."""
        self._ping_sent_at = cpu.rdtsc()
        self._awaiting_pong = True
        pkt = Packet(src=self.kernel.machine.nic.addr, dst=dst,
                     proto="icmp", size_bytes=size_bytes, payload="echo")
        self.kernel.net_transmit(cpu, pkt)
        self.kernel.wait_for(cpu, lambda: not self._awaiting_pong)
        return cpu.cost.us(self.last_ping_rtt_cycles)

    # ------------------------------------------------------------------
    # receive path (invoked by the network driver for each packet)
    # ------------------------------------------------------------------

    def rx(self, cpu: "Cpu", pkt: Packet) -> None:
        """Protocol demultiplex for one received frame."""
        cost = cpu.cost
        cpu.clock.cycles += cost.cyc_net_per_packet  # constant: direct add
        self.rx_packets += 1
        if pkt.proto == "icmp":
            if pkt.payload == "echo":
                # reflect an echo reply
                self.icmp_replies += 1
                reply = Packet(src=self.kernel.machine.nic.addr, dst=pkt.src,
                               proto="icmp", size_bytes=pkt.size_bytes,
                               payload="echo-reply")
                self.kernel.net_transmit(cpu, reply)
            elif pkt.payload == "echo-reply" and self._awaiting_pong:
                self.last_ping_rtt_cycles = cpu.rdtsc() - self._ping_sent_at
                self._awaiting_pong = False
            return
        # tcp/udp: deliver to every socket of that protocol (the simulator
        # does not model ports; workloads use one socket per protocol)
        cpu.clock.cycles += (cost.cyc_net_copy_per_kb
                             * max(1, pkt.size_bytes // 1024))
        for sock in self.sockets.values():
            if sock.proto == pkt.proto:
                if isinstance(pkt.payload, tuple) and pkt.payload and \
                        pkt.payload[0] in ("rdata", "rack"):
                    self._rx_reliable(cpu, sock, pkt)
                else:
                    sock.rx.append(pkt)
                    sock.rx_bytes += pkt.size_bytes
                break

    # ------------------------------------------------------------------
    # reliable delivery (selective-repeat-lite with cumulative acks)
    # ------------------------------------------------------------------

    def _rx_reliable(self, cpu: "Cpu", sock: Socket, pkt: Packet) -> None:
        kind = pkt.payload[0]
        if kind == "rack":
            _, acked_through = pkt.payload
            if acked_through > sock.tx_acked_through:
                sock.tx_acked_through = acked_through
                for seq in [s for s in sock.tx_unacked
                            if s <= acked_through]:
                    del sock.tx_unacked[seq]
            return
        # data segment
        _, seq, size, payload = pkt.payload
        if seq == sock.rx_next_seq:
            sock.rx_delivered.append(payload)
            sock.rx_bytes += size
            sock.rx_next_seq += 1
            while sock.rx_next_seq in sock.rx_ooo:  # drain the stash
                s, p = sock.rx_ooo.pop(sock.rx_next_seq)
                sock.rx_delivered.append(p)
                sock.rx_bytes += s
                sock.rx_next_seq += 1
        elif seq > sock.rx_next_seq:
            sock.rx_ooo[seq] = (pkt.payload[2], pkt.payload[3])
        # duplicate (seq < next) falls through to the cumulative ack
        ack = Packet(src=self.kernel.machine.nic.addr, dst=pkt.src,
                     proto=sock.proto, size_bytes=40,
                     payload=("rack", sock.rx_next_seq - 1))
        self.kernel.net_transmit(cpu, ack)

    def reliable_send_window(self, cpu: "Cpu", sock_id: int, dst: str,
                             segments: list, window: int = 8) -> int:
        """(Re)transmit up to ``window`` of the oldest unacked segments.

        ``segments`` is the full list of (seq, size, payload); the caller
        drives rounds (transmit → drain both hosts → repeat) until
        :meth:`reliable_done`.  Returns frames put on the wire."""
        sock = self._sock(sock_id)
        sent = 0
        for seq, size, payload in segments:
            if seq <= sock.tx_acked_through:
                continue
            if sent >= window:
                break
            if seq in sock.tx_unacked:
                sock.retransmissions += 1
            sock.tx_unacked[seq] = (size, payload)
            pkt = Packet(src=self.kernel.machine.nic.addr, dst=dst,
                         proto=sock.proto, size_bytes=size,
                         payload=("rdata", seq, size, payload), seq=seq)
            self.kernel.net_transmit(cpu, pkt, more=True)
            sock.tx_bytes += size
            sent += 1
        self.kernel.net_tx_flush(cpu)
        return sent

    def reliable_done(self, sock_id: int, total_segments: int) -> bool:
        return self._sock(sock_id).tx_acked_through >= total_segments - 1

    def _sock(self, sock_id: int) -> Socket:
        try:
            return self.sockets[sock_id]
        except KeyError:
            raise NetworkError(f"bad socket {sock_id}") from None
