"""Tasks and process lifecycle: fork / exec / exit / wait.

Process creation is the most virtualization-sensitive path in the kernel —
the paper's Table 1 shows fork ~5x slower under Xen — because it is made of
page-table work: building the child's tables, marking both copies
copy-on-write, and (in virtual mode) getting every new page-table page
validated by the VMM.  All of that goes through the installed VO here, so
the native/virtual cost difference *emerges* rather than being hard-coded.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.errors import NoSuchProcess, SyscallError
from repro.hw.paging import AddressSpace, Pte
from repro.params import PAGE_SIZE, PT_SPAN

if TYPE_CHECKING:
    from repro.guestos.kernel import Kernel
    from repro.guestos.vmem import Vma
    from repro.hw.cpu import Cpu


class TaskState(enum.Enum):
    RUNNING = "running"
    READY = "ready"
    BLOCKED = "blocked"
    ZOMBIE = "zombie"


@dataclass
class Task:
    """One process (single-threaded; lmbench's benchmarks are)."""

    pid: int
    name: str
    aspace: AddressSpace
    state: TaskState = TaskState.READY
    parent: Optional["Task"] = None
    children: list["Task"] = field(default_factory=list)
    exit_code: Optional[int] = None
    #: memory layout
    vmas: list = field(default_factory=list)
    brk: int = 0x0800_0000
    #: the code/data segment selectors cached on this task's kernel stack by
    #: its last interrupt frame (§5.1.2: these embed the privilege level and
    #: must be fixed up when a mode switch changes the kernel's PL)
    stack_cached_selector_dpl: Optional[int] = None
    #: open file descriptors: fd -> (file name, offset)
    fds: dict[int, list] = field(default_factory=dict)
    #: pipe descriptors: fd -> (Pipe, "r"|"w")  (see guestos.ipc)
    pipe_fds: dict[int, tuple] = field(default_factory=dict)
    next_fd: int = 3
    utime_cycles: int = 0

    def __post_init__(self):
        from repro.guestos.ipc import SignalState
        self.signals = SignalState()


class ProcessTable:
    """PID allocation and the task list."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.tasks: dict[int, Task] = {}
        self._next_pid = 1
        self.forks = 0
        self.execs = 0

    # ------------------------------------------------------------------
    # creation
    # ------------------------------------------------------------------

    def spawn_initial(self, name: str, image_pages: int) -> Task:
        """Create a process from nothing (boot-time init)."""
        kernel = self.kernel
        aspace = AddressSpace(kernel.machine.memory, kernel.owner_id)
        task = Task(self._alloc_pid(), name, aspace)
        kernel.vmem.map_image(kernel.boot_cpu, task, image_pages)
        kernel.vo.new_address_space(kernel.boot_cpu, aspace)
        kernel.register_aspace(aspace)
        self.tasks[task.pid] = task
        return task

    def fork(self, cpu: "Cpu", parent: Task) -> Task:
        """Classic fork with copy-on-write.

        Work done (all through the VO): duplicate the vma list, walk the
        parent's page tables turning every writable mapping read-only+COW,
        install matching COW entries in the child, then register (and in
        virtual mode: pin) the child's address space."""
        kernel = self.kernel
        cost = cpu.cost
        cpu.charge(cost.cyc_proc_create_fixed)
        kernel.smp_lock(cpu)

        child_as = AddressSpace(kernel.machine.memory, kernel.owner_id)
        child = Task(self._alloc_pid(), parent.name, child_as, parent=parent)
        child.vmas = [vma.clone() for vma in parent.vmas]
        child.brk = parent.brk
        child.fds = {fd: list(v) for fd, v in parent.fds.items()}
        # pipes are shared (both tasks reference the same channel), signal
        # dispositions are copied — classic fork semantics
        child.pipe_fds = dict(parent.pipe_fds)
        child.signals.handlers = dict(parent.signals.handlers)
        child.next_fd = parent.next_fd
        child.stack_cached_selector_dpl = kernel.vo.data.kernel_segment_dpl

        # COW the parent's mapped pages into the child.  The parent-side
        # re-protections go through the VO under a lazy-MMU region (in
        # virtual mode: one batched mmu_update instead of a trap per PTE);
        # the child's entries are collected and installed as one region
        # write (the child is unpinned, so these are plain stores).
        child_updates = []
        add_update = child_updates.append
        frame_refs = kernel.vmem._frame_refs
        refs_get = frame_refs.get
        smp = kernel.machine.config.num_cpus > 1
        cyc_lock = cost.cyc_lock
        parent_as = parent.aspace
        with kernel.lazy_mmu(cpu):
            # kernel.vo is re-read per entry: update_pte_flags pumps the
            # sim scheduler, so the installed VO is not loop-invariant
            for pgd_idx, leaf in list(parent_as.pgd.entries.items()):
                vaddr_base = pgd_idx * PT_SPAN
                for idx, pte in list(leaf.entries.items()):
                    if not pte.present:
                        continue
                    vaddr = vaddr_base + idx * PAGE_SIZE
                    if pte.writable:
                        kernel.vo.update_pte_flags(cpu, parent_as, vaddr,
                                                   writable=False, cow=True)
                    add_update((vaddr, Pte(
                        frame=pte.frame, present=True, writable=False,
                        user=pte.user, cow=True)))
                    frame = pte.frame
                    frame_refs[frame] = refs_get(frame, 1) + 1
                    if smp:  # page_table_lock bounces per entry on SMP
                        cpu.charge(cyc_lock)
            kernel.vo.apply_pte_region(cpu, child_as, child_updates)

        kernel.vo.new_address_space(cpu, child_as)
        kernel.register_aspace(child_as)
        self.tasks[child.pid] = child
        kernel.scheduler.enqueue(child)
        self.forks += 1
        return child

    def exec(self, cpu: "Cpu", task: Task, name: str, image_pages: int) -> None:
        """Replace the task's image: tear down the old address space and
        build + populate a fresh one."""
        kernel = self.kernel
        cpu.charge(cpu.cost.cyc_exec_fixed)
        kernel.smp_lock(cpu)
        old_as = task.aspace
        self._teardown_aspace(cpu, task, old_as)

        new_as = AddressSpace(kernel.machine.memory, kernel.owner_id)
        task.aspace = new_as
        task.vmas = []
        task.name = name
        kernel.vmem.map_image(cpu, task, image_pages)
        kernel.vo.new_address_space(cpu, new_as)
        kernel.register_aspace(new_as)
        if kernel.scheduler.current is task:
            kernel.vo.write_cr3(cpu, new_as.pgd_frame)
        self.execs += 1

    # ------------------------------------------------------------------
    # exit / wait
    # ------------------------------------------------------------------

    def exit(self, cpu: "Cpu", task: Task, code: int) -> None:
        kernel = self.kernel
        kernel.smp_lock(cpu)
        self._teardown_aspace(cpu, task, task.aspace)
        task.state = TaskState.ZOMBIE
        task.exit_code = code
        kernel.scheduler.dequeue(task)
        if task.parent is not None:
            task.parent.children.append(task)

    def wait(self, cpu: "Cpu", parent: Task) -> tuple[int, int]:
        """Reap one zombie child; returns (pid, exit_code)."""
        for child in parent.children:
            if child.state == TaskState.ZOMBIE:
                parent.children.remove(child)
                self.tasks.pop(child.pid, None)
                return child.pid, child.exit_code or 0
        raise SyscallError("ECHILD", f"pid {parent.pid} has no zombie children")

    def _teardown_aspace(self, cpu: "Cpu", task: Task, aspace: AddressSpace) -> None:
        """Unmap everything, dropping frame references (frees unshared
        frames), then unregister + destroy the page tables.

        The unmap is one batched clear-all through ``apply_pte_region``
        (multi-entry ``mmu_update`` in virtual mode) rather than a trap per
        PTE; frames are released only after the clears are applied, so the
        allocator never recycles a frame a live PTE still points at."""
        kernel = self.kernel
        updates = []
        frames = []
        add_update = updates.append
        add_frame = frames.append
        for pgd_idx, leaf in aspace.pgd.entries.items():
            vaddr = pgd_idx * PT_SPAN
            for idx, pte in leaf.entries.items():
                add_update((vaddr + idx * PAGE_SIZE, None))
                if pte.present:
                    add_frame(pte.frame)
        kernel.vo.apply_pte_region(cpu, aspace, updates)
        kernel.vmem.release_frames(cpu, frames)
        kernel.unregister_aspace(aspace)
        kernel.vo.destroy_address_space(cpu, aspace)

    # ------------------------------------------------------------------

    def get(self, pid: int) -> Task:
        try:
            return self.tasks[pid]
        except KeyError:
            raise NoSuchProcess(f"no task with pid {pid}") from None

    def live_tasks(self) -> list[Task]:
        return [t for t in self.tasks.values() if t.state != TaskState.ZOMBIE]

    def _alloc_pid(self) -> int:
        pid = self._next_pid
        self._next_pid += 1
        return pid
