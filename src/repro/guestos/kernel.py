"""The guest kernel: boot, syscall dispatch, interrupts, subsystem glue.

One :class:`Kernel` is one operating-system instance.  It owns the process
table, scheduler, VM subsystem, filesystem, network stack and drivers — and
critically, it reaches *all* virtualization-sensitive state through
``self.vo``, the installed virtualization object.  Mercury relocates the
kernel between execution modes by swapping that object (§4.2) after the
state transfer/reload dance; nothing else in this file is mode-aware.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import GuestOSError, SyscallError
from repro.guestos.fs import FileSystem
from repro.guestos.net import NetworkStack
from repro.guestos.process import ProcessTable, Task
from repro.guestos.sched import Scheduler
from repro.guestos.syscalls import SYSCALL_TABLE
from repro.guestos.vmem import VirtualMemory
from repro.guestos.drivers import NativeBlockDriver, NativeNetDriver
from repro.hw.cpu import SegmentDescriptor
from repro.hw.interrupts import Idt, VEC_DISK, VEC_NET, VEC_TIMER
from repro.params import PAGE_SIZE
from repro.sim.scheduler import preempt_point as sim_preempt_point

if TYPE_CHECKING:
    from repro.core.vobject import VirtualizationObject
    from repro.hw.cpu import Cpu
    from repro.hw.devices import Packet
    from repro.hw.machine import Machine
    from repro.hw.paging import AddressSpace

#: pages in the default process image (text+data+stack of a small binary)
DEFAULT_IMAGE_PAGES = 96


class Kernel:
    """A Linux-like kernel instance."""

    def __init__(self, machine: "Machine", vo: "VirtualizationObject",
                 owner_id: int = 0, name: str = "linux",
                 has_devices: bool = True):
        self.machine = machine
        self.vo = vo
        self.owner_id = owner_id
        self.name = name
        #: False for a domainU kernel: no direct device access; frontends
        #: must be installed via splitio before I/O works
        self.has_devices = has_devices

        from repro.guestos.ipc import IpcManager
        self.procs = ProcessTable(self)
        self.scheduler = Scheduler(self)
        self.vmem = VirtualMemory(self)
        self.fs = FileSystem(self)
        self.net = NetworkStack(self)
        self.ipc = IpcManager(self)
        self.idt = Idt(owner=name)
        #: inbound packet routing overrides (driver domain routes guest
        #: addresses up to netback); addr -> handler(cpu, pkt)
        self.route_table: dict[str, Callable] = {}

        self.block_driver = NativeBlockDriver(self) if has_devices else None
        self.net_driver = NativeNetDriver(self) if has_devices else None
        self._net_addr = machine.nic.addr
        #: memory-balloon frontend, when one is connected (splitio wiring)
        self.balloon_front = None

        #: every live address space (Mercury's state transfer walks these)
        self.aspaces: list["AddressSpace"] = []
        #: live-update patch points: syscall name -> replacement handler
        #: (takes precedence over SYSCALL_TABLE; see scenarios.liveupdate)
        self.syscall_overrides: dict[str, Callable] = {}
        self.syscalls_served = 0
        self.booted = False

    # ------------------------------------------------------------------
    # boot
    # ------------------------------------------------------------------

    @property
    def boot_cpu(self) -> "Cpu":
        return self.machine.cpus[0]

    def boot(self, image_pages: int = DEFAULT_IMAGE_PAGES) -> Task:
        """Bring the kernel up: descriptor tables, interrupt handlers,
        device bindings, and the init process.  Returns init."""
        if self.booted:
            raise GuestOSError("kernel already booted")
        cpu = self.boot_cpu

        # segments: firmware-style direct install, then mode-appropriate DPL
        for c in self.machine.cpus:
            c.gdt = {
                1: SegmentDescriptor("kernel_cs", 0),
                2: SegmentDescriptor("kernel_ds", 0),
                3: SegmentDescriptor("user_cs", 3),
            }
        self.vo.set_segment_dpl(cpu, self.vo.data.kernel_segment_dpl)

        # interrupt handlers
        self.idt.set_gate(VEC_TIMER, self._timer_irq, name="timer")
        if self.has_devices:
            self.idt.set_gate(VEC_DISK, self._disk_irq, name="disk")
            self.idt.set_gate(VEC_NET, self._net_irq, name="net")
        self.vo.load_idt(cpu, self.idt)
        if self.has_devices:
            self.vo.bind_irq(cpu, "timer", 0, VEC_TIMER)
            self.vo.bind_irq(cpu, self.machine.disk.name, 0, VEC_DISK)
            self.vo.bind_irq(cpu, self.machine.nic.name, 0, VEC_NET)

        init = self.procs.spawn_initial("init", image_pages)
        self.scheduler.context_switch(cpu, init)
        self.booted = True
        return init

    # ------------------------------------------------------------------
    # syscall entry
    # ------------------------------------------------------------------

    def syscall(self, cpu: "Cpu", name: str, *args, task: Optional[Task] = None):
        """One system call from user space on ``cpu``."""
        handler = self.syscall_overrides.get(name)
        if handler is None:
            try:
                handler = SYSCALL_TABLE[name]
            except KeyError:
                raise SyscallError("ENOSYS", f"no syscall {name!r}") from None
        caller = task or self.scheduler.current
        if caller is None:
            raise GuestOSError("syscall with no current task")
        self.vo.kernel_entry(cpu)
        try:
            result = handler(self, cpu, caller, *args)
        finally:
            self.machine.poll()
            self.vo.kernel_exit(cpu)
        self.syscalls_served += 1
        return result

    # ------------------------------------------------------------------
    # lazy-MMU regions
    # ------------------------------------------------------------------

    @contextmanager
    def lazy_mmu(self, cpu: "Cpu"):
        """Bracket bulk page-table work in a lazy-MMU region (Xen-Linux's
        ``arch_enter_lazy_mmu_mode``): the virtual VO queues PTE updates and
        issues them as batched ``mmu_update`` multicalls; other VOes treat
        the markers as no-ops.  ``self.vo`` is re-read at exit so a mode
        switch mid-region is safe — the old VO's region was drained at
        commit and the new VO sees a balanced (no-op) end."""
        self.vo.lazy_mmu_begin(cpu)
        try:
            yield
        finally:
            self.vo.lazy_mmu_end(cpu)

    # ------------------------------------------------------------------
    # user-mode execution models
    # ------------------------------------------------------------------

    def user_compute(self, cpu: "Cpu", us: float) -> None:
        """Pure user computation (direct execution — identical in every
        mode, which is why CPU-bound work shows no virtualization loss)."""
        self.user_compute_cycles(cpu, int(us * cpu.cost.freq_mhz))

    def user_compute_cycles(self, cpu: "Cpu", cycles: int) -> None:
        """Cycle-exact variant; chunked workload tasks use it so a sliced
        compute charges the same total as the unsliced one.  The end of a
        compute burst is an interrupt window: under the simulation
        scheduler, timer deadlines that landed during the burst are
        serviced here — with the VO refcount at zero, so a pending mode
        switch can commit mid-workload, as §4.3 requires."""
        cpu.charge(cycles)
        if self.scheduler.current is not None:
            self.scheduler.current.utime_cycles += cycles
        sim_preempt_point(cpu)

    def touch_pages(self, cpu: "Cpu", task: Task, base: int, npages: int,
                    write: bool = True, stride: int = PAGE_SIZE) -> None:
        """Touch ``npages`` pages from ``base`` (faulting as needed)."""
        for i in range(npages):
            self.vmem.access(cpu, task, base + i * stride, write=write)

    # ------------------------------------------------------------------
    # block / net routing (driver indirection)
    # ------------------------------------------------------------------

    def install_block_driver(self, driver) -> None:
        self.block_driver = driver
        if VEC_DISK not in self.idt.gates:
            self.idt.set_gate(VEC_DISK, self._disk_irq, name="disk")

    def install_net_driver(self, driver, addr: Optional[str] = None) -> None:
        self.net_driver = driver
        if addr is not None:
            self._net_addr = addr

    @property
    def net_addr(self) -> str:
        return self._net_addr

    def block_read(self, cpu: "Cpu", block: int) -> object:
        if self.block_driver is None:
            raise GuestOSError(f"{self.name}: no block driver installed")
        return self.block_driver.read_block(cpu, block)

    def block_write(self, cpu: "Cpu", block: int, data: object) -> None:
        if self.block_driver is None:
            raise GuestOSError(f"{self.name}: no block driver installed")
        self.block_driver.write_block(cpu, block, data)

    def block_write_many(self, cpu: "Cpu",
                         blocks: list[tuple[int, object]]) -> None:
        """Batched writeback; falls back to serial writes if the installed
        driver has no batch path."""
        if self.block_driver is None:
            raise GuestOSError(f"{self.name}: no block driver installed")
        writer = getattr(self.block_driver, "write_blocks", None)
        if writer is not None:
            writer(cpu, sorted(blocks))
        else:
            for block, data in sorted(blocks):
                self.block_driver.write_block(cpu, block, data)

    def block_flush(self, cpu: "Cpu") -> None:
        if self.block_driver is None:
            raise GuestOSError(f"{self.name}: no block driver installed")
        self.block_driver.flush(cpu)

    def net_transmit(self, cpu: "Cpu", pkt: "Packet",
                     more: bool = False) -> None:
        """Hand one frame to the net driver.  ``more`` is the xmit_more
        hint: the stack promises another frame (or an explicit
        :meth:`net_tx_flush`) follows, letting a batching driver defer its
        doorbell."""
        if self.net_driver is None:
            raise GuestOSError(f"{self.name}: no net driver installed")
        self.net_driver.transmit(cpu, pkt, more=more)

    def net_tx_flush(self, cpu: "Cpu") -> None:
        """Flush any frames a batching driver still has queued."""
        if self.net_driver is None:
            return
        flush = getattr(self.net_driver, "tx_flush", None)
        if flush is not None:
            flush(cpu)

    def net_rx(self, cpu: "Cpu", pkt: "Packet") -> None:
        """Inbound frame: route to a guest (driver domain) or demux
        locally."""
        route = self.route_table.get(pkt.dst)
        if route is not None:
            route(cpu, pkt)
        else:
            self.net.rx(cpu, pkt)

    # ------------------------------------------------------------------
    # waiting / event draining
    # ------------------------------------------------------------------

    def wait_for(self, cpu: "Cpu", predicate: Callable[[], bool],
                 max_iterations: int = 1_000_000) -> None:
        """Idle until ``predicate()`` holds, advancing simulated time to
        pending deadlines and servicing interrupts."""
        clock = self.machine.clock
        for _ in range(max_iterations):
            if predicate():
                return
            deadline = clock.next_deadline()
            if deadline is None:
                self.machine.poll()
                if predicate():
                    return
                raise GuestOSError(
                    f"{self.name}: deadlock — waiting with no pending events")
            if deadline > clock.cycles:
                clock.cycles = deadline
            self.machine.poll()
        raise GuestOSError("wait_for did not converge")

    def drain_events(self, cpu: "Cpu") -> None:
        """Let all currently due events and interrupts run."""
        self.machine.poll()

    # ------------------------------------------------------------------
    # SMP
    # ------------------------------------------------------------------

    def smp_lock(self, cpu: "Cpu") -> None:
        """Kernel lock acquisition cost, charged only on SMP machines (the
        paper: 'due to the introduced locks and possible contentions, most
        of the operations in SMP mode are a bit expensive', §7.2)."""
        if self.machine.config.num_cpus > 1:
            cpu.charge(cpu.cost.cyc_lock)

    # ------------------------------------------------------------------
    # address-space registry (for Mercury's state transfer)
    # ------------------------------------------------------------------

    def register_aspace(self, aspace: "AddressSpace") -> None:
        self.aspaces.append(aspace)

    def unregister_aspace(self, aspace: "AddressSpace") -> None:
        try:
            self.aspaces.remove(aspace)
        except ValueError:
            raise GuestOSError("unregistering unknown address space") from None

    # ------------------------------------------------------------------
    # interrupt handlers
    # ------------------------------------------------------------------

    def start_writeback_daemon(self, interval_ms: float = 30.0,
                               blocks_per_pass: int = 4) -> None:
        """Arm a pdflush-style periodic writeback of dirty cache blocks.

        Runs off the machine clock; each pass pushes up to
        ``blocks_per_pass`` of the oldest dirty blocks to the device."""
        self._writeback_armed = True

        def pass_once() -> None:
            if not getattr(self, "_writeback_armed", False):
                return
            self.fs.writeback(self.boot_cpu, max_blocks=blocks_per_pass)
            self.machine.clock.schedule_us(interval_ms * 1000, pass_once)

        self.machine.clock.schedule_us(interval_ms * 1000, pass_once)

    def stop_writeback_daemon(self) -> None:
        self._writeback_armed = False

    def _timer_irq(self, cpu: "Cpu", vector: int) -> None:
        cpu.charge(200)  # tick bookkeeping

    def _disk_irq(self, cpu: "Cpu", vector: int) -> None:
        if self.block_driver is not None:
            self.block_driver.irq(cpu, vector)

    def _net_irq(self, cpu: "Cpu", vector: int) -> None:
        if self.net_driver is not None:
            self.net_driver.irq(cpu, vector)

    # ------------------------------------------------------------------
    # convenience for workloads
    # ------------------------------------------------------------------

    def switch_to(self, cpu: "Cpu", task: Task) -> None:
        """Perform a context switch from user space: enter the kernel,
        switch, return to user space in the new task."""
        self.vo.kernel_entry(cpu)
        try:
            self.scheduler.context_switch(cpu, task)
        finally:
            self.vo.kernel_exit(cpu)

    def spawn_process(self, cpu: "Cpu", name: str,
                      image_pages: int = DEFAULT_IMAGE_PAGES) -> Task:
        """fork + exec from the current task; returns the child (leaves the
        current task running)."""
        child_pid = self.syscall(cpu, "fork")
        child = self.procs.get(child_pid)
        parent = self.scheduler.current
        self.switch_to(cpu, child)
        self.syscall(cpu, "exec", name, image_pages, task=child)
        self.switch_to(cpu, parent)
        return child

    def run_and_reap(self, cpu: "Cpu", child: Task, exit_code: int = 0) -> int:
        """Switch to ``child``, exit it, switch back, and wait() it."""
        parent = self.scheduler.current
        self.switch_to(cpu, child)
        self.syscall(cpu, "exit", exit_code, task=child)
        self.switch_to(cpu, parent)
        pid, _ = self.syscall(cpu, "wait", task=parent)
        return pid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Kernel({self.name!r}, owner={self.owner_id}, vo={self.vo.mode_name})"
