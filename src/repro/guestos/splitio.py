"""Para-virtual frontend drivers (blkfront / netfront) and split-I/O wiring.

DomainU guests have no direct device access: their block and network
traffic crosses shared-memory rings to the backend drivers in the driver
domain (§5.2).  The batched flow per *burst* of requests:

    frontend: push a batch of requests on the ring
              -> push_requests_and_check_notify: event-channel notify only
                 if the backend had advertised itself idle
    backend : poll loop — mask the channel, drain the batch, push the batch
              of responses with one coalesced completion notify, unmask,
              final-check, sleep
    frontend: consume the response batch on the (single) completion event

Every hop charges ring/copy/event/grant costs on the CPU, which is where
domainU's I/O overhead in Fig. 3/4 (and its dbench *win*, via the backend
write cache) comes from.  The notification-avoidance protocol
(:mod:`repro.vmm.rings`) is what keeps the event channel quiet while both
sides are streaming — one notify amortizes over a whole TX queue flush or
blkfront submission batch instead of firing per packet/block.

:func:`connect_split_block` / :func:`connect_split_net` wire a guest kernel
to a driver-domain kernel through a hypervisor; Mercury uses the same wiring
when its self-virtualized OS hosts an unmodified guest (the M-U
configuration), and re-creates it after a live migration (§5.2: frontends
reconnect to the new host's backends).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro import trace
from repro.errors import NetworkError, RingError
from repro.hw.devices import Packet
from repro.hw.paging import Pte
from repro.params import PAGE_SIZE
from repro.vmm.backend import (BalloonBack, BalloonRingEntry, BlkBack,
                               BlkRingEntry, NetBack, NetRingEntry)
from repro.vmm.rings import IoRing, IoStats

if TYPE_CHECKING:
    from repro.core.accounting import MmuAccounting
    from repro.guestos.kernel import Kernel
    from repro.guestos.process import Task
    from repro.hw.cpu import Cpu
    from repro.vmm.hypervisor import Hypervisor


class BlkFront:
    """Block frontend: presents the kernel's block-driver interface on top
    of a request ring to blkback, with queued submit/complete semantics."""

    def __init__(self, kernel: "Kernel", ring: IoRing, notify_backend,
                 grant_ref: Optional[int] = None,
                 stats: Optional[IoStats] = None):
        self.kernel = kernel
        self.ring = ring
        self.notify_backend = notify_backend
        self.grant_ref = grant_ref
        self.stats = stats if stats is not None else IoStats()
        self.requests = 0
        #: entries pushed since the last publish (for per-batch charging)
        self._batch_n = 0

    # -- queued submit / complete ---------------------------------------

    def submit(self, cpu: "Cpu", entry: BlkRingEntry) -> None:
        """Queue one request on the ring without notifying.  The first
        entry of a batch pays the full ring crossing; later entries ride
        the same cachelines."""
        if self.ring.free_request_slots() == 0:
            # publish what is queued so the backend can drain, then reap
            self.flush_submissions(cpu)
            self.complete(cpu)
            if self.ring.free_request_slots() == 0:
                raise RingError("blkfront ring wedged: no free slots and "
                                "no completions arriving")
        cpu.charge(cpu.cost.cyc_ring_hop if self._batch_n == 0
                   else cpu.cost.cyc_ring_entry_batched)
        self.ring.push_request(entry)
        self._batch_n += 1

    def flush_submissions(self, cpu: "Cpu") -> None:
        """Publish queued requests; notify at most once, and only when the
        backend had advertised itself idle."""
        n, self._batch_n = self._batch_n, 0
        if n == 0:
            return
        self.stats.ring_batches += 1
        self.stats.ring_batched_entries += n
        if self.ring.push_requests_and_check_notify():
            self.stats.notifies_sent += 1
            if trace._ACTIVE is not None:  # hot path: skip the hook call
                trace.instant(cpu.cpu_id, "io.doorbell", dev="blk",
                              ring="req")
            self.notify_backend(cpu)
        else:
            self.stats.notifies_suppressed += 1

    def complete(self, cpu: "Cpu") -> int:
        """Reap completed responses (the completion-event upcall).  The
        final check re-advertises the wakeup index before going idle, so
        the backend's next completion push notifies."""
        done = 0
        while True:
            while self.ring.has_responses():
                entry = self.ring.pop_response()
                entry.completed = True
                self.requests += 1
                done += 1
            if not self.ring.final_check_for_responses():
                return done

    def _await(self, cpu: "Cpu", entry: BlkRingEntry) -> BlkRingEntry:
        if not entry.completed:
            self.complete(cpu)
        if not entry.completed:
            raise RingError("blkback did not respond")
        return entry

    # -- kernel-facing API ----------------------------------------------

    def _one(self, cpu: "Cpu", entry: BlkRingEntry) -> BlkRingEntry:
        self.submit(cpu, entry)
        self.flush_submissions(cpu)
        return self._await(cpu, entry)

    def read_block(self, cpu: "Cpu", block: int) -> object:
        entry = BlkRingEntry(op="read", block=block, grant_ref=self.grant_ref,
                             tag=self.kernel.owner_id)
        return self._one(cpu, entry).result

    def write_block(self, cpu: "Cpu", block: int, data: object) -> None:
        entry = BlkRingEntry(op="write", block=block, data=data,
                             grant_ref=self.grant_ref, tag=self.kernel.owner_id)
        self._one(cpu, entry)

    def write_blocks(self, cpu: "Cpu", blocks: list[tuple[int, object]]) -> None:
        """Batch write: fill the ring, notify at most once per chunk, reap
        the response batch.  A backend that stops responding raises
        :class:`~repro.errors.RingError` instead of silently spinning on a
        stale ``free_request_slots``."""
        i = 0
        while i < len(blocks):
            chunk = blocks[i:i + self.ring.free_request_slots()]
            if not chunk:
                raise RingError("blkfront ring wedged: no free slots and "
                                "no completions arriving")
            entries = [BlkRingEntry(op="write", block=block, data=data,
                                    grant_ref=self.grant_ref,
                                    tag=self.kernel.owner_id)
                       for block, data in chunk]
            for entry in entries:
                self.submit(cpu, entry)
            self.flush_submissions(cpu)
            self.complete(cpu)
            if not entries[-1].completed:
                raise RingError(
                    "blkback wedged: batch submitted but responses never "
                    "arrived")
            i += len(chunk)

    def flush(self, cpu: "Cpu") -> None:
        entry = BlkRingEntry(op="flush", block=0, tag=self.kernel.owner_id)
        self._one(cpu, entry)

    def irq(self, cpu: "Cpu", vector: int) -> None:
        """Completion upcall entry point (legacy vector path)."""
        cpu.charge(cpu.cost.cyc_event_channel)
        self.complete(cpu)


class NetFront:
    """Network frontend: TX queue flushed onto the tx ring with at most one
    notify per flush; batched RX drain from the rx ring fed by netback."""

    def __init__(self, kernel: "Kernel", tx_ring: IoRing, rx_ring: IoRing,
                 notify_backend, stats: Optional[IoStats] = None):
        self.kernel = kernel
        self.tx_ring = tx_ring
        self.rx_ring = rx_ring
        self.notify_backend = notify_backend
        self.stats = stats if stats is not None else IoStats()
        self.tx = 0
        self.rx = 0
        #: packets queued by ``transmit(..., more=True)`` awaiting a flush
        self._txq: list[Packet] = []
        self._flush_timer_armed = False

    # -- transmit --------------------------------------------------------

    def transmit(self, cpu: "Cpu", pkt: Packet, more: bool = False) -> None:
        """Queue one packet.  ``more=True`` is the xmit_more hint from the
        stack: the caller promises another packet (or a flush) follows, so
        the doorbell is deferred and the whole burst shares one notify."""
        cpu.clock.cycles += (cpu.cost.cyc_net_copy_per_kb
                             * max(1, pkt.size_bytes // 1024))
        self._txq.append(pkt)
        self.tx += 1
        if more and len(self._txq) < cpu.cost.io_tx_coalesce_max:
            # delayed doorbell: if the promised flush never comes, a short
            # timer pushes the tail out
            if not self._flush_timer_armed:
                self._flush_timer_armed = True
                self.kernel.machine.clock.schedule(
                    cpu.cost.cyc_tx_coalesce_delay,
                    lambda: self._timer_flush(cpu))
            return
        self.tx_flush(cpu)

    def _timer_flush(self, cpu: "Cpu") -> None:
        self._flush_timer_armed = False
        if self._txq:
            self.tx_flush(cpu)

    def tx_flush(self, cpu: "Cpu") -> int:
        """Move the TX queue onto the ring and notify at most once."""
        flushed = 0
        n = 0
        while self._txq:
            self._reap_tx_completions()
            if self.tx_ring.free_request_slots() == 0:
                # publish the partial batch so the backend can drain it
                self._publish(cpu, n)
                n = 0
                self._reap_tx_completions()
                if self.tx_ring.free_request_slots() == 0:
                    raise NetworkError(
                        "netfront tx ring wedged: backend reaps nothing")
            pkt = self._txq.pop(0)
            cpu.clock.cycles += (cpu.cost.cyc_ring_hop if n == 0
                                 else cpu.cost.cyc_ring_entry_batched)
            self.tx_ring.push_request(NetRingEntry(pkt=pkt))
            n += 1
            flushed += 1
        self._publish(cpu, n)
        return flushed

    def _publish(self, cpu: "Cpu", n: int) -> None:
        if n == 0:
            return
        self.stats.ring_batches += 1
        self.stats.ring_batched_entries += n
        if self.tx_ring.push_requests_and_check_notify():
            self.stats.notifies_sent += 1
            if trace._ACTIVE is not None:  # hot path: skip the hook call
                trace.instant(cpu.cpu_id, "io.doorbell", dev="net",
                              ring="req")
            # the notification wakes the driver domain's vcpu — paid only
            # when a notify is actually delivered, not per packet
            cpu.charge(cpu.cost.cyc_guest_sched_latency)
            self.notify_backend(cpu)
        else:
            self.stats.notifies_suppressed += 1

    def _reap_tx_completions(self) -> None:
        while self.tx_ring.has_responses():
            self.tx_ring.pop_response()

    # -- receive ---------------------------------------------------------

    def upcall(self, cpu: "Cpu") -> int:
        """Event-channel upcall: reap TX completions lazily (no wakeup
        advertised for them — netfront reclaims slots on the next flush)
        and drain the RX ring."""
        self._reap_tx_completions()
        return self.rx_poll(cpu)

    def rx_poll(self, cpu: "Cpu") -> int:
        """Drain the rx ring into the guest's network stack; re-advertise
        the wakeup index and re-check before going idle."""
        drained = 0
        while True:
            while self.rx_ring.has_requests():
                entry: NetRingEntry = self.rx_ring.pop_request()
                cpu.charge(cpu.cost.cyc_ring_hop if drained == 0
                           else cpu.cost.cyc_ring_entry_batched)
                self.rx_ring.push_response(entry)
                self.rx += 1
                drained += 1
                self.kernel.net_rx(cpu, entry.pkt)
            if not self.rx_ring.final_check_for_requests():
                return drained

    # pre-batching entry point name, used by tests and recovery code
    rx_kick = rx_poll


class BalloonFront:
    """Memory-balloon frontend: drives the guest's reservation toward the
    target posted by the host's elastic controller.

    The driver keeps two kinds of elastic memory: a *pool* of cold frames
    the guest owns but has unmapped (surrendered first — nobody faults on
    them), and *balloon regions* — populated anonymous mappings whose
    frames are registered in a reverse map so the host's hypervisor-driven
    reclaim can name them as victims.  Surrender always rides the grant
    mechanism: the frontend grants each frame to the driver domain and the
    backend takes the grant before moving the frame to the host free pool.

    ``back`` is the frontend's read-only view of the backend's target state
    (the xenstore-watch analogue: both ends of a real balloon share the
    target through a store key, not the ring)."""

    #: (frame, grant_ref) pairs carried per inflate ring entry (extents)
    INFLATE_EXTENTS = 16

    def __init__(self, kernel: "Kernel", ring: IoRing, notify_backend,
                 back: BalloonBack, grant_frame,
                 mmu_log: Optional["MmuAccounting"] = None,
                 stats: Optional[IoStats] = None):
        self.kernel = kernel
        self.ring = ring
        self.notify_backend = notify_backend
        self.back = back
        #: ``frame -> grant ref`` factory (wired to the VMM's grant table)
        self.grant_frame = grant_frame
        self.mmu_log = mmu_log
        self.stats = stats if stats is not None else IoStats()
        #: cold frames owned by the guest, unmapped, surrendered first
        self.pool: list[int] = []
        #: balloon-region reverse map: frame -> (task, vaddr)
        self._rmap: dict[int, tuple] = {}
        #: frames in populate order (lazy-deleted; guest-delegated picks
        #: from the tail when the pool runs dry)
        self._order: list[int] = []
        self.victim_unmaps = 0
        self._batch_n = 0
        self._in_upcall = False

    # -- region bookkeeping ----------------------------------------------

    @property
    def resident_frames(self) -> list[int]:
        """Frames the balloon driver could surrender (pool + regions), in
        deterministic order.  The host's hypervisor-driven strategy picks
        victims from this view — its P2M-table analogue."""
        return sorted(self.pool) + sorted(self._rmap)

    def fill_pool(self, cpu: "Cpu", n: int) -> list[int]:
        """Reserve ``n`` cold frames for the guest (balloon-connect top-up:
        the elastic share of the domain's initial reservation)."""
        mem = self.kernel.machine.memory
        frames = mem.alloc_many(self.kernel.owner_id, n)
        cpu.charge(cpu.cost.cyc_page_alloc * n)
        self.pool.extend(frames)
        return frames

    def map_pool_frames(self, cpu: "Cpu", task: "Task", n: int) -> int:
        """Hand ``n`` pool frames to users: map them into a fresh balloon
        region of ``task``.  This is the guest allocator consuming returned
        memory — in native mode every region mapped here marks its root
        dirty, which is exactly how balloon churn turns into attach-time
        drift."""
        n = min(n, len(self.pool))
        if n == 0:
            return 0
        vmem = self.kernel.vmem
        base = vmem.mmap(cpu, task, n * PAGE_SIZE, name="balloon")
        frames = [self.pool.pop() for _ in range(n)]
        cpu.charge(cpu.cost.cyc_mem_touch_per_kb * 4 * n)
        updates = [(base + i * PAGE_SIZE, Pte(frame=frames[i], writable=True))
                   for i in range(n)]
        for f in frames:
            vmem.claim_frame(f)
        self.kernel.vo.apply_pte_region(cpu, task.aspace, updates)
        for i, f in enumerate(frames):
            self._rmap[f] = (task, base + i * PAGE_SIZE)
            self._order.append(f)
        if self.mmu_log is not None:
            self.mmu_log.on_balloon(task.aspace)
        return n

    # -- target processing (the xenstore watch) --------------------------

    def upcall(self, cpu: "Cpu") -> None:
        """Event-channel upcall: reap responses, then chase the target."""
        if self._in_upcall:
            return
        self._in_upcall = True
        try:
            self.complete(cpu)
            self.process_target(cpu)
        finally:
            self._in_upcall = False

    def process_target(self, cpu: "Cpu") -> None:
        target = self.back.target_pages
        if target is None:
            return
        current = self.back.guest_domain.mem_pages
        if target < current:
            self.inflate(cpu, current - target,
                         victims=self.back.victim_frames)
        elif target > current:
            self.deflate(cpu, target - current)

    # -- inflate (surrender frames) --------------------------------------

    def inflate(self, cpu: "Cpu", n: int, victims=()) -> int:
        """Surrender ``n`` frames.  With ``victims`` (hypervisor-driven)
        the host has already chosen; mapped victims are unmapped first and
        their next guest touch is a victim-page fault.  Without (Demeter's
        guest-delegated mode) the guest picks its own coldest memory: the
        pool first, then region tails — no faults follow."""
        picked = self._pick_victims(cpu, n, victims)
        if not picked:
            return 0
        refs = [(frame, self.grant_frame(frame)) for frame in picked]
        last = None
        for i in range(0, len(refs), self.INFLATE_EXTENTS):
            last = BalloonRingEntry(
                op="inflate", frames=tuple(refs[i:i + self.INFLATE_EXTENTS]),
                tag=self.kernel.owner_id)
            self.submit(cpu, last)
        self.flush_submissions(cpu)
        self._await(cpu, last)
        return len(picked)

    def _pick_victims(self, cpu: "Cpu", n: int, victims) -> list[int]:
        picked: list[int] = []
        if victims:
            for frame in victims:
                if len(picked) == n:
                    break
                if frame in self._rmap:
                    task, vaddr = self._rmap.pop(frame)
                    got = self.kernel.vmem.steal_page(cpu, task, vaddr)
                    self.victim_unmaps += 1
                    if self.mmu_log is not None:
                        self.mmu_log.on_balloon(task.aspace)
                    if got is not None:
                        picked.append(got)
                else:
                    try:
                        self.pool.remove(frame)
                    except ValueError:
                        continue    # stale victim: already gone
                    picked.append(frame)
            return picked
        while len(picked) < n and self.pool:
            picked.append(self.pool.pop())
        while len(picked) < n and self._order:
            frame = self._order.pop()
            entry = self._rmap.pop(frame, None)
            if entry is None:
                continue            # lazily-deleted (was a victim earlier)
            task, vaddr = entry
            got = self.kernel.vmem.steal_page(cpu, task, vaddr)
            if self.mmu_log is not None:
                self.mmu_log.on_balloon(task.aspace)
            if got is not None:
                picked.append(got)
        return picked

    # -- deflate (get frames back) ---------------------------------------

    def deflate(self, cpu: "Cpu", n: int) -> int:
        """Ask the host for ``n`` pages; they land cold in the pool (the
        guest allocator faults them in via :meth:`map_pool_frames`)."""
        entry = BalloonRingEntry(op="deflate", count=n,
                                 tag=self.kernel.owner_id)
        self.submit(cpu, entry)
        self.flush_submissions(cpu)
        self._await(cpu, entry)
        self.pool.extend(entry.frames)
        return len(entry.frames)

    # -- ring mechanics (same batched protocol as blkfront) --------------

    def submit(self, cpu: "Cpu", entry: BalloonRingEntry) -> None:
        if self.ring.free_request_slots() == 0:
            self.flush_submissions(cpu)
            self.complete(cpu)
            if self.ring.free_request_slots() == 0:
                raise RingError("balloon ring wedged: no free slots and "
                                "no completions arriving")
        cpu.charge(cpu.cost.cyc_ring_hop if self._batch_n == 0
                   else cpu.cost.cyc_ring_entry_batched)
        self.ring.push_request(entry)
        self._batch_n += 1

    def flush_submissions(self, cpu: "Cpu") -> None:
        n, self._batch_n = self._batch_n, 0
        if n == 0:
            return
        self.stats.ring_batches += 1
        self.stats.ring_batched_entries += n
        if self.ring.push_requests_and_check_notify():
            self.stats.notifies_sent += 1
            if trace._ACTIVE is not None:  # hot path: skip the hook call
                trace.instant(cpu.cpu_id, "io.doorbell", dev="balloon",
                              ring="req")
            self.notify_backend(cpu)
        else:
            self.stats.notifies_suppressed += 1

    def complete(self, cpu: "Cpu") -> int:
        done = 0
        while True:
            while self.ring.has_responses():
                entry = self.ring.pop_response()
                entry.completed = True
                done += 1
            if not self.ring.final_check_for_responses():
                return done

    def _await(self, cpu: "Cpu", entry: BalloonRingEntry) -> BalloonRingEntry:
        if not entry.completed:
            self.complete(cpu)
        if not entry.completed:
            raise RingError("balloon backend did not respond")
        return entry


# ---------------------------------------------------------------------------
# wiring helpers
# ---------------------------------------------------------------------------

def _shared_stats(vmm: "Hypervisor") -> IoStats:
    stats = getattr(vmm, "io_stats", None)
    return stats if stats is not None else IoStats()


def connect_split_block(guest: "Kernel", driver: "Kernel",
                        vmm: "Hypervisor") -> tuple[BlkFront, BlkBack]:
    """Connect ``guest``'s block layer to ``driver``'s disk via a ring."""
    guest_dom = vmm.domains[guest.owner_id]
    driver_dom = vmm.domains[driver.owner_id]
    stats = _shared_stats(vmm)

    ring = IoRing(size=32)
    front_ch = vmm.events.alloc(guest_dom.domain_id)
    back_ch = vmm.events.alloc(driver_dom.domain_id)
    vmm.events.connect(front_ch, back_ch)

    # one persistent granted buffer page for request payloads
    buf_frame = guest.machine.memory.alloc(guest.owner_id)
    grant = vmm.grants.grant(guest_dom.domain_id, buf_frame,
                             driver_dom.domain_id)

    back = BlkBack(
        vmm, driver_dom, ring,
        notify_frontend=lambda c: vmm.events.send(c, back_ch),
        submit=lambda c, req: driver.vo.disk_submit(c, req),
        stats=stats)
    back.bind_channel(back_ch)

    front = BlkFront(
        guest, ring,
        notify_backend=lambda c: vmm.events.send(c, front_ch),
        grant_ref=grant.ref, stats=stats)

    # frontend notify -> backend poll; backend notify -> frontend reap
    back_ch.handler = lambda: back.poll(driver.boot_cpu)
    front_ch.handler = lambda: front.complete(guest.boot_cpu)

    guest.install_block_driver(front)
    return front, back


def connect_split_balloon(guest: "Kernel", driver: "Kernel",
                          vmm: "Hypervisor",
                          mmu_log: Optional["MmuAccounting"] = None,
                          pool: Optional[list[int]] = None
                          ) -> tuple[BalloonFront, BalloonBack]:
    """Connect ``guest``'s memory reservation to the host's elastic
    controller through a balloon ring.

    ``mmu_log`` is the driver-domain's incremental-attach tracker when the
    balloon belongs to the self-virtualized OS itself (dom0 ballooning);
    hosted guests pass None.  ``pool`` seeds the frontend's cold-frame pool
    — the re-host path carries the old frontend's pool across a VMM
    microreboot with it."""
    guest_dom = vmm.domains[guest.owner_id]
    driver_dom = vmm.domains[driver.owner_id]
    stats = _shared_stats(vmm)

    ring = IoRing(size=32)
    front_ch = vmm.events.alloc(guest_dom.domain_id)
    back_ch = vmm.events.alloc(driver_dom.domain_id)
    vmm.events.connect(front_ch, back_ch)

    back = BalloonBack(
        vmm, driver_dom, guest_dom, ring,
        notify_frontend=lambda c: vmm.events.send(c, back_ch),
        stats=stats)
    back.bind_channel(back_ch)

    front = BalloonFront(
        guest, ring,
        notify_backend=lambda c: vmm.events.send(c, front_ch),
        back=back,
        grant_frame=lambda frame: vmm.grants.grant(
            guest_dom.domain_id, frame, driver_dom.domain_id).ref,
        mmu_log=mmu_log, stats=stats)
    if pool:
        front.pool.extend(pool)

    back_ch.handler = lambda: back.poll(driver.boot_cpu)
    front_ch.handler = lambda: front.upcall(guest.boot_cpu)

    guest.balloon_front = front
    return front, back


def connect_split_net(guest: "Kernel", driver: "Kernel", vmm: "Hypervisor",
                      guest_addr: str) -> tuple[NetFront, NetBack]:
    """Connect ``guest``'s network stack to ``driver``'s NIC.

    ``guest_addr`` is the guest's address on the wire; the driver domain
    routes inbound frames for it up through netback.  Both notification
    directions run through :meth:`~repro.vmm.events.EventChannels.send`, so
    every fire is charged and counted; the guest-bound direction models the
    domU vcpu wakeup by scheduling the frontend upcall
    ``cyc_guest_rx_latency`` in the future — inbound bursts landing inside
    that window coalesce in the rx ring and drain in one batch."""
    guest_dom = vmm.domains[guest.owner_id]
    driver_dom = vmm.domains[driver.owner_id]
    stats = _shared_stats(vmm)

    tx_ring = IoRing(size=64)
    rx_ring = IoRing(size=64)
    front_ch = vmm.events.alloc(guest_dom.domain_id)
    back_ch = vmm.events.alloc(driver_dom.domain_id)
    vmm.events.connect(front_ch, back_ch)

    back = NetBack(
        vmm, driver_dom, tx_ring, rx_ring,
        notify_frontend=lambda c: vmm.events.send(c, back_ch),
        transmit=lambda c, pkt: driver.vo.net_transmit(c, pkt),
        stats=stats)
    back.bind_channel(back_ch)

    front = NetFront(
        guest, tx_ring, rx_ring,
        notify_backend=lambda c: vmm.events.send(c, front_ch),
        stats=stats)

    back_ch.handler = lambda: back.poll(driver.boot_cpu)

    cost = guest.machine.config.cost

    def _front_upcall() -> None:
        # domU vcpu wakeup latency; the deferred drain is what lets an
        # inbound burst coalesce into one rx_poll pass
        guest.machine.clock.schedule(
            cost.cyc_guest_rx_latency,
            lambda: front.upcall(guest.boot_cpu))

    front_ch.handler = _front_upcall

    guest.install_net_driver(front, addr=guest_addr)
    driver.route_table[guest_addr] = lambda c, pkt: back.forward_rx(c, pkt)
    return front, back
