"""Para-virtual frontend drivers (blkfront / netfront) and split-I/O wiring.

DomainU guests have no direct device access: their block and network
traffic crosses shared-memory rings to the backend drivers in the driver
domain (§5.2).  The batched flow per *burst* of requests:

    frontend: push a batch of requests on the ring
              -> push_requests_and_check_notify: event-channel notify only
                 if the backend had advertised itself idle
    backend : poll loop — mask the channel, drain the batch, push the batch
              of responses with one coalesced completion notify, unmask,
              final-check, sleep
    frontend: consume the response batch on the (single) completion event

Every hop charges ring/copy/event/grant costs on the CPU, which is where
domainU's I/O overhead in Fig. 3/4 (and its dbench *win*, via the backend
write cache) comes from.  The notification-avoidance protocol
(:mod:`repro.vmm.rings`) is what keeps the event channel quiet while both
sides are streaming — one notify amortizes over a whole TX queue flush or
blkfront submission batch instead of firing per packet/block.

:func:`connect_split_block` / :func:`connect_split_net` wire a guest kernel
to a driver-domain kernel through a hypervisor; Mercury uses the same wiring
when its self-virtualized OS hosts an unmodified guest (the M-U
configuration), and re-creates it after a live migration (§5.2: frontends
reconnect to the new host's backends).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro import trace
from repro.errors import NetworkError, RingError
from repro.hw.devices import Packet
from repro.vmm.backend import BlkBack, BlkRingEntry, NetBack, NetRingEntry
from repro.vmm.rings import IoRing, IoStats

if TYPE_CHECKING:
    from repro.guestos.kernel import Kernel
    from repro.hw.cpu import Cpu
    from repro.vmm.hypervisor import Hypervisor


class BlkFront:
    """Block frontend: presents the kernel's block-driver interface on top
    of a request ring to blkback, with queued submit/complete semantics."""

    def __init__(self, kernel: "Kernel", ring: IoRing, notify_backend,
                 grant_ref: Optional[int] = None,
                 stats: Optional[IoStats] = None):
        self.kernel = kernel
        self.ring = ring
        self.notify_backend = notify_backend
        self.grant_ref = grant_ref
        self.stats = stats if stats is not None else IoStats()
        self.requests = 0
        #: entries pushed since the last publish (for per-batch charging)
        self._batch_n = 0

    # -- queued submit / complete ---------------------------------------

    def submit(self, cpu: "Cpu", entry: BlkRingEntry) -> None:
        """Queue one request on the ring without notifying.  The first
        entry of a batch pays the full ring crossing; later entries ride
        the same cachelines."""
        if self.ring.free_request_slots() == 0:
            # publish what is queued so the backend can drain, then reap
            self.flush_submissions(cpu)
            self.complete(cpu)
            if self.ring.free_request_slots() == 0:
                raise RingError("blkfront ring wedged: no free slots and "
                                "no completions arriving")
        cpu.charge(cpu.cost.cyc_ring_hop if self._batch_n == 0
                   else cpu.cost.cyc_ring_entry_batched)
        self.ring.push_request(entry)
        self._batch_n += 1

    def flush_submissions(self, cpu: "Cpu") -> None:
        """Publish queued requests; notify at most once, and only when the
        backend had advertised itself idle."""
        n, self._batch_n = self._batch_n, 0
        if n == 0:
            return
        self.stats.ring_batches += 1
        self.stats.ring_batched_entries += n
        if self.ring.push_requests_and_check_notify():
            self.stats.notifies_sent += 1
            if trace._ACTIVE is not None:  # hot path: skip the hook call
                trace.instant(cpu.cpu_id, "io.doorbell", dev="blk",
                              ring="req")
            self.notify_backend(cpu)
        else:
            self.stats.notifies_suppressed += 1

    def complete(self, cpu: "Cpu") -> int:
        """Reap completed responses (the completion-event upcall).  The
        final check re-advertises the wakeup index before going idle, so
        the backend's next completion push notifies."""
        done = 0
        while True:
            while self.ring.has_responses():
                entry = self.ring.pop_response()
                entry.completed = True
                self.requests += 1
                done += 1
            if not self.ring.final_check_for_responses():
                return done

    def _await(self, cpu: "Cpu", entry: BlkRingEntry) -> BlkRingEntry:
        if not entry.completed:
            self.complete(cpu)
        if not entry.completed:
            raise RingError("blkback did not respond")
        return entry

    # -- kernel-facing API ----------------------------------------------

    def _one(self, cpu: "Cpu", entry: BlkRingEntry) -> BlkRingEntry:
        self.submit(cpu, entry)
        self.flush_submissions(cpu)
        return self._await(cpu, entry)

    def read_block(self, cpu: "Cpu", block: int) -> object:
        entry = BlkRingEntry(op="read", block=block, grant_ref=self.grant_ref,
                             tag=self.kernel.owner_id)
        return self._one(cpu, entry).result

    def write_block(self, cpu: "Cpu", block: int, data: object) -> None:
        entry = BlkRingEntry(op="write", block=block, data=data,
                             grant_ref=self.grant_ref, tag=self.kernel.owner_id)
        self._one(cpu, entry)

    def write_blocks(self, cpu: "Cpu", blocks: list[tuple[int, object]]) -> None:
        """Batch write: fill the ring, notify at most once per chunk, reap
        the response batch.  A backend that stops responding raises
        :class:`~repro.errors.RingError` instead of silently spinning on a
        stale ``free_request_slots``."""
        i = 0
        while i < len(blocks):
            chunk = blocks[i:i + self.ring.free_request_slots()]
            if not chunk:
                raise RingError("blkfront ring wedged: no free slots and "
                                "no completions arriving")
            entries = [BlkRingEntry(op="write", block=block, data=data,
                                    grant_ref=self.grant_ref,
                                    tag=self.kernel.owner_id)
                       for block, data in chunk]
            for entry in entries:
                self.submit(cpu, entry)
            self.flush_submissions(cpu)
            self.complete(cpu)
            if not entries[-1].completed:
                raise RingError(
                    "blkback wedged: batch submitted but responses never "
                    "arrived")
            i += len(chunk)

    def flush(self, cpu: "Cpu") -> None:
        entry = BlkRingEntry(op="flush", block=0, tag=self.kernel.owner_id)
        self._one(cpu, entry)

    def irq(self, cpu: "Cpu", vector: int) -> None:
        """Completion upcall entry point (legacy vector path)."""
        cpu.charge(cpu.cost.cyc_event_channel)
        self.complete(cpu)


class NetFront:
    """Network frontend: TX queue flushed onto the tx ring with at most one
    notify per flush; batched RX drain from the rx ring fed by netback."""

    def __init__(self, kernel: "Kernel", tx_ring: IoRing, rx_ring: IoRing,
                 notify_backend, stats: Optional[IoStats] = None):
        self.kernel = kernel
        self.tx_ring = tx_ring
        self.rx_ring = rx_ring
        self.notify_backend = notify_backend
        self.stats = stats if stats is not None else IoStats()
        self.tx = 0
        self.rx = 0
        #: packets queued by ``transmit(..., more=True)`` awaiting a flush
        self._txq: list[Packet] = []
        self._flush_timer_armed = False

    # -- transmit --------------------------------------------------------

    def transmit(self, cpu: "Cpu", pkt: Packet, more: bool = False) -> None:
        """Queue one packet.  ``more=True`` is the xmit_more hint from the
        stack: the caller promises another packet (or a flush) follows, so
        the doorbell is deferred and the whole burst shares one notify."""
        cpu.clock.cycles += (cpu.cost.cyc_net_copy_per_kb
                             * max(1, pkt.size_bytes // 1024))
        self._txq.append(pkt)
        self.tx += 1
        if more and len(self._txq) < cpu.cost.io_tx_coalesce_max:
            # delayed doorbell: if the promised flush never comes, a short
            # timer pushes the tail out
            if not self._flush_timer_armed:
                self._flush_timer_armed = True
                self.kernel.machine.clock.schedule(
                    cpu.cost.cyc_tx_coalesce_delay,
                    lambda: self._timer_flush(cpu))
            return
        self.tx_flush(cpu)

    def _timer_flush(self, cpu: "Cpu") -> None:
        self._flush_timer_armed = False
        if self._txq:
            self.tx_flush(cpu)

    def tx_flush(self, cpu: "Cpu") -> int:
        """Move the TX queue onto the ring and notify at most once."""
        flushed = 0
        n = 0
        while self._txq:
            self._reap_tx_completions()
            if self.tx_ring.free_request_slots() == 0:
                # publish the partial batch so the backend can drain it
                self._publish(cpu, n)
                n = 0
                self._reap_tx_completions()
                if self.tx_ring.free_request_slots() == 0:
                    raise NetworkError(
                        "netfront tx ring wedged: backend reaps nothing")
            pkt = self._txq.pop(0)
            cpu.clock.cycles += (cpu.cost.cyc_ring_hop if n == 0
                                 else cpu.cost.cyc_ring_entry_batched)
            self.tx_ring.push_request(NetRingEntry(pkt=pkt))
            n += 1
            flushed += 1
        self._publish(cpu, n)
        return flushed

    def _publish(self, cpu: "Cpu", n: int) -> None:
        if n == 0:
            return
        self.stats.ring_batches += 1
        self.stats.ring_batched_entries += n
        if self.tx_ring.push_requests_and_check_notify():
            self.stats.notifies_sent += 1
            if trace._ACTIVE is not None:  # hot path: skip the hook call
                trace.instant(cpu.cpu_id, "io.doorbell", dev="net",
                              ring="req")
            # the notification wakes the driver domain's vcpu — paid only
            # when a notify is actually delivered, not per packet
            cpu.charge(cpu.cost.cyc_guest_sched_latency)
            self.notify_backend(cpu)
        else:
            self.stats.notifies_suppressed += 1

    def _reap_tx_completions(self) -> None:
        while self.tx_ring.has_responses():
            self.tx_ring.pop_response()

    # -- receive ---------------------------------------------------------

    def upcall(self, cpu: "Cpu") -> int:
        """Event-channel upcall: reap TX completions lazily (no wakeup
        advertised for them — netfront reclaims slots on the next flush)
        and drain the RX ring."""
        self._reap_tx_completions()
        return self.rx_poll(cpu)

    def rx_poll(self, cpu: "Cpu") -> int:
        """Drain the rx ring into the guest's network stack; re-advertise
        the wakeup index and re-check before going idle."""
        drained = 0
        while True:
            while self.rx_ring.has_requests():
                entry: NetRingEntry = self.rx_ring.pop_request()
                cpu.charge(cpu.cost.cyc_ring_hop if drained == 0
                           else cpu.cost.cyc_ring_entry_batched)
                self.rx_ring.push_response(entry)
                self.rx += 1
                drained += 1
                self.kernel.net_rx(cpu, entry.pkt)
            if not self.rx_ring.final_check_for_requests():
                return drained

    # pre-batching entry point name, used by tests and recovery code
    rx_kick = rx_poll


# ---------------------------------------------------------------------------
# wiring helpers
# ---------------------------------------------------------------------------

def _shared_stats(vmm: "Hypervisor") -> IoStats:
    stats = getattr(vmm, "io_stats", None)
    return stats if stats is not None else IoStats()


def connect_split_block(guest: "Kernel", driver: "Kernel",
                        vmm: "Hypervisor") -> tuple[BlkFront, BlkBack]:
    """Connect ``guest``'s block layer to ``driver``'s disk via a ring."""
    guest_dom = vmm.domains[guest.owner_id]
    driver_dom = vmm.domains[driver.owner_id]
    stats = _shared_stats(vmm)

    ring = IoRing(size=32)
    front_ch = vmm.events.alloc(guest_dom.domain_id)
    back_ch = vmm.events.alloc(driver_dom.domain_id)
    vmm.events.connect(front_ch, back_ch)

    # one persistent granted buffer page for request payloads
    buf_frame = guest.machine.memory.alloc(guest.owner_id)
    grant = vmm.grants.grant(guest_dom.domain_id, buf_frame,
                             driver_dom.domain_id)

    back = BlkBack(
        vmm, driver_dom, ring,
        notify_frontend=lambda c: vmm.events.send(c, back_ch),
        submit=lambda c, req: driver.vo.disk_submit(c, req),
        stats=stats)
    back.bind_channel(back_ch)

    front = BlkFront(
        guest, ring,
        notify_backend=lambda c: vmm.events.send(c, front_ch),
        grant_ref=grant.ref, stats=stats)

    # frontend notify -> backend poll; backend notify -> frontend reap
    back_ch.handler = lambda: back.poll(driver.boot_cpu)
    front_ch.handler = lambda: front.complete(guest.boot_cpu)

    guest.install_block_driver(front)
    return front, back


def connect_split_net(guest: "Kernel", driver: "Kernel", vmm: "Hypervisor",
                      guest_addr: str) -> tuple[NetFront, NetBack]:
    """Connect ``guest``'s network stack to ``driver``'s NIC.

    ``guest_addr`` is the guest's address on the wire; the driver domain
    routes inbound frames for it up through netback.  Both notification
    directions run through :meth:`~repro.vmm.events.EventChannels.send`, so
    every fire is charged and counted; the guest-bound direction models the
    domU vcpu wakeup by scheduling the frontend upcall
    ``cyc_guest_rx_latency`` in the future — inbound bursts landing inside
    that window coalesce in the rx ring and drain in one batch."""
    guest_dom = vmm.domains[guest.owner_id]
    driver_dom = vmm.domains[driver.owner_id]
    stats = _shared_stats(vmm)

    tx_ring = IoRing(size=64)
    rx_ring = IoRing(size=64)
    front_ch = vmm.events.alloc(guest_dom.domain_id)
    back_ch = vmm.events.alloc(driver_dom.domain_id)
    vmm.events.connect(front_ch, back_ch)

    back = NetBack(
        vmm, driver_dom, tx_ring, rx_ring,
        notify_frontend=lambda c: vmm.events.send(c, back_ch),
        transmit=lambda c, pkt: driver.vo.net_transmit(c, pkt),
        stats=stats)
    back.bind_channel(back_ch)

    front = NetFront(
        guest, tx_ring, rx_ring,
        notify_backend=lambda c: vmm.events.send(c, front_ch),
        stats=stats)

    back_ch.handler = lambda: back.poll(driver.boot_cpu)

    cost = guest.machine.config.cost

    def _front_upcall() -> None:
        # domU vcpu wakeup latency; the deferred drain is what lets an
        # inbound burst coalesce into one rx_poll pass
        guest.machine.clock.schedule(
            cost.cyc_guest_rx_latency,
            lambda: front.upcall(guest.boot_cpu))

    front_ch.handler = _front_upcall

    guest.install_net_driver(front, addr=guest_addr)
    driver.route_table[guest_addr] = lambda c, pkt: back.forward_rx(c, pkt)
    return front, back
