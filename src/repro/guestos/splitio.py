"""Para-virtual frontend drivers (blkfront / netfront) and split-I/O wiring.

DomainU guests have no direct device access: their block and network
traffic crosses shared-memory rings to the backend drivers in the driver
domain (§5.2).  The flow per request:

    frontend: push request on ring -> event-channel notify
    backend : pop request, map grant, drive the real device, push response
    frontend: pop response on the completion event

Every hop charges ring/copy/event/grant costs on the CPU, which is where
domainU's I/O overhead in Fig. 3/4 (and its dbench *win*, via the backend
write cache) comes from.

:func:`connect_split_block` / :func:`connect_split_net` wire a guest kernel
to a driver-domain kernel through a hypervisor; Mercury uses the same wiring
when its self-virtualized OS hosts an unmodified guest (the M-U
configuration), and re-creates it after a live migration (§5.2: frontends
reconnect to the new host's backends).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import NetworkError, RingError
from repro.hw.devices import Packet
from repro.vmm.backend import BlkBack, BlkRingEntry, NetBack, NetRingEntry
from repro.vmm.rings import IoRing

if TYPE_CHECKING:
    from repro.guestos.kernel import Kernel
    from repro.hw.cpu import Cpu
    from repro.vmm.hypervisor import Hypervisor


class BlkFront:
    """Block frontend: presents the kernel's block-driver interface on top
    of a request ring to blkback."""

    def __init__(self, kernel: "Kernel", ring: IoRing, notify_backend,
                 grant_ref: Optional[int] = None):
        self.kernel = kernel
        self.ring = ring
        self.notify_backend = notify_backend
        self.grant_ref = grant_ref
        self.requests = 0

    def _roundtrip(self, cpu: "Cpu", entry: BlkRingEntry) -> BlkRingEntry:
        cpu.charge(cpu.cost.cyc_ring_hop)
        self.ring.push_request(entry)
        self.notify_backend(cpu)          # backend kick runs synchronously
        if not self.ring.has_responses():
            raise RingError("blkback did not respond")
        self.requests += 1
        return self.ring.pop_response()

    def read_block(self, cpu: "Cpu", block: int) -> object:
        entry = BlkRingEntry(op="read", block=block, grant_ref=self.grant_ref,
                             tag=self.kernel.owner_id)
        return self._roundtrip(cpu, entry).result

    def write_block(self, cpu: "Cpu", block: int, data: object) -> None:
        entry = BlkRingEntry(op="write", block=block, data=data,
                             grant_ref=self.grant_ref, tag=self.kernel.owner_id)
        self._roundtrip(cpu, entry)

    def write_blocks(self, cpu: "Cpu", blocks: list[tuple[int, object]]) -> None:
        """Batch write: fill the ring, notify once, drain responses."""
        i = 0
        while i < len(blocks):
            chunk = blocks[i:i + self.ring.free_request_slots()]
            if not chunk:
                raise RingError("blkfront ring wedged")
            for block, data in chunk:
                cpu.charge(cpu.cost.cyc_ring_hop)
                self.ring.push_request(BlkRingEntry(
                    op="write", block=block, data=data,
                    grant_ref=self.grant_ref, tag=self.kernel.owner_id))
            self.notify_backend(cpu)
            while self.ring.has_responses():
                self.ring.pop_response()
                self.requests += 1
            i += len(chunk)

    def flush(self, cpu: "Cpu") -> None:
        entry = BlkRingEntry(op="flush", block=0, tag=self.kernel.owner_id)
        self._roundtrip(cpu, entry)

    def irq(self, cpu: "Cpu", vector: int) -> None:
        """Completion upcall — synchronous round trips consume responses
        inline, so nothing pends here."""
        cpu.charge(cpu.cost.cyc_event_channel)


class NetFront:
    """Network frontend: transmit over the tx ring, receive from the rx
    ring fed by netback."""

    def __init__(self, kernel: "Kernel", tx_ring: IoRing, rx_ring: IoRing,
                 notify_backend):
        self.kernel = kernel
        self.tx_ring = tx_ring
        self.rx_ring = rx_ring
        self.notify_backend = notify_backend
        self.tx = 0
        self.rx = 0

    def transmit(self, cpu: "Cpu", pkt: Packet) -> None:
        cpu.charge(cpu.cost.cyc_ring_hop)
        cpu.charge(cpu.cost.cyc_net_copy_per_kb * max(1, pkt.size_bytes // 1024))
        # the frontend's notification must wake the driver domain's vcpu
        cpu.charge(cpu.cost.cyc_guest_sched_latency)
        self.tx_ring.push_request(NetRingEntry(pkt=pkt))
        self.notify_backend(cpu)
        while self.tx_ring.has_responses():
            self.tx_ring.pop_response()
        self.tx += 1

    def rx_kick(self, cpu: "Cpu") -> int:
        """Drain the rx ring into the guest's network stack."""
        drained = 0
        while self.rx_ring.has_requests():
            entry: NetRingEntry = self.rx_ring.pop_request()
            self.rx_ring.push_response(entry)
            self.kernel.net_rx(cpu, entry.pkt)
            drained += 1
            self.rx += 1
        return drained


# ---------------------------------------------------------------------------
# wiring helpers
# ---------------------------------------------------------------------------

def connect_split_block(guest: "Kernel", driver: "Kernel",
                        vmm: "Hypervisor") -> tuple[BlkFront, BlkBack]:
    """Connect ``guest``'s block layer to ``driver``'s disk via a ring."""
    guest_dom = vmm.domains[guest.owner_id]
    driver_dom = vmm.domains[driver.owner_id]
    cpu = driver.boot_cpu

    ring = IoRing(size=32)
    front_ch = vmm.events.alloc(guest_dom.domain_id)
    back_ch = vmm.events.alloc(driver_dom.domain_id)
    vmm.events.connect(front_ch, back_ch)

    # one persistent granted buffer page for request payloads
    buf_frame = guest.machine.memory.alloc(guest.owner_id)
    grant = vmm.grants.grant(guest_dom.domain_id, buf_frame,
                             driver_dom.domain_id)

    back = BlkBack(
        vmm, driver_dom, ring,
        notify_frontend=lambda c: vmm.events.send(c, back_ch),
        submit=lambda c, req: driver.vo.disk_submit(c, req))
    back_ch.handler = None  # backend notifies frontend; nothing pends
    front_ch.handler = None

    front = BlkFront(
        guest, ring,
        notify_backend=lambda c: (vmm.events.send(c, front_ch),
                                  back.kick(c))[0],
        grant_ref=grant.ref)
    guest.install_block_driver(front)
    return front, back


def connect_split_net(guest: "Kernel", driver: "Kernel", vmm: "Hypervisor",
                      guest_addr: str) -> tuple[NetFront, NetBack]:
    """Connect ``guest``'s network stack to ``driver``'s NIC.

    ``guest_addr`` is the guest's address on the wire; the driver domain
    routes inbound frames for it up through netback."""
    guest_dom = vmm.domains[guest.owner_id]
    driver_dom = vmm.domains[driver.owner_id]

    tx_ring = IoRing(size=64)
    rx_ring = IoRing(size=64)
    front_ch = vmm.events.alloc(guest_dom.domain_id)
    back_ch = vmm.events.alloc(driver_dom.domain_id)
    vmm.events.connect(front_ch, back_ch)

    back = NetBack(
        vmm, driver_dom, tx_ring, rx_ring,
        notify_frontend=lambda c: vmm.events.send(c, back_ch),
        transmit=lambda c, pkt: driver.vo.net_transmit(c, pkt))

    front = NetFront(
        guest, tx_ring, rx_ring,
        notify_backend=lambda c: (vmm.events.send(c, front_ch),
                                  back.kick_tx(c))[0])

    # deliver the rx ring into the guest when netback forwards
    back.notify_frontend = lambda c: front.rx_kick(c)

    guest.install_net_driver(front, addr=guest_addr)
    driver.route_table[guest_addr] = lambda c, pkt: back.forward_rx(c, pkt)
    return front, back
