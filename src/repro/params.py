"""Cost model and machine configuration.

The simulator charges **cycles** for every primitive operation.  This module
is the single place where those unit costs live, together with the shape of
the simulated machine (the paper's testbed: a DELL SC1420 with two 3 GHz
Xeons, 2 GB RAM, one SCSI disk, one NIC — §7.1).

Calibration philosophy (see DESIGN.md §7): the *native* costs are calibrated
so that native-Linux lmbench rows roughly match Table 1 of the paper.  The
virtualized costs are **not** hard-coded per configuration — they emerge
because the same kernel paths execute through the virtual-mode
virtualization object, paying trap/hypercall/validation costs per sensitive
operation.  Mercury's own overhead is the pointer indirection
(``cyc_vo_indirect``) plus mode-switch work, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

#: Size of a simulated page in bytes (x86 small page).
PAGE_SIZE = 4096

#: Page-table entries per page-table page (x86 32-bit, 2-level paging).
PT_ENTRIES = 1024

#: Bytes of virtual address space covered by one leaf page-table page.
PT_SPAN = PAGE_SIZE * PT_ENTRIES  # 4 MiB


@dataclass(frozen=True)
class CostModel:
    """Per-primitive cycle costs.

    All values are cycles on the issuing CPU unless stated otherwise.
    ``freq_mhz`` converts cycles to wall time: at 3000 MHz, 3000 cycles
    equal one microsecond.
    """

    freq_mhz: int = 3000

    # --- CPU / privilege primitives -------------------------------------
    cyc_kernel_entry: int = 90        # syscall/trap entry into the kernel
    cyc_kernel_exit: int = 80         # return to user
    cyc_syscall_virt_extra: int = 900 # de-privileged syscall: int80 bounces
                                      # through the VMM before reaching the guest
    cyc_privop_native: int = 22       # privileged instruction executed directly
    cyc_trap_roundtrip: int = 1150    # guest -> VMM -> guest bounce (fault reflection)
    cyc_hypercall: int = 750          # explicit hypercall entry/exit
    cyc_emulate_privop: int = 520     # VMM decode+emulate of a trapped sensitive insn
    cyc_vo_indirect: int = 3          # Mercury's function-table indirection
    cyc_iret_fixup: int = 45          # segment-selector fixup stub on return paths
    cyc_lock: int = 150               # contended spinlock (charged in SMP mode)
    cyc_smp_ctx_extra: int = 1_800    # runqueue-lock + cacheline bouncing per switch
    cyc_smp_fault_extra: int = 1_100  # mmap_sem contention per fault (SMP)
    cyc_ipi_send: int = 450
    cyc_ipi_deliver: int = 700
    cyc_sched_pick: int = 3_000       # scheduler work + cache refill per switch
    cyc_ctx_resident_pages: int = 8   # code/stack pages re-touched after CR3 load
    cyc_proc_create_fixed: int = 280_000  # task struct, kernel stack, fd/vma copies
    cyc_exec_fixed: int = 160_000     # image load bookkeeping, argv setup
    cyc_virt_ctx_extra: int = 7_000   # Xen ctx: stack_switch + descriptor updates
                                      # + FPU/segment trap storms per switch
    cyc_interrupt_dispatch: int = 350 # IDT dispatch + handler prologue
    cyc_vmm_irq_latency: int = 55_000 # interrupt-to-guest delivery latency when the
                                      # VMM fields hardware interrupts (event channel
                                      # + scheduling, the dominant net-latency tax)
    cyc_guest_sched_latency: int = 45_000  # extra hop for a non-driver domain:
                                           # frontend/backend notification + vcpu wakeup
    cyc_guest_rx_latency: int = 100_000    # inbound packet to a hosted guest: dom0
                                           # softirq + netback + domU vcpu wakeup

    # --- memory / MMU primitives ----------------------------------------
    cyc_pte_write: int = 12           # direct PTE store (native mode)
    cyc_pte_validate: int = 6         # VMM scan cost per PT slot during pin/validation
    cyc_mmu_update_per_pte: int = 1_400  # per-PTE validate+apply on the unbatched
                                         # update_va_mapping path
    cyc_mmu_update_batched: int = 1_300  # per-PTE cost inside a batched mmu_update
                                         # multicall (validate+apply still paid per
                                         # entry; only the trap is amortized).
                                         # Recalibrated 1000 -> 1300 when the guest
                                         # gained lazy-MMU batching: Xen-Linux's
                                         # measured fork/exec shapes (Table 1)
                                         # already include batching, so the batched
                                         # rate carries nearly all of the per-PTE
                                         # validation tax.
    mmu_batch_size: int = 32             # PTEs per multicall batch
    cyc_emulate_pte_write: int = 1500 # trap + decode + validate one guest PTE store
    cyc_cr3_write: int = 320          # page-table base load, incl. mandatory TLB flush
    cyc_tlb_flush: int = 220
    cyc_tlb_refill_per_page: int = 38 # first-touch cost per page after a flush
    cyc_mem_touch_per_kb: int = 260   # copying/zeroing/touching one KB of data
    cyc_fault_hw: int = 820           # hardware fault delivery (native)
    cyc_fault_handler_fixed: int = 900  # kernel fault-handler fixed work
    cyc_page_alloc: int = 420         # buddy-allocator work for one frame
    cyc_cow_copy_page: int = 1180     # copy one 4 KiB page on a COW break
    cyc_virt_fault_penalty: int = 2600  # extra cache/iTLB damage per virt-mode fault
                                        # (the paper's [28]: increased iTLB/cache misses)

    # --- mode switch (Mercury) -------------------------------------------
    cyc_switch_interrupt: int = 2200   # the self-virtualization interrupt + prologue
    cyc_reload_fixed: int = 90_000     # CR3/IDT/GDT/LDT reload + VMM (de)activation
    cyc_transfer_per_pt_page: int = 500    # re-protect one PT page + irq rebinding share
    cyc_refcount_check: int = 60
    cyc_active_track_per_op: int = 9   # ACTIVE accounting: extra work per PT op in
                                       # native mode (the 2-3% running-cost option)

    # --- device primitives -----------------------------------------------
    cyc_disk_submit: int = 2800        # driver + controller doorbell per request
    cyc_disk_irq: int = 2400           # completion interrupt handling
    cyc_ring_hop: int = 2100           # one shared-memory ring crossing (req or resp)
    cyc_event_channel: int = 900       # virtual interrupt via event channel
    cyc_grant_map: int = 1400          # map/unmap one granted page
    cyc_net_per_packet: int = 3900     # native stack cost per packet (driver+stack)
    cyc_net_copy_per_kb: int = 300     # payload copy cost
    cyc_fs_op_fixed: int = 2300        # VFS path resolution + inode ops
    cyc_journal_commit: int = 9000     # ext3-like journal commit

    # --- split-driver batched datapath (§5.2) -----------------------------
    cyc_ring_entry_batched: int = 350  # 2nd+ entry moved in one batched ring
                                       # crossing (the first entry of a batch
                                       # pays the full cyc_ring_hop: cacheline
                                       # transfer + index publish; later slots
                                       # ride the same lines)
    cyc_netback_per_packet: int = 34_000  # netback's per-packet work: grant
                                       # map/unmap of the payload page, the
                                       # RX page flip's mmu update, softirq +
                                       # bridge hop.  Calibrated (like
                                       # cyc_mmu_update_batched) so X-U iperf
                                       # keeps the paper's ~70% loss now that
                                       # notifications are coalesced: real Xen
                                       # 2.x already ran the notify-avoiding
                                       # ring protocol, so its measured loss
                                       # is per-packet processing, not
                                       # per-packet wakeups.
    io_poll_budget: int = 64           # NAPI-style backend poll budget:
                                       # ring entries drained per loop pass
                                       # before the channel is re-checked
    io_tx_coalesce_max: int = 16       # netfront TX queue depth that forces
                                       # a ring flush even mid-burst
    cyc_tx_coalesce_delay: int = 9_000 # delayed-doorbell timer (3 µs) that
                                       # flushes a TX tail left queued by the
                                       # xmit-more path

    # --- physical device timing (nanoseconds, not CPU cycles) ------------
    disk_seek_ns: int = 4_900_000      # average seek, 10k RPM SCSI
    disk_rot_ns: int = 3_000_000       # average rotational delay
    disk_xfer_ns_per_kb: int = 16_000  # ~60 MB/s media rate
    net_wire_ns_per_kb: int = 8_200    # ~1 Gb/s wire
    net_latency_ns: int = 55_000       # one-way switch+wire latency

    def us(self, cycles: float) -> float:
        """Convert cycles to microseconds at this clock frequency."""
        return cycles / self.freq_mhz

    def cycles_from_ns(self, ns: float) -> float:
        """Convert wall-clock nanoseconds to cycles at this frequency."""
        return ns * self.freq_mhz / 1000.0


@dataclass(frozen=True)
class MachineConfig:
    """Shape of a simulated machine.

    Defaults mirror the paper's testbed (§7.1): 3 GHz CPUs, 900 000 KB per
    Linux variant, 100 Hz timer.  Tests use smaller memories for speed; the
    benchmarks use paper-faithful sizes.
    """

    num_cpus: int = 1
    mem_kb: int = 900_000
    timer_hz: int = 100
    cost: CostModel = field(default_factory=CostModel)

    @property
    def num_frames(self) -> int:
        return (self.mem_kb * 1024) // PAGE_SIZE

    def with_cpus(self, n: int) -> "MachineConfig":
        return replace(self, num_cpus=n)

    def with_mem_kb(self, kb: int) -> "MachineConfig":
        return replace(self, mem_kb=kb)


def small_config(num_cpus: int = 1, mem_kb: int = 16_384) -> MachineConfig:
    """A small, fast configuration for unit tests (16 MiB by default)."""
    return MachineConfig(num_cpus=num_cpus, mem_kb=mem_kb)


def paper_config(num_cpus: int = 1) -> MachineConfig:
    """The paper's testbed configuration (§7.1)."""
    return MachineConfig(num_cpus=num_cpus, mem_kb=900_000)
