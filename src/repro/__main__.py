"""Command-line reproduction harness: ``python -m repro <target>``.

Targets:

- ``table1`` / ``table2`` — the lmbench tables (UP / SMP)
- ``fig3`` / ``fig4``     — the application-benchmark figures (UP / SMP)
- ``switch``              — the §7.4 mode-switch measurement
- ``trace``               — a traced switch round-trip: text timeline +
  per-phase latency breakdown (``--trace-json FILE`` for chrome://tracing)
- ``simload``             — the §5.1.1 switch-under-load scenario under the
  deterministic simulation scheduler; emits canonical output suitable for
  byte-for-byte diffing (the CI ``sched-determinism`` job runs it twice).
  With ``--machines N`` it becomes the sharded-fleet scenario: N storm
  machines in a heartbeat ring, partitioned over ``--workers`` shards —
  the output stays byte-identical at every worker count (the CI
  ``shard-determinism`` job diffs exactly that)
- ``chaos``               — the VMM-fault chaos campaign: seeded fault
  episodes with VMI-watchdog detection and microreboot recovery; emits
  canonical output (the CI ``chaos-recovery`` job runs it twice);
  ``--workers N`` fans episodes across processes without changing a byte
- ``fleet``               — the §6 scenarios as fleet operations: an
  open-loop arrival stream over ``--machines N`` service machines behind
  a switch-aware balancer while a rolling wave (``--scenario
  liveupdate|maintenance|cluster``) runs; emits canonical output that is
  byte-identical at any ``--workers`` count (the CI ``fleet-smoke`` job
  diffs exactly that); ``--fleet-summary`` prints the percentile report
  instead; ``--guest-domains N`` hosts N ballooned guest domains per
  service machine and serves the traffic from them under the elastic
  memory controller (``--elastic-strategy``)
- ``elastic``             — the memory-elasticity bench: attach-time
  drift vs. balloon churn rate plus the reclaim-strategy ablation
  (hypervisor-driven vs. guest-delegated); emits canonical output (the
  CI ``memory-elasticity`` job double-runs and byte-diffs it)
- ``all``                 — everything, in paper order

Options: ``--quick`` (N-L and X-0 columns only), ``--mem-kb N``,
``--cpus N`` (trace target), ``--trace-json FILE``, ``--rounds N``
(simload storm rounds), ``--machines N`` / ``--workers N`` (sharded
simload/fleet size and parallelism; workers also parallelizes chaos),
``--episodes N`` / ``--seed N`` (chaos campaign; seed also feeds fleet),
``--scenario``, ``--policy``, ``--arrival``, ``--requests N``,
``--fleet-summary`` (fleet target).
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from repro import Machine, Mercury, MachineConfig, trace
from repro.bench.configs import CONFIG_KEYS
from repro.bench.report import (format_lmbench_table, format_relative_figure,
                                format_switch_times)
from repro.bench.runner import (relative_to_native, run_app_suite,
                                run_lmbench_suite)
from repro.core.switch import Direction

TARGETS = ("table1", "table2", "fig3", "fig4", "switch", "trace",
           "simload", "chaos", "fleet", "elastic", "all")


def _measure_switch(config) -> tuple[float, float]:
    machine = Machine(config)
    mercury = Mercury(machine)
    kernel = mercury.create_kernel(image_pages=384)
    cpu = machine.boot_cpu
    for _ in range(41):
        kernel.syscall(cpu, "fork")
    for _ in range(5):
        mercury.attach()
        mercury.detach()
    return (mercury.mean_switch_us(Direction.TO_VIRTUAL),
            mercury.mean_switch_us(Direction.TO_NATIVE))


def _trace_switch(config, num_cpus: int, json_path: str | None) -> None:
    """Run one attach/detach round-trip under the tracer and print the
    timeline plus the §7.4 per-phase breakdown."""
    cfg = dataclasses.replace(config, num_cpus=num_cpus)
    machine = Machine(cfg)
    mercury = Mercury(machine)
    kernel = mercury.create_kernel(image_pages=64)
    cpu = machine.boot_cpu
    for _ in range(8):
        kernel.syscall(cpu, "fork")
    with trace.tracing(machine) as tracer:
        mercury.attach()
        mercury.detach()
    events = tracer.events()
    freq = cfg.cost.freq_mhz

    print(f"Mode-switch trace — {num_cpus} CPU(s), {len(events)} events "
          f"({tracer.dropped} dropped)")
    print()
    print(trace.format_timeline(events, freq_mhz=freq))
    print()
    print("Per-phase switch latency (§7.4 decomposition):")
    print(trace.format_phase_table(
        trace.phase_summary(events, names=trace.SWITCH_PHASES),
        freq_mhz=freq))
    if json_path:
        trace.write_chrome_trace(json_path, events, freq_mhz=freq)
        print(f"\nwrote Chrome trace_event JSON to {json_path} "
              f"(load in chrome://tracing or Perfetto)")


def _simload(rounds: int, machines: int, workers: int) -> None:
    """Run the switch-under-load scenario and print its canonical output.

    Everything printed is a pure function of the parameters; run twice
    (or at different ``--workers``) and ``diff`` to check scheduler and
    sharding determinism."""
    from repro.bench.underload import (run_fleet_under_load,
                                       run_switch_under_load)
    from repro.hw.machine import reset_machine_ids

    if machines > 1:
        result = run_fleet_under_load(machines=machines, workers=workers,
                                      rounds=rounds)
        sys.stdout.write(result.canonical_output())
        return
    reset_machine_ids()
    result = run_switch_under_load(rounds=rounds)
    sys.stdout.write(result.canonical_output())


def _chaos(episodes: int, seed: int, workers: int) -> None:
    """Run the chaos campaign and print its canonical output (byte-exact
    for a given seed/episode count at any worker count — the
    chaos-recovery and shard-determinism CI contracts)."""
    from repro.bench.chaoscampaign import run_chaos_campaign

    result = run_chaos_campaign(episodes=episodes, seed=seed,
                                workers=workers)
    sys.stdout.write(result.canonical_output())


def _fleet(args) -> None:
    """Run a §6 fleet operation; print the canonical (byte-diffable)
    output, or the human percentile report with ``--fleet-summary``."""
    import json

    from repro.fleet import run_fleet

    # --machines defaults to 1 for simload; a fleet needs real machines
    machines = args.machines if args.machines > 1 else 100
    result = run_fleet(machines=machines, workers=args.workers,
                       seed=args.seed, scenario=args.scenario,
                       policy=args.policy, arrival=args.arrival,
                       requests=args.requests,
                       guest_domains=args.guest_domains,
                       guest_mem_pages=args.guest_mem_pages,
                       guest_mem_floor=args.guest_mem_floor,
                       elastic_strategy=args.elastic_strategy)
    if args.fleet_summary:
        print(json.dumps(result.summary(), indent=1, sort_keys=True))
        return
    sys.stdout.write(result.canonical_output())


def _elastic() -> None:
    """Run the memory-elasticity bench and print its canonical output
    (byte-exact — the memory-elasticity CI job double-runs and diffs)."""
    from repro.bench.elasticity import run_elasticity

    sys.stdout.write(run_elasticity().canonical_output())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the Mercury paper's tables and figures.")
    parser.add_argument("target", choices=TARGETS)
    parser.add_argument("--quick", action="store_true",
                        help="N-L and X-0 columns only")
    parser.add_argument("--mem-kb", type=int, default=262_144,
                        help="simulated memory per machine (default 262144)")
    parser.add_argument("--cpus", type=int, default=1,
                        help="CPU count for the trace target (default 1)")
    parser.add_argument("--trace-json", metavar="FILE", default=None,
                        help="also write the trace target's events as "
                             "Chrome trace_event JSON")
    parser.add_argument("--rounds", type=int, default=5,
                        help="attach/detach rounds for the simload target "
                             "(default 5)")
    parser.add_argument("--machines", type=int, default=1,
                        help="simload fleet size; >1 runs the sharded "
                             "heartbeat-ring scenario (default 1)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the sharded simload "
                             "fleet and the chaos campaign (default 1)")
    parser.add_argument("--episodes", type=int, default=20,
                        help="fault episodes for the chaos target "
                             "(default 20)")
    parser.add_argument("--seed", type=int, default=1234,
                        help="RNG seed for the chaos and fleet targets "
                             "(default 1234)")
    parser.add_argument("--scenario", choices=("liveupdate", "maintenance",
                                               "cluster"),
                        default="liveupdate",
                        help="fleet wave scenario (default liveupdate)")
    parser.add_argument("--policy", choices=("round-robin",
                                             "least-outstanding",
                                             "switch-aware"),
                        default="switch-aware",
                        help="fleet balancer policy (default switch-aware)")
    parser.add_argument("--arrival", choices=("poisson", "pareto"),
                        default="poisson",
                        help="fleet arrival process (default poisson)")
    parser.add_argument("--requests", type=int, default=None,
                        help="fleet request count (default scales with "
                             "--machines)")
    parser.add_argument("--fleet-summary", action="store_true",
                        help="print the fleet percentile report instead of "
                             "canonical output")
    parser.add_argument("--guest-domains", type=int, default=0,
                        help="ballooned guest domains hosted per fleet "
                             "service machine (default 0: serve bare)")
    parser.add_argument("--guest-mem-pages", type=int, default=48,
                        help="per-guest balloon reservation (default 48)")
    parser.add_argument("--guest-mem-floor", type=int, default=16,
                        help="per-guest memory floor the elastic controller "
                             "never reclaims below (default 16)")
    parser.add_argument("--elastic-strategy",
                        choices=("hypervisor-driven", "guest-delegated"),
                        default="guest-delegated",
                        help="fleet reclaim strategy (default "
                             "guest-delegated)")
    args = parser.parse_args(argv)

    keys = ("N-L", "X-0") if args.quick else CONFIG_KEYS
    config = dataclasses.replace(MachineConfig(), mem_kb=args.mem_kb)
    want = (lambda t: args.target in (t, "all"))

    if want("table1"):
        t = run_lmbench_suite(num_cpus=1, config=config, keys=keys)
        print(format_lmbench_table(
            t, "Table 1. Lmbench latency results in uniprocessor mode",
            keys=keys))
        print()
    if want("table2"):
        t = run_lmbench_suite(num_cpus=2, config=config, keys=keys)
        print(format_lmbench_table(
            t, "Table 2. Lmbench latency results in SMP mode", keys=keys))
        print()
    if want("fig3"):
        rel = relative_to_native(
            run_app_suite(num_cpus=1, config=config, keys=keys))
        print(format_relative_figure(
            rel, "Fig. 3. Relative performance, uniprocessor mode",
            keys=keys))
        print()
    if want("fig4"):
        rel = relative_to_native(
            run_app_suite(num_cpus=2, config=config, keys=keys))
        print(format_relative_figure(
            rel, "Fig. 4. Relative performance, SMP mode", keys=keys))
        print()
    if want("switch"):
        to_v, to_n = _measure_switch(config)
        print(format_switch_times(to_v, to_n))
        print()
    if args.target == "trace":  # deliberately not part of "all"
        _trace_switch(config, num_cpus=args.cpus, json_path=args.trace_json)
        print()
    if args.target == "simload":  # canonical output: not part of "all"
        _simload(rounds=args.rounds, machines=args.machines,
                 workers=args.workers)
    if args.target == "chaos":  # canonical output: not part of "all"
        _chaos(episodes=args.episodes, seed=args.seed,
               workers=args.workers)
    if args.target == "fleet":  # canonical output: not part of "all"
        _fleet(args)
    if args.target == "elastic":  # canonical output: not part of "all"
        _elastic()
    return 0


if __name__ == "__main__":
    sys.exit(main())
