"""Command-line reproduction harness: ``python -m repro <target>``.

Targets:

- ``table1`` / ``table2`` — the lmbench tables (UP / SMP)
- ``fig3`` / ``fig4``     — the application-benchmark figures (UP / SMP)
- ``switch``              — the §7.4 mode-switch measurement
- ``all``                 — everything, in paper order

Options: ``--quick`` (N-L and X-0 columns only), ``--mem-kb N``.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from repro import Machine, Mercury, MachineConfig
from repro.bench.configs import CONFIG_KEYS
from repro.bench.report import (format_lmbench_table, format_relative_figure,
                                format_switch_times)
from repro.bench.runner import (relative_to_native, run_app_suite,
                                run_lmbench_suite)
from repro.core.switch import Direction

TARGETS = ("table1", "table2", "fig3", "fig4", "switch", "all")


def _measure_switch(config) -> tuple[float, float]:
    machine = Machine(config)
    mercury = Mercury(machine)
    kernel = mercury.create_kernel(image_pages=384)
    cpu = machine.boot_cpu
    for _ in range(41):
        kernel.syscall(cpu, "fork")
    for _ in range(5):
        mercury.attach()
        mercury.detach()
    return (mercury.mean_switch_us(Direction.TO_VIRTUAL),
            mercury.mean_switch_us(Direction.TO_NATIVE))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the Mercury paper's tables and figures.")
    parser.add_argument("target", choices=TARGETS)
    parser.add_argument("--quick", action="store_true",
                        help="N-L and X-0 columns only")
    parser.add_argument("--mem-kb", type=int, default=262_144,
                        help="simulated memory per machine (default 262144)")
    args = parser.parse_args(argv)

    keys = ("N-L", "X-0") if args.quick else CONFIG_KEYS
    config = dataclasses.replace(MachineConfig(), mem_kb=args.mem_kb)
    want = (lambda t: args.target in (t, "all"))

    if want("table1"):
        t = run_lmbench_suite(num_cpus=1, config=config, keys=keys)
        print(format_lmbench_table(
            t, "Table 1. Lmbench latency results in uniprocessor mode",
            keys=keys))
        print()
    if want("table2"):
        t = run_lmbench_suite(num_cpus=2, config=config, keys=keys)
        print(format_lmbench_table(
            t, "Table 2. Lmbench latency results in SMP mode", keys=keys))
        print()
    if want("fig3"):
        rel = relative_to_native(
            run_app_suite(num_cpus=1, config=config, keys=keys))
        print(format_relative_figure(
            rel, "Fig. 3. Relative performance, uniprocessor mode",
            keys=keys))
        print()
    if want("fig4"):
        rel = relative_to_native(
            run_app_suite(num_cpus=2, config=config, keys=keys))
        print(format_relative_figure(
            rel, "Fig. 4. Relative performance, SMP mode", keys=keys))
        print()
    if want("switch"):
        to_v, to_n = _measure_switch(config)
        print(format_switch_times(to_v, to_n))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
