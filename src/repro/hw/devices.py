"""Simulated devices: SCSI-like block device, NIC + link, periodic timer.

Device timing follows the testbed in §7.1: a 10k RPM SCSI disk (seek +
rotational + media transfer) and a gigabit-class NIC behind a switch.
Devices complete asynchronously: a request is submitted, the device
schedules a completion on the machine clock, and completion raises the
device's interrupt line.  The guest OS (native driver) or the VMM backend
(split driver) fields the interrupt.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import DeviceError

if TYPE_CHECKING:
    from repro.hw.machine import Machine


@dataclass
class BlockRequest:
    """One block I/O request (4 KiB granularity)."""

    op: str                      # "read" | "write"
    block: int
    data: object = None          # payload for writes
    tag: object = None           # opaque caller cookie
    result: object = None        # filled in on completion (reads)
    done: bool = False


class BlockDevice:
    """A single spindle with a seek/rotation/transfer latency model and a
    persistent block store (survives guest reboots, backs the filesystem)."""

    def __init__(self, machine: "Machine", name: str = "sda",
                 num_blocks: int = 1 << 20):
        self.machine = machine
        self.name = name
        self.num_blocks = num_blocks
        self.blocks: dict[int, object] = {}
        # boot-time journal replay leaves the head at the data area
        self._head = 1024
        self.completed: deque[BlockRequest] = deque()
        self.requests_served = 0

    def submit(self, req: BlockRequest) -> None:
        """Queue a request; completion will raise the device's line."""
        if not (0 <= req.block < self.num_blocks):
            raise DeviceError(f"{self.name}: block {req.block} out of range")
        cost = self.machine.config.cost
        # Seek model: near-sequential access streams at media rate (the
        # drive's track cache absorbs it); real seeks pay head travel plus
        # half a rotation.
        distance = abs(req.block - self._head)
        if distance <= 128:
            seek_ns = 0
        else:
            seek_ns = min(cost.disk_seek_ns,
                          int(cost.disk_seek_ns * (0.25 + 0.75 * distance / self.num_blocks)))
            seek_ns += cost.disk_rot_ns // 2
        xfer_ns = cost.disk_xfer_ns_per_kb * 4  # 4 KiB blocks
        self._head = req.block

        def complete() -> None:
            if req.op == "read":
                req.result = self.blocks.get(req.block)
            elif req.op == "write":
                self.blocks[req.block] = req.data
            else:
                raise DeviceError(f"unknown block op {req.op!r}")
            req.done = True
            self.completed.append(req)
            self.requests_served += 1
            self.machine.intc.raise_line(self.name)

        self.machine.clock.schedule(
            int(cost.cycles_from_ns(seek_ns + xfer_ns)), complete)

    # -- synchronous convenience used by boot-time setup (no interrupts yet)

    def write_sync(self, block: int, data: object) -> None:
        if not (0 <= block < self.num_blocks):
            raise DeviceError(f"{self.name}: block {block} out of range")
        self.blocks[block] = data

    def read_sync(self, block: int) -> object:
        if not (0 <= block < self.num_blocks):
            raise DeviceError(f"{self.name}: block {block} out of range")
        return self.blocks.get(block)


@dataclass(slots=True)
class Packet:
    """One network frame."""

    src: str
    dst: str
    proto: str              # "tcp" | "udp" | "icmp"
    size_bytes: int
    payload: object = None
    seq: int = 0


class Nic:
    """A network interface.  Two NICs are joined by a :class:`Link`."""

    def __init__(self, machine: "Machine", name: str = "eth0", addr: str = "10.0.0.1"):
        self.machine = machine
        self.name = name
        self.addr = addr
        self.link: Optional["Link"] = None
        self.rx_queue: deque[Packet] = deque()
        self.tx_packets = 0
        self.rx_packets = 0
        self.tx_bytes = 0
        self.rx_bytes = 0

    def transmit(self, pkt: Packet) -> None:
        """Put a frame on the wire; the peer's line is raised on arrival."""
        if self.link is None:
            raise DeviceError(f"{self.name}: no link attached")
        self.tx_packets += 1
        self.tx_bytes += pkt.size_bytes
        self.link.carry(self, pkt)

    def deliver(self, pkt: Packet) -> None:
        self.rx_packets += 1
        self.rx_bytes += pkt.size_bytes
        self.rx_queue.append(pkt)
        self.machine.intc.raise_line(self.name)


class Link:
    """A full-duplex wire between two NICs with bandwidth + latency.

    Wire time is charged to the *global* clock via scheduled delivery, so
    end-to-end measurements (ping RTT, iperf goodput) include both hosts'
    CPU costs and the wire."""

    def __init__(self, a: Nic, b: Nic):
        self.a, self.b = a, b
        a.link = self
        b.link = self
        #: cycle time until which the wire is occupied (serialization /
        #: NIC back-pressure: a sender cannot outpace the physical link)
        self.busy_until = 0
        #: fault injection: drop the next N frames (migration blackouts,
        #: lossy-switch tests)
        self.drop_next = 0
        self.dropped = 0

    def carry(self, from_nic: Nic, pkt: Packet) -> None:
        to_nic = self.b if from_nic is self.a else self.a
        if self.drop_next > 0:
            self.drop_next -= 1
            self.dropped += 1
            return  # the frame vanishes on the wire
        clock = from_nic.machine.clock
        cost = from_nic.machine.config.cost
        xfer_cycles = int(cost.cycles_from_ns(
            cost.net_wire_ns_per_kb * pkt.size_bytes / 1024.0))
        # back-pressure: the NIC blocks the sender while the wire drains
        start = max(clock.cycles, self.busy_until)
        if start > clock.cycles:
            clock.cycles = start
        self.busy_until = start + xfer_cycles
        arrive_in = (self.busy_until - clock.cycles
                     + int(cost.cycles_from_ns(cost.net_latency_ns)))
        clock.schedule(arrive_in, lambda: to_nic.deliver(pkt))


class TimerDevice:
    """The periodic timer (100 Hz in the paper's setup)."""

    def __init__(self, machine: "Machine", hz: int):
        self.machine = machine
        self.hz = hz
        self.ticks = 0
        self._armed = False

    @property
    def period_cycles(self) -> int:
        cycles_per_second = self.machine.config.cost.freq_mhz * 1_000_000
        return cycles_per_second // self.hz

    def start(self) -> None:
        if self._armed:
            return
        self._armed = True
        self._arm()

    def stop(self) -> None:
        self._armed = False

    def _arm(self) -> None:
        def tick() -> None:
            if not self._armed:
                return
            self.ticks += 1
            self.machine.intc.raise_line("timer")
            self._arm()
        self.machine.clock.schedule(self.period_cycles, tick)
