"""Physical memory: frame allocator, per-frame metadata, frame contents.

Frame *metadata* is columnar.  The owner column is an ``array('i')`` —
alloc/free/validation touch it one frame at a time on hot guest paths, and
a C-level scalar load is several times cheaper than boxing a numpy scalar —
with a zero-copy numpy view kept alongside for the whole-memory passes
(ownership scans for checkpoints and migration dirty-logging).  The
generation column stays a numpy array: it is only read vectorized.

Frame *contents* are stored sparsely: the simulator only materializes the
content of frames someone actually writes (filesystem blocks, checkpoint
payloads, workload data).  Contents are opaque Python values; fidelity tests
round-trip them through checkpoints and migrations.
"""

from __future__ import annotations

from array import array
from typing import Iterator, Optional

import numpy as np

from repro.errors import InvalidPhysicalAddress, OutOfMemory
from repro.params import PAGE_SIZE

#: owner value for a free frame
OWNER_FREE = -1
#: owner value for frames belonging to the hardware/firmware (never allocatable)
OWNER_RESERVED = -2


class PhysicalMemory:
    """All installed RAM, divided into 4 KiB frames."""

    def __init__(self, num_frames: int):
        if num_frames <= 0:
            raise ValueError("num_frames must be positive")
        self.num_frames = num_frames
        #: which domain/owner id holds each frame (OWNER_FREE if none)
        self.owner = array("i", [OWNER_FREE]) * num_frames
        #: zero-copy numpy view of :attr:`owner` for vectorized scans
        self.owner_np = np.frombuffer(self.owner, dtype=np.int32)
        #: bumped on every content write; migration uses it for dirty logging
        self.generation = np.zeros(num_frames, dtype=np.int64)
        # Free frames are represented implicitly: frames below the
        # ``_next_fresh`` watermark are allocated unless they sit on the
        # ``_recycled`` LIFO stack; frames at/above it are free unless in
        # ``_fresh_skipped`` (claimed out of order by ``alloc_specific``).
        # Allocation order — freed frames LIFO-first, then the lowest
        # fresh frame — is deterministic and load-bearing: frame numbers
        # feed page-info columns and golden traces.
        self._recycled: list[int] = []
        self._next_fresh = 0
        self._fresh_skipped: set[int] = set()
        self._contents: dict[int, object] = {}
        #: arbitrary structured occupants (e.g. PageTablePage objects),
        #: indexed by frame — the simulator's stand-in for "what these bytes
        #: mean when interpreted by hardware"
        self.frame_objects: dict[int, object] = {}

    # -- allocation -----------------------------------------------------

    def alloc(self, owner: int) -> int:
        """Allocate one frame to ``owner``; returns the frame number."""
        recycled = self._recycled
        if recycled:
            frame = recycled.pop()
        else:
            frame = self._next_fresh
            skipped = self._fresh_skipped
            while skipped and frame in skipped:
                skipped.discard(frame)
                frame += 1
            if frame >= self.num_frames:
                self._next_fresh = frame
                raise OutOfMemory("physical memory exhausted")
            self._next_fresh = frame + 1
        self.owner[frame] = owner
        return frame

    def alloc_many(self, owner: int, n: int) -> list[int]:
        if n > self.free_frames:
            raise OutOfMemory(f"requested {n} frames, {self.free_frames} free")
        return [self.alloc(owner) for _ in range(n)]

    def alloc_specific(self, frame: int, owner: int) -> int:
        """Allocate a *specific* frame (checkpoint-restore and migration
        rebuild page tables with their original frame numbers on a fresh
        target).  O(n) on the recycled stack; restore paths only."""
        self._check(frame)
        if self.owner[frame] != OWNER_FREE:
            raise InvalidPhysicalAddress(f"frame {frame} is already allocated")
        if frame >= self._next_fresh:
            self._fresh_skipped.add(frame)
        else:
            self._recycled.remove(frame)
        self.owner[frame] = owner
        return frame

    def free(self, frame: int) -> None:
        # _check inlined: free runs per frame on every teardown path
        if not 0 <= frame < self.num_frames:
            raise InvalidPhysicalAddress(f"frame {frame} out of range")
        if self.owner[frame] == OWNER_FREE:
            raise InvalidPhysicalAddress(f"double free of frame {frame}")
        self.owner[frame] = OWNER_FREE
        self._contents.pop(frame, None)
        self.frame_objects.pop(frame, None)
        self._recycled.append(frame)

    def reassign(self, frame: int, new_owner: int) -> None:
        """Transfer ownership of a frame (used when a VMM claims frames of a
        formerly-native OS during self-virtualization)."""
        self._check(frame)
        if self.owner[frame] == OWNER_FREE:
            raise InvalidPhysicalAddress(f"reassigning free frame {frame}")
        self.owner[frame] = new_owner

    @property
    def free_frames(self) -> int:
        return (self.num_frames - self._next_fresh
                - len(self._fresh_skipped) + len(self._recycled))

    def frames_owned_by(self, owner: int) -> np.ndarray:
        """All frame numbers currently owned by ``owner`` (vectorized)."""
        return np.flatnonzero(self.owner_np == owner)

    # -- contents ----------------------------------------------------------

    def write(self, frame: int, value: object) -> None:
        self._check_allocated(frame)
        self._contents[frame] = value
        self.generation[frame] += 1

    def read(self, frame: int) -> object:
        self._check_allocated(frame)
        return self._contents.get(frame)

    def written_frames(self) -> Iterator[int]:
        return iter(self._contents)

    # -- validation ----------------------------------------------------------

    def _check(self, frame: int) -> None:
        if not (0 <= frame < self.num_frames):
            raise InvalidPhysicalAddress(f"frame {frame} out of range")

    def _check_allocated(self, frame: int) -> None:
        self._check(frame)
        if self.owner[frame] == OWNER_FREE:
            raise InvalidPhysicalAddress(f"frame {frame} is not allocated")

    def owner_of(self, frame: int) -> int:
        self._check(frame)
        return int(self.owner[frame])

    # -- snapshots (checkpoint/migration substrate) ---------------------------

    def snapshot_owner_frames(self, owner: int) -> dict[int, object]:
        """Copy the contents of every frame held by ``owner``."""
        out: dict[int, object] = {}
        for frame in self.frames_owned_by(owner):
            f = int(frame)
            out[f] = self._contents.get(f)
        return out

    def generation_of(self, frames: np.ndarray) -> np.ndarray:
        return self.generation[frames]
