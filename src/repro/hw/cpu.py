"""Simulated CPU: privilege levels, control registers, descriptor tables.

Each :class:`Cpu` carries the architectural state a mode switch must
manipulate (§3.2, §5.1.3 of the paper): the current privilege level, the
page-table base register (CR3), the interrupt flag, the IDT/GDT/LDT base
registers, and a per-CPU TSC readable with :meth:`rdtsc` (the paper measures
mode-switch time with RDTSC, §7.4).

Privileged accesses are checked: touching CR3/IDT/GDT or executing a
privileged instruction from a level below the required one raises
:class:`~repro.errors.GeneralProtectionFault` — exactly the mechanism a VMM
relies on to intercept a de-privileged guest.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import GeneralProtectionFault
from repro.hw.tlb import Tlb

if TYPE_CHECKING:
    from repro.hw.machine import Machine


class PrivilegeLevel(enum.IntEnum):
    """x86-style rings.  The VMM and a native kernel run at PL0; a
    de-privileged (virtualized) kernel runs at PL1; user code at PL3."""

    PL0 = 0
    PL1 = 1
    PL3 = 3


class SegmentDescriptor:
    """A (simplified) GDT entry: just the descriptor privilege level and a
    tag.  The paper's §5.1.2 stack fixup exists because selectors naming
    these descriptors get cached on interrupt stacks."""

    __slots__ = ("name", "dpl")

    def __init__(self, name: str, dpl: int):
        self.name = name
        self.dpl = dpl

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SegmentDescriptor({self.name!r}, dpl={self.dpl})"


class Cpu:
    """One simulated processor core."""

    def __init__(self, cpu_id: int, machine: "Machine"):
        self.cpu_id = cpu_id
        self.machine = machine
        self.clock = machine.clock
        self.cost = machine.config.cost

        # Architectural state --------------------------------------------
        self.pl: PrivilegeLevel = PrivilegeLevel.PL0  # boot in kernel mode
        self.cr3: Optional[int] = None   # frame number of the active PGD
        self.interrupts_enabled: bool = True
        self.idt_base: Optional[object] = None  # the installed IDT object
        self.gdt: dict[int, SegmentDescriptor] = {}
        self.ldt: dict[int, SegmentDescriptor] = {}
        self.tlb = Tlb(capacity=64)
        self._tsc_offset = 0

        # The privilege level required for privileged operations.  On bare
        # hardware this is PL0.  It never changes; what changes is the PL
        # the *kernel* runs at.
        self._priv_required = PrivilegeLevel.PL0

        # Interception hook: when a VMM is active it registers a callback
        # that receives privileged-operation traps from lower-privileged
        # code instead of the hardware raising a fault to nobody.
        self.trap_handler: Optional[Callable[["Cpu", str, tuple], object]] = None

    # -- time / cost -------------------------------------------------------

    def charge(self, cycles: int) -> None:
        """Account ``cycles`` of work on this CPU (advances global time).

        Semantically ``self.clock.advance(cycles)``, inlined: this is the
        single hottest call in the simulator (every sensitive op, hypercall
        and validation scan funnels through it)."""
        if cycles < 0:
            raise ValueError(f"cannot advance clock by {cycles} cycles")
        self.clock.cycles += int(cycles)

    def rdtsc(self) -> int:
        """Read the time-stamp counter (non-privileged, like real RDTSC)."""
        return self.clock.cycles + self._tsc_offset

    # -- privilege ----------------------------------------------------------

    def check_privilege(self, what: str) -> None:
        """Raise GP# if the current PL may not perform ``what``."""
        if self.pl > self._priv_required:
            raise GeneralProtectionFault(
                f"cpu{self.cpu_id}: {what} attempted at PL{int(self.pl)}"
            )

    def privileged_op(self, what: str, *args) -> object:
        """Execute a privileged instruction.

        At PL0 it executes directly (charging the native cost).  At a lower
        privilege level the operation traps: if a VMM installed a trap
        handler it emulates the instruction (charging trap+emulate costs);
        otherwise the fault is architectural and propagates.
        """
        if self.pl <= self._priv_required:
            self.charge(self.cost.cyc_privop_native)
            return None
        if self.trap_handler is not None:
            self.charge(self.cost.cyc_trap_roundtrip)
            return self.trap_handler(self, what, args)
        raise GeneralProtectionFault(
            f"cpu{self.cpu_id}: {what} trapped at PL{int(self.pl)} with no VMM"
        )

    # -- control registers ---------------------------------------------------

    def write_cr3(self, pgd_frame: int) -> None:
        """Load the page-table base.  Privileged; flushes the TLB."""
        self.check_privilege("write_cr3")
        self.charge(self.cost.cyc_cr3_write)
        self.cr3 = pgd_frame
        self.tlb.flush()

    def load_idt(self, idt: object) -> None:
        self.check_privilege("lidt")
        self.charge(self.cost.cyc_privop_native)
        self.idt_base = idt

    def load_gdt(self, gdt: dict[int, SegmentDescriptor]) -> None:
        self.check_privilege("lgdt")
        self.charge(self.cost.cyc_privop_native)
        self.gdt = gdt

    def load_ldt(self, ldt: dict[int, SegmentDescriptor]) -> None:
        self.check_privilege("lldt")
        self.charge(self.cost.cyc_privop_native)
        self.ldt = ldt

    def cli(self) -> None:
        self.check_privilege("cli")
        self.interrupts_enabled = False

    def sti(self) -> None:
        self.check_privilege("sti")
        self.interrupts_enabled = True

    def set_privilege(self, pl: PrivilegeLevel) -> None:
        """Change the running privilege level.

        Real hardware only changes PL through gates/IRET; the simulator
        exposes it as one operation used by kernel entry/exit paths and by
        Mercury's mode-switch interrupt (which edits the PL in the saved
        interrupt frame before returning — §5.1.3)."""
        self.pl = pl

    # -- helpers -------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cpu(id={self.cpu_id}, pl={int(self.pl)}, cr3={self.cr3}, "
            f"if={self.interrupts_enabled})"
        )
