"""Global simulated clock and timer event queue.

The clock counts **cycles** of the (single) crystal shared by all CPUs.
CPUs charge work to the clock; devices and the kernel schedule timer events
at absolute cycle deadlines.  Events fire when the machine polls
(:meth:`Clock.run_due`) — mirroring real hardware, where a raised interrupt
line is only serviced when the CPU checks for interrupts.

Every :meth:`Clock.schedule` returns a :class:`TimerHandle`; callers that
may need to disarm a timer (the mode-switch engine's backoff retry, a
delayed doorbell) keep the handle and :meth:`~TimerHandle.cancel` it.
Cancelled handles stay in the heap and are skipped lazily, so cancellation
is O(1).

Event order is a pure function of ``(deadline, seq)`` where ``seq`` is a
FIFO ticket from one shared counter — the determinism contract the
simulation scheduler (:mod:`repro.sim`) builds on.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional


class TimerHandle:
    """One scheduled event: fire-at-most-once, cancellable."""

    __slots__ = ("deadline", "seq", "_fn", "_fired", "_cancelled")

    def __init__(self, deadline: int, seq: int, fn: Callable[[], None]):
        self.deadline = deadline
        self.seq = seq
        self._fn = fn
        self._fired = False
        self._cancelled = False

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def pending(self) -> bool:
        return not (self._fired or self._cancelled)

    def cancel(self) -> bool:
        """Disarm the event.  Returns True if it had not fired yet (the
        cancel took effect), False if it already ran or was cancelled."""
        if not self.pending:
            return False
        self._cancelled = True
        self._fn = None
        return True

    def _fire(self) -> bool:
        """Run the callback exactly once; False if already done."""
        if not self.pending:
            return False
        self._fired = True
        fn, self._fn = self._fn, None
        fn()
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("fired" if self._fired else
                 "cancelled" if self._cancelled else "pending")
        return f"<TimerHandle @{self.deadline} seq={self.seq} {state}>"


class Clock:
    """Monotonic cycle counter plus a deadline-ordered event queue."""

    def __init__(self, freq_mhz: int = 3000):
        self.freq_mhz = freq_mhz
        self.cycles: int = 0
        self._events: list[tuple[int, int, TimerHandle]] = []
        self._counter = itertools.count()

    # -- time ------------------------------------------------------------

    def advance(self, cycles: int) -> None:
        """Advance simulated time by ``cycles`` (>= 0)."""
        if cycles < 0:
            raise ValueError(f"cannot advance clock by {cycles} cycles")
        self.cycles += int(cycles)

    def advance_us(self, us: float) -> None:
        self.advance(int(us * self.freq_mhz))

    def now_us(self) -> float:
        """Current simulated time in microseconds."""
        return self.cycles / self.freq_mhz

    def now_ms(self) -> float:
        return self.cycles / (self.freq_mhz * 1000.0)

    def next_seq(self) -> int:
        """A FIFO ticket from the shared ordering counter.  Timer events
        and simulation-task wakeups draw from the same sequence, so
        same-deadline ties break identically run after run."""
        return next(self._counter)

    # -- timer events ------------------------------------------------------

    def schedule(self, delay_cycles: int, fn: Callable[[], None]
                 ) -> TimerHandle:
        """Arrange for ``fn()`` to run once ``delay_cycles`` from now have
        elapsed *and* the machine polls for due events.  Returns a handle
        the caller may :meth:`~TimerHandle.cancel`."""
        return self.schedule_at(self.cycles + max(0, int(delay_cycles)), fn)

    def schedule_at(self, deadline_cycles: int, fn: Callable[[], None]
                    ) -> TimerHandle:
        """Schedule at an *absolute* cycle deadline.  The sharded simulation
        uses this to inject cross-shard events at their agreed delivery
        cycle; a deadline already in the past is legal and fires at the next
        poll (a shard whose current slice ran ahead of the barrier horizon
        services late deliveries exactly where its next interrupt window
        sits — deterministically)."""
        deadline = int(deadline_cycles)
        handle = TimerHandle(deadline, next(self._counter), fn)
        heapq.heappush(self._events, (deadline, handle.seq, handle))
        return handle

    def schedule_us(self, delay_us: float, fn: Callable[[], None]
                    ) -> TimerHandle:
        return self.schedule(int(delay_us * self.freq_mhz), fn)

    def _prune(self) -> None:
        """Drop fired/cancelled handles off the head of the heap."""
        while self._events and not self._events[0][2].pending:
            heapq.heappop(self._events)

    def run_due(self) -> int:
        """Fire every event whose deadline has passed; return how many ran."""
        ran = 0
        events = self._events
        pop = heapq.heappop
        # self.cycles is re-read per event: handlers charge cycles, which
        # can bring further deadlines due within the same call
        while events:
            deadline, _, handle = events[0]
            if not handle.pending:
                pop(events)
                continue
            if deadline > self.cycles:
                break
            pop(events)
            if handle._fire():
                ran += 1
        return ran

    def peek(self) -> Optional[TimerHandle]:
        """The earliest still-pending event, or None (does not fire it)."""
        self._prune()
        return self._events[0][2] if self._events else None

    def next_deadline(self) -> int | None:
        """Deadline of the earliest pending event, or None."""
        handle = self.peek()
        return handle.deadline if handle is not None else None

    def fire(self, handle: TimerHandle) -> bool:
        """Fire one specific handle now, advancing time to its deadline if
        that lies ahead.  Used where a caller must run *its own* event
        without releasing unrelated due events (the SMP rendezvous gathers
        acknowledgement events this way while interrupts are masked)."""
        if not handle.pending:
            return False
        if handle.deadline > self.cycles:
            self.cycles = handle.deadline
        return handle._fire()

    def drain_until_idle(self, max_events: int = 100_000) -> int:
        """Advance time to each pending deadline in turn, firing events,
        until the queue is empty.  Used by scenario drivers to let timers
        (e.g. Mercury's 10 ms switch-retry timer) make progress."""
        ran = 0
        while ran < max_events:
            deadline = self.next_deadline()
            if deadline is None:
                return ran
            if deadline > self.cycles:
                self.cycles = deadline
            ran += self.run_due()
        return ran
