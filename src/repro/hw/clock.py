"""Global simulated clock and timer event queue.

The clock counts **cycles** of the (single) crystal shared by all CPUs.
CPUs charge work to the clock; devices and the kernel schedule timer events
at absolute cycle deadlines.  Events fire when the machine polls
(:meth:`Clock.run_due`) — mirroring real hardware, where a raised interrupt
line is only serviced when the CPU checks for interrupts.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable


class Clock:
    """Monotonic cycle counter plus a deadline-ordered event queue."""

    def __init__(self, freq_mhz: int = 3000):
        self.freq_mhz = freq_mhz
        self.cycles: int = 0
        self._events: list[tuple[int, int, Callable[[], None]]] = []
        self._counter = itertools.count()

    # -- time ------------------------------------------------------------

    def advance(self, cycles: int) -> None:
        """Advance simulated time by ``cycles`` (>= 0)."""
        if cycles < 0:
            raise ValueError(f"cannot advance clock by {cycles} cycles")
        self.cycles += int(cycles)

    def advance_us(self, us: float) -> None:
        self.advance(int(us * self.freq_mhz))

    def now_us(self) -> float:
        """Current simulated time in microseconds."""
        return self.cycles / self.freq_mhz

    def now_ms(self) -> float:
        return self.cycles / (self.freq_mhz * 1000.0)

    # -- timer events ------------------------------------------------------

    def schedule(self, delay_cycles: int, fn: Callable[[], None]) -> None:
        """Arrange for ``fn()`` to run once ``delay_cycles`` from now have
        elapsed *and* the machine polls for due events."""
        deadline = self.cycles + max(0, int(delay_cycles))
        heapq.heappush(self._events, (deadline, next(self._counter), fn))

    def schedule_us(self, delay_us: float, fn: Callable[[], None]) -> None:
        self.schedule(int(delay_us * self.freq_mhz), fn)

    def run_due(self) -> int:
        """Fire every event whose deadline has passed; return how many ran."""
        ran = 0
        while self._events and self._events[0][0] <= self.cycles:
            _, _, fn = heapq.heappop(self._events)
            fn()
            ran += 1
        return ran

    def next_deadline(self) -> int | None:
        """Deadline of the earliest pending event, or None."""
        return self._events[0][0] if self._events else None

    def drain_until_idle(self, max_events: int = 100_000) -> int:
        """Advance time to each pending deadline in turn, firing events,
        until the queue is empty.  Used by scenario drivers to let timers
        (e.g. Mercury's 10 ms switch-retry timer) make progress."""
        ran = 0
        while self._events and ran < max_events:
            deadline = self._events[0][0]
            if deadline > self.cycles:
                self.cycles = deadline
            ran += self.run_due()
        return ran
