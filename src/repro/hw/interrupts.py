"""APIC-style interrupt controller: lines, vectors, IPIs, IDTs.

Mercury triggers mode switches through a dedicated interrupt line (§4.1) and
coordinates multicore switches with inter-processor interrupts (§5.4), so
the interrupt fabric is a first-class substrate here.

The model: devices (or software) raise *vectors* targeted at a CPU; each CPU
has a pending queue; vectors are delivered when the machine polls and the
target CPU has interrupts enabled.  Delivery dispatches through the IDT
*installed on that CPU* — which is exactly what a mode switch swaps
(native-mode IDT handled by the OS vs. VMM-owned IDT that forwards events).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import HardwareError

if TYPE_CHECKING:
    from repro.hw.cpu import Cpu
    from repro.hw.machine import Machine

# Well-known vectors (loosely after x86/Linux conventions).
VEC_TIMER = 0x20
VEC_DISK = 0x21
VEC_NET = 0x22
VEC_IPI_RESCHED = 0xFD
#: the dedicated self-virtualization vectors (§5.1.3: two handlers, one per
#: switch direction)
VEC_SV_ATTACH = 0xF0
VEC_SV_DETACH = 0xF1
#: IPI vector used by Mercury's SMP rendezvous (§5.4)
VEC_SV_RENDEZVOUS = 0xF2


@dataclass
class IdtEntry:
    """One interrupt gate: a handler plus the privilege level the handler
    runs at (hardware raises the PL to this on delivery)."""

    handler: Callable[["Cpu", int], None]
    handler_pl: int = 0
    name: str = ""


class Idt:
    """An interrupt descriptor table — a vector-indexed gate collection.

    Owned by whoever installed it (the native OS, or the VMM when active)."""

    def __init__(self, owner: str):
        self.owner = owner
        self.gates: dict[int, IdtEntry] = {}

    def set_gate(self, vector: int, handler: Callable[["Cpu", int], None],
                 handler_pl: int = 0, name: str = "") -> None:
        if not (0 <= vector <= 0xFF):
            raise HardwareError(f"vector {vector:#x} out of range")
        self.gates[vector] = IdtEntry(handler, handler_pl, name or f"vec{vector:#x}")

    def gate(self, vector: int) -> Optional[IdtEntry]:
        return self.gates.get(vector)


@dataclass(slots=True)
class _PendingVector:
    vector: int
    payload: object = None


class InterruptController:
    """The machine's (IO-)APIC: routes device lines and IPIs to CPUs."""

    def __init__(self, machine: "Machine"):
        self.machine = machine
        self._pending: list[deque[_PendingVector]] = [
            deque() for _ in range(machine.config.num_cpus)
        ]
        #: device line -> (target cpu, vector); rebindable (a mode switch
        #: re-binds lines between the OS and the VMM, §5.1.2)
        self.line_bindings: dict[str, tuple[int, int]] = {}
        self.delivered = 0
        self.sent_ipis = 0

    # -- raising ----------------------------------------------------------

    def bind_line(self, line: str, cpu_id: int, vector: int) -> None:
        self._check_cpu(cpu_id)
        self.line_bindings[line] = (cpu_id, vector)

    def raise_line(self, line: str, payload: object = None) -> None:
        """A device asserts its interrupt line."""
        try:
            cpu_id, vector = self.line_bindings[line]
        except KeyError:
            raise HardwareError(f"interrupt line {line!r} is not bound") from None
        self._pending[cpu_id].append(_PendingVector(vector, payload))

    def send_ipi(self, from_cpu: "Cpu", to_cpu_id: int, vector: int,
                 payload: object = None) -> None:
        """Send an inter-processor interrupt (charges the sender)."""
        self._check_cpu(to_cpu_id)
        from_cpu.charge(from_cpu.cost.cyc_ipi_send)
        self._pending[to_cpu_id].append(_PendingVector(vector, payload))
        self.sent_ipis += 1

    def raise_vector(self, cpu_id: int, vector: int, payload: object = None) -> None:
        """Software-raised interrupt (e.g. the self-virtualization request)."""
        self._check_cpu(cpu_id)
        self._pending[cpu_id].append(_PendingVector(vector, payload))

    # -- delivery ----------------------------------------------------------

    def pending_count(self, cpu_id: int) -> int:
        return len(self._pending[cpu_id])

    def deliver_pending(self, cpu: "Cpu", max_events: int = 64) -> int:
        """Deliver queued vectors on ``cpu`` through its installed IDT.

        Returns the number delivered.  Respects the interrupt flag; raises
        if a vector arrives with no gate (a real machine would triple-fault
        — tests assert we never get here in correct operation)."""
        queue = self._pending[cpu.cpu_id]
        if not queue or not cpu.interrupts_enabled:
            return 0
        delivered = 0
        popleft = queue.popleft
        cyc_dispatch = cpu.cost.cyc_interrupt_dispatch
        pl_type = type(cpu.pl)
        clock = cpu.clock
        while queue and delivered < max_events:
            pend = popleft()
            # idt_base is re-read per vector: a handler may install a new
            # IDT (that is exactly what a mode switch does)
            idt = cpu.idt_base
            entry = idt.gates.get(pend.vector) if idt is not None else None
            if entry is None:
                raise HardwareError(
                    f"cpu{cpu.cpu_id}: vector {pend.vector:#x} has no IDT gate"
                )
            clock.cycles += cyc_dispatch
            # Hardware raises the privilege to the gate's level for the
            # handler, then the handler's IRET restores it.  We model the
            # round-trip explicitly so handlers (e.g. Mercury's switch
            # handler) can *edit* the level to return to (§5.1.3).
            saved_pl = cpu.pl
            cpu.pl = pl_type(entry.handler_pl)
            cpu._iret_pl = saved_pl  # handlers may overwrite this
            try:
                if pend.payload is not None:
                    entry.handler(cpu, pend.vector, pend.payload)  # type: ignore[call-arg]
                else:
                    entry.handler(cpu, pend.vector)
            finally:
                cpu.pl = cpu._iret_pl
                del cpu._iret_pl
            delivered += 1
            self.delivered += 1
        return delivered

    def consume_vector(self, cpu_id: int, vector: int) -> int:
        """Pull every pending instance of ``vector`` off a CPU's queue
        without IDT dispatch — used by protocols (e.g. Mercury's rendezvous)
        that field their IPIs inside an explicit handshake rather than
        through a gate.  Returns how many were consumed."""
        self._check_cpu(cpu_id)
        queue = self._pending[cpu_id]
        kept = [p for p in queue if p.vector != vector]
        consumed = len(queue) - len(kept)
        queue.clear()
        queue.extend(kept)
        return consumed

    def _check_cpu(self, cpu_id: int) -> None:
        if not (0 <= cpu_id < len(self._pending)):
            raise HardwareError(f"no such cpu {cpu_id}")
