"""Simulated hardware substrate.

This package models the machine the paper ran on (§7.1): x86-style CPUs
with privilege levels and control registers, physical memory with per-frame
metadata, two-level hardware-walked page tables with a TLB, an APIC-style
interrupt controller with IPIs, and block/network/timer devices.

Everything is deterministic and cycle-accounted: each primitive charges
cycles to the issuing CPU through :class:`repro.hw.clock.Clock`, so measured
"times" are reproducible simulation artifacts, not host timings.
"""

from repro.hw.clock import Clock
from repro.hw.cpu import Cpu, PrivilegeLevel
from repro.hw.machine import Machine
from repro.hw.memory import PhysicalMemory
from repro.hw.paging import AddressSpace, PageTablePage, Pte

__all__ = [
    "AddressSpace",
    "Clock",
    "Cpu",
    "Machine",
    "PageTablePage",
    "PhysicalMemory",
    "PrivilegeLevel",
    "Pte",
]
