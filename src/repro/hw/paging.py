"""Two-level hardware-walked page tables (x86 32-bit style).

An :class:`AddressSpace` is a PGD (top-level page-table page) whose entries
point at leaf page-table pages; leaf entries map 4 KiB virtual pages to
physical frames.  Page-table pages themselves occupy physical frames and are
registered in :attr:`PhysicalMemory.frame_objects`, because the VMM must be
able to find and validate them by frame number when pinning (§5.1.2).

PTE permission bits matter to Mercury: in virtual mode the VMM keeps every
page-table page read-only to the guest (direct paging), while in native mode
they are writable — flipping this protection is one of the three state
transfers a mode switch performs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import PageFault
from repro.hw.memory import PhysicalMemory
from repro.params import PAGE_SIZE, PT_ENTRIES, PT_SPAN


@dataclass(slots=True)
class Pte:
    """One leaf page-table entry."""

    frame: int
    present: bool = True
    writable: bool = True
    user: bool = True
    accessed: bool = False
    dirty: bool = False
    #: copy-on-write marker (software bit, as Linux uses an available bit)
    cow: bool = False

    def clone(self) -> "Pte":
        return Pte(self.frame, self.present, self.writable, self.user,
                   self.accessed, self.dirty, self.cow)


class PageTablePage:
    """One page-table page (PGD or leaf), occupying a physical frame.

    ``entries`` is sparse: only present slots are stored.  Cost accounting
    for hardware scans still charges the full ``PT_ENTRIES`` width, because
    real validation must look at every slot.
    """

    __slots__ = ("frame", "level", "entries")

    def __init__(self, frame: int, level: int):
        self.frame = frame
        self.level = level  # 2 = PGD, 1 = leaf
        self.entries: dict[int, object] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PageTablePage(frame={self.frame}, level={self.level}, n={len(self.entries)})"


def vpn_split(vaddr: int) -> tuple[int, int]:
    """Split a virtual address into (pgd index, leaf index)."""
    vpn = vaddr // PAGE_SIZE
    return vpn // PT_ENTRIES, vpn % PT_ENTRIES


class AddressSpace:
    """A full virtual address space: one PGD plus its leaf tables.

    The address space does *not* charge cycles itself — callers (the guest
    OS through its virtualization object, or the VMM validator) own cost
    accounting, because the same structural operation costs differently in
    native and virtual mode.
    """

    def __init__(self, mem: PhysicalMemory, owner: int):
        self.mem = mem
        self.owner = owner
        pgd_frame = mem.alloc(owner)
        self.pgd = PageTablePage(pgd_frame, level=2)
        mem.frame_objects[pgd_frame] = self.pgd

    # -- structure -------------------------------------------------------

    @property
    def pgd_frame(self) -> int:
        return self.pgd.frame

    def leaf_for(self, vaddr: int, create: bool = False) -> Optional[PageTablePage]:
        pgd_idx = vaddr // PT_SPAN
        leaf = self.pgd.entries.get(pgd_idx)
        if leaf is None and create:
            frame = self.mem.alloc(self.owner)
            leaf = PageTablePage(frame, level=1)
            self.mem.frame_objects[frame] = leaf
            self.pgd.entries[pgd_idx] = leaf
        return leaf

    def pt_pages(self) -> Iterator[PageTablePage]:
        """The PGD followed by every leaf page-table page."""
        yield self.pgd
        for leaf in self.pgd.entries.values():
            yield leaf

    def num_pt_pages(self) -> int:
        return 1 + len(self.pgd.entries)

    # -- mapping (structural only; no cost accounting) ---------------------
    # These run per-PTE on every bulk path (fork, exit, mmu_update), so the
    # vpn arithmetic is computed once inline instead of through vpn_split.

    def set_pte(self, vaddr: int, pte: Pte) -> None:
        vpn = vaddr // PAGE_SIZE
        leaf = self.pgd.entries.get(vpn // PT_ENTRIES)
        if leaf is None:
            leaf = self.leaf_for(vaddr, create=True)
        leaf.entries[vpn % PT_ENTRIES] = pte

    def clear_pte(self, vaddr: int) -> Optional[Pte]:
        vpn = vaddr // PAGE_SIZE
        leaf = self.pgd.entries.get(vpn // PT_ENTRIES)
        if leaf is None:
            return None
        return leaf.entries.pop(vpn % PT_ENTRIES, None)

    def get_pte(self, vaddr: int) -> Optional[Pte]:
        vpn = vaddr // PAGE_SIZE
        leaf = self.pgd.entries.get(vpn // PT_ENTRIES)
        if leaf is None:
            return None
        return leaf.entries.get(vpn % PT_ENTRIES)

    # -- hardware walk -------------------------------------------------------

    def walk(self, vaddr: int, write: bool, user: bool) -> Pte:
        """Translate ``vaddr``; raise :class:`PageFault` on miss/violation.

        This is the hardware page walk: permission checks mirror x86
        semantics (a supervisor access ignores the user bit; a write needs
        the writable bit)."""
        pte = self.get_pte(vaddr)
        if pte is None or not pte.present:
            raise PageFault(vaddr, write, user)
        if user and not pte.user:
            raise PageFault(vaddr, write, user, f"user access to kernel page {vaddr:#x}")
        if write and not pte.writable:
            raise PageFault(vaddr, write, user, f"write to read-only page {vaddr:#x}")
        pte.accessed = True
        if write:
            pte.dirty = True
        return pte

    # -- enumeration -----------------------------------------------------------

    def mapped_vaddrs(self) -> Iterator[int]:
        for pgd_idx, leaf in self.pgd.entries.items():
            base = pgd_idx * PT_SPAN
            for idx in leaf.entries:
                yield base + idx * PAGE_SIZE

    def mapped_items(self) -> Iterator[tuple[int, "Pte"]]:
        """Yield ``(vaddr, pte)`` pairs without a per-entry table walk —
        the bulk paths (fork's COW sweep, exit's teardown) iterate every
        mapping and a ``get_pte`` walk per vaddr doubles their cost."""
        for pgd_idx, leaf in self.pgd.entries.items():
            base = pgd_idx * PT_SPAN
            for idx, pte in leaf.entries.items():
                yield base + idx * PAGE_SIZE, pte

    def mapped_count(self) -> int:
        return sum(len(leaf.entries) for leaf in self.pgd.entries.values())

    def mapped_frames(self) -> Iterator[int]:
        for leaf in self.pgd.entries.values():
            for pte in leaf.entries.values():
                if pte.present:
                    yield pte.frame

    # -- teardown ------------------------------------------------------------

    def destroy(self) -> None:
        """Free the page-table pages themselves (NOT the mapped frames —
        those belong to whoever mapped them and may be shared)."""
        for leaf in list(self.pgd.entries.values()):
            self.mem.free(leaf.frame)
        self.pgd.entries.clear()
        self.mem.free(self.pgd.frame)
