"""Hardware-assisted virtualization: VT-x-style VMCS and EPT (§8).

The paper's first future-work item: "current CPU virtualization such as
VT-x enables the encapsulation of virtualization sensitive data into a
centralized structure (e.g., VMCS or VMCB).  This could make the mode
switch between the native mode and virtualized mode much easier to
implement.  Further, the nested page table or extended page table could
ease the tracking of the states of each page."

This module provides both pieces on the simulated hardware:

- :class:`Vmcs` — the centralized guest/host state structure.  Loading it
  swaps the whole sensitive state in one operation (``vmentry`` /
  ``vmexit``), replacing Mercury's piecewise transfer+reload.
- :class:`EptTable` — a per-domain second-level translation with
  permissions.  Guest page tables stay *writable by the guest*; isolation
  comes from the EPT instead of pinning/validation, so a mode switch needs
  **no page type/count recompute** — the dominant cost of the software
  switch disappears.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import HardwareError, PageValidationError

if TYPE_CHECKING:
    from repro.hw.cpu import Cpu
    from repro.hw.memory import PhysicalMemory

#: cycles for one VMCS load + VMLAUNCH/VMRESUME world entry
CYC_VMENTRY = 900
#: cycles for one VM exit into the hypervisor
CYC_VMEXIT = 1_000
#: cycles to fill/flush the VMCS guest-state area during a mode switch
CYC_VMCS_SYNC = 4_500
#: cycles to (de)activate an EPT root (pointer swap + TLB/EPT-TLB flush)
CYC_EPT_SWITCH = 1_800
#: per-frame cost of building EPT entries in bulk (vectorized on real
#: hardware by large-page mappings; tiny per frame)
CYC_EPT_BUILD_PER_FRAME = 1


@dataclass
class VmcsGuestState:
    """The guest-state area: everything Mercury's transfer/reload moved
    piecewise now lives here."""

    cr3: Optional[int] = None
    privilege_level: int = 0
    idt: Optional[object] = None
    gdt: Optional[dict] = None
    interrupts_enabled: bool = True
    kernel_segment_dpl: int = 0


class Vmcs:
    """One virtual-machine control structure."""

    def __init__(self, vm_id: int):
        self.vm_id = vm_id
        self.guest = VmcsGuestState()
        self.host = VmcsGuestState()
        #: which events force a VM exit (privileged ops list)
        self.exit_controls: set[str] = {"write_cr3", "lidt", "lgdt", "cli",
                                        "sti"}
        self.launched = False
        self.vmentries = 0
        self.vmexits = 0

    def capture_guest(self, cpu: "Cpu") -> None:
        """Store the CPU's sensitive state into the guest area (one
        hardware operation — the §8 'centralized structure' win)."""
        cpu.charge(CYC_VMCS_SYNC)
        g = self.guest
        g.cr3 = cpu.cr3
        g.privilege_level = int(cpu.pl)
        g.idt = cpu.idt_base
        g.gdt = dict(cpu.gdt)
        g.interrupts_enabled = cpu.interrupts_enabled


class EptTable:
    """Extended page tables for one guest: guest-physical to host-physical
    with permissions.

    The simulator's guests address host frames directly (the direct-mode
    simplification of §3.2.2), so the EPT is an identity map restricted to
    the frames the guest owns — which is precisely the isolation the
    software path needed pinning and per-PTE validation for."""

    def __init__(self, mem: "PhysicalMemory", domain_id: int):
        self.mem = mem
        self.domain_id = domain_id
        self.present = np.zeros(mem.num_frames, dtype=bool)
        self.writable = np.zeros(mem.num_frames, dtype=bool)
        self.active = False
        self.violations = 0

    def build(self, cpu: "Cpu") -> int:
        """(Re)build the table from current frame ownership — a vectorized
        pass, unlike the software path's per-PTE validation walk."""
        owned = self.mem.owner_np == self.domain_id
        self.present[:] = owned
        self.writable[:] = owned
        n = int(owned.sum())
        cpu.charge(CYC_EPT_BUILD_PER_FRAME * n)
        return n

    def check(self, frame: int, write: bool) -> None:
        """Hardware EPT check on a guest access."""
        if not (0 <= frame < self.mem.num_frames) or not self.present[frame]:
            self.violations += 1
            raise PageValidationError(
                f"EPT violation: domain {self.domain_id} touched frame {frame}")
        if write and not self.writable[frame]:
            self.violations += 1
            raise PageValidationError(
                f"EPT violation: write to protected frame {frame}")

    def protect(self, frame: int) -> None:
        """Write-protect one frame (dirty logging for migration rides on
        this in HVM mode)."""
        self.writable[frame] = False

    def unprotect(self, frame: int) -> None:
        self.writable[frame] = True


class VtxUnit:
    """The per-CPU VT-x state: vmxon/vmxoff plus the active VMCS."""

    def __init__(self, cpu: "Cpu"):
        self.cpu = cpu
        self.vmx_on = False
        self.current_vmcs: Optional[Vmcs] = None
        self.current_ept: Optional[EptTable] = None

    def vmxon(self) -> None:
        self.cpu.check_privilege("vmxon")
        if self.vmx_on:
            raise HardwareError("vmxon while already in VMX operation")
        self.cpu.charge(self.cpu.cost.cyc_privop_native)
        self.vmx_on = True

    def vmxoff(self) -> None:
        self.cpu.check_privilege("vmxoff")
        if not self.vmx_on:
            raise HardwareError("vmxoff outside VMX operation")
        self.cpu.charge(self.cpu.cost.cyc_privop_native)
        self.vmx_on = False
        self.current_vmcs = None
        self.current_ept = None

    def vmentry(self, vmcs: Vmcs, ept: Optional[EptTable] = None) -> None:
        """Load the guest state and enter non-root mode: the entire mode
        relocation as ONE hardware operation."""
        if not self.vmx_on:
            raise HardwareError("vmentry outside VMX operation")
        cpu = self.cpu
        cpu.charge(CYC_VMENTRY)
        self.current_vmcs = vmcs
        self.current_ept = ept
        if ept is not None:
            cpu.charge(CYC_EPT_SWITCH)
            ept.active = True
        g = vmcs.guest
        if g.cr3 is not None:
            saved, cpu.pl = cpu.pl, type(cpu.pl)(0)
            try:
                cpu.write_cr3(g.cr3)
            finally:
                cpu.pl = saved
        if g.idt is not None:
            cpu.idt_base = g.idt
        if g.gdt is not None:
            cpu.gdt = g.gdt
        cpu.interrupts_enabled = g.interrupts_enabled
        vmcs.launched = True
        vmcs.vmentries += 1

    def vmexit(self, reason: str) -> None:
        """Leave non-root mode into the hypervisor."""
        if self.current_vmcs is None:
            raise HardwareError("vmexit with no active VMCS")
        self.cpu.charge(CYC_VMEXIT)
        self.current_vmcs.vmexits += 1
        if self.current_ept is not None:
            self.current_ept.active = False
