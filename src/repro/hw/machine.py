"""The composed machine: CPUs + memory + interrupt controller + devices.

One :class:`Machine` is one physical box.  Scenario code (live migration,
HPC cluster) builds several and links their NICs; linked machines share a
clock so end-to-end timings stay coherent.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.errors import HardwareError
from repro.hw.clock import Clock
from repro.hw.cpu import Cpu
from repro.hw.devices import BlockDevice, Link, Nic, TimerDevice
from repro.hw.interrupts import InterruptController
from repro.hw.memory import PhysicalMemory
from repro.params import MachineConfig


class MachineIdAllocator:
    """Deterministic source of machine ordinals.

    Machine names (``machine{n}``) and NIC addresses (``10.0.0.{n+1}``)
    derive from the ordinal, so identity must depend only on construction
    order *within a scenario* — never on how many machines earlier tests
    happened to build.  Scenarios needing full isolation pass their own
    allocator; the test suite resets the process-default one before every
    test."""

    def __init__(self):
        self._next = 0

    def allocate(self) -> int:
        seq = self._next
        self._next += 1
        return seq

    def reset(self) -> None:
        self._next = 0


#: process-default allocator, used when a Machine is built without one
_MACHINE_IDS = MachineIdAllocator()


def reset_machine_ids() -> None:
    """Restart default machine numbering (test fixtures call this)."""
    _MACHINE_IDS.reset()


@contextmanager
def isolated_machine_ids() -> Iterator[MachineIdAllocator]:
    """Number machines from a fresh allocator inside the with-block, then
    restore the previous one.

    Parallel-episode workers and fleet-shard builders construct whole
    stacks (machine + peer + guests) whose names and NIC addresses must be
    a pure function of the episode/machine parameters — never of how many
    machines the hosting process happened to build before.  Scoping the
    default allocator (instead of resetting it) keeps the caller's
    numbering intact."""
    global _MACHINE_IDS
    saved = _MACHINE_IDS
    _MACHINE_IDS = MachineIdAllocator()
    try:
        yield _MACHINE_IDS
    finally:
        _MACHINE_IDS = saved


class Machine:
    """One simulated physical machine."""

    def __init__(self, config: Optional[MachineConfig] = None,
                 clock: Optional[Clock] = None, name: str = "",
                 ids: Optional[MachineIdAllocator] = None):
        self.config = config or MachineConfig()
        seq = (ids or _MACHINE_IDS).allocate()
        self.name = name or f"machine{seq}"
        self.clock = clock or Clock(freq_mhz=self.config.cost.freq_mhz)
        if self.clock.freq_mhz != self.config.cost.freq_mhz:
            raise HardwareError("shared clock frequency mismatch")
        self.memory = PhysicalMemory(self.config.num_frames)
        self.intc = InterruptController(self)
        self.cpus = [Cpu(i, self) for i in range(self.config.num_cpus)]
        self.disk = BlockDevice(self, name="sda")
        # historical numbering: machine0's NIC is 10.0.0.1
        self.nic = Nic(self, name="eth0", addr=f"10.0.0.{seq + 1}")
        self.timer = TimerDevice(self, hz=self.config.timer_hz)
        #: set by scenario code when the box "fails" (machine check)
        self.failed = False

    @property
    def boot_cpu(self) -> Cpu:
        return self.cpus[0]

    def link_to(self, other: "Machine") -> Link:
        """Wire this machine's NIC to another's.  Both must share a clock;
        construct the second machine with ``clock=first.clock``."""
        if other.clock is not self.clock:
            raise HardwareError(
                "linked machines must share a Clock (pass clock= at construction)")
        return Link(self.nic, other.nic)

    def poll(self) -> int:
        """Fire due timer/device events, then deliver pending interrupts on
        every CPU.  Called by the guest OS at preemption points."""
        fired = self.clock.run_due()
        delivered = 0
        for cpu in self.cpus:
            delivered += self.intc.deliver_pending(cpu)
        return fired + delivered

    def run_until_idle(self, max_rounds: int = 100_000) -> None:
        """Drive the event loop until no events or interrupts remain."""
        for _ in range(max_rounds):
            if self.clock.next_deadline() is None and not any(
                    self.intc.pending_count(c.cpu_id) for c in self.cpus):
                return
            deadline = self.clock.next_deadline()
            if deadline is not None and deadline > self.clock.cycles:
                self.clock.cycles = deadline
            self.poll()
        raise HardwareError("run_until_idle did not converge")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Machine({self.name!r}, cpus={len(self.cpus)}, "
                f"frames={self.memory.num_frames})")
