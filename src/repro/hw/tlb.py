"""Hardware-managed TLB model.

The paper's address-space design decision (§3.2.2) — keeping the VMM mapped
in a reserved region of every address space — exists precisely because a
hardware-managed TLB makes address-space switches expensive.  The simulator
models a small FIFO TLB: hits are free, misses charge a refill, and CR3
writes flush everything (as on pre-PCID x86).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional


class Tlb:
    """A per-CPU translation lookaside buffer with FIFO replacement."""

    def __init__(self, capacity: int = 64):
        if capacity <= 0:
            raise ValueError("TLB capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[int, tuple[int, bool]] = OrderedDict()
        #: bound ``pop`` of the entry dict — bulk paths (``mmu_update``'s
        #: per-entry invlpg) call ``drop(vpn, None)`` to skip a method
        #: dispatch per PTE; the dict object is never rebound (``flush``
        #: clears it in place), so the binding stays valid for the CPU's
        #: lifetime
        self.drop = self._entries.pop
        self.hits = 0
        self.misses = 0
        self.flushes = 0

    def lookup(self, vpn: int) -> Optional[tuple[int, bool]]:
        """Return (frame, writable) on a hit, else None."""
        hit = self._entries.get(vpn)
        if hit is None:
            self.misses += 1
            return None
        self.hits += 1
        return hit

    def fill(self, vpn: int, frame: int, writable: bool) -> None:
        if vpn in self._entries:
            self._entries.pop(vpn)
        elif len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
        self._entries[vpn] = (frame, writable)

    def invalidate(self, vpn: int) -> None:
        """invlpg: drop one translation."""
        self._entries.pop(vpn, None)

    def flush(self) -> None:
        """Full flush (CR3 write / explicit flush)."""
        self._entries.clear()
        self.flushes += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._entries
