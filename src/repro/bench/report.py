"""Paper-style table and figure formatting.

``format_lmbench_table`` prints Tables 1/2 (µs latencies, config columns);
``format_relative_figure`` prints the Fig. 3/4 series as text (relative
performance per configuration, N-L = 1.00); ``format_switch_times``
prints the §7.4 measurement.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.bench.configs import CONFIG_KEYS
from repro.workloads.lmbench import LmbenchResults


def format_lmbench_table(table: dict[str, dict[str, float]], title: str,
                         keys: Iterable[str] = CONFIG_KEYS) -> str:
    keys = [k for k in keys if any(k in row for row in table.values())]
    lines = [title, ""]
    header = f"{'Config.':<16}" + "".join(f"{k:>10}" for k in keys)
    lines.append(header)
    lines.append("-" * len(header))
    for row in LmbenchResults.ROW_ORDER:
        if row not in table:
            continue
        cells = "".join(f"{table[row].get(k, float('nan')):>10.2f}"
                        for k in keys)
        lines.append(f"{row:<16}" + cells)
    lines.append("")
    lines.append("(times in simulated microseconds)")
    return "\n".join(lines)


def format_app_table(table: dict[str, dict[str, float]], title: str,
                     keys: Iterable[str] = CONFIG_KEYS) -> str:
    units = {"OSDB-IR": "q/s", "dbench": "MB/s", "Linux build": "s",
             "ping": "µs", "iperf-tcp": "Mbit/s", "iperf-udp": "Mbit/s"}
    keys = [k for k in keys if any(k in row for row in table.values())]
    lines = [title, ""]
    header = f"{'Benchmark':<14}{'unit':<8}" + "".join(f"{k:>10}" for k in keys)
    lines.append(header)
    lines.append("-" * len(header))
    for row, per_config in table.items():
        cells = "".join(f"{per_config.get(k, float('nan')):>10.2f}"
                        for k in keys)
        lines.append(f"{row:<14}{units.get(row, ''):<8}" + cells)
    return "\n".join(lines)


def format_relative_figure(relative: dict[str, dict[str, float]], title: str,
                           keys: Iterable[str] = CONFIG_KEYS) -> str:
    """The Fig. 3/4 bar chart, as text: 1.00 = native performance."""
    keys = [k for k in keys if any(k in row for row in relative.values())]
    lines = [title, ""]
    header = f"{'Benchmark':<14}" + "".join(f"{k:>8}" for k in keys)
    lines.append(header)
    lines.append("-" * len(header))
    for row, per_config in relative.items():
        cells = "".join(f"{per_config.get(k, float('nan')):>8.3f}"
                        for k in keys)
        lines.append(f"{row:<14}" + cells)
    lines.append("")
    lines.append("(relative performance vs. native Linux; higher is better)")
    return "\n".join(lines)


def format_switch_times(to_virtual_us: float, to_native_us: float,
                        title: str = "Mode switch time (Section 7.4)") -> str:
    lines = [
        title,
        "",
        f"  native -> virtual : {to_virtual_us / 1000.0:6.3f} ms"
        f"   (paper: ~0.22 ms)",
        f"  virtual -> native : {to_native_us / 1000.0:6.3f} ms"
        f"   (paper: ~0.06 ms)",
    ]
    return "\n".join(lines)
