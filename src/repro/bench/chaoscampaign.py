"""Seedable chaos campaign: inject VMM faults, measure detect + recover.

Each *episode* builds a fresh Mercury stack (attached VMM, one hosted
guest, split drivers), starts a workload under the deterministic
simulation scheduler, arms a timer that corrupts one VMM structure from
:data:`repro.faults.VMM_SITES` at a seeded trigger cycle, and lets the
VMI watchdog + recovery manager do their job.  The campaign aggregates
per-incident MTTR into p50/p99, the recovery-success rate and
workload-result integrity — the numbers `BENCH_recovery.json` gates on.

Everything is a pure function of ``(seed, episode parameters)``: episode
``index`` draws its parameters from its own
``random.Random(f"chaos:{seed}:{index}")`` stream, each episode builds
its stack under an isolated machine-id allocator, and the scheduler/clock
pair is deterministic — so episodes are order-independent and the
campaign parallelizes (``workers=``) without changing a byte of
:meth:`CampaignResult.canonical_output` (the CI ``chaos-recovery`` job
diffs exactly that across worker counts).

Episode anatomy
---------------
- The workload (kbuild or dbench) runs on the *driver* kernel: its
  syscalls hypercall through the VMM under test, but its data path never
  blocks on the (possibly wedged) split-driver backends — so a dead
  backend degrades the guest, not the probe measuring recovery.
- The hosted guest is the victim population for the channel/backend/
  grant sites and must come back alive: after the run the episode issues
  guest syscalls through the re-connected frontends and requires them to
  succeed.
- Recovery runs from a dedicated sim task (never from the watchdog's
  timer callback): the verdict is consumed between workload slices, when
  VO refcounts are quiescent, so the re-attach commits immediately.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Generator, Optional

from repro import faults, trace
from repro.core.invariants import check_all
from repro.core.mercury import Mercury
from repro.core.recovery import RecoveryManager
from repro.errors import ReproError
from repro.hw.machine import Machine, isolated_machine_ids, reset_machine_ids
from repro.params import small_config
from repro.sim import Join, SimScheduler, WaitFor, parallel_episodes
from repro.watchdog import Watchdog
from repro.workloads.dbench import dbench_task
from repro.workloads.kbuild import kbuild_task

#: sites exercised by the campaign, in catalogue order
CAMPAIGN_SITES = tuple(s.name for s in faults.VMM_SITES)

#: seeded trigger window for the corruption timer (cycles after run start)
TRIGGER_MIN_CYCLES = 1_500_000   # 0.5 ms
TRIGGER_MAX_CYCLES = 12_000_000  # 4 ms

#: watchdog scan period during an episode (1 ms: two scans inside the
#: shortest workload even with the double-observation rule)
SCAN_INTERVAL_CYCLES = 3_000_000

WORKLOADS = ("kbuild", "dbench")


@dataclass
class EpisodeResult:
    """One fault episode, injection to verified recovery."""

    index: int
    site: str
    variant: int
    trigger_cycles: int
    workload: str
    num_cpus: int
    injected: bool = False
    inject_error: str = ""
    detected: bool = False
    detect_latency_cycles: int = -1
    invariant: str = ""
    recovered: bool = False
    mttr_cycles: int = -1
    guests_rehosted: int = 0
    workload_ok: bool = False
    workload_error: str = ""
    guest_alive: bool = False
    invariant_failures: int = 0
    residual_verdict: str = ""

    @property
    def success(self) -> bool:
        """Full chaos-to-recovery success: fault injected, detected,
        recovered, stack invariant-clean, guest and workload intact."""
        return (self.injected and self.detected and self.recovered
                and self.invariant_failures == 0 and not self.residual_verdict
                and self.workload_ok and self.guest_alive)

    def row(self) -> dict:
        return {
            "index": self.index,
            "site": self.site,
            "variant": self.variant,
            "trigger_cycles": self.trigger_cycles,
            "workload": self.workload,
            "num_cpus": self.num_cpus,
            "detected": self.detected,
            "detect_latency_cycles": self.detect_latency_cycles,
            "invariant": self.invariant,
            "recovered": self.recovered,
            "mttr_cycles": self.mttr_cycles,
            "guests_rehosted": self.guests_rehosted,
            "workload_ok": self.workload_ok,
            "guest_alive": self.guest_alive,
            "success": self.success,
        }


@dataclass
class CampaignResult:
    seed: int
    episodes: int
    freq_mhz: int
    results: list = field(default_factory=list)

    # -- aggregates --------------------------------------------------------

    @property
    def success_count(self) -> int:
        return sum(1 for e in self.results if e.success)

    @property
    def success_rate(self) -> float:
        return self.success_count / len(self.results) if self.results else 0.0

    @property
    def detection_rate(self) -> float:
        if not self.results:
            return 0.0
        return sum(1 for e in self.results if e.detected) / len(self.results)

    @property
    def mttr_samples(self) -> list:
        return sorted(e.mttr_cycles for e in self.results
                      if e.recovered and e.mttr_cycles >= 0)

    def mttr_percentile(self, pct: float) -> Optional[int]:
        samples = self.mttr_samples
        if not samples:
            return None
        rank = max(0, min(len(samples) - 1,
                          int(round(pct / 100.0 * (len(samples) - 1)))))
        return samples[rank]

    def per_site(self) -> dict:
        out: dict = {}
        for e in self.results:
            site = out.setdefault(e.site, {"episodes": 0, "successes": 0,
                                           "detected": 0})
            site["episodes"] += 1
            site["successes"] += int(e.success)
            site["detected"] += int(e.detected)
        return dict(sorted(out.items()))

    def summary(self) -> dict:
        p50 = self.mttr_percentile(50)
        p99 = self.mttr_percentile(99)
        freq = self.freq_mhz
        return {
            "seed": self.seed,
            "episodes": self.episodes,
            "success_count": self.success_count,
            "success_rate": round(self.success_rate, 4),
            "detection_rate": round(self.detection_rate, 4),
            "mttr_p50_cycles": p50,
            "mttr_p99_cycles": p99,
            "mttr_p50_us": None if p50 is None else round(p50 / freq, 3),
            "mttr_p99_us": None if p99 is None else round(p99 / freq, 3),
            "per_site": self.per_site(),
            "episode_rows": [e.row() for e in self.results],
        }

    def canonical_output(self) -> str:
        """The determinism contract: every byte a pure function of
        ``(seed, episodes)``."""
        return json.dumps(self.summary(), indent=1, sort_keys=True) + "\n"


# ---------------------------------------------------------------------------
# episode machinery
# ---------------------------------------------------------------------------

def _guarded_workload(gen: Generator, out: dict) -> Generator:
    """Task exceptions propagate out of ``SimScheduler.run`` — a workload
    killed by the injected fault must fail its episode, not the campaign."""
    try:
        out["result"] = yield from gen
    except ReproError as exc:
        out["error"] = type(exc).__name__


def _recovery_task(mercury: Mercury, watchdog: Watchdog,
                   manager: RecoveryManager, out: dict) -> Generator:
    yield WaitFor(lambda: watchdog.pending_verdict is not None,
                  desc="watchdog verdict")
    verdict = watchdog.take_verdict()
    out["verdict"] = verdict
    try:
        out["record"] = manager.recover(verdict,
                                        cpu=mercury.machine.boot_cpu)
    finally:
        watchdog.stop()


def _guest_alive(guest, cpu, tag: int) -> bool:
    """Post-recovery liveness probe through the re-connected frontends."""
    try:
        fd = guest.syscall(cpu, "open", f"/postrecovery-{tag}", True)
        guest.syscall(cpu, "write", fd, f"alive-{tag}", 512)
        guest.syscall(cpu, "close", fd)
        fd = guest.syscall(cpu, "open", f"/postrecovery-{tag}")
        guest.syscall(cpu, "read", fd, 512)
        guest.syscall(cpu, "close", fd)
        return True
    except ReproError:
        return False


def run_episode(index: int, site: str, variant: int, trigger_cycles: int,
                workload: str, num_cpus: int,
                scan_interval: int = SCAN_INTERVAL_CYCLES) -> EpisodeResult:
    """Run one fault episode on a fresh stack; fully deterministic."""
    episode = EpisodeResult(index=index, site=site, variant=variant,
                            trigger_cycles=trigger_cycles, workload=workload,
                            num_cpus=num_cpus)
    import dataclasses
    config = dataclasses.replace(small_config(), num_cpus=num_cpus)
    # isolated numbering: machine identity depends only on the episode
    # parameters, never on which worker (or how many prior episodes) built
    # this stack — the property that lets episodes run in any process
    with isolated_machine_ids():
        machine = Machine(config)
        mercury = Mercury(machine)
        kernel = mercury.create_kernel(image_pages=16)
        mercury.engine.max_retries = 64
        mercury.attach()
        # the site catalogue includes the wedged balloon ring, so every
        # episode hosts its guest mid-inflate (24 surplus pool pages the
        # elastic controller could reclaim)
        guest = mercury.host_guest(image_pages=8, mem_pages=48,
                                   mem_floor=16)
    watchdog = Watchdog(mercury, suspect_scans=2)
    manager = RecoveryManager(mercury)

    work_cpu = machine.cpus[1] if num_cpus > 1 else machine.boot_cpu
    wl_out: dict = {}
    rec_out: dict = {}

    def _inject() -> None:
        try:
            faults.inject_vmm_fault(site, mercury, variant=variant)
            episode.injected = True
        except ReproError as exc:
            episode.inject_error = f"{type(exc).__name__}: {exc}"

    sched = SimScheduler(machine)
    tracer = trace.Tracer(machine.clock)
    injected_at = machine.clock.cycles + trigger_cycles
    with trace.tracing(tracer):
        machine.clock.schedule(trigger_cycles, _inject)
        watchdog.start(scan_interval)
        if workload == "dbench":
            gen = dbench_task(kernel, work_cpu, clients=2,
                              files_per_client=3, writes_per_file=4)
        else:
            gen = kbuild_task(kernel, work_cpu, files=2)
        sched.spawn(_guarded_workload(gen, wl_out),
                    name=workload, cpu=work_cpu, kernel=kernel)
        sched.spawn(_recovery_task(mercury, watchdog, manager, rec_out),
                    name="recovery", cpu=machine.boot_cpu)
        sched.run()
    events = tracer.events()
    problems = trace.validate(events, dropped=tracer.dropped)
    if problems:
        raise AssertionError(f"malformed episode trace: {problems[:3]}")

    verdict = rec_out.get("verdict")
    if verdict is not None:
        episode.detected = True
        episode.invariant = verdict.invariant
        detected = getattr(verdict, "detected_cycles", None)
        if detected is not None:
            episode.detect_latency_cycles = detected - injected_at
    record = rec_out.get("record")
    if record is not None and record.success:
        episode.recovered = True
        episode.mttr_cycles = record.mttr_cycles
        episode.guests_rehosted = record.guests_rehosted

    result = wl_out.get("result")
    if "error" in wl_out:
        episode.workload_error = wl_out["error"]
    elif workload == "kbuild":
        episode.workload_ok = (result is not None
                               and result.files_compiled == 2)
    else:
        episode.workload_ok = result is not None and result.ops > 0

    episode.invariant_failures = len(check_all(mercury))
    residual = watchdog.scan()
    if residual is not None:
        episode.residual_verdict = residual.invariant
    episode.guest_alive = _guest_alive(guest, machine.boot_cpu, index)
    return episode


def episode_params(seed: int, index: int,
                   scan_interval: int = SCAN_INTERVAL_CYCLES) -> tuple:
    """Parameter tuple for episode ``index`` — the :func:`run_episode`
    argument list, drawn from the episode's *own* RNG stream.

    Keyed by ``(seed, index)`` rather than position in a shared stream,
    so parallel workers computing any subset of episodes agree with the
    serial campaign draw-for-draw."""
    rng = random.Random(f"chaos:{seed}:{index}")
    site = CAMPAIGN_SITES[rng.randrange(len(CAMPAIGN_SITES))]
    variant = rng.randrange(8)
    trigger = rng.randrange(TRIGGER_MIN_CYCLES, TRIGGER_MAX_CYCLES)
    workload = WORKLOADS[rng.randrange(len(WORKLOADS))]
    num_cpus = 1 + rng.randrange(2)
    return (index, site, variant, trigger, workload, num_cpus,
            scan_interval)


def run_chaos_campaign(episodes: int = 50, seed: int = 1234,
                       scan_interval: int = SCAN_INTERVAL_CYCLES,
                       workers: int = 1) -> CampaignResult:
    """Run ``episodes`` seeded fault episodes; aggregate the campaign.

    ``workers > 1`` fans episodes across spawned processes
    (:func:`~repro.sim.pool.parallel_episodes`); every episode is a pure
    function of its parameter tuple, so the result list — and therefore
    the canonical output — is identical at every worker count."""
    freq = small_config().cost.freq_mhz
    campaign = CampaignResult(seed=seed, episodes=episodes, freq_mhz=freq)
    params = [episode_params(seed, index, scan_interval)
              for index in range(episodes)]
    campaign.results = parallel_episodes(run_episode, params,
                                         workers=workers)
    return campaign


# ---------------------------------------------------------------------------
# steady-state overhead probe
# ---------------------------------------------------------------------------

def measure_watchdog_overhead(files: int = 6,
                              scan_interval: int = SCAN_INTERVAL_CYCLES
                              ) -> dict:
    """Simulated-cycle cost of scanning: the same attached-mode kbuild run
    with and without a periodic watchdog; returns the relative overhead."""
    import dataclasses

    def _run(with_watchdog: bool) -> int:
        reset_machine_ids()
        config = dataclasses.replace(small_config(), num_cpus=2)
        machine = Machine(config)
        mercury = Mercury(machine)
        kernel = mercury.create_kernel(image_pages=16)
        mercury.engine.max_retries = 64
        mercury.attach()
        guest = mercury.host_guest(image_pages=8)
        del guest
        watchdog = Watchdog(mercury, suspect_scans=2)
        start = machine.clock.cycles
        sched = SimScheduler(machine)
        out: dict = {}
        task = sched.spawn(_guarded_workload(
            kbuild_task(kernel, machine.cpus[1], files=files), out),
            name="kbuild", cpu=machine.cpus[1], kernel=kernel)
        if with_watchdog:
            watchdog.start(scan_interval)

            def _stopper() -> Generator:
                # a self-rescheduling scan timer would keep the scheduler's
                # clock queue alive forever; disarm it when the work ends
                yield Join(task)
                watchdog.stop()

            sched.spawn(_stopper(), name="watchdog-stop",
                        cpu=machine.boot_cpu)
        sched.run()
        watchdog.stop()
        assert out.get("result") is not None
        return machine.clock.cycles - start

    base = _run(False)
    watched = _run(True)
    overhead = (watched - base) / base if base else 0.0
    return {
        "baseline_cycles": base,
        "watched_cycles": watched,
        "overhead_pct": round(100.0 * overhead, 4),
    }
