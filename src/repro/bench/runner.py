"""Workload runners over the six configurations.

``run_lmbench_suite`` regenerates Tables 1/2; ``run_app_suite`` regenerates
the application-level serieses of Figs. 3/4 (OSDB-IR, dbench, kernel build,
ping, iperf).  Results are plain dicts keyed ``row -> config -> value`` so
the report layer and the pytest benches can both consume them.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.bench.configs import CONFIG_KEYS, SystemUnderTest, build_config
from repro.params import MachineConfig
from repro.workloads.dbench import run_dbench
from repro.workloads.iperf import run_iperf, run_ping
from repro.workloads.kbuild import run_kbuild
from repro.workloads.lmbench import LMBENCH_IMAGE_PAGES, LmbenchResults, run_lmbench
from repro.workloads.osdb import run_osdb_ir

#: application-series row names as Fig. 3/4 lists them
APP_ROWS = ("OSDB-IR", "dbench", "Linux build", "ping", "iperf-tcp",
            "iperf-udp")


def run_lmbench_suite(num_cpus: int = 1,
                      config: Optional[MachineConfig] = None,
                      keys: Iterable[str] = CONFIG_KEYS
                      ) -> dict[str, dict[str, float]]:
    """lmbench latencies for every configuration.

    Returns ``{row -> {config -> µs}}`` in the shape of Table 1 (UP) or
    Table 2 (SMP, ``num_cpus=2``)."""
    config = (config or MachineConfig()).with_cpus(num_cpus)
    table: dict[str, dict[str, float]] = {}
    for key in keys:
        sut = build_config(key, config, image_pages=LMBENCH_IMAGE_PAGES)
        results = run_lmbench(sut.kernel, sut.cpu)
        for row, value in results.rows.items():
            table.setdefault(row, {})[key] = value
    return table


def run_app_suite(num_cpus: int = 1,
                  config: Optional[MachineConfig] = None,
                  keys: Iterable[str] = CONFIG_KEYS,
                  scale: float = 1.0) -> dict[str, dict[str, float]]:
    """Application benchmarks for every configuration.

    Returns ``{row -> {config -> score}}``.  Scores follow each suite's
    native unit (OSDB: queries/s; dbench: MB/s; build: seconds — lower is
    better; ping: µs RTT — lower is better; iperf: Mbit/s).
    ``scale`` shrinks workload sizes for quick runs."""
    config = (config or MachineConfig()).with_cpus(num_cpus)
    table: dict[str, dict[str, float]] = {}
    for key in keys:
        sut = build_config(key, config)
        cpu = sut.cpu

        osdb = run_osdb_ir(sut.kernel, cpu,
                           rows=max(256, int(4096 * scale)),
                           queries=max(20, int(200 * scale)))
        table.setdefault("OSDB-IR", {})[key] = osdb.queries_per_second

        dbench = run_dbench(sut.kernel, cpu,
                            clients=max(1, int(4 * scale)),
                            files_per_client=max(2, int(6 * scale)))
        table.setdefault("dbench", {})[key] = dbench.throughput_mb_s

        kbuild = run_kbuild(sut.kernel, cpu,
                            files=max(4, int(24 * scale)))
        table.setdefault("Linux build", {})[key] = kbuild.elapsed_s

        table.setdefault("ping", {})[key] = run_ping(sut.kernel,
                                                     sut.peer_kernel,
                                                     count=3)
        tcp = run_iperf(sut.kernel, sut.peer_kernel, proto="tcp",
                        total_bytes=max(256 * 1024, int(2 * 1024 * 1024 * scale)))
        table.setdefault("iperf-tcp", {})[key] = tcp.mbit_s
        udp = run_iperf(sut.kernel, sut.peer_kernel, proto="udp",
                        total_bytes=max(256 * 1024, int(2 * 1024 * 1024 * scale)))
        table.setdefault("iperf-udp", {})[key] = udp.mbit_s
    return table


def relative_to_native(table: dict[str, dict[str, float]],
                       lower_is_better_rows: Iterable[str] = ("Linux build",
                                                              "ping")
                       ) -> dict[str, dict[str, float]]:
    """Normalize an app-suite table to the N-L column, as Figs. 3/4 plot
    ('relative performance': 1.0 = native; higher = better)."""
    lower = set(lower_is_better_rows)
    out: dict[str, dict[str, float]] = {}
    for row, per_config in table.items():
        base = per_config.get("N-L")
        if not base:
            continue
        out[row] = {}
        for key, value in per_config.items():
            if row in lower:
                out[row][key] = base / value if value else 0.0
            else:
                out[row][key] = value / base
    return out
