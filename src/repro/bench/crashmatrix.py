"""Programmatic switch-crash matrix: every fault site × direction ×
topology × fault flavor, as independently runnable cells.

The pytest matrix (``tests/integration/test_switch_crash_matrix.py``)
proves the §4.3 dependability claims per cell; this module packages the
same checks as a bench so the whole matrix can be timed, parallelized
(each cell is a pure function of its parameters, so
:func:`~repro.sim.pool.parallel_episodes` fans cells across processes
without changing a verdict) and summarized into dashboards.

Cell semantics mirror the tests:

- **persistent** — a never-clearing fault makes the switch terminally
  abort with the stack transactionally back in its pre-switch state, and
  the next un-faulted switch commits.  (``smp.ipi-delayed`` is
  latency-only: it must *commit* under the fault.)
- **transient** — a single-shot fault is absorbed by rollback + bounded
  retry; the caller sees a committed switch and never the fault.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from repro import Machine, Mercury, faults, small_config
from repro.core.invariants import check_all
from repro.errors import ReproError, SwitchAborted
from repro.hw.machine import isolated_machine_ids
from repro.sim.pool import parallel_episodes

DIRECTIONS = ("attach", "detach")
TOPOLOGIES = (1, 2)
FLAVORS = ("persistent", "transient")


@dataclass
class CellResult:
    """Verdict of one matrix cell."""

    site: str
    direction: str
    ncpus: int
    flavor: str
    skipped: bool = False
    retries: int = 0
    rollbacks: int = 0
    #: failed check labels; empty == the cell holds
    failures: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def row(self) -> dict:
        out = asdict(self)
        out["ok"] = self.ok
        return out


def _fingerprint(mercury: Mercury) -> dict:
    """State a half-committed switch could corrupt (id-free subset of the
    pytest matrix fingerprint)."""
    kernel = mercury.kernel
    domain = mercury.domain
    return {
        "mode": mercury.mode,
        "vo_refcount": kernel.vo.refcount,
        "vmm_active": mercury.vmm.active,
        "segment_dpl": kernel.vo.data.kernel_segment_dpl,
        "idt_owners": {c.cpu_id: getattr(c.idt_base, "owner", None)
                       for c in mercury.machine.cpus},
        "pinned": set(mercury.vmm.page_info.pinned),
        "aspaces": len(domain.aspaces) if domain is not None else 0,
        "interrupts": {c.cpu_id: c.interrupts_enabled
                       for c in mercury.machine.cpus},
    }


def _switch(mercury: Mercury, direction: str):
    return mercury.attach() if direction == "attach" else mercury.detach()


def run_cell(site: str, direction: str, ncpus: int,
             flavor: str) -> CellResult:
    """Run one cell; a pure function of its parameters (module-level so
    worker processes can import it by reference)."""
    cell = CellResult(site=site, direction=direction, ncpus=ncpus,
                      flavor=flavor)
    spec = faults.site(site)
    if spec.smp_only and ncpus == 1:
        cell.skipped = True
        return cell

    def check(cond: bool, label: str) -> None:
        if not cond:
            cell.failures.append(label)

    with isolated_machine_ids():
        mercury = Mercury(Machine(small_config(num_cpus=ncpus)))
        mercury.create_kernel(image_pages=16)
    if direction == "detach":
        check(mercury.attach() is not None, "pre-attach commits")
    start_mode = mercury.mode
    before = _fingerprint(mercury)
    latency_only = site == faults.IPI_DELAYED

    plan = faults.FaultPlan()
    plan.arm(site, times=None if flavor == "persistent" else 1)
    try:
        with faults.injected(plan):
            if flavor == "persistent" and not latency_only:
                try:
                    _switch(mercury, direction)
                    check(False, "persistent fault must abort")
                except SwitchAborted as exc:
                    check(exc.retries == mercury.engine.max_retries,
                          "abort consumed the whole retry budget")
            else:
                rec = _switch(mercury, direction)
                check(rec is not None, "switch commits")
                check(mercury.mode is not start_mode, "mode flipped")
                if rec is not None:
                    cell.retries = rec.retries
                    cell.rollbacks = rec.rollbacks
                    if flavor == "transient" and not latency_only:
                        check(rec.retries >= 1, "transient fault retried")
    except ReproError as exc:
        check(False, f"unexpected {type(exc).__name__}")
        return cell
    check(plan.injected >= 1, "fault actually injected")

    if flavor == "persistent" and not latency_only:
        check(mercury.mode is start_mode, "mode restored")
        check(_fingerprint(mercury) == before, "fingerprint restored")
    check(check_all(mercury) == [], "invariants clean")

    # the un-faulted follow-up switch must commit and leave a live kernel
    follow_up = direction
    if flavor == "transient" or latency_only:  # already switched
        follow_up = "detach" if direction == "attach" else "attach"
    try:
        check(_switch(mercury, follow_up) is not None, "follow-up commits")
        kernel = mercury.kernel
        cpu = mercury.machine.boot_cpu
        pid = kernel.syscall(cpu, "fork")
        kernel.run_and_reap(cpu, kernel.procs.get(pid))
        check(check_all(mercury) == [], "post-smoke invariants clean")
    except ReproError as exc:
        check(False, f"smoke raised {type(exc).__name__}")
    return cell


def matrix_cells() -> list:
    """Every (site, direction, ncpus, flavor) tuple, registry-derived."""
    return [(s.name, direction, ncpus, flavor)
            for s in faults.SWITCH_SITES
            for direction in DIRECTIONS
            for ncpus in TOPOLOGIES
            for flavor in FLAVORS]


def run_crash_matrix(workers: int = 1) -> list:
    """Run the full matrix, optionally fanning cells across processes."""
    return parallel_episodes(run_cell, matrix_cells(), workers=workers)


def matrix_summary(results: list) -> dict:
    ran = [c for c in results if not c.skipped]
    per_site: dict = {}
    for cell in ran:
        site = per_site.setdefault(cell.site, {"cells": 0, "ok": 0})
        site["cells"] += 1
        site["ok"] += int(cell.ok)
    return {
        "cells": len(results),
        "ran": len(ran),
        "skipped": len(results) - len(ran),
        "ok": sum(1 for c in ran if c.ok),
        "failures": [c.row() for c in ran if not c.ok],
        "per_site": dict(sorted(per_site.items())),
    }


def canonical_matrix_output(results: list) -> str:
    """Byte-stable rendering (CI diffs this across worker counts)."""
    payload = {
        "summary": matrix_summary(results),
        "rows": [c.row() for c in results],
    }
    return json.dumps(payload, indent=1, sort_keys=True,
                      default=str) + "\n"
