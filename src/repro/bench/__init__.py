"""The evaluation harness (§7).

:mod:`repro.bench.configs` builds the six systems the paper compares —
N-L, M-N, X-0, M-V, X-U, M-U — as identical workload targets;
:mod:`repro.bench.runner` runs workloads against them;
:mod:`repro.bench.report` prints paper-style tables and relative-performance
series.
"""

from repro.bench.configs import CONFIG_KEYS, SystemUnderTest, build_config
from repro.bench.runner import run_app_suite, run_lmbench_suite

__all__ = [
    "CONFIG_KEYS",
    "SystemUnderTest",
    "build_config",
    "run_app_suite",
    "run_lmbench_suite",
]
