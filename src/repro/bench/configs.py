"""The six evaluated configurations (§7: N-L, M-N, X-0, M-V, X-U, M-U).

| key | system                                   | construction               |
|-----|------------------------------------------|----------------------------|
| N-L | native (unmodified) Linux                | bare kernel, no VO charge  |
| M-N | Mercury-Linux in native mode             | Mercury, VMM pre-cached    |
| X-0 | Xen-Linux domain0                        | VMM from boot, driver dom  |
| M-V | Mercury-Linux in virtual mode            | Mercury after attach       |
| X-U | Xen-Linux domainU                        | + split I/O through dom0   |
| M-U | Xen-Linux hosted on self-virtualized OS  | Mercury attach + host      |

Every configuration also gets a *peer*: a plain native-Linux box wired to
the system under test through the gigabit link, used by the network
benchmarks (the load-generator end is held constant so differences come
from the system under test, as in §7.1's client/server setup).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.accounting import AccountingStrategy
from repro.core.mercury import Mercury
from repro.core.native_vo import NativeVO
from repro.core.virtual_vo import VirtualVO
from repro.errors import ReproError
from repro.guestos.kernel import Kernel
from repro.guestos.splitio import connect_split_block, connect_split_net
from repro.hw.clock import Clock
from repro.hw.machine import Machine
from repro.params import MachineConfig
from repro.vmm.hypervisor import Hypervisor

#: configuration keys in the paper's column order
CONFIG_KEYS = ("N-L", "M-N", "X-0", "M-V", "X-U", "M-U")


class BareMetalVO(NativeVO):
    """The VO an *unmodified* kernel effectively has: direct hardware
    access with no function-table indirection cost (the N-L baseline).
    Refcounting is kept (it is free) so shared invariants hold."""

    mode_name = "bare"
    #: the knob the sensitive wrapper (and enter()) honor — an unmodified
    #: kernel has no function table to indirect through
    charges_indirect = False


@dataclass
class SystemUnderTest:
    """One built configuration, ready to take workloads."""

    key: str
    machine: Machine
    #: the kernel workloads run on (dom0/domU/native as the config demands)
    kernel: Kernel
    #: a native peer box on the other end of the wire
    peer_kernel: Kernel
    mercury: Optional[Mercury] = None
    vmm: Optional[Hypervisor] = None
    #: the driver-domain kernel when distinct from `kernel` (X-U, M-U)
    driver_kernel: Optional[Kernel] = None

    @property
    def cpu(self):
        return self.machine.boot_cpu


def _make_peer(clock: Clock, config: MachineConfig, sut_machine: Machine) -> Kernel:
    """The constant native load-generator on the other end of the link."""
    peer_machine = Machine(config, clock=clock, name="peer")
    peer_kernel = Kernel(peer_machine, BareMetalVO(peer_machine),
                         owner_id=0, name="peer-linux")
    peer_kernel.boot()
    sut_machine.link_to(peer_machine)
    return peer_kernel


def build_config(key: str, config: Optional[MachineConfig] = None,
                 image_pages: int = 96,
                 strategy: AccountingStrategy = AccountingStrategy.RECOMPUTE
                 ) -> SystemUnderTest:
    """Construct one of the six systems, booted and ready."""
    config = config or MachineConfig()
    clock = Clock(freq_mhz=config.cost.freq_mhz)
    machine = Machine(config, clock=clock, name=f"sut-{key}")

    if key == "N-L":
        kernel = Kernel(machine, BareMetalVO(machine), owner_id=0,
                        name="native-linux")
        kernel.boot(image_pages=image_pages)
        peer = _make_peer(clock, config, machine)
        return SystemUnderTest(key, machine, kernel, peer)

    if key == "M-N":
        mercury = Mercury(machine, strategy=strategy)
        kernel = mercury.create_kernel(name="mercury-linux",
                                       image_pages=image_pages)
        peer = _make_peer(clock, config, machine)
        return SystemUnderTest(key, machine, kernel, peer, mercury=mercury,
                               vmm=mercury.vmm)

    if key == "M-V":
        mercury = Mercury(machine, strategy=strategy)
        kernel = mercury.create_kernel(name="mercury-linux",
                                       image_pages=image_pages)
        peer = _make_peer(clock, config, machine)
        mercury.attach()
        return SystemUnderTest(key, machine, kernel, peer, mercury=mercury,
                               vmm=mercury.vmm)

    if key == "M-U":
        mercury = Mercury(machine, strategy=strategy)
        driver = mercury.create_kernel(name="mercury-linux",
                                       image_pages=image_pages)
        peer = _make_peer(clock, config, machine)
        mercury.attach()
        guest = mercury.host_guest(name="domU", image_pages=image_pages)
        return SystemUnderTest(key, machine, guest, peer, mercury=mercury,
                               vmm=mercury.vmm, driver_kernel=driver)

    if key in ("X-0", "X-U"):
        # Xen from boot: warm up + activate before the guest exists
        vmm = Hypervisor(machine)
        vmm.warm_up()
        dom0 = vmm.create_domain("dom0", num_vcpus=config.num_cpus,
                                 is_driver_domain=True, domain_id=0)
        vmm.activate()
        dom0_vo = VirtualVO(machine, vmm, dom0)
        dom0_kernel = Kernel(machine, dom0_vo, owner_id=0, name="xen-dom0")
        dom0.guest = dom0_kernel
        dom0_kernel.boot(image_pages=image_pages)
        peer = _make_peer(clock, config, machine)
        if key == "X-0":
            return SystemUnderTest(key, machine, dom0_kernel, peer, vmm=vmm)
        domU = vmm.create_domain("domU", num_vcpus=config.num_cpus,
                                 domain_id=1)
        domU_vo = VirtualVO(machine, vmm, domU)
        domU_kernel = Kernel(machine, domU_vo, owner_id=1, name="xen-domU",
                             has_devices=False)
        domU.guest = domU_kernel
        connect_split_block(domU_kernel, dom0_kernel, vmm)
        connect_split_net(domU_kernel, dom0_kernel, vmm,
                          guest_addr=f"{machine.nic.addr}:u1")
        domU_kernel.boot(image_pages=image_pages)
        return SystemUnderTest(key, machine, domU_kernel, peer, vmm=vmm,
                               driver_kernel=dom0_kernel)

    raise ReproError(f"unknown configuration key {key!r}; "
                     f"expected one of {CONFIG_KEYS}")
