"""Fault-rate sweep: dependability counters vs. injected fault probability.

The §8 companion to the performance benches: drive repeated attach/detach
round-trips with a live process/memory population while arming faults at
randomly drawn switch-pipeline sites with probability ``fault_rate`` per
switch, and record what the engine did about it — commits, rollbacks,
bounded-retry consumption, terminal aborts.

Randomness is a seeded :class:`random.Random` *deciding which faults to
arm*; each armed fault itself is the deterministic :mod:`repro.faults`
machinery, so a sweep point is exactly reproducible from (seed, rate) —
which also makes points order-independent, and the sweep fans across
worker processes (``workers=``) without changing a single number.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass

from repro import Machine, Mercury, faults, small_config
from repro.core.invariants import check_all
from repro.core.mercury import Mode
from repro.errors import SwitchAborted
from repro.hw.machine import isolated_machine_ids
from repro.metrics import MetricsCollector
from repro.sim.pool import parallel_episodes

#: probability that an armed fault is persistent (never clears, so the
#: switch must terminally abort) rather than single-shot
PERSISTENT_SHARE = 0.25

DEFAULT_RATES = (0.0, 0.1, 0.25, 0.5)


@dataclass
class SweepPoint:
    """Engine behaviour over one run at one fault probability."""

    fault_rate: float
    switch_attempts: int
    commits: int
    aborts: int
    rollbacks: int
    retries: int
    faults_injected: int
    invariant_violations: int
    mean_switch_us: float


def _workload_tick(mercury: Mercury, rng: random.Random) -> None:
    """Keep a live page-table/process population between switches so the
    transfer loops have real state to move (and to tear)."""
    kernel = mercury.kernel
    cpu = mercury.machine.boot_cpu
    from repro.params import PAGE_SIZE
    if rng.random() < 0.5:
        pid = kernel.syscall(cpu, "fork")
        kernel.run_and_reap(cpu, kernel.procs.get(pid))
    else:
        base = kernel.syscall(cpu, "mmap", 2 * PAGE_SIZE, True)
        kernel.vmem.access(cpu, kernel.scheduler.current, base, write=True)


def sweep_point(rate: float, rounds: int = 24,
                seed: int = 1234) -> SweepPoint:
    """One fresh Mercury stack at one fault probability; a pure function
    of ``(rate, rounds, seed)`` (module-level so worker processes can
    import it by reference)."""
    armable = [s.name for s in faults.SWITCH_SITES if not s.smp_only]
    rng = random.Random(f"faultsweep:{seed}:{rate}")
    with isolated_machine_ids():
        mercury = Mercury(Machine(small_config(mem_kb=32768)))
        mercury.create_kernel(image_pages=8)
    collector = MetricsCollector(mercury.machine, kernel=mercury.kernel,
                                 mercury=mercury)
    commits = aborts = injected = 0
    for _ in range(rounds):
        _workload_tick(mercury, rng)
        plan = faults.FaultPlan()
        if rng.random() < rate:
            times = None if rng.random() < PERSISTENT_SHARE else 1
            plan.arm(rng.choice(armable), times=times)
        with faults.injected(plan):
            try:
                rec = (mercury.attach() if mercury.mode is Mode.NATIVE
                       else mercury.detach())
                if rec is not None:
                    commits += 1
            except SwitchAborted:
                aborts += 1
        injected += plan.injected
    freq = mercury.machine.config.cost.freq_mhz
    records = mercury.switch_records
    mean_us = (sum(r.us(freq) for r in records)
               / len(records)) if records else 0.0
    snap = collector.snapshot()
    return SweepPoint(
        fault_rate=rate,
        switch_attempts=rounds,
        commits=commits,
        aborts=aborts,
        rollbacks=snap.switch_rollbacks,
        retries=snap.switch_retries + snap.pending_retries,
        faults_injected=injected,
        invariant_violations=len(check_all(mercury)),
        mean_switch_us=round(mean_us, 2),
    )


def run_fault_sweep(rates=DEFAULT_RATES, rounds: int = 24,
                    seed: int = 1234, workers: int = 1) -> list[SweepPoint]:
    """One :func:`sweep_point` per rate, optionally across processes."""
    return parallel_episodes(
        sweep_point, [(rate, rounds, seed) for rate in rates],
        workers=workers)


def sweep_as_rows(points: list[SweepPoint]) -> list[dict]:
    return [asdict(p) for p in points]
