"""Memory-elasticity bench: balloon churn vs. attach-time drift, and the
reclaim-strategy ablation.

Two sub-measurements feed the ``memory`` section of ``BENCH_perf.json``:

- **Drift sweep** — dom0 balloons while attached, then hands returned
  pool frames to ``churn`` worker tasks in native mode.  Every handed-out
  batch dirties that task's root in the incremental-attach accounting, so
  the next attach revalidates exactly ``churn`` roots: attach time must
  sit under the steady gate at zero churn and grow monotonically with the
  churn rate — the cost of elasticity is visible, bounded, and *pay for
  what you dirtied*.
- **Ablation** — a hosted guest is squeezed to its floor and re-grown
  under both reclaim strategies (:data:`repro.vmm.elastic.STRATEGIES`).
  ``hypervisor-driven`` steals mapped victims (reclaim completes without
  guest cooperation but taxes the guest with victim-page faults on the
  next touch); ``guest-delegated`` surrenders cold pool frames (no fault
  tax).  Both must converge to identical final sizes, and frame ownership
  must be conserved: every ballooned-out frame is either in the host free
  pool or re-granted, never double-owned (Δowned == Δledger).

Everything is cycle-exact and seeded; ``canonical_output()`` is the
byte-diff surface the ``memory-elasticity`` CI job double-runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core.mercury import Mercury
from repro.hw.machine import Machine
from repro.params import MachineConfig
from repro.vmm.elastic import STRATEGIES, ElasticMemoryController

#: dirtied-roots-per-measurement sweep points (0 is the steady gate)
CHURN_RATES = (0, 2, 4, 8)

#: pool frames dom0 deflates in before the sweep hands them out
POOL_FRAMES = 48

#: frames each churned worker task receives (churn × per-task ≤ pool)
PER_TASK_FRAMES = 6


@dataclass
class ElasticityResult:
    """One full elasticity run: the drift sweep plus the ablation."""

    freq_mhz: int
    churn_rates: tuple = CHURN_RATES
    #: one dict per churn rate: attach_us, balloon_marks, roots counts
    drift: list = field(default_factory=list)
    #: strategy -> reclaim/grant/fault accounting
    ablation: dict = field(default_factory=dict)
    conservation_ok: bool = True
    #: canonical event lines (decision logs, per-point measurements)
    lines: list = field(default_factory=list)

    @property
    def steady_attach_us(self) -> float:
        for entry in self.drift:
            if entry["churn"] == 0:
                return entry["attach_us"]
        raise ValueError("drift sweep did not include churn=0")

    @property
    def drift_attach_us(self) -> dict:
        return {str(e["churn"]): e["attach_us"] for e in self.drift}

    @property
    def drift_monotone(self) -> bool:
        us = [e["attach_us"] for e in
              sorted(self.drift, key=lambda e: e["churn"])]
        return all(a <= b for a, b in zip(us, us[1:]))

    @property
    def final_sizes_equal(self) -> bool:
        finals = {a["final_pages"] for a in self.ablation.values()}
        return len(finals) == 1

    def summary(self) -> dict:
        return {
            "churn_rates": list(self.churn_rates),
            "steady_attach_us": self.steady_attach_us,
            "drift_attach_us": self.drift_attach_us,
            "drift_monotone": self.drift_monotone,
            "drift_detail": self.drift,
            "ablation": {k: self.ablation[k] for k in sorted(self.ablation)},
            "final_sizes_equal": self.final_sizes_equal,
            "conservation_ok": self.conservation_ok,
        }

    def canonical_output(self) -> str:
        return (json.dumps(self.summary(), indent=1, sort_keys=True)
                + "\n" + "\n".join(self.lines) + "\n")


def _fork_workers(kernel, cpu, count: int, image_pages: int = 4) -> list:
    init = kernel.scheduler.current
    tasks = []
    for i in range(count):
        t = kernel.procs.fork(cpu, init)
        kernel.procs.exec(cpu, t, f"w{i}", image_pages)
        tasks.append(t)
    return tasks


def measure_drift_point(churn: int, *, workers: int = 8,
                        pool_frames: int = POOL_FRAMES,
                        per_task: int = PER_TASK_FRAMES,
                        mem_kb: int = 16384) -> dict:
    """One drift measurement: balloon dom0 while attached, churn
    ``churn`` worker roots with returned frames in native mode, re-attach
    and read the incremental-validation bill."""
    if churn * per_task > pool_frames:
        raise ValueError("churn would overdraw the deflated pool")
    machine = Machine(MachineConfig(num_cpus=1, mem_kb=mem_kb))
    mercury = Mercury(machine)
    kernel = mercury.create_kernel(name="elastic-dom0")
    cpu = machine.boot_cpu
    freq = machine.config.cost.freq_mhz
    tasks = _fork_workers(kernel, cpu, workers)

    mercury.attach(cpu)
    front, back = mercury.connect_balloon()
    dom0 = mercury.domain
    # deflate: stock the frontend pool with host frames
    back.set_target(cpu, dom0.mem_pages + pool_frames)
    # attached-mode ring churn: a couple of inflate/deflate round-trips
    # keep the split-driver datapath honest on every sweep point
    for _ in range(2):
        back.set_target(cpu, dom0.mem_pages - 8)
        back.set_target(cpu, dom0.mem_pages + 8)
    mercury.detach(cpu)

    marks_before = mercury.mmu_log.balloon_marks
    for i in range(churn):
        front.map_pool_frames(cpu, tasks[i], per_task)
    rec = mercury.attach(cpu)
    entry = {
        "churn": churn,
        "attach_us": round(rec.us(freq), 3),
        "balloon_marks": mercury.mmu_log.balloon_marks - marks_before,
        "roots_revalidated": mercury.mmu_log.roots_revalidated,
        "roots_trusted": mercury.mmu_log.roots_trusted,
        "pool_residual": len(front.pool),
    }
    # steady-state follow-up: with no new churn the next attach must fall
    # back to the trusted fast path regardless of the churn before it
    mercury.detach(cpu)
    entry["reattach_us"] = round(mercury.attach(cpu).us(freq), 3)
    mercury.detach(cpu)
    return entry


def run_ablation(strategy: str, *, mem_kb: int = 16384,
                 mem_pages: int = 120, mem_floor: int = 40,
                 mapped_frames: int = 24, reclaim_step: int = 16,
                 grant_rounds: int = 2) -> dict:
    """Squeeze one hosted guest to its floor under ``strategy``, measure
    the reclaim latency and fault tax, then re-grow it under synthetic
    pressure.  Returns the accounting dict for the ablation table."""
    machine = Machine(MachineConfig(num_cpus=1, mem_kb=mem_kb))
    mercury = Mercury(machine)
    mercury.create_kernel(name="elastic-driver")
    cpu = machine.boot_cpu
    mercury.attach(cpu)
    guest = mercury.host_guest(name="elastic-guest", image_pages=16,
                               mem_pages=mem_pages, mem_floor=mem_floor)
    front, _back = mercury.balloons[guest.owner_id]
    dom = mercury.vmm.domains[guest.owner_id]
    # give the hypervisor-driven strategy hot victims to steal: map part
    # of the reservation into the guest init task's address space
    init = guest.scheduler.current
    front.map_pool_frames(cpu, init, mapped_frames)
    touched = sorted((task.pid, vaddr, task)
                     for task, vaddr in front._rmap.values())

    mem = machine.memory
    owned0 = len(mem.frames_owned_by(guest.owner_id))
    ledger0 = dom.mem_pages
    controller = ElasticMemoryController(mercury, strategy,
                                         reclaim_step=reclaim_step)
    rounds = 0
    while dom.mem_pages > dom.mem_floor and rounds < 32:
        if not controller.rebalance(cpu):
            break
        rounds += 1
    squeezed = dom.mem_pages
    # conservation: every ballooned-out frame left the guest's owner
    # column exactly as the ledger says (host free pool or re-granted)
    owned_delta = len(mem.frames_owned_by(guest.owner_id)) - owned0
    ledger_delta = dom.mem_pages - ledger0
    conserved = owned_delta == ledger_delta

    # the fault tax: touch everything that was mapped before the squeeze;
    # stolen victims come back as demand-zero minor faults
    faults0 = guest.vmem.minor_faults
    for _pid, vaddr, task in touched:
        guest.vmem.access(cpu, task, vaddr, write=True)
    victim_faults = guest.vmem.minor_faults - faults0

    # re-grow under synthetic pressure — identical for both strategies,
    # so their final sizes must agree
    grower = ElasticMemoryController(mercury, strategy,
                                     pressure_fn=lambda owner: 1)
    for _ in range(grant_rounds):
        grower.rebalance(cpu)

    squeeze_summary = controller.summary()
    return {
        "strategy": strategy,
        "start_pages": ledger0,
        "squeezed_pages": squeezed,
        "final_pages": dom.mem_pages,
        "floor": dom.mem_floor,
        "rounds": rounds,
        "pages_reclaimed": squeeze_summary["pages_reclaimed"],
        "pages_granted": grower.summary()["pages_granted"],
        "reclaim_latency_cycles_p50":
            squeeze_summary["reclaim_latency_cycles_p50"],
        "reclaim_latency_cycles_max":
            squeeze_summary["reclaim_latency_cycles_max"],
        "victim_unmaps": front.victim_unmaps,
        "victim_faults": victim_faults,
        "conservation_ok": conserved,
        "decisions": [list(d) for d in controller.log + grower.log],
    }


def run_elasticity(churn_rates: tuple = CHURN_RATES, *, workers: int = 8,
                   mem_kb: int = 16384) -> ElasticityResult:
    """The full bench: drift sweep plus both ablation arms."""
    freq = MachineConfig().cost.freq_mhz
    result = ElasticityResult(freq_mhz=freq, churn_rates=tuple(churn_rates))
    for churn in churn_rates:
        entry = measure_drift_point(churn, workers=workers, mem_kb=mem_kb)
        result.drift.append(entry)
        result.lines.append(
            f"drift churn={churn} attach_us={entry['attach_us']} "
            f"marks={entry['balloon_marks']} "
            f"revalidated={entry['roots_revalidated']} "
            f"reattach_us={entry['reattach_us']}")
    for strategy in STRATEGIES:
        abl = run_ablation(strategy, mem_kb=mem_kb)
        result.ablation[strategy] = abl
        result.conservation_ok &= abl["conservation_ok"]
        for rnd, op, owner, moved in abl["decisions"]:
            result.lines.append(
                f"ablation {strategy} round={rnd} {op} dom={owner} "
                f"pages={moved}")
        result.lines.append(
            f"ablation {strategy} final={abl['final_pages']} "
            f"victim_faults={abl['victim_faults']} "
            f"reclaim_p50={abl['reclaim_latency_cycles_p50']}")
    return result
