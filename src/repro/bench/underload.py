"""Switch-under-load: attach/detach storms against live workloads.

The §7.4 idle-switch numbers measure the pipeline; this scenario measures
the *protocol*: kbuild and iperf run under the simulation scheduler while a
storm task lands attach/detach requests at awkward instants.  Requests that
arrive inside a sensitive-code window observe a nonzero VO refcount
(§5.1.1), arm the 10 ms backoff timer, and commit on a later delivery —
so contended switch latency is dominated by retry periods, not transfer
work, exactly as the paper's design predicts.

Everything here is deterministic: the same parameters produce bit-identical
traces and metrics (the ``sched-determinism`` CI job runs the scenario
twice and diffs :meth:`UnderLoadResult.canonical_output`).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Generator, Iterable, TYPE_CHECKING

from repro import trace
from repro.bench.configs import build_config
from repro.core.switch import Direction
from repro.metrics import MetricsCollector
from repro.params import MachineConfig
from repro.sim import (FleetNode, ShardedSim, SimScheduler, Sleep,
                       SleepUntil, WaitFor)
from repro.sim.pool import DEFAULT_WINDOW_CYCLES, FleetResult
from repro.workloads.iperf import iperf_task
from repro.workloads.kbuild import kbuild_task

if TYPE_CHECKING:
    from repro.core.mercury import Mercury


@dataclass
class UnderLoadResult:
    """One storm run: contended latencies plus the engine's accounting."""

    rounds: int
    freq_mhz: int
    #: request-to-commit cycles per attach/detach, retries included
    attach_latency_cycles: list = field(default_factory=list)
    detach_latency_cycles: list = field(default_factory=list)
    busy_attempts: int = 0
    aborts: int = 0
    records: int = 0
    retry_histogram: dict = field(default_factory=dict)
    per_switch_retries: list = field(default_factory=list)
    kbuild_elapsed_us: float = 0.0
    iperf_mbit_s: float = 0.0
    final_cycles: int = 0
    canonical_trace: list = field(default_factory=list)
    #: raw trace events (not part of the canonical/determinism contract)
    trace_events: list = field(default_factory=list, repr=False)

    def _us(self, cycles: Iterable[int]) -> list:
        return [round(c / self.freq_mhz, 3) for c in cycles]

    @property
    def attach_latency_us(self) -> list:
        return self._us(self.attach_latency_cycles)

    @property
    def detach_latency_us(self) -> list:
        return self._us(self.detach_latency_cycles)

    def summary(self) -> dict:
        """JSON-able, cycle-exact summary (determinism-diff friendly)."""
        return {
            "rounds": self.rounds,
            "records": self.records,
            "busy_attempts": self.busy_attempts,
            "aborts": self.aborts,
            "retry_histogram": {str(k): v for k, v in
                                sorted(self.retry_histogram.items())},
            "per_switch_retries": self.per_switch_retries,
            "attach_latency_cycles": self.attach_latency_cycles,
            "detach_latency_cycles": self.detach_latency_cycles,
            "kbuild_elapsed_us": round(self.kbuild_elapsed_us, 3),
            "iperf_mbit_s": round(self.iperf_mbit_s, 3),
            "final_cycles": self.final_cycles,
        }

    def canonical_output(self) -> str:
        """The determinism contract: metrics + canonicalized trace, every
        byte a pure function of the scenario parameters."""
        return (json.dumps(self.summary(), indent=1, sort_keys=True)
                + "\n" + "\n".join(self.canonical_trace) + "\n")


def switch_storm_task(mercury: "Mercury", rounds: int,
                      gaps_cycles: list,
                      out: UnderLoadResult) -> Generator:
    """Alternate attach/detach requests separated by ``gaps_cycles``
    (cycled), recording request-to-commit latency for each."""
    engine = mercury.engine
    clock = mercury.machine.clock
    for r in range(rounds):
        for direction, lat in (
                (Direction.TO_VIRTUAL, out.attach_latency_cycles),
                (Direction.TO_NATIVE, out.detach_latency_cycles)):
            yield Sleep(gaps_cycles[(r + len(lat)) % len(gaps_cycles)])
            before = len(engine.records)
            t0 = clock.cycles
            engine.request_async(direction)
            yield WaitFor(lambda n=before: len(engine.records) > n,
                          desc=f"commit {direction.value}")
            lat.append(clock.cycles - t0)


def run_switch_under_load(files: int = 10,
                          iperf_bytes: int = 1024 * 1024,
                          rounds: int = 5,
                          num_cpus: int = 2,
                          mem_kb: int = 262_144,
                          max_retries: int = 64,
                          gaps_ms: tuple = (7.0, 3.0, 11.0, 5.0)
                          ) -> UnderLoadResult:
    """Run kbuild + iperf under the simulation scheduler with a storm of
    ``rounds`` attach/detach cycles landing between/inside their slices."""
    config = dataclasses.replace(MachineConfig(),
                                 mem_kb=mem_kb).with_cpus(num_cpus)
    sut = build_config("M-N", config)
    mercury = sut.mercury
    engine = mercury.engine
    # the storm must outlast workload-induced busy windows, never abort
    engine.max_retries = max_retries
    machine = sut.machine
    freq = machine.clock.freq_mhz
    work_cpu = machine.cpus[1] if num_cpus > 1 else machine.boot_cpu

    result = UnderLoadResult(rounds=rounds, freq_mhz=freq)
    gaps_cycles = [int(ms * 1000 * freq) for ms in gaps_ms]

    sched = SimScheduler(machine)
    tracer = trace.Tracer(machine.clock)
    with trace.tracing(tracer):
        kbuild = sched.spawn(
            kbuild_task(sut.kernel, work_cpu, files=files),
            name="kbuild", cpu=work_cpu, kernel=sut.kernel)
        iperf = sched.spawn(
            iperf_task(sut.kernel, sut.peer_kernel, "tcp", iperf_bytes),
            name="iperf", cpu=machine.boot_cpu, kernel=sut.kernel)
        sched.spawn(
            switch_storm_task(mercury, rounds, gaps_cycles, result),
            name="switch-storm", cpu=machine.boot_cpu)
        sched.run()
    events = tracer.events()
    problems = trace.validate(events, dropped=tracer.dropped)
    if problems:
        raise AssertionError(f"malformed under-load trace: {problems[:3]}")

    result.busy_attempts = engine.failed_attempts
    result.aborts = engine.switch_aborts
    result.records = len(engine.records)
    result.retry_histogram = dict(engine.retry_histogram)
    result.per_switch_retries = [r.retries for r in engine.records]
    result.kbuild_elapsed_us = kbuild.result.elapsed_us
    result.iperf_mbit_s = iperf.result.mbit_s
    result.final_cycles = machine.clock.cycles
    result.canonical_trace = trace.canonical_lines(events)
    result.trace_events = events
    return result


# ---------------------------------------------------------------------------
# the fleet scenario: N storm machines under the sharded simulation
# ---------------------------------------------------------------------------

class UnderLoadNode(FleetNode):
    """One fleet machine running the under-load scenario, plus a
    drift-free heartbeat ring: machine ``i`` posts a beat to machine
    ``(i+1) % fleet`` on a fixed cycle grid (``SleepUntil`` keeps the
    cadence independent of how long kbuild slices run), so the fleet
    exercises real cross-shard traffic while every box storms its own
    switch engine."""

    def __init__(self, index: int, seed: int, fleet_size: int = 3,
                 files: int = 3, iperf_bytes: int = 256 * 1024,
                 rounds: int = 2, num_cpus: int = 2,
                 mem_kb: int = 262_144, beats: int = 4,
                 beat_period: int = 3_000_000):
        config = dataclasses.replace(MachineConfig(),
                                     mem_kb=mem_kb).with_cpus(num_cpus)
        self.sut = build_config("M-N", config)
        super().__init__(index, self.sut.machine)
        self.fleet_size = fleet_size
        self.mercury = self.sut.mercury
        self.mercury.engine.max_retries = 64
        self.heartbeats_seen = 0
        freq = self.machine.clock.freq_mhz
        # stagger each machine's storm gaps by index so shards genuinely
        # desynchronize (same work, different local timing)
        gaps_ms = (7.0 + index, 3.0 + index, 11.0, 5.0)
        gaps_cycles = [int(ms * 1000 * freq) for ms in gaps_ms]
        work_cpu = (self.machine.cpus[1] if num_cpus > 1
                    else self.machine.boot_cpu)
        self.load = UnderLoadResult(rounds=rounds, freq_mhz=freq)
        self._kbuild = self.spawn_traced(
            kbuild_task(self.sut.kernel, work_cpu, files=files),
            name="kbuild", cpu=work_cpu, kernel=self.sut.kernel)
        self._iperf = self.spawn_traced(
            iperf_task(self.sut.kernel, self.sut.peer_kernel, "tcp",
                       iperf_bytes),
            name="iperf", cpu=self.machine.boot_cpu, kernel=self.sut.kernel)
        self.spawn_traced(
            switch_storm_task(self.mercury, rounds, gaps_cycles, self.load),
            name="switch-storm", cpu=self.machine.boot_cpu)
        self.spawn_traced(self._heartbeat(beats, beat_period),
                          name="heartbeat", cpu=self.machine.boot_cpu)

    def _heartbeat(self, beats: int, period: int) -> Generator:
        for beat in range(1, beats + 1):
            yield SleepUntil(beat * period)
            self.post((self.index + 1) % self.fleet_size, "heartbeat",
                      payload=beat)

    def on_message(self, msg) -> None:
        super().on_message(msg)
        if msg.kind == "heartbeat":
            self.heartbeats_seen += 1

    def collector(self) -> MetricsCollector:
        return MetricsCollector(self.machine, kernel=self.sut.kernel,
                                mercury=self.mercury)

    def result(self) -> dict:
        engine = self.mercury.engine
        out = super().result()
        out.update({
            "records": len(engine.records),
            "busy_attempts": engine.failed_attempts,
            "aborts": engine.switch_aborts,
            "per_switch_retries": [r.retries for r in engine.records],
            "attach_latency_cycles": self.load.attach_latency_cycles,
            "detach_latency_cycles": self.load.detach_latency_cycles,
            "kbuild_elapsed_us": round(
                self._kbuild.result.elapsed_us, 3),
            "iperf_mbit_s": round(self._iperf.result.mbit_s, 3),
            "heartbeats_seen": self.heartbeats_seen,
        })
        return out


def build_underload_node(index: int, seed: int,
                         **kwargs) -> UnderLoadNode:
    """Module-level builder for :class:`~repro.sim.pool.ShardedSim`
    (worker processes import it by reference)."""
    return UnderLoadNode(index, seed, **kwargs)


def run_fleet_under_load(machines: int = 3, workers: int = 1, *,
                         seed: int = 0, rounds: int = 2, files: int = 3,
                         iperf_bytes: int = 256 * 1024, beats: int = 4,
                         window_cycles: int = DEFAULT_WINDOW_CYCLES,
                         transport: str = None) -> FleetResult:
    """The sharded-simulation flagship scenario: ``machines`` under-load
    boxes in a heartbeat ring, partitioned across ``workers`` shards.
    ``FleetResult.canonical_output()`` is byte-identical at every worker
    count and transport."""
    sim = ShardedSim(
        build_underload_node, machines, seed=seed, workers=workers,
        window_cycles=window_cycles, transport=transport,
        builder_kwargs={"fleet_size": machines, "rounds": rounds,
                        "files": files, "iperf_bytes": iperf_bytes,
                        "beats": beats})
    return sim.run()
