"""Streaming request-latency histogram with percentile readout.

The fleet layer logs one latency sample per completed request.  Keeping
every sample would make 100-machine runs carry megabytes of state across
process boundaries, so samples stream into a log-bucketed histogram:
values are rounded down to :data:`SIG_BITS` significant bits, bounding
the relative error of any percentile readout at ``2**-(SIG_BITS-1)``
(< 1.6%) while the bucket table stays a few dozen integer keys.

Everything is integer arithmetic on cycle counts — no floats touch the
bucket keys — so a histogram is a pure function of the recorded samples
and two histograms merge by key-wise addition.  That makes the bucket
dict safe to carry through :meth:`repro.metrics.MetricsSnapshot.merge`:
merging per-shard snapshots of disjoint machines is associative,
commutative, and partition-invariant (property-tested in
``tests/integration/test_metrics_merge.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

#: significant bits kept per sample; a sample sits at most one bucket
#: width (2**-(SIG_BITS-1) of its magnitude, < 1.6%) above its bucket
SIG_BITS = 7

#: the percentiles the fleet benches report, as (label, fraction)
PERCENTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99),
               ("p999", 0.999))


def bucket_of(value: int) -> int:
    """Round ``value`` down to :data:`SIG_BITS` significant bits.

    The result is the bucket's representative (its lower bound), so
    percentile readouts are conservative-low by at most 1.6%."""
    v = int(value)
    if v <= 0:
        return 0
    shift = v.bit_length() - SIG_BITS
    if shift <= 0:
        return v
    return (v >> shift) << shift


@dataclass
class LatencyHistogram:
    """Log-bucketed counts plus exact count/total for local reporting."""

    buckets: Dict[int, int] = field(default_factory=dict)
    count: int = 0
    #: exact sum of recorded samples (cycle-exact mean when unmerged)
    total: int = 0

    def record(self, value: int) -> None:
        key = bucket_of(value)
        self.buckets[key] = self.buckets.get(key, 0) + 1
        self.count += 1
        self.total += int(value)

    @classmethod
    def from_counts(cls, buckets: Dict[int, int]) -> "LatencyHistogram":
        """Rebuild from a bucket table (e.g. a merged snapshot's
        ``latency_histogram``).  ``total`` is then the bucket-floor
        approximation, consistent with the percentile readouts."""
        clean = {int(k): int(v) for k, v in buckets.items() if v}
        return cls(buckets=clean,
                   count=sum(clean.values()),
                   total=sum(k * v for k, v in clean.items()))

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        out = LatencyHistogram(buckets=dict(self.buckets),
                               count=self.count + other.count,
                               total=self.total + other.total)
        for key, n in other.buckets.items():
            out.buckets[key] = out.buckets.get(key, 0) + n
        return out

    @classmethod
    def merge_all(cls, hists: Iterable["LatencyHistogram"]
                  ) -> "LatencyHistogram":
        out = cls()
        for hist in hists:
            out = out.merge(hist)
        return out

    # -- readout ---------------------------------------------------------

    def percentile(self, q: float) -> Optional[int]:
        """Smallest bucket value covering fraction ``q`` of the samples
        (None on an empty histogram)."""
        if not self.count:
            return None
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for key in sorted(self.buckets):
            seen += self.buckets[key]
            if seen >= rank:
                return key
        return max(self.buckets)  # pragma: no cover - rank <= count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def max_bucket(self) -> int:
        return max(self.buckets) if self.buckets else 0

    def summary(self, freq_mhz: int = 0) -> dict:
        """JSON-able percentile table in cycles (and µs when ``freq_mhz``
        is given).  Deterministic: integer buckets, rounded floats only in
        the µs convenience columns."""
        out: dict = {"count": self.count}
        for label, q in PERCENTILES:
            out[f"{label}_cycles"] = self.percentile(q)
        out["max_cycles"] = self.max_bucket if self.count else None
        if freq_mhz:
            for label, _ in PERCENTILES:
                cyc = out[f"{label}_cycles"]
                out[f"{label}_us"] = (None if cyc is None
                                      else round(cyc / freq_mhz, 3))
        return out
