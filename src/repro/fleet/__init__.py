"""Fleet-scale open-loop traffic over the sharded deterministic sim.

The paper evaluates Mercury one machine at a time; a datacenter runs it
as a *fleet operation*: a front-of-fleet balancer keeps routing an
open-loop arrival stream while a wave of machines drains, switches
modes, and rejoins.  This package provides the three pieces —

- :mod:`repro.fleet.traffic` — seeded Poisson / bounded-Pareto open-loop
  arrival and service-demand schedules,
- :mod:`repro.fleet.balancer` — round-robin / least-outstanding /
  switch-aware routing with drain, spare, and failure states,
- :mod:`repro.fleet.latency` — streaming log-bucketed latency histogram
  with p50/p95/p99/p999 readout, mergeable across shard snapshots,

and runs the paper's §6 scenarios over them via
:class:`~repro.fleet.orchestrator.FleetOrchestrator`
(:mod:`repro.fleet.node` holds the frontend/service machine logic).
Everything rides the conservative-window determinism contract of
:mod:`repro.sim.pool`: ``workers=k`` fleet output is byte-identical to
``workers=1``.
"""

from repro.fleet.balancer import (LoadBalancer, MachineState,
                                  NoRoutableMachine, POLICIES)
from repro.fleet.latency import (LatencyHistogram, PERCENTILES, SIG_BITS,
                                 bucket_of)
from repro.fleet.node import PHASES, FrontendNode, ServiceNode
from repro.fleet.orchestrator import (SCENARIOS, FleetOpResult,
                                      FleetOrchestrator, build_fleet_node,
                                      degradation_ratio,
                                      fleet_latency_histogram, run_fleet)
from repro.fleet.traffic import (ARRIVALS, OpenLoopTraffic, TrafficSpec,
                                 arrival_stats)

__all__ = [
    "LoadBalancer", "MachineState", "NoRoutableMachine", "POLICIES",
    "LatencyHistogram", "PERCENTILES", "SIG_BITS", "bucket_of",
    "PHASES", "FrontendNode", "ServiceNode",
    "SCENARIOS", "FleetOpResult", "FleetOrchestrator", "build_fleet_node",
    "degradation_ratio", "fleet_latency_histogram", "run_fleet",
    "ARRIVALS", "OpenLoopTraffic", "TrafficSpec", "arrival_stats",
]
