"""Fleet orchestration: the paper's §6 scenarios as fleet operations.

:class:`FleetOrchestrator` wires the open-loop traffic generator, the
load balancer, and the per-machine Mercury scenario mechanics into one
:class:`~repro.sim.pool.ShardedSim` run: machine 0 is the
:class:`~repro.fleet.node.FrontendNode`, machines 1..N are
:class:`~repro.fleet.node.ServiceNode`\\ s, and the whole fleet advances
under conservative time-window barriers so ``workers=k`` output is
byte-identical to ``workers=1``.

Scenarios (all run *under live open-loop traffic*, which is the point —
the paper's §6 numbers are per-machine; here they become fleet
operations whose cost shows up in the request tail):

- ``liveupdate`` — §6.4 rolling live kernel update: every serving
  machine, one at a time, drains, transiently attaches the VMM, applies
  a :class:`~repro.scenarios.liveupdate.KernelPatch`, detaches, rejoins.
- ``maintenance`` — §6.3 predictive maintenance: failure-predicted
  machines full-virtualize, migrate their execution environment to a
  healthy peer, get serviced, migrate back, detach.
- ``cluster`` — §6.5 cluster availability: predicted-failure machines
  evacuate one-way to promoted spares while chaos VMM faults strike
  other machines mid-wave and are detected/recovered in place.

The :class:`FleetOpResult` wraps the pool's
:class:`~repro.sim.pool.FleetResult` with the frontend's percentile
report and a scenario-level summary; ``canonical_output()`` stays the
byte-identity surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.fleet.balancer import POLICIES
from repro.fleet.latency import LatencyHistogram
from repro.fleet.node import FrontendNode, ServiceNode
from repro.fleet.traffic import ARRIVALS
from repro.sim import DEFAULT_WINDOW_CYCLES, FleetResult, ShardedSim
from repro.vmm.elastic import STRATEGIES as ELASTIC_STRATEGIES

SCENARIOS = ("liveupdate", "maintenance", "cluster")


def build_fleet_node(index: int, seed: int, **kwargs):
    """Module-level node builder (worker processes import it by name):
    machine 0 is the frontend, the rest serve."""
    if index == 0:
        return FrontendNode(index, seed, **kwargs)
    service = dict(kwargs)
    service["trace_capacity"] = kwargs.get("service_trace_capacity", 4096)
    return ServiceNode(index, seed, **service)


@dataclass
class FleetOpResult:
    """One fleet operation, reported."""

    scenario: str
    machines: int
    workers: int
    seed: int
    fleet: FleetResult
    #: the frontend's ``result()`` dict (requests, percentiles, wave log)
    frontend: dict = field(default_factory=dict)

    def canonical_output(self) -> str:
        return self.fleet.canonical_output()

    @property
    def percentiles(self) -> dict:
        return self.frontend["percentiles"]

    def summary(self) -> dict:
        """The numbers the bench harness and CLI print."""
        served = sum(r.get("served", 0)
                     for i, r in self.fleet.node_results.items() if i != 0)
        servers = [r for i, r in self.fleet.node_results.items() if i != 0]
        guest_extra = {}
        if any(r.get("guest_domains") for r in servers):
            guest_extra = {
                "guest_domains": sum(r.get("guest_domains", 0)
                                     for r in servers),
                "guest_served": sum(sum(r.get("guest_served", {}).values())
                                    for r in servers),
                "floor_skips": sum(r.get("floor_skips", 0)
                                   for r in servers),
            }
        return {
            **guest_extra,
            "scenario": self.scenario,
            "machines": self.machines,
            "workers": self.workers,
            "seed": self.seed,
            "windows": self.fleet.windows,
            "messages": self.fleet.messages,
            "requests": self.frontend["requests"],
            "dispatched": self.frontend["dispatched"],
            "completed": self.frontend["completed"],
            "served": served,
            "forced_dispatches": self.frontend["forced_dispatches"],
            "wave_cycles": (self.frontend["wave_end_cycle"]
                            - self.frontend["wave_start_cycle"]),
            "percentiles": self.percentiles,
        }


class FleetOrchestrator:
    """Configure and run one §6 scenario over an open-loop fleet."""

    def __init__(self, *, machines: int = 100, workers: int = 1,
                 seed: int = 0, scenario: str = "liveupdate",
                 policy: str = "switch-aware",
                 arrival: str = "poisson",
                 requests: Optional[int] = None,
                 mean_gap_cycles: int = 45_000,
                 mean_service_cycles: int = 300_000,
                 wave_after_completions: Optional[int] = None,
                 spares: Optional[int] = None,
                 evacuations: int = 2,
                 chaos_events: int = 2,
                 maintain_count: int = 3,
                 state_pages: int = 64,
                 guest_domains: int = 0,
                 guest_mem_pages: int = 48,
                 guest_mem_floor: int = 16,
                 elastic_strategy: str = "guest-delegated",
                 window_cycles: int = DEFAULT_WINDOW_CYCLES,
                 transport: Optional[str] = None,
                 log_requests: bool = False,
                 max_windows: int = 100_000):
        if elastic_strategy not in ELASTIC_STRATEGIES:
            raise ValueError(f"unknown elastic strategy {elastic_strategy!r};"
                             f" expected one of {ELASTIC_STRATEGIES}")
        if scenario not in SCENARIOS:
            raise ValueError(f"unknown scenario {scenario!r}; "
                             f"expected one of {SCENARIOS}")
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; "
                             f"expected one of {POLICIES}")
        if arrival not in ARRIVALS:
            raise ValueError(f"unknown arrival {arrival!r}; "
                             f"expected one of {ARRIVALS}")
        if machines < 2:
            raise ValueError("a fleet needs at least two service machines")
        self.machines = machines
        self.workers = workers
        self.seed = seed
        self.scenario = scenario
        self.transport = transport
        self.window_cycles = window_cycles
        self.max_windows = max_windows
        if requests is None:
            # enough load that every machine sees the wave from steady
            # state: ~8 requests per machine per phase
            requests = max(200, machines * 24)
        if spares is None:
            spares = evacuations if scenario == "cluster" else 0
        self.builder_kwargs = {
            "machines": machines,
            "scenario": scenario,
            "policy": policy,
            "arrival": arrival,
            "requests": requests,
            "mean_gap_cycles": mean_gap_cycles,
            "mean_service_cycles": mean_service_cycles,
            "wave_after_completions": wave_after_completions,
            "spares": spares,
            "evacuations": evacuations,
            "chaos_events": chaos_events,
            "maintain_count": maintain_count,
            "state_pages": state_pages,
            "guest_domains": guest_domains,
            "guest_mem_pages": guest_mem_pages,
            "guest_mem_floor": guest_mem_floor,
            "elastic_strategy": elastic_strategy,
            "log_requests": log_requests,
        }

    def run(self) -> FleetOpResult:
        sim = ShardedSim(build_fleet_node,
                         num_machines=self.machines + 1,  # + frontend
                         seed=self.seed, workers=self.workers,
                         window_cycles=self.window_cycles,
                         transport=self.transport,
                         builder_kwargs=self.builder_kwargs,
                         max_windows=self.max_windows)
        fleet = sim.run()
        return FleetOpResult(scenario=self.scenario, machines=self.machines,
                             workers=self.workers, seed=self.seed,
                             fleet=fleet,
                             frontend=fleet.node_results[0])


def run_fleet(**kwargs) -> FleetOpResult:
    """One-call convenience wrapper (the CLI and benches use it)."""
    return FleetOrchestrator(**kwargs).run()


def degradation_ratio(percentiles: dict, label: str = "p99_cycles"
                      ) -> Optional[float]:
    """How much worse the wave phase's tail is than steady state
    (None when either phase has no samples).  The fleet bench gates
    this at 5x for the rolling update."""
    steady = percentiles["steady"].get(label)
    wave = percentiles["wave"].get(label)
    if not steady or not wave:
        return None
    return wave / steady


def fleet_latency_histogram(result: FleetOpResult) -> LatencyHistogram:
    """Rebuild the fleet-wide histogram from the merged metrics snapshot
    (exercises the ``MetricsSnapshot.merge`` carry path)."""
    return LatencyHistogram.from_counts(result.fleet.metrics.latency_histogram)
