"""Fleet nodes: the service machines and the front-of-fleet frontend.

One :class:`FrontendNode` (machine index 0) generates the open-loop
arrival stream, routes every request through a
:class:`~repro.fleet.balancer.LoadBalancer`, runs the scenario's *wave*
(rolling live update, predictive maintenance, or cluster availability),
and folds each completed request's latency into per-phase streaming
histograms.  ``machines`` :class:`ServiceNode`\\ s (indices 1..N) each own
a full Machine + Mercury + kernel stack and serve requests under the
deterministic simulation scheduler.

Requests, responses, and every control exchange are cross-machine
:class:`~repro.sim.shard.FleetMessage`\\ s, so the conservative-window
determinism contract of :mod:`repro.sim.pool` applies unchanged: a
``workers=k`` fleet run is byte-identical to ``workers=1``.

Message vocabulary::

    req            frontend -> server   (req_id, service_cycles)
    rsp            server  -> frontend  req_id
    ctl.update     frontend -> server   wave ordinal (rolling live update)
    ctl.updated    server  -> frontend  (index, attach_us, detach_us)
    ctl.maintain   frontend -> server   (spare, pages, maintenance_cycles)
    ctl.maintained server  -> frontend  index
    ctl.evacuate   frontend -> server   (spare, pages)
    ctl.evacuated  server  -> frontend  index
    chaos.inject   frontend -> server   (site, variant)
    chaos.recovered server -> frontend  (index, site, detected, mttr)
    mig.state      server  -> spare     (src, pages)   migration stream
    mig.ack        spare   -> server    src
    mig.back-req   server  -> spare     src
    mig.back       spare   -> server    (src, pages)
    ctl.shutdown   frontend -> server   —

The per-machine mechanics reuse the single-machine §6 scenario modules:
the rolling update applies a real :class:`~repro.scenarios.liveupdate.
KernelPatch` through :class:`~repro.scenarios.liveupdate.LiveUpdater`;
maintenance and evacuation charge the live-migration stream costs of
:mod:`repro.scenarios.migration`; chaos rides
:func:`repro.faults.inject_vmm_fault`, the VMI
:class:`~repro.watchdog.Watchdog`, and the ReHype-style
:class:`~repro.core.recovery.RecoveryManager`.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Generator, Optional

from repro import faults
from repro.core.mercury import Mercury, Mode
from repro.core.recovery import RecoveryManager
from repro.fleet.balancer import LoadBalancer, MachineState, NoRoutableMachine
from repro.vmm.elastic import ElasticMemoryController
from repro.fleet.latency import LatencyHistogram
from repro.fleet.traffic import OpenLoopTraffic, TrafficSpec
from repro.hw.machine import Machine
from repro.metrics import MetricsCollector
from repro.params import MachineConfig
from repro.scenarios.liveupdate import KernelPatch, LiveUpdater
from repro.scenarios.cluster import HardwareMonitor
from repro.scenarios.migration import CYC_SEND_PER_PAGE, WIRE_NS_PER_PAGE
from repro.sim import FleetNode, Sleep, SleepUntil, WaitFor, Yield
from repro.watchdog import Watchdog

#: the measurement phases the percentile report distinguishes
PHASES = ("steady", "wave", "after")

#: partial-virtual service tax: an attached VMM costs ~10% on the request
#: path (the paper's fig. 3 band for syscall-heavy work)
VIRT_TAX_SHIFT = 3  # svc += svc >> 3 would be 12.5%; we use //10 below

#: chaos detection scan cadence inside a service node (1 ms at 3 GHz)
CHAOS_SCAN_INTERVAL = 3_000_000
CHAOS_MAX_SCANS = 12

#: VMM fault sites injectable on a bare attached stack (the remaining
#: catalogue sites need hosted-guest state — channels, grants, backends —
#: that a drained fleet machine does not carry; the chaos *campaign*
#: covers those, see :mod:`repro.bench.chaoscampaign`)
CHAOS_SITES = (faults.VMM_PAGEINFO_CORRUPT, faults.VMM_REFCOUNT_RUNAWAY,
               faults.VMM_TRAP_VECTOR_DROPPED)


def _patched_getpid(kernel, cpu, task):
    """The rolling update's payload: the classic pid-offset live patch."""
    return task.pid + 1000


class ServiceNode(FleetNode):
    """One fleet machine: Mercury stack + request server + control ops."""

    def __init__(self, index: int, seed: int, *,
                 mem_kb: int = 4096, image_pages: int = 16,
                 guest_domains: int = 0, guest_image_pages: int = 8,
                 guest_mem_pages: int = 48, guest_mem_floor: int = 16,
                 elastic_strategy: str = "guest-delegated",
                 elastic_every: int = 8,
                 trace_capacity: int = 4096, **_ignored):
        machine = Machine(MachineConfig(num_cpus=1, mem_kb=mem_kb))
        super().__init__(index, machine, trace_capacity=trace_capacity)
        self.mercury = Mercury(machine)
        self.kernel = self.mercury.create_kernel(
            name=f"fleet{index}-linux", image_pages=image_pages)
        self.mercury.engine.max_retries = 64
        self.updater = LiveUpdater(self.mercury)
        self.monitor = HardwareMonitor()

        self._queue: deque = deque()
        self._ctl: deque = deque()
        self.done = False
        self.retired = False
        self.served = 0
        self.updates_applied = 0
        self.maintenances = 0
        self.evacuated = False
        self.chaos_recoveries = 0
        self._mig_ack = False
        self._mig_back = False
        self._hosted_pages: dict = {}

        # guest-domain serving (M-U): the node becomes a standing driver
        # domain hosting ``guest_domains`` ballooned guests; requests are
        # served from the guests, never from one below its memory floor
        self.guests: list = []
        self.elastic: Optional[ElasticMemoryController] = None
        self.elastic_every = max(1, elastic_every)
        self.guest_served: dict[int, int] = {}
        self.floor_skips = 0
        self._rr = 0
        if guest_domains:
            self.mercury.attach(machine.boot_cpu)
            for g in range(guest_domains):
                guest = self.mercury.host_guest(
                    name=f"m{index}g{g}", image_pages=guest_image_pages,
                    mem_pages=guest_mem_pages, mem_floor=guest_mem_floor)
                self.guests.append(guest)
                self.guest_served[guest.owner_id] = 0
            self.elastic = ElasticMemoryController(
                self.mercury, elastic_strategy)

        self.spawn_traced(self._server_task(), name=f"serve{index}",
                          cpu=machine.boot_cpu, kernel=self.kernel)
        self.spawn_traced(self._control_task(), name=f"ctl{index}",
                          cpu=machine.boot_cpu)

    # -- messaging --------------------------------------------------------

    def on_message(self, msg) -> None:
        super().on_message(msg)
        kind = msg.kind
        if kind == "req":
            self._queue.append(msg.payload)
        elif kind == "ctl.shutdown":
            self.done = True
        elif kind == "mig.ack":
            self._mig_ack = True
        elif kind == "mig.back":
            self._mig_back = True
        elif kind in ("ctl.update", "ctl.maintain", "ctl.evacuate",
                      "chaos.inject", "mig.state", "mig.back-req"):
            self._ctl.append((kind, msg.src, msg.payload))

    # -- the request server -----------------------------------------------

    def _server_task(self) -> Generator:
        cpu = self.machine.boot_cpu
        while True:
            yield WaitFor(lambda: self._queue or self.done or self.retired,
                          desc="requests")
            if self._queue:
                req_id, svc = self._queue.popleft()
                if self.mercury.mode is not Mode.NATIVE:
                    svc += svc // 10  # partial-virtual service tax
                server = self._pick_server()
                server.user_compute_cycles(cpu, svc)
                self.served += 1
                if server is not self.kernel:
                    self.guest_served[server.owner_id] += 1
                if (self.elastic is not None
                        and self.served % self.elastic_every == 0):
                    self.elastic.step(cpu)
                self.post(0, "rsp", payload=req_id)
                yield Yield()  # control ops interleave between requests
                continue
            return

    def _pick_server(self):
        """Round-robin over the hosted guest domains, skipping any whose
        reservation sits below its memory floor (a squeezed guest must not
        take traffic until the controller grants it back).  Falls back to
        the bare kernel when no guest is routable."""
        if not self.guests:
            return self.kernel
        doms = self.mercury.vmm.domains
        n = len(self.guests)
        for off in range(n):
            guest = self.guests[(self._rr + off) % n]
            dom = doms.get(guest.owner_id)
            if dom is None or dom.below_floor:
                self.floor_skips += 1
                continue
            self._rr = (self._rr + off + 1) % n
            return guest
        return self.kernel

    # -- control ops ------------------------------------------------------

    def _control_task(self) -> Generator:
        while True:
            yield WaitFor(lambda: self._ctl or self.done, desc="control")
            if self._ctl:
                kind, src, payload = self._ctl.popleft()
                yield from self._run_op(kind, src, payload)
                continue
            return

    def _run_op(self, kind: str, src: int, payload) -> Generator:
        if kind == "ctl.update":
            yield from self._op_update(payload)
        elif kind == "ctl.maintain":
            yield from self._op_maintain(*payload)
        elif kind == "ctl.evacuate":
            yield from self._op_evacuate(*payload)
        elif kind == "chaos.inject":
            yield from self._op_chaos(*payload)
        elif kind == "mig.state":
            yield from self._op_host_state(*payload)
        elif kind == "mig.back-req":
            yield from self._op_return_state(payload)

    def _charge_stream(self, pages: int) -> None:
        """One direction of a live-migration page stream (§6.3/§6.5
        costs, per :mod:`repro.scenarios.migration`)."""
        cpu = self.machine.boot_cpu
        cpu.charge(pages * CYC_SEND_PER_PAGE)
        cpu.charge(pages * int(cpu.cost.cycles_from_ns(WIRE_NS_PER_PAGE)))

    def _op_update(self, ordinal: int) -> Generator:
        """Rolling live kernel update (§6.4): transiently attach, patch,
        detach — the machine was drained, so both switches commit on the
        quiescent fast path."""
        rec = self.updater.apply(KernelPatch(
            f"rolling-{ordinal}", "getpid", _patched_getpid))
        self.updates_applied += 1
        self.post(0, "ctl.updated",
                  payload=(self.index, round(rec.attach_us, 3),
                           round(rec.detach_us, 3)))
        return
        yield  # pragma: no cover - generator marker

    def _op_maintain(self, spare: int, pages: int,
                     maintenance_cycles: int) -> Generator:
        """Predictive hardware maintenance (§6.3): full-virtualize,
        migrate the execution environment to ``spare``, service the
        hardware, migrate back, return to native."""
        self.mercury.full_virtualize()
        self._charge_stream(pages)
        self._mig_ack = False
        self.post(spare, "mig.state", payload=(self.index, pages))
        yield WaitFor(lambda: self._mig_ack, desc="mig.ack")
        self.machine.boot_cpu.charge(maintenance_cycles)
        self.monitor.temperature_c = 45.0  # serviced: prediction clears
        self._mig_back = False
        self.post(spare, "mig.back-req", payload=self.index)
        yield WaitFor(lambda: self._mig_back, desc="mig.back")
        self._charge_stream(pages)
        self.mercury.departial()
        if not self.guests:  # a standing driver domain stays attached
            self.mercury.detach()
        self.maintenances += 1
        self.post(0, "ctl.maintained", payload=self.index)

    def _op_evacuate(self, spare: int, pages: int) -> Generator:
        """Failure-predicted evacuation (§6.5): one-way migration to the
        promoted spare; this machine then takes the predicted failure."""
        self.mercury.full_virtualize()
        self._charge_stream(pages)
        self._mig_ack = False
        self.post(spare, "mig.state", payload=(self.index, pages))
        yield WaitFor(lambda: self._mig_ack, desc="mig.ack")
        self.evacuated = True
        self.retired = True
        self.post(0, "ctl.evacuated", payload=self.index)
        self.done = True

    def _op_host_state(self, src: int, pages: int) -> Generator:
        """Spare side of a migration stream: go partial-virtual to host
        the inbound execution environment, absorb the pages, ack."""
        if self.mercury.mode is Mode.NATIVE:
            self.mercury.attach()
        self._charge_stream(pages)
        self._hosted_pages[src] = pages
        self.post(src, "mig.ack", payload=src)
        return
        yield  # pragma: no cover - generator marker

    def _op_return_state(self, src: int) -> Generator:
        """Spare side of the §6.3 return trip."""
        pages = self._hosted_pages.pop(src, 0)
        self._charge_stream(pages)
        self.post(src, "mig.back", payload=(src, pages))
        if not self._hosted_pages and not self.guests and \
                self.mercury.mode is Mode.PARTIAL_VIRTUAL:
            self.mercury.detach()  # nobody hosted: back to full speed
        return
        yield  # pragma: no cover - generator marker

    def _op_chaos(self, site: str, variant: int) -> Generator:
        """Chaos fault under load: attach, corrupt one VMM structure,
        let the VMI watchdog detect it, microreboot, return to native —
        while the server task keeps serving between scans."""
        clock = self.machine.clock
        if self.mercury.mode is Mode.NATIVE:
            self.mercury.attach()
        watchdog = Watchdog(self.mercury, suspect_scans=2)
        manager = RecoveryManager(self.mercury, watchdog)
        faults.inject_vmm_fault(site, self.mercury, variant=variant)
        self.faults_injected += 1
        injected_at = clock.cycles
        verdict = None
        detected_at = -1
        for _ in range(CHAOS_MAX_SCANS):
            yield Sleep(CHAOS_SCAN_INTERVAL)
            verdict = watchdog.scan(self.machine.boot_cpu)
            if verdict is not None:
                detected_at = clock.cycles
                break
        detected = verdict is not None
        mttr = -1
        if detected:
            record = manager.recover(verdict, cpu=self.machine.boot_cpu)
            mttr = clock.cycles - detected_at
            self.chaos_recoveries += int(bool(record and record.success))
        if self.mercury.mode is not Mode.NATIVE and not self.guests:
            self.mercury.detach()
        self.post(0, "chaos.recovered",
                  payload=(self.index, site, detected, mttr,
                           clock.cycles - injected_at))

    # -- reporting --------------------------------------------------------

    def collector(self) -> MetricsCollector:
        return MetricsCollector(self.machine, kernel=self.kernel,
                                mercury=self.mercury)

    def result(self) -> dict:
        out = super().result()
        out.update({
            "served": self.served,
            "queued_residual": len(self._queue),
            "updates_applied": self.updates_applied,
            "maintenances": self.maintenances,
            "evacuated": self.evacuated,
            "chaos_recoveries": self.chaos_recoveries,
            "mode": self.mercury.mode.value,
            "mode_switches": len(self.mercury.switch_records),
        })
        if self.guests:
            doms = self.mercury.vmm.domains
            out.update({
                "guest_domains": len(self.guests),
                "guest_served": {g.owner_id: self.guest_served[g.owner_id]
                                 for g in self.guests},
                "guest_mem_pages": {
                    g.owner_id: doms[g.owner_id].mem_pages
                    for g in self.guests if g.owner_id in doms},
                "floor_skips": self.floor_skips,
                "elastic": self.elastic.summary(),
            })
        return out


class FrontendNode(FleetNode):
    """Front of fleet: traffic source, balancer, wave orchestration, and
    the per-request latency log."""

    def __init__(self, index: int, seed: int, *,
                 machines: int, scenario: str = "liveupdate",
                 policy: str = "switch-aware",
                 arrival: str = "poisson",
                 requests: int = 400,
                 mean_gap_cycles: int = 45_000,
                 mean_service_cycles: int = 300_000,
                 wave_after_completions: Optional[int] = None,
                 spares: int = 0,
                 evacuations: int = 0,
                 chaos_events: int = 0,
                 maintain_count: int = 0,
                 state_pages: int = 64,
                 maintenance_cycles: int = 3_000_000,
                 log_requests: bool = False,
                 trace_capacity: int = 65536,
                 **_ignored):
        machine = Machine(MachineConfig(num_cpus=1, mem_kb=1024))
        super().__init__(index, machine, trace_capacity=trace_capacity)
        if machines < 2:
            raise ValueError("a fleet needs at least two service machines")
        self.scenario = scenario
        self.num_machines = machines
        server_indices = range(1, machines + 1)
        spare_indices = list(range(machines - spares + 1, machines + 1))
        self.balancer = LoadBalancer(server_indices, policy=policy,
                                     spares=spare_indices)
        self.traffic = OpenLoopTraffic(
            TrafficSpec(kind=arrival, mean_gap_cycles=mean_gap_cycles,
                        mean_service_cycles=mean_service_cycles), seed)
        self.requests = requests
        self.wave_after = (requests // 4 if wave_after_completions is None
                           else wave_after_completions)
        self.state_pages = state_pages
        self.maintenance_cycles = maintenance_cycles
        self.log_requests = log_requests
        self._rng = random.Random(f"fleet-ops:{seed}")

        self.phase = "steady"
        self.hist = {phase: LatencyHistogram() for phase in PHASES}
        self._open: dict = {}          # req_id -> (target, t0, phase)
        self.dispatched = 0
        self.completed = 0
        self.forced_dispatches = 0
        self.request_log: list = []    # (req_id, target, cycle, phase)
        self.drain_log: list = []      # per-machine wave intervals
        self.traffic_done = False
        self.wave_done = False
        self.wave_start_cycle = -1
        self.wave_end_cycle = -1
        self._updated: dict = {}       # index -> (attach_us, detach_us)
        self._maintained: set = set()
        self._evacuated: set = set()
        self.chaos_log: list = []
        self.update_records: list = []

        # scenario-specific wave plan, drawn up-front from the seeded rng
        serving = [i for i in server_indices
                   if i not in set(spare_indices)]
        self._spare_pool = list(spare_indices)
        if scenario == "cluster":
            self._victims = self._rng.sample(
                serving, min(evacuations, len(self._spare_pool),
                             len(serving) - 1))
            chaos_pool = [i for i in serving if i not in self._victims]
            self._chaos_plan = [
                (self._rng.randrange(0, 40_000_000),
                 victim,
                 self._rng.choice(CHAOS_SITES),
                 self._rng.randrange(0, 2))
                for victim in self._rng.sample(
                    chaos_pool, min(chaos_events, len(chaos_pool)))]
        else:
            self._victims = []
            self._chaos_plan = []
        if scenario == "maintenance":
            self._flagged = sorted(self._rng.sample(
                serving, min(maintain_count, len(serving) - 1)))
            for i in self._flagged:
                # the §6.5 sensor bank predicts these machines' failures
                monitor = HardwareMonitor(temperature_c=95.0)
                assert monitor.predicts_failure()
        else:
            self._flagged = []

        self.spawn_traced(self._traffic_task(), name="traffic",
                          cpu=machine.boot_cpu)
        self.spawn_traced(self._wave_task(), name="wave",
                          cpu=machine.boot_cpu)
        self.spawn_traced(self._shutdown_task(), name="shutdown",
                          cpu=machine.boot_cpu)

    # -- messaging --------------------------------------------------------

    def on_message(self, msg) -> None:
        super().on_message(msg)
        kind = msg.kind
        if kind == "rsp":
            req_id = msg.payload
            target, t0, phase = self._open.pop(req_id)
            self.hist[phase].record(self.machine.clock.cycles - t0)
            self.balancer.completed(target)
            self.completed += 1
        elif kind == "ctl.updated":
            index, attach_us, detach_us = msg.payload
            self._updated[index] = (attach_us, detach_us)
            self.update_records.append(msg.payload)
        elif kind == "ctl.maintained":
            self._maintained.add(msg.payload)
        elif kind == "ctl.evacuated":
            self._evacuated.add(msg.payload)
        elif kind == "chaos.recovered":
            self.chaos_log.append(msg.payload)

    # -- traffic ----------------------------------------------------------

    def _traffic_task(self) -> Generator:
        start = self.min_latency  # first arrival after one window
        for req_id, (at, svc) in enumerate(
                self.traffic.schedule(self.requests, start_cycle=start)):
            yield SleepUntil(at)
            try:
                target = self.balancer.pick()
            except NoRoutableMachine:
                # degenerate fleets only (everything switching at once):
                # fall back to the least-loaded non-down machine so the
                # request is never dropped — conservation above latency
                self.forced_dispatches += 1
                candidates = [i for i, st in self.balancer.state.items()
                              if st not in (MachineState.DOWN,
                                            MachineState.SPARE)]
                target = min(candidates,
                             key=lambda i: (self.balancer.outstanding[i], i))
            now = self.machine.clock.cycles
            self.balancer.dispatched(target)
            self._open[req_id] = (target, now, self.phase)
            self.request_log.append((req_id, target, now, self.phase))
            self.dispatched += 1
            self.post(target, "req", payload=(req_id, svc))
        self.traffic_done = True

    # -- the wave ---------------------------------------------------------

    def _wave_task(self) -> Generator:
        yield WaitFor(lambda: self.completed >= self.wave_after,
                      desc="steady-state measured")
        self.phase = "wave"
        self.wave_start_cycle = self.machine.clock.cycles
        if self.scenario == "liveupdate":
            yield from self._rolling_update()
        elif self.scenario == "maintenance":
            yield from self._maintenance_wave()
        elif self.scenario == "cluster":
            yield from self._cluster_wave()
        else:
            raise ValueError(f"unknown scenario {self.scenario!r}")
        self.phase = "after"
        self.wave_end_cycle = self.machine.clock.cycles
        self.wave_done = True

    def _drain(self, index: int) -> Generator:
        """Announce the switch, then wait for in-flight requests to
        bleed off before the machine may leave service."""
        entry = {"machine": index,
                 "drain_at": self.machine.clock.cycles,
                 "switch_at": -1, "ready_at": -1}
        self.drain_log.append(entry)
        self.balancer.mark_draining(index)
        yield WaitFor(lambda: self.balancer.drained(index),
                      desc=f"drain m{index}")
        self.balancer.mark_switching(index)
        entry["switch_at"] = self.machine.clock.cycles
        return entry

    def _rolling_update(self) -> Generator:
        """§6.4 as a fleet operation: one machine at a time leaves
        rotation, applies the kernel patch under a transient VMM, and
        rejoins."""
        for ordinal, index in enumerate(self.balancer.serving_machines()):
            entry = yield from self._drain(index)
            self.post(index, "ctl.update", payload=ordinal)
            yield WaitFor(lambda i=index: i in self._updated,
                          desc=f"update m{index}")
            self.balancer.mark_ready(index)
            entry["ready_at"] = self.machine.clock.cycles

    def _maintenance_wave(self) -> Generator:
        """§6.3 as a fleet operation: every failure-predicted machine
        migrates its execution environment to a healthy peer, is
        serviced, and takes it back."""
        for index in self._flagged:
            entry = yield from self._drain(index)
            peers = [i for i in self.balancer.serving_machines()
                     if i != index
                     and self.balancer.state[i] is MachineState.READY]
            spare = min(peers,
                        key=lambda i: (self.balancer.outstanding[i], i))
            self.post(index, "ctl.maintain",
                      payload=(spare, self.state_pages,
                               self.maintenance_cycles))
            yield WaitFor(lambda i=index: i in self._maintained,
                          desc=f"maintain m{index}")
            self.balancer.mark_ready(index)
            entry["ready_at"] = self.machine.clock.cycles

    def _cluster_wave(self) -> Generator:
        """§6.5 as a fleet operation: predicted failures evacuate to
        promoted spares while chaos faults strike (and are recovered on)
        other machines mid-wave."""
        events = [("chaos", offset, victim, site, variant)
                  for offset, victim, site, variant in self._chaos_plan]
        events += [("evacuate", 8_000_000 * (n + 1), victim, "", 0)
                   for n, victim in enumerate(self._victims)]
        events.sort(key=lambda e: (e[1], e[0], e[2]))
        for kind, offset, victim, site, variant in events:
            yield SleepUntil(self.wave_start_cycle + offset)
            if kind == "chaos":
                self.post(victim, "chaos.inject", payload=(site, variant))
                continue
            entry = yield from self._drain(victim)
            spare = self._spare_pool.pop(0)
            self.post(victim, "ctl.evacuate",
                      payload=(spare, self.state_pages))
            yield WaitFor(lambda i=victim: i in self._evacuated,
                          desc=f"evacuate m{victim}")
            # the predicted failure arrives on the evacuated machine;
            # the promoted spare takes its place in rotation
            self.balancer.mark_down(victim)
            self.balancer.mark_ready(spare)
            entry["ready_at"] = self.machine.clock.cycles
        yield WaitFor(lambda: len(self.chaos_log) >= len(self._chaos_plan),
                      desc="chaos recovered")

    # -- shutdown ---------------------------------------------------------

    def _shutdown_task(self) -> Generator:
        yield WaitFor(lambda: (self.traffic_done and self.wave_done
                               and not self._open),
                      desc="quiescent fleet")
        for index in sorted(self.balancer.state):
            if self.balancer.state[index] is not MachineState.DOWN:
                self.post(index, "ctl.shutdown")

    # -- reporting --------------------------------------------------------

    def snapshot(self):
        snap = super().snapshot()
        snap.latency_histogram = dict(
            LatencyHistogram.merge_all(self.hist.values()).buckets)
        return snap

    def percentiles(self) -> dict:
        freq = self.machine.clock.freq_mhz
        return {phase: self.hist[phase].summary(freq_mhz=freq)
                for phase in PHASES}

    def result(self) -> dict:
        out = super().result()
        out.update({
            "scenario": self.scenario,
            "policy": self.balancer.policy,
            "requests": self.requests,
            "dispatched": self.dispatched,
            "completed": self.completed,
            "in_flight_residual": len(self._open),
            "forced_dispatches": self.forced_dispatches,
            "wave_start_cycle": self.wave_start_cycle,
            "wave_end_cycle": self.wave_end_cycle,
            "updated_machines": sorted(self._updated),
            "maintained_machines": sorted(self._maintained),
            "evacuated_machines": sorted(self._evacuated),
            "chaos_log": sorted(self.chaos_log),
            "drain_log": self.drain_log,
            "percentiles": self.percentiles(),
        })
        if self.log_requests:
            out["request_log"] = self.request_log
        return out
