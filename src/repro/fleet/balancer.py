"""Front-of-fleet load balancing with mode-switch awareness.

The balancer owns the routing view of every service machine: its
lifecycle state, and how many requests it has in flight.  Three policies:

- ``round-robin`` — cyclic over routable machines, ignores queue depth.
- ``least-outstanding`` — fewest in-flight requests wins (ties break on
  the lower machine index, keeping the pick deterministic).
- ``switch-aware`` — least-outstanding, but machines that announced an
  upcoming mode switch (:attr:`MachineState.DRAINING`) are excluded too,
  so their in-flight count bleeds to zero and the switch can start
  immediately.  This is the policy the paper's 0.2 ms switch wants in
  front of it: the wave drains one machine at a time instead of stalling
  requests behind a quiesce.

States and routability:

============  ===========================  =====================
state         meaning                      routable
============  ===========================  =====================
READY         serving                      always
DRAINING      mode switch announced        only non-switch-aware
SWITCHING     switch/update in progress    never
DOWN          failed / retired             never
SPARE         healthy, held in reserve     never (until promoted)
============  ===========================  =====================

Every decision is a pure function of the dispatch/completion history, so
the balancer adds nothing to the fleet's determinism obligations.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List

POLICIES = ("round-robin", "least-outstanding", "switch-aware")


class MachineState(enum.Enum):
    READY = "ready"
    DRAINING = "draining"
    SWITCHING = "switching"
    DOWN = "down"
    SPARE = "spare"


class NoRoutableMachine(RuntimeError):
    """Every machine is draining, switching, down, or held as a spare."""


class LoadBalancer:
    """Routing brain of the fleet frontend."""

    def __init__(self, machines: Iterable[int],
                 policy: str = "switch-aware",
                 spares: Iterable[int] = ()):
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; "
                             f"expected one of {POLICIES}")
        self.policy = policy
        self.state: Dict[int, MachineState] = {}
        self.outstanding: Dict[int, int] = {}
        self.dispatches: Dict[int, int] = {}
        spare_set = set(spares)
        for index in machines:
            self.state[index] = (MachineState.SPARE if index in spare_set
                                 else MachineState.READY)
            self.outstanding[index] = 0
            self.dispatches[index] = 0
        if not self.state:
            raise ValueError("balancer needs at least one machine")
        self._rr_last = -1

    # -- state transitions ------------------------------------------------

    def mark(self, index: int, state: MachineState) -> None:
        if index not in self.state:
            raise KeyError(f"unknown machine {index}")
        self.state[index] = state

    def mark_draining(self, index: int) -> None:
        self.mark(index, MachineState.DRAINING)

    def mark_switching(self, index: int) -> None:
        self.mark(index, MachineState.SWITCHING)

    def mark_ready(self, index: int) -> None:
        self.mark(index, MachineState.READY)

    def mark_down(self, index: int) -> None:
        self.mark(index, MachineState.DOWN)

    # -- bookkeeping ------------------------------------------------------

    def dispatched(self, index: int) -> None:
        self.outstanding[index] += 1
        self.dispatches[index] += 1

    def completed(self, index: int) -> None:
        if self.outstanding[index] <= 0:
            raise RuntimeError(
                f"completion for machine {index} with nothing outstanding")
        self.outstanding[index] -= 1

    def drained(self, index: int) -> bool:
        return self.outstanding[index] == 0

    # -- routing ----------------------------------------------------------

    def _routable(self) -> List[int]:
        allow_draining = self.policy != "switch-aware"
        out = []
        for index in sorted(self.state):
            st = self.state[index]
            if st is MachineState.READY or (
                    allow_draining and st is MachineState.DRAINING):
                out.append(index)
        return out

    def pick(self) -> int:
        """Choose the target for the next request (does not dispatch)."""
        routable = self._routable()
        if not routable:
            raise NoRoutableMachine(
                f"no routable machine under policy {self.policy!r}: "
                + ", ".join(f"{i}={self.state[i].value}"
                            for i in sorted(self.state)))
        if self.policy == "round-robin":
            for index in routable:
                if index > self._rr_last:
                    self._rr_last = index
                    return index
            self._rr_last = routable[0]
            return routable[0]
        # least-outstanding and switch-aware differ only in _routable()
        return min(routable, key=lambda i: (self.outstanding[i], i))

    def serving_machines(self) -> List[int]:
        return [i for i in sorted(self.state)
                if self.state[i] is not MachineState.SPARE
                and self.state[i] is not MachineState.DOWN]

    def spare_machines(self) -> List[int]:
        return [i for i in sorted(self.state)
                if self.state[i] is MachineState.SPARE]
