"""Open-loop traffic generation for the fleet layer.

Closed-loop workloads (kbuild, iperf, …) issue the next request only when
the previous one finishes; they can never expose queueing collapse.  The
fleet scenarios instead generate an *open-loop* arrival stream — requests
land on the front-of-fleet balancer at instants drawn from a seeded
renewal process, whether or not the fleet is keeping up — the standard
stand-in for "millions of independent users".

Two inter-arrival distributions:

- **Poisson** (exponential gaps): the memoryless baseline, CV = 1.
- **Bounded Pareto** (heavy-tailed gaps, tail index ``alpha``, support
  ``[L, H]``): bursty arrivals whose CV > 1, the shape that actually
  stresses tail latency.  Gaps are drawn by inverse-CDF and rescaled by
  the distribution's analytic mean so both processes hit the same
  configured rate.

Determinism contract: every draw comes from ``random.Random(f"fleet-
traffic:{seed}")`` — no wall clock, no OS entropy — so the arrival
schedule is a pure function of ``(kind, mean_gap_cycles, seed, n)``,
reproducible across processes and Python versions (``random`` is a
versioned PRNG).  Service demands draw from an independent stream keyed
``fleet-service:{seed}`` so changing the request count never perturbs
service draws (and vice versa).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Tuple

ARRIVALS = ("poisson", "pareto")

#: bounded-Pareto defaults: tail index < 2 (infinite-variance family) and
#: three decades of support — heavy enough that the gap CV clears 2
DEFAULT_ALPHA = 1.5
DEFAULT_SPREAD = 1000.0


def _bounded_pareto(u: float, alpha: float, low: float, high: float) -> float:
    """Inverse CDF of the bounded Pareto on [low, high]."""
    la, ha = low ** alpha, high ** alpha
    return (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / alpha)


def _bounded_pareto_mean(alpha: float, low: float, high: float) -> float:
    """Analytic mean of the bounded Pareto (alpha != 1)."""
    la, ha = low ** alpha, high ** alpha
    return (la / (1.0 - (low / high) ** alpha)
            * (alpha / (alpha - 1.0))
            * (low ** (1.0 - alpha) - high ** (1.0 - alpha)))


@dataclass(frozen=True)
class TrafficSpec:
    """Shape of one open-loop stream, in cycles."""

    kind: str = "poisson"
    mean_gap_cycles: int = 45_000          # ~15 µs at 3 GHz
    mean_service_cycles: int = 300_000     # ~100 µs at 3 GHz
    alpha: float = DEFAULT_ALPHA
    spread: float = DEFAULT_SPREAD

    def __post_init__(self):
        if self.kind not in ARRIVALS:
            raise ValueError(f"unknown arrival process {self.kind!r}; "
                             f"expected one of {ARRIVALS}")
        if self.mean_gap_cycles < 1 or self.mean_service_cycles < 1:
            raise ValueError("mean gap and service must be >= 1 cycle")


class OpenLoopTraffic:
    """Deterministic arrival + service-demand schedule for one fleet run."""

    def __init__(self, spec: TrafficSpec, seed: int):
        self.spec = spec
        self.seed = seed
        self._arrival_rng = random.Random(f"fleet-traffic:{seed}")
        self._service_rng = random.Random(f"fleet-service:{seed}")

    # -- inter-arrival gaps ----------------------------------------------

    def _gap(self) -> int:
        spec = self.spec
        u = self._arrival_rng.random()
        if spec.kind == "poisson":
            raw = -math.log(1.0 - u)  # Exp(1)
            scale = float(spec.mean_gap_cycles)
        else:
            low = 1.0
            high = spec.spread
            raw = _bounded_pareto(u, spec.alpha, low, high)
            scale = (spec.mean_gap_cycles
                     / _bounded_pareto_mean(spec.alpha, low, high))
        return max(1, int(raw * scale))

    def gaps(self, n: int) -> List[int]:
        return [self._gap() for _ in range(n)]

    def _service(self) -> int:
        # exponential service demand: enough dispersion that queues form
        # without another heavy tail on the server side
        u = self._service_rng.random()
        return max(1, int(-math.log(1.0 - u)
                          * self.spec.mean_service_cycles))

    # -- the schedule -----------------------------------------------------

    def schedule(self, n: int, start_cycle: int = 0
                 ) -> List[Tuple[int, int]]:
        """``n`` requests as ``(arrival_cycle, service_cycles)`` pairs,
        arrival cycles strictly increasing from ``start_cycle``."""
        at = int(start_cycle)
        out: List[Tuple[int, int]] = []
        for _ in range(n):
            at += self._gap()
            out.append((at, self._service()))
        return out


def arrival_stats(gaps: List[int]) -> Tuple[float, float]:
    """(mean, coefficient of variation) of a gap sample — what the
    distribution-correctness properties bound."""
    if not gaps:
        return 0.0, 0.0
    mean = sum(gaps) / len(gaps)
    var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
    return mean, (math.sqrt(var) / mean if mean else 0.0)
