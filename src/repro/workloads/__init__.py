"""Benchmark workloads (§7.1 of the paper).

Synthetic but path-faithful versions of the suites the paper measures:

- :mod:`repro.workloads.lmbench` — lmbench 3.0-a5 OS-related latencies
  (Tables 1 and 2).
- :mod:`repro.workloads.osdb` — OSDB-IR over a PostgreSQL-like engine.
- :mod:`repro.workloads.dbench` — dbench 3.03 fileserver load.
- :mod:`repro.workloads.kbuild` — Linux kernel build (fork/exec/FS mix).
- :mod:`repro.workloads.iperf` — iperf TCP/UDP bandwidth and ping RTT.

Every workload drives a :class:`~repro.guestos.kernel.Kernel` through real
system calls; no workload knows which of the six configurations it runs
under.

Every workload is a generator task (``*_task``) yielding at syscall/IO/
compute boundaries, plus a sequential ``run_*`` wrapper that drives the
generator to completion — cycle-identical to the old inline code.  Under
:class:`repro.sim.SimScheduler` the task forms interleave with each other
and with mode switches.
"""

from repro.workloads.lmbench import LmbenchResults, lmbench_task, run_lmbench

__all__ = ["LmbenchResults", "lmbench_task", "run_lmbench"]
