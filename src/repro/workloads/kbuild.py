"""Linux kernel build (§7.1: "build a Linux Kernel 2.6.16 with gcc-3.3.3").

The build is a task DAG: per translation unit, make forks a compiler
process (fork+exec), the compiler reads the source + headers through the
filesystem, burns CPU, and writes an object file; every N objects an
archive/link step reads them all back and writes a bigger artifact.

The mix — process creation + FS traffic + dominant user-mode compute — is
why the paper sees ~9% degradation under Xen (syscall/fork paths slow down,
the compile itself does not), and why Mercury-native matches native Linux.

The build is written as a generator task (:func:`kbuild_task`) yielding at
file and compile-chunk boundaries; :func:`run_kbuild` drives it to
completion for the sequential callers (cycle-identical — the chunked
compile charges the same total).  Under a
:class:`~repro.sim.scheduler.SimScheduler` the same generator interleaves
with other workloads and with mode switches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from repro.guestos.fs import BLOCK_SIZE
from repro.sim import run_to_completion

if TYPE_CHECKING:
    from repro.guestos.kernel import Kernel
    from repro.hw.cpu import Cpu

#: pages in a gcc process image
GCC_IMAGE_PAGES = 256
#: pages in the make process (make + shell + environment)
MAKE_IMAGE_PAGES = 320
#: slices one compile burst is split into (yield points between them)
COMPILE_SLICES = 4


@dataclass
class KbuildResult:
    files_compiled: int
    links: int
    elapsed_us: float

    @property
    def elapsed_s(self) -> float:
        return self.elapsed_us / 1e6


def _compute_sliced(kernel: "Kernel", cpu: "Cpu", us: float
                    ) -> Generator[None, None, None]:
    """Charge ``us`` of user compute in COMPILE_SLICES chunks with a yield
    between each; the chunk cycles sum exactly to the unsliced charge."""
    total = int(us * cpu.cost.freq_mhz)
    step = total // COMPILE_SLICES
    for i in range(COMPILE_SLICES):
        chunk = step if i < COMPILE_SLICES - 1 else total - step * (
            COMPILE_SLICES - 1)
        kernel.user_compute_cycles(cpu, chunk)
        yield


def kbuild_task(kernel: "Kernel", cpu: "Cpu", files: int = 24,
                headers_per_file: int = 4, compile_us: float = 5500.0,
                link_every: int = 8
                ) -> Generator[None, None, KbuildResult]:
    """Build ``files`` translation units; returns wall-clock (simulated)."""
    # lay down the source tree
    for i in range(files):
        fd = kernel.syscall(cpu, "open", f"/src/file{i}.c", True)
        kernel.syscall(cpu, "write", fd, f"source-{i}", BLOCK_SIZE)
        kernel.syscall(cpu, "close", fd)
        yield
    for h in range(headers_per_file):
        fd = kernel.syscall(cpu, "open", f"/src/hdr{h}.h", True)
        kernel.syscall(cpu, "write", fd, f"header-{h}", BLOCK_SIZE)
        kernel.syscall(cpu, "close", fd)

    # the build runs under make: a real process whose image every compiler
    # fork copies (COW), as in an actual kernel build
    invoker = kernel.scheduler.current
    make = kernel.spawn_process(cpu, "make", image_pages=MAKE_IMAGE_PAGES)
    kernel.switch_to(cpu, make)
    yield

    links = 0
    t0 = cpu.rdtsc()
    for i in range(files):
        # make forks the compiler
        gcc = kernel.spawn_process(cpu, f"gcc-{i}",
                                   image_pages=GCC_IMAGE_PAGES)
        parent = kernel.scheduler.current
        kernel.switch_to(cpu, gcc)
        # read source + headers
        fd = kernel.syscall(cpu, "open", f"/src/file{i}.c", task=gcc)
        kernel.syscall(cpu, "read", fd, BLOCK_SIZE, task=gcc)
        kernel.syscall(cpu, "close", fd, task=gcc)
        for h in range(headers_per_file):
            hfd = kernel.syscall(cpu, "open", f"/src/hdr{h}.h", task=gcc)
            kernel.syscall(cpu, "read", hfd, BLOCK_SIZE, task=gcc)
            kernel.syscall(cpu, "close", hfd, task=gcc)
        # the compile itself: dominant user time
        yield from _compute_sliced(kernel, cpu, compile_us)
        # emit the object
        ofd = kernel.syscall(cpu, "open", f"/obj/file{i}.o", True, task=gcc)
        kernel.syscall(cpu, "write", ofd, f"obj-{i}", 2 * BLOCK_SIZE, task=gcc)
        kernel.syscall(cpu, "close", ofd, task=gcc)
        kernel.syscall(cpu, "exit", 0, task=gcc)
        kernel.switch_to(cpu, parent)
        kernel.syscall(cpu, "wait", task=parent)
        yield

        # periodic archive/link step
        if (i + 1) % link_every == 0:
            links += 1
            ld = kernel.spawn_process(cpu, f"ld-{links}",
                                      image_pages=GCC_IMAGE_PAGES)
            kernel.switch_to(cpu, ld)
            for j in range(max(0, i + 1 - link_every), i + 1):
                lfd = kernel.syscall(cpu, "open", f"/obj/file{j}.o", task=ld)
                kernel.syscall(cpu, "read", lfd, 2 * BLOCK_SIZE, task=ld)
                kernel.syscall(cpu, "close", lfd, task=ld)
            yield from _compute_sliced(kernel, cpu, compile_us / 2)
            afd = kernel.syscall(cpu, "open", f"/obj/built-in-{links}.a",
                                 True, task=ld)
            kernel.syscall(cpu, "write", afd, f"ar-{links}",
                           link_every * BLOCK_SIZE, task=ld)
            kernel.syscall(cpu, "fsync", afd, task=ld)
            kernel.syscall(cpu, "close", afd, task=ld)
            kernel.syscall(cpu, "exit", 0, task=ld)
            kernel.switch_to(cpu, parent)
            kernel.syscall(cpu, "wait", task=parent)
            yield

    elapsed = cpu.cost.us(cpu.rdtsc() - t0)

    kernel.syscall(cpu, "exit", 0, task=make)
    kernel.switch_to(cpu, invoker)
    kernel.syscall(cpu, "wait", task=invoker)
    return KbuildResult(files_compiled=files, links=links, elapsed_us=elapsed)


def run_kbuild(kernel: "Kernel", cpu: "Cpu", files: int = 24,
               headers_per_file: int = 4, compile_us: float = 5500.0,
               link_every: int = 8) -> KbuildResult:
    """Sequential entry point: drive :func:`kbuild_task` to completion."""
    return run_to_completion(kbuild_task(
        kernel, cpu, files=files, headers_per_file=headers_per_file,
        compile_us=compile_us, link_every=link_every))
