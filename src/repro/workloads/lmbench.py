"""lmbench OS-related micro-benchmarks (Tables 1 and 2 of the paper).

Rows reproduced (names as the paper prints them):

- ``Fork Process``   — fork + child exit + wait
- ``Exec Process``   — fork + exec + exit + wait
- ``Sh Process``     — fork + exec /bin/sh, which forks + execs the target
- ``Ctx (2p/0k)``, ``Ctx (16p/16k)``, ``Ctx (16p/64k)`` — context-switch
  ring with N processes touching K KiB each switch
- ``Mmap LT``        — map + touch + unmap a large region
- ``Prot Fault``     — write to a write-protected page
- ``Page Fault``     — first touch of a demand-zero page

All latencies are in microseconds of *simulated* time, measured with the
guest's RDTSC exactly as lmbench uses the cycle counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator

from repro.errors import SyscallError
from repro.params import PAGE_SIZE
from repro.sim import run_to_completion

if TYPE_CHECKING:
    from repro.guestos.kernel import Kernel
    from repro.hw.cpu import Cpu

#: pages in the lmbench process image (the lmbench binary + libc footprint)
LMBENCH_IMAGE_PAGES = 384


@dataclass
class LmbenchResults:
    """Latencies in microseconds, keyed by the paper's row names."""

    rows: dict[str, float] = field(default_factory=dict)

    ROW_ORDER = ("Fork Process", "Exec Process", "Sh Process",
                 "Ctx (2p/0k)", "Ctx (16p/16k)", "Ctx (16p/64k)",
                 "Mmap LT", "Prot Fault", "Page Fault")

    def ordered(self) -> list[tuple[str, float]]:
        return [(name, self.rows[name]) for name in self.ROW_ORDER
                if name in self.rows]


def _timeit(cpu: "Cpu", fn, iters: int) -> float:
    """Mean latency of ``fn()`` over ``iters`` runs, in simulated µs."""
    t0 = cpu.rdtsc()
    for _ in range(iters):
        fn()
    return cpu.cost.us(cpu.rdtsc() - t0) / iters


# ---------------------------------------------------------------------------
# individual benchmarks
# ---------------------------------------------------------------------------

def bench_fork(kernel: "Kernel", cpu: "Cpu", iters: int = 5) -> float:
    def one() -> None:
        pid = kernel.syscall(cpu, "fork")
        kernel.run_and_reap(cpu, kernel.procs.get(pid))
    return _timeit(cpu, one, iters)


def bench_exec(kernel: "Kernel", cpu: "Cpu", iters: int = 5) -> float:
    def one() -> None:
        child = kernel.spawn_process(cpu, "hello",
                                     image_pages=LMBENCH_IMAGE_PAGES)
        kernel.run_and_reap(cpu, child)
    return _timeit(cpu, one, iters)


def bench_sh(kernel: "Kernel", cpu: "Cpu", iters: int = 3) -> float:
    """/bin/sh -c 'target': two levels of fork+exec plus path search."""
    def one() -> None:
        sh = kernel.spawn_process(cpu, "sh", image_pages=LMBENCH_IMAGE_PAGES)
        parent = kernel.scheduler.current
        kernel.switch_to(cpu, sh)
        # shell startup: rc parsing, environment setup, PATH search
        kernel.user_compute(cpu, 340.0)
        for path in ("/bin/true", "/usr/bin/true"):
            try:
                kernel.syscall(cpu, "stat", path, task=sh)
            except Exception:
                pass
        target = kernel.spawn_process(cpu, "true",
                                      image_pages=LMBENCH_IMAGE_PAGES)
        kernel.run_and_reap(cpu, target)
        kernel.syscall(cpu, "exit", 0, task=sh)
        kernel.switch_to(cpu, parent)
        kernel.syscall(cpu, "wait", task=parent)
    return _timeit(cpu, one, iters)


def bench_ctx(kernel: "Kernel", cpu: "Cpu", nprocs: int, data_kb: int,
              rounds: int = 3) -> float:
    """The lmbench context-switch ring: N processes connected by pipes
    pass a one-byte token; each touches its K KiB working set after every
    switch — exactly lmbench's lat_ctx structure."""
    parent = kernel.scheduler.current
    tasks = []
    bases = []
    pipes = []
    for _ in range(nprocs):
        pid = kernel.syscall(cpu, "fork")
        task = kernel.procs.get(pid)
        tasks.append(task)
        rfd, wfd = kernel.syscall(cpu, "pipe", task=task)
        pipes.append((rfd, wfd))
        if data_kb:
            base = kernel.vmem.mmap(cpu, task, data_kb * 1024, populate=True)
            bases.append(base)
        else:
            bases.append(None)

    pages = max(1, (data_kb * 1024) // PAGE_SIZE) if data_kb else 0
    t0 = cpu.rdtsc()
    switches = 0
    for _ in range(rounds):
        for task, base, (rfd, wfd) in zip(tasks, bases, pipes):
            # the token arrives on this task's pipe...
            kernel.syscall(cpu, "write", wfd, b"t", 1, task=task)
            kernel.switch_to(cpu, task)
            switches += 1
            # ...and the task drains it before touching its working set
            kernel.syscall(cpu, "read", rfd, task=task)
            if base is not None:
                # the benchmark walks its working set through a cold cache
                # after each switch; beyond ~32 KiB the set no longer fits
                # the near caches and per-KB cost roughly doubles
                kernel.touch_pages(cpu, task, base, pages, write=True)
                per_kb = 204 if data_kb <= 32 else 405
                cpu.charge(per_kb * data_kb)
    elapsed_us = cpu.cost.us(cpu.rdtsc() - t0)

    kernel.switch_to(cpu, parent)
    for task in tasks:
        kernel.switch_to(cpu, task)
        kernel.syscall(cpu, "exit", 0, task=task)
        kernel.switch_to(cpu, parent)
        kernel.syscall(cpu, "wait", task=parent)
    return elapsed_us / switches


def bench_mmap(kernel: "Kernel", cpu: "Cpu", size_mb: int = 32,
               iters: int = 2) -> float:
    """Total latency to map + touch + unmap ``size_mb`` MiB (lmbench
    reports the total, not per-page)."""
    task = kernel.scheduler.current
    length = size_mb * 1024 * 1024

    def one() -> None:
        base = kernel.syscall(cpu, "mmap", length, True)  # MAP_POPULATE
        kernel.syscall(cpu, "munmap", base, length)
    return _timeit(cpu, one, iters)


def bench_prot_fault(kernel: "Kernel", cpu: "Cpu", iters: int = 50) -> float:
    task = kernel.scheduler.current
    length = 16 * PAGE_SIZE
    base = kernel.syscall(cpu, "mmap", length, True)
    kernel.syscall(cpu, "mprotect", base, length, False)

    def one() -> None:
        try:
            kernel.vmem.access(cpu, task, base, write=True)
        except SyscallError:
            pass  # SIGSEGV delivered, as lmbench's handler catches it
    lat = _timeit(cpu, one, iters)
    kernel.syscall(cpu, "mprotect", base, length, True)
    kernel.syscall(cpu, "munmap", base, length)
    return lat


def bench_page_fault(kernel: "Kernel", cpu: "Cpu", iters: int = 64) -> float:
    task = kernel.scheduler.current
    length = iters * PAGE_SIZE
    base = kernel.syscall(cpu, "mmap", length, False)  # demand paged

    t0 = cpu.rdtsc()
    for i in range(iters):
        kernel.vmem.access(cpu, task, base + i * PAGE_SIZE, write=True)
    lat = cpu.cost.us(cpu.rdtsc() - t0) / iters
    kernel.syscall(cpu, "munmap", base, length)
    return lat


# ---------------------------------------------------------------------------
# the full suite
# ---------------------------------------------------------------------------

def lmbench_task(kernel: "Kernel", cpu: "Cpu"
                 ) -> Generator[None, None, LmbenchResults]:
    """Run every row of Table 1/2 and return the latencies.  Rows are
    RDTSC-timed tight loops, so yields sit only *between* rows — a
    concurrent event may land between benchmarks but never skews a
    latency measurement's timing window."""
    results = LmbenchResults()
    results.rows["Fork Process"] = bench_fork(kernel, cpu)
    yield
    results.rows["Exec Process"] = bench_exec(kernel, cpu)
    yield
    results.rows["Sh Process"] = bench_sh(kernel, cpu)
    yield
    results.rows["Ctx (2p/0k)"] = bench_ctx(kernel, cpu, 2, 0)
    yield
    results.rows["Ctx (16p/16k)"] = bench_ctx(kernel, cpu, 16, 16)
    yield
    results.rows["Ctx (16p/64k)"] = bench_ctx(kernel, cpu, 16, 64)
    yield
    results.rows["Mmap LT"] = bench_mmap(kernel, cpu)
    yield
    results.rows["Prot Fault"] = bench_prot_fault(kernel, cpu)
    yield
    results.rows["Page Fault"] = bench_page_fault(kernel, cpu)
    return results


def run_lmbench(kernel: "Kernel", cpu: "Cpu") -> LmbenchResults:
    """Sequential entry point: drive :func:`lmbench_task` to completion."""
    return run_to_completion(lmbench_task(kernel, cpu))
