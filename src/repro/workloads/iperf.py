"""iperf TCP/UDP bandwidth and ping latency (§7.1: "the client and server
for Iperf were connected through a Giga-bit switch").

Two kernels on two linked machines (sharing a clock, as
:meth:`~repro.hw.machine.Machine.link_to` requires).  The sender pushes a
byte volume through its socket layer; the receiver's machine is polled
between send windows so its stack drains.  Goodput is bytes over elapsed
simulated time; ping is the ICMP echo RTT measured by the sender's stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from repro.guestos.net import MSS, TCP_WINDOW
from repro.sim import run_to_completion

if TYPE_CHECKING:
    from repro.guestos.kernel import Kernel
    from repro.hw.cpu import Cpu


@dataclass
class IperfResult:
    proto: str
    bytes_sent: int
    elapsed_us: float
    #: split-driver notification accounting over the run (zero when the
    #: sender drives the NIC natively — no rings on the path)
    packets_sent: int = 0
    notifies_sent: int = 0
    notifies_suppressed: int = 0

    @property
    def mbit_s(self) -> float:
        if not self.elapsed_us:
            return 0.0
        return (self.bytes_sent * 8) / self.elapsed_us  # bits/µs == Mbit/s

    @property
    def notifies_per_packet(self) -> float:
        """Amortized event-channel fires per transmitted segment — the
        §5.2 notification-avoidance figure of merit."""
        if not self.packets_sent:
            return 0.0
        return self.notifies_sent / self.packets_sent


def _io_stats(kernel: "Kernel"):
    """The shared datapath counters of the kernel's hypervisor, if any."""
    return getattr(getattr(kernel.vo, "vmm", None), "io_stats", None)


def iperf_task(sender: "Kernel", receiver: "Kernel", proto: str = "tcp",
               total_bytes: int = 2 * 1024 * 1024
               ) -> Generator[None, None, IperfResult]:
    """Bulk transfer from ``sender`` to ``receiver``, yielding once per
    send window (the natural blocking point of a real sender: the socket
    buffer is full until the window drains)."""
    s_cpu = sender.machine.boot_cpu
    r_cpu = receiver.machine.boot_cpu
    s_sock = sender.syscall(s_cpu, "socket", proto)
    receiver.syscall(r_cpu, "socket", proto)

    dst = receiver.net_addr
    clock = sender.machine.clock
    io = _io_stats(sender)
    sent0 = io.notifies_sent if io else 0
    supp0 = io.notifies_suppressed if io else 0
    t0 = clock.cycles

    sent = 0
    packets = 0
    window_bytes = TCP_WINDOW * MSS
    while sent < total_bytes:
        chunk = min(window_bytes, total_bytes - sent)
        sender.syscall(s_cpu, "sendto", s_sock, dst, chunk)
        sent += chunk
        packets += (chunk + MSS - 1) // MSS
        # the wire delivers, the receiver's machine services its NIC
        _drain_both(sender, receiver)
        if proto == "tcp":
            # one ACK round trip per window
            rtt_ns = 2 * s_cpu.cost.net_latency_ns
            clock.advance(int(s_cpu.cost.cycles_from_ns(rtt_ns)))
            _drain_both(sender, receiver)
        yield
    elapsed = s_cpu.cost.us(clock.cycles - t0)
    return IperfResult(
        proto=proto, bytes_sent=sent, elapsed_us=elapsed,
        packets_sent=packets,
        notifies_sent=(io.notifies_sent - sent0) if io else 0,
        notifies_suppressed=(io.notifies_suppressed - supp0) if io else 0)


def run_iperf(sender: "Kernel", receiver: "Kernel", proto: str = "tcp",
              total_bytes: int = 2 * 1024 * 1024) -> IperfResult:
    """Sequential entry point: drive :func:`iperf_task` to completion."""
    return run_to_completion(iperf_task(sender, receiver, proto=proto,
                                        total_bytes=total_bytes))


def run_ping(sender: "Kernel", receiver: "Kernel", count: int = 5) -> float:
    """Mean ICMP echo RTT in microseconds."""
    s_cpu = sender.machine.boot_cpu
    dst = receiver.net_addr
    total = 0.0
    for _ in range(count):
        total += _ping_once(sender, receiver, dst)
    return total / count


def _ping_once(sender: "Kernel", receiver: "Kernel", dst: str) -> float:
    """One echo round trip, driving both machines' event loops."""
    s_cpu = sender.machine.boot_cpu
    stack = sender.net
    stack._ping_sent_at = s_cpu.rdtsc()
    stack._awaiting_pong = True
    from repro.hw.devices import Packet
    pkt = Packet(src=sender.net_addr, dst=dst, proto="icmp",
                 size_bytes=64, payload="echo")
    sender.net_transmit(s_cpu, pkt)
    clock = sender.machine.clock
    guard = 0
    while stack._awaiting_pong:
        deadline = clock.next_deadline()
        if deadline is not None and deadline > clock.cycles:
            clock.cycles = deadline
        _drain_both(sender, receiver)
        guard += 1
        if guard > 10_000:
            raise RuntimeError("ping did not complete")
    return s_cpu.cost.us(stack.last_ping_rtt_cycles)


def _drain_both(a: "Kernel", b: "Kernel") -> None:
    """Fire due events and deliver interrupts on both ends (they share a
    clock; each machine polls its own interrupt controller)."""
    for _ in range(64):
        fired = a.machine.clock.run_due()
        handled = a.machine.poll() + (b.machine.poll()
                                      if b.machine is not a.machine else 0)
        if not fired and not handled:
            break
