"""dbench 3.03: the strict-I/O-bound fileserver workload (§7.1).

Each simulated client replays a netbench-style op mix — create, sequential
writes, reads, stat, delete — with a periodic flush, against the guest
filesystem.  The score is throughput in MB/s of simulated time, like
dbench's own output.

This is the benchmark where the paper's Fig. 3 shows the one inversion:
domain0 ~15% *slower* than native but domainU ~5% *faster*, because the
split block model acknowledges writes from the backend cache.  Nothing here
knows about that; the inversion falls out of the driver stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from repro.guestos.fs import BLOCK_SIZE
from repro.sim import run_to_completion

if TYPE_CHECKING:
    from repro.guestos.kernel import Kernel
    from repro.hw.cpu import Cpu


@dataclass
class DbenchResult:
    clients: int
    ops: int
    bytes_moved: int
    elapsed_us: float
    #: split-driver notification accounting (zero on a native block path)
    notifies_sent: int = 0
    notifies_suppressed: int = 0

    @property
    def throughput_mb_s(self) -> float:
        if not self.elapsed_us:
            return 0.0
        return (self.bytes_moved / (1024 * 1024)) / (self.elapsed_us / 1e6)

    @property
    def notify_suppression_ratio(self) -> float:
        total = self.notifies_sent + self.notifies_suppressed
        return self.notifies_suppressed / total if total else 0.0


def dbench_task(kernel: "Kernel", cpu: "Cpu", clients: int = 4,
                files_per_client: int = 6, writes_per_file: int = 8,
                writeback_every: int = 64, writeback_blocks: int = 2
                ) -> Generator[None, None, DbenchResult]:
    """Run the op mix; returns the throughput result.  Yields once per
    file worked (a client "thinks" between files).

    Like real dbench, the fileset lives in the page cache and there are no
    fsyncs; the device sees only the background writeback that pdflush
    would issue (every ``writeback_every`` write ops, ``writeback_blocks``
    dirty blocks go out).  Native/dom0 pay the spindle for those; a domU's
    blkback acknowledges them from its cache — the paper's dbench
    inversion."""
    ops = 0
    write_ops = 0
    bytes_moved = 0
    io = getattr(getattr(kernel.vo, "vmm", None), "io_stats", None)
    sent0 = io.notifies_sent if io else 0
    supp0 = io.notifies_suppressed if io else 0
    t0 = cpu.rdtsc()

    def maybe_writeback() -> None:
        nonlocal write_ops
        write_ops += 1
        if write_ops % writeback_every == 0:
            kernel.fs.writeback(cpu, max_blocks=writeback_blocks)

    for client in range(clients):
        created = []
        for fno in range(files_per_client):
            path = f"/dbench/c{client}/f{fno}"
            fd = kernel.syscall(cpu, "open", path, True)
            created.append((path, fd))
            ops += 1
            # sequential write burst
            for w in range(writes_per_file):
                kernel.syscall(cpu, "write", fd, f"d{client}.{fno}.{w}",
                               BLOCK_SIZE)
                bytes_moved += BLOCK_SIZE
                ops += 1
                maybe_writeback()
            # read some of it back (cache-warm)
            kernel.syscall(cpu, "lseek", fd, 0)
            for _ in range(writes_per_file // 2):
                kernel.syscall(cpu, "read", fd, BLOCK_SIZE)
                bytes_moved += BLOCK_SIZE
                ops += 1
            kernel.syscall(cpu, "stat", path)
            ops += 1
            yield
        # delete half the files, netbench-style churn
        for path, fd in created[::2]:
            kernel.syscall(cpu, "close", fd)
            kernel.syscall(cpu, "unlink", path)
            ops += 2
        for path, fd in created[1::2]:
            kernel.syscall(cpu, "close", fd)
            ops += 1
        yield
    elapsed = cpu.cost.us(cpu.rdtsc() - t0)
    return DbenchResult(
        clients=clients, ops=ops, bytes_moved=bytes_moved,
        elapsed_us=elapsed,
        notifies_sent=(io.notifies_sent - sent0) if io else 0,
        notifies_suppressed=(io.notifies_suppressed - supp0) if io else 0)


def run_dbench(kernel: "Kernel", cpu: "Cpu", clients: int = 4,
               files_per_client: int = 6, writes_per_file: int = 8,
               writeback_every: int = 64,
               writeback_blocks: int = 2) -> DbenchResult:
    """Sequential entry point: drive :func:`dbench_task` to completion."""
    return run_to_completion(dbench_task(
        kernel, cpu, clients=clients, files_per_client=files_per_client,
        writes_per_file=writes_per_file, writeback_every=writeback_every,
        writeback_blocks=writeback_blocks))
