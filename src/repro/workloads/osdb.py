"""OSDB-IR: the Open Source Database Benchmark's Information Retrieval
test over a PostgreSQL-like engine (§7.1: OSDB-x0.15-1 with PostgreSQL
7.3.6).

The engine stores a heap table plus a B-tree-ish index as files in the
guest filesystem.  The IR phase runs point queries: descend the index
(reads, mostly buffer-cache warm but with a miss tail), fetch the heap
tuple (read + copy), and evaluate it (user compute).  This syscall- and
fault-heavy profile is what gives OSDB the >20% virtualization loss the
paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from repro.guestos.fs import BLOCK_SIZE
from repro.sim import run_to_completion

if TYPE_CHECKING:
    from repro.guestos.kernel import Kernel
    from repro.hw.cpu import Cpu


@dataclass
class OsdbResult:
    queries: int
    elapsed_us: float
    cache_hits: int
    cache_misses: int
    #: split-driver notification accounting (zero on a native block path)
    notifies_sent: int = 0
    notifies_suppressed: int = 0

    @property
    def queries_per_second(self) -> float:
        return self.queries / (self.elapsed_us / 1e6) if self.elapsed_us else 0.0


#: tuples per heap block (PostgreSQL-ish density for small rows)
TUPLES_PER_BLOCK = 64
#: index fanout (levels = ceil(log_fanout(rows)))
INDEX_FANOUT = 256


def _populate(kernel: "Kernel", cpu: "Cpu", rows: int) -> tuple[int, int]:
    """Create the heap and index files; returns (heap_fd, index_fd)."""
    heap_blocks = (rows + TUPLES_PER_BLOCK - 1) // TUPLES_PER_BLOCK
    index_blocks = max(1, heap_blocks // 16)
    heap_fd = kernel.syscall(cpu, "open", "/pgdata/heap", True)
    index_fd = kernel.syscall(cpu, "open", "/pgdata/index", True)
    for b in range(heap_blocks):
        kernel.syscall(cpu, "lseek", heap_fd, b * BLOCK_SIZE)
        kernel.syscall(cpu, "write", heap_fd, f"heap-{b}", BLOCK_SIZE)
    for b in range(index_blocks):
        kernel.syscall(cpu, "lseek", index_fd, b * BLOCK_SIZE)
        kernel.syscall(cpu, "write", index_fd, f"idx-{b}", BLOCK_SIZE)
    kernel.syscall(cpu, "fsync", heap_fd)
    kernel.syscall(cpu, "fsync", index_fd)
    return heap_fd, index_fd


def osdb_ir_task(kernel: "Kernel", cpu: "Cpu", rows: int = 4096,
                 queries: int = 200, seed: int = 7
                 ) -> Generator[None, None, OsdbResult]:
    """Populate the database, then run ``queries`` random point lookups.
    Yields after the populate phase and between queries (a real client
    round-trips to the server per query)."""
    heap_fd, index_fd = _populate(kernel, cpu, rows)
    yield
    heap_blocks = (rows + TUPLES_PER_BLOCK - 1) // TUPLES_PER_BLOCK
    index_blocks = max(1, heap_blocks // 16)

    # index depth: root + internal + leaf for these sizes
    levels = 1
    span = INDEX_FANOUT
    while span < rows:
        span *= INDEX_FANOUT
        levels += 1

    hits0 = kernel.fs.cache.hits
    misses0 = kernel.fs.cache.misses
    io = getattr(getattr(kernel.vo, "vmm", None), "io_stats", None)
    sent0 = io.notifies_sent if io else 0
    supp0 = io.notifies_suppressed if io else 0
    state = seed
    t0 = cpu.rdtsc()
    for _ in range(queries):
        state = (state * 1103515245 + 12345) % (1 << 31)  # deterministic LCG
        key = state % rows
        # descend the index: one block read per level
        for level in range(levels):
            blk = (key // (INDEX_FANOUT ** (levels - level))) % index_blocks
            kernel.syscall(cpu, "lseek", index_fd, blk * BLOCK_SIZE)
            kernel.syscall(cpu, "read", index_fd, BLOCK_SIZE)
        # fetch the heap tuple
        heap_blk = key // TUPLES_PER_BLOCK
        kernel.syscall(cpu, "lseek", heap_fd, heap_blk * BLOCK_SIZE)
        kernel.syscall(cpu, "read", heap_fd, BLOCK_SIZE)
        # evaluate: tuple deforming + predicate, a few µs of user time
        kernel.user_compute(cpu, 4.0)
        yield
    elapsed = cpu.cost.us(cpu.rdtsc() - t0)

    kernel.syscall(cpu, "close", heap_fd)
    kernel.syscall(cpu, "close", index_fd)
    return OsdbResult(
        queries=queries, elapsed_us=elapsed,
        cache_hits=kernel.fs.cache.hits - hits0,
        cache_misses=kernel.fs.cache.misses - misses0,
        notifies_sent=(io.notifies_sent - sent0) if io else 0,
        notifies_suppressed=(io.notifies_suppressed - supp0) if io else 0)


def run_osdb_ir(kernel: "Kernel", cpu: "Cpu", rows: int = 4096,
                queries: int = 200, seed: int = 7) -> OsdbResult:
    """Sequential entry point: drive :func:`osdb_ir_task` to completion."""
    return run_to_completion(osdb_ir_task(kernel, cpu, rows=rows,
                                          queries=queries, seed=seed))


def run_osdb_mixed(kernel: "Kernel", cpu: "Cpu", rows: int = 4096,
                   transactions: int = 100, update_ratio: float = 0.25,
                   commit_every: int = 10, seed: int = 11) -> OsdbResult:
    """OSDB's mixed phase: point lookups interleaved with tuple updates
    and periodic WAL-style commits (fsync).  Update transactions dirty
    heap blocks and pay journal commits — the write-side profile the IR
    phase lacks."""
    heap_fd, index_fd = _populate(kernel, cpu, rows)
    heap_blocks = (rows + TUPLES_PER_BLOCK - 1) // TUPLES_PER_BLOCK

    state = seed
    t0 = cpu.rdtsc()
    since_commit = 0
    for txn in range(transactions):
        state = (state * 1103515245 + 12345) % (1 << 31)
        key = state % rows
        heap_blk = key // TUPLES_PER_BLOCK
        kernel.syscall(cpu, "lseek", heap_fd, heap_blk * BLOCK_SIZE)
        kernel.syscall(cpu, "read", heap_fd, BLOCK_SIZE)
        kernel.user_compute(cpu, 3.0)
        if (state >> 8) % 100 < int(update_ratio * 100):
            # rewrite the tuple's heap block
            kernel.syscall(cpu, "lseek", heap_fd, heap_blk * BLOCK_SIZE)
            kernel.syscall(cpu, "write", heap_fd, f"upd-{txn}", BLOCK_SIZE)
            since_commit += 1
        if since_commit >= commit_every:
            kernel.syscall(cpu, "fsync", heap_fd)
            since_commit = 0
    if since_commit:
        kernel.syscall(cpu, "fsync", heap_fd)
    elapsed = cpu.cost.us(cpu.rdtsc() - t0)

    kernel.syscall(cpu, "close", heap_fd)
    kernel.syscall(cpu, "close", index_fd)
    return OsdbResult(queries=transactions, elapsed_us=elapsed,
                      cache_hits=kernel.fs.cache.hits,
                      cache_misses=kernel.fs.cache.misses)
