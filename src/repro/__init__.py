"""Mercury: Combining Performance with Dependability Using Self-Virtualization.

A reproduction of Chen et al. (ICPP 2007 / JCST 2012) as a deterministic,
cycle-accounted full-system simulator:

- :mod:`repro.hw` — simulated x86-style hardware.
- :mod:`repro.guestos` — a Linux-like guest OS.
- :mod:`repro.vmm` — a Xen-like virtual machine monitor.
- :mod:`repro.core` — Mercury itself: virtualization objects, mode
  switching, SMP coordination (the paper's contribution).
- :mod:`repro.scenarios` — the §6 usage scenarios (checkpoint/restart,
  live migration, online maintenance, live update, self-healing, HPC
  cluster availability).
- :mod:`repro.workloads` — lmbench/OSDB/dbench/kbuild/iperf-like workloads.
- :mod:`repro.bench` — the six-configuration harness that regenerates the
  paper's tables and figures.

Quickstart::

    from repro import Machine, Mercury, small_config

    machine = Machine(small_config())
    mercury = Mercury(machine)
    kernel = mercury.create_kernel()
    record = mercury.attach()      # ~0.2 ms: VMM now underneath the OS
    mercury.detach()               # ~0.06 ms: back on bare hardware
"""

from repro.core.accounting import AccountingStrategy
from repro.core.failsafe import FailsafeSwitch
from repro.core.hvm import HvmMercury
from repro.core.invariants import check_all
from repro.core.mercury import Mercury, Mode, PagingMode
from repro.core.switch import Direction, SwitchRecord
from repro.guestos.kernel import Kernel
from repro.hw.machine import Machine
from repro.metrics import MetricsCollector
from repro.params import CostModel, MachineConfig, paper_config, small_config
from repro.vmm.hypervisor import Hypervisor

__version__ = "1.0.0"

__all__ = [
    "AccountingStrategy",
    "CostModel",
    "Direction",
    "FailsafeSwitch",
    "Hypervisor",
    "HvmMercury",
    "Kernel",
    "Machine",
    "MachineConfig",
    "Mercury",
    "MetricsCollector",
    "Mode",
    "PagingMode",
    "SwitchRecord",
    "check_all",
    "paper_config",
    "small_config",
    "__version__",
]
