"""Online hardware maintenance (§6.3).

"An operator could switch the machine to be maintained to the full-virtual
mode dynamically.  The execution environment of the machine can then be
live migrated to another machine that has been virtualized and is in the
partial-virtual mode...  After the maintenance work is completed, the
execution environment is migrated back and the machine is returned to the
native mode for full speed."

:class:`MaintenanceWindow` orchestrates exactly that round trip and reports
the application-visible disruption (the two migration downtimes) against
the wall-clock maintenance duration — the paper's availability argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.mercury import Mercury, Mode
from repro.errors import ScenarioError
from repro.scenarios.migration import LiveMigration, MigrationReport

if TYPE_CHECKING:
    from repro.guestos.kernel import Kernel


@dataclass
class MaintenanceReport:
    """Outcome of one maintenance round trip."""

    outbound: MigrationReport
    inbound: MigrationReport
    maintenance_cycles: int = 0
    total_cycles: int = 0

    @property
    def disruption_cycles(self) -> int:
        """Application-visible pause: the two stop-and-copy downtimes."""
        return self.outbound.downtime_cycles + self.inbound.downtime_cycles

    def disruption_ms(self, freq_mhz: int = 3000) -> float:
        return self.disruption_cycles / (freq_mhz * 1000.0)


class MaintenanceWindow:
    """Maintain ``primary``'s hardware while its OS keeps running on
    ``standby``."""

    def __init__(self, primary: Mercury, standby: Mercury):
        if primary.machine.clock is not standby.machine.clock:
            raise ScenarioError("primary and standby must share a clock")
        self.primary = primary
        self.standby = standby

    def perform(self, maintain: Callable[[], None],
                mutator: Optional[Callable[[int], None]] = None
                ) -> MaintenanceReport:
        """Run the full §6.3 flow.  ``maintain()`` is the operator's work
        on the idle primary (may advance the clock); ``mutator`` models the
        workload running across the migrations."""
        clock = self.primary.machine.clock
        t0 = clock.cycles

        # 1. primary goes full-virtual; standby must be able to host
        self.primary.full_virtualize()
        if self.standby.mode is Mode.NATIVE:
            self.standby.attach()

        # 2. migrate the execution environment away
        out = LiveMigration(self.primary, self.standby)
        hosted, outbound = out.run(mutator=mutator)

        # 3. hardware maintenance on the now-idle primary
        m0 = clock.cycles
        maintain()
        maintenance_cycles = clock.cycles - m0

        # 4. migrate back: the hosted guest returns to the primary, which
        # is reconstructed as that machine's own OS
        inbound = self._migrate_back(hosted, mutator)

        # 5. the primary returns to native mode for full speed
        self.primary.detach()
        return MaintenanceReport(
            outbound=outbound, inbound=inbound,
            maintenance_cycles=maintenance_cycles,
            total_cycles=clock.cycles - t0)

    def _migrate_back(self, hosted: "Kernel",
                      mutator: Optional[Callable[[int], None]]
                      ) -> MigrationReport:
        """Move the hosted guest back onto the (fresh, maintained)
        primary."""
        from repro.scenarios.checkpoint import _snapshot, restore
        from repro.scenarios.migration import (CYC_SEND_PER_PAGE,
                                               MigrationReport, RoundStats,
                                               WIRE_NS_PER_PAGE)

        clock = self.standby.machine.clock
        cpu = self.standby.machine.boot_cpu
        mem = self.standby.machine.memory
        report = MigrationReport()
        t0 = clock.cycles

        # pre-copy rounds for the hosted guest
        owned = mem.frames_owned_by(hosted.owner_id)
        dirty = set(int(f) for f in owned)
        gen_seen = {int(f): -1 for f in owned}
        for round_no in range(5):
            if len(dirty) <= 32:
                break
            r0 = clock.cycles
            for frame in sorted(dirty):
                cpu.charge(CYC_SEND_PER_PAGE)
                cpu.charge(int(cpu.cost.cycles_from_ns(WIRE_NS_PER_PAGE)))
                gen_seen[frame] = int(mem.generation[frame])
            report.rounds.append(RoundStats(round_no, len(dirty),
                                            clock.cycles - r0))
            if mutator is not None:
                mutator(round_no)
            owned = mem.frames_owned_by(hosted.owner_id)
            dirty = {int(f) for f in owned
                     if int(mem.generation[f]) != gen_seen.get(int(f), -1)}

        # stop-and-copy + restore on the primary as its own OS
        pause = clock.cycles
        image = _snapshot(hosted, cpu, include_disk=True)
        for _ in range(len(dirty)):
            cpu.charge(CYC_SEND_PER_PAGE)
            cpu.charge(int(cpu.cost.cycles_from_ns(WIRE_NS_PER_PAGE)))
        report.stop_and_copy_pages = len(dirty)

        # tear the hosted guest out of the standby
        self.standby.shutdown_guest(hosted)
        for frame in list(mem.frames_owned_by(hosted.owner_id)):
            mem.free(int(frame))

        # the primary's Mercury still exists; restore into it.  It is in
        # full-virtual mode with an empty kernel shell (its state left in
        # the outbound migration).
        image.kernel_name = self.primary.kernel.name
        image.owner_id = self.primary.kernel.owner_id
        restored = restore(image, self.primary,
                           cpu=self.primary.machine.boot_cpu)
        self.primary.kernel.booted = True
        if self.primary.mode is Mode.FULL_VIRTUAL:
            self.primary.departial()
        report.downtime_cycles = clock.cycles - pause
        report.total_cycles = clock.cycles - t0
        return report
