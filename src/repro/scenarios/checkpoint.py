"""Checkpoint and restart of operating systems (§6.1).

"To perform checkpointing, the pre-cached VMM is activated and makes a
snapshot of the whole system, then the VMM is detached and remains
inactive.  If a software failure occurs, the VMM could be automatically
re-activated to restore the failed system into a recent checkpoint.  For
hardware failures, the snapshot could be manually restored to another
healthy machine."

The snapshot serializes the guest's complete logical state — frame
contents, page-table structure, process table, scheduler, filesystem — into
a machine-independent :class:`CheckpointImage`.  Restore replays it either
onto the same kernel (rollback) or onto a fresh machine (disaster
recovery); fidelity tests assert workloads observe identical state.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core.mercury import Mercury, Mode
from repro.errors import CheckpointError
from repro.guestos.process import Task, TaskState
from repro.hw.paging import AddressSpace, Pte

if TYPE_CHECKING:
    from repro.guestos.kernel import Kernel
    from repro.hw.cpu import Cpu

#: cycles to snapshot one frame (copy + bookkeeping in the VMM)
CYC_SNAPSHOT_PER_FRAME = 260


# ---------------------------------------------------------------------------
# image format
# ---------------------------------------------------------------------------

@dataclass
class AspaceImage:
    pgd_frame: int
    #: vaddr -> (frame, present, writable, user, cow)
    ptes: dict[int, tuple] = field(default_factory=dict)
    #: pgd slot -> frame of the leaf page-table page occupying it
    leaf_frames: dict[int, int] = field(default_factory=dict)


@dataclass
class TaskImage:
    pid: int
    name: str
    state: str
    aspace_index: int
    vmas: list = field(default_factory=list)
    brk: int = 0
    fds: dict = field(default_factory=dict)
    next_fd: int = 3
    parent_pid: Optional[int] = None
    exit_code: Optional[int] = None
    selector_dpl: Optional[int] = None


@dataclass
class CheckpointImage:
    """A complete, machine-independent snapshot of one guest OS."""

    kernel_name: str
    owner_id: int
    taken_at_cycles: int
    #: frame -> content for every frame the guest owned
    frames: dict[int, object] = field(default_factory=dict)
    aspaces: list[AspaceImage] = field(default_factory=list)
    tasks: list[TaskImage] = field(default_factory=list)
    current_pid: Optional[int] = None
    runqueue_pids: list[int] = field(default_factory=list)
    next_pid: int = 1
    #: filesystem: inodes + next block + (optionally) raw disk blocks
    fs_inodes: dict = field(default_factory=dict)
    fs_next_block: int = 1024
    disk_blocks: Optional[dict] = None
    #: frame share counts for COW
    frame_refs: dict[int, int] = field(default_factory=dict)

    @property
    def num_frames(self) -> int:
        return len(self.frames)


# ---------------------------------------------------------------------------
# checkpoint
# ---------------------------------------------------------------------------

def checkpoint(mercury: Mercury, cpu: Optional["Cpu"] = None,
               include_disk: bool = True) -> CheckpointImage:
    """Snapshot the self-virtualized OS.

    If the OS is native, the VMM is attached for the duration of the
    snapshot and detached afterwards — the §6.1 flow."""
    cpu = cpu or mercury.machine.boot_cpu
    kernel = mercury.kernel
    was_native = mercury.mode is Mode.NATIVE
    if was_native:
        mercury.attach(cpu)
    try:
        kernel.fs.sync_all(cpu)  # quiesce: the image carries clean FS state
        image = _snapshot(kernel, cpu, include_disk)
    finally:
        if was_native:
            mercury.detach(cpu)
    return image


def _snapshot(kernel: "Kernel", cpu: "Cpu", include_disk: bool) -> CheckpointImage:
    mem = kernel.machine.memory
    image = CheckpointImage(
        kernel_name=kernel.name,
        owner_id=kernel.owner_id,
        taken_at_cycles=kernel.machine.clock.cycles,
        next_pid=kernel.procs._next_pid,
    )

    # memory frames (charged per frame — snapshotting is the bulk cost)
    for frame in mem.frames_owned_by(kernel.owner_id):
        f = int(frame)
        image.frames[f] = copy.deepcopy(mem.read(f)) if mem.read(f) is not None else None
        cpu.charge(CYC_SNAPSHOT_PER_FRAME)

    # address spaces
    aspace_indices: dict[int, int] = {}
    for idx, aspace in enumerate(kernel.aspaces):
        aspace_indices[id(aspace)] = idx
        a_img = AspaceImage(pgd_frame=aspace.pgd_frame)
        a_img.leaf_frames = {idx: leaf.frame
                             for idx, leaf in aspace.pgd.entries.items()}
        for vaddr in aspace.mapped_vaddrs():
            pte = aspace.get_pte(vaddr)
            a_img.ptes[vaddr] = (pte.frame, pte.present, pte.writable,
                                 pte.user, pte.cow)
        image.aspaces.append(a_img)

    # tasks
    for task in kernel.procs.tasks.values():
        if id(task.aspace) not in aspace_indices:
            continue  # zombies whose aspace is gone carry no memory state
        image.tasks.append(TaskImage(
            pid=task.pid, name=task.name, state=task.state.value,
            aspace_index=aspace_indices[id(task.aspace)],
            vmas=[v.clone() for v in task.vmas], brk=task.brk,
            fds={fd: list(v) for fd, v in task.fds.items()},
            next_fd=task.next_fd,
            parent_pid=task.parent.pid if task.parent else None,
            exit_code=task.exit_code,
            selector_dpl=task.stack_cached_selector_dpl))
    image.current_pid = (kernel.scheduler.current.pid
                         if kernel.scheduler.current else None)
    image.runqueue_pids = [t.pid for t in kernel.scheduler.runqueue]

    # filesystem
    image.fs_inodes = copy.deepcopy(kernel.fs.inodes)
    image.fs_next_block = kernel.fs._next_block
    if include_disk:
        image.disk_blocks = dict(kernel.machine.disk.blocks)

    image.frame_refs = dict(kernel.vmem._frame_refs)
    return image


# ---------------------------------------------------------------------------
# restore
# ---------------------------------------------------------------------------

def restore(image: CheckpointImage, mercury: Mercury,
            cpu: Optional["Cpu"] = None, fresh_kernel: bool = False) -> "Kernel":
    """Restore a checkpoint.

    - Rollback on the same machine: pass the Mercury whose kernel took the
      snapshot; its current state is discarded and rebuilt.
    - Disaster recovery: pass a Mercury on a fresh machine with
      ``fresh_kernel=True``; a new kernel is created and populated.

    Per §6.1 the VMM does the restoring: it is attached for the duration
    (and detached again if it was not attached before)."""
    cpu = cpu or mercury.machine.boot_cpu
    was_native = mercury.mode is Mode.NATIVE

    if fresh_kernel and mercury.kernel is None:
        kernel = mercury.create_kernel(name=image.kernel_name,
                                       owner_id=image.owner_id, boot=False)
        kernel.booted = True  # restored, not booted
        _install_boot_tables(kernel, cpu)
    else:
        kernel = mercury.kernel
        if kernel is None:
            raise CheckpointError("no kernel to restore into")

    if was_native and kernel.booted:
        mercury.attach(cpu)
    try:
        _wipe(kernel, cpu)
        _rebuild(kernel, image, cpu)
    finally:
        if was_native and mercury.mode is not Mode.NATIVE:
            mercury.detach(cpu)
    return kernel


def restore_as_guest(image: CheckpointImage, host: Mercury,
                     cpu: Optional["Cpu"] = None,
                     guest_addr: Optional[str] = None) -> "Kernel":
    """Restore a checkpoint as a *hosted guest* on another machine (§6.3:
    the migrated execution environment lands on a machine already in
    partial-virtual mode, accommodating multiple operating systems).

    The restored kernel gets its own domain, a VirtualVO, and split I/O to
    the host's driver domain.  Shared (networked) storage is modelled by
    copying the image's disk blocks onto the host's disk."""
    from repro.core.virtual_vo import VirtualVO
    from repro.guestos.kernel import Kernel
    from repro.guestos.splitio import connect_split_block, connect_split_net

    if host.mode is Mode.NATIVE:
        raise CheckpointError("host must have its VMM attached")
    cpu = cpu or host.machine.boot_cpu

    owner_id = max(list(host.vmm.domains) + [0]) + 1
    domain = host.vmm.create_domain(image.kernel_name, domain_id=owner_id)
    guest_vo = VirtualVO(host.machine, host.vmm, domain)
    guest = Kernel(host.machine, guest_vo, owner_id=owner_id,
                   name=image.kernel_name, has_devices=False)
    domain.guest = guest
    guest.booted = True

    # networked storage: the image's blocks appear on the host's disk
    if image.disk_blocks is not None:
        host.machine.disk.blocks.update(image.disk_blocks)

    _rebuild(guest, image, cpu)

    # §5.2: frontends are created and connected *after* the migration
    connect_split_block(guest, host.kernel, host.vmm)
    connect_split_net(guest, host.kernel, host.vmm,
                      guest_addr or f"{host.machine.nic.addr}:m{owner_id}")
    host._guests.append(guest)
    return guest


def _install_boot_tables(kernel: "Kernel", cpu: "Cpu") -> None:
    """Minimal hardware bring-up for a restored-from-scratch kernel."""
    from repro.hw.cpu import SegmentDescriptor
    from repro.hw.interrupts import VEC_DISK, VEC_NET, VEC_TIMER

    for c in kernel.machine.cpus:
        c.gdt = {1: SegmentDescriptor("kernel_cs", 0),
                 2: SegmentDescriptor("kernel_ds", 0),
                 3: SegmentDescriptor("user_cs", 3)}
    kernel.idt.set_gate(VEC_TIMER, kernel._timer_irq, name="timer")
    if kernel.has_devices:
        kernel.idt.set_gate(VEC_DISK, kernel._disk_irq, name="disk")
        kernel.idt.set_gate(VEC_NET, kernel._net_irq, name="net")
        kernel.vo.load_idt(cpu, kernel.idt)
        kernel.vo.bind_irq(cpu, "timer", 0, VEC_TIMER)
        kernel.vo.bind_irq(cpu, kernel.machine.disk.name, 0, VEC_DISK)
        kernel.vo.bind_irq(cpu, kernel.machine.nic.name, 0, VEC_NET)


def _wipe(kernel: "Kernel", cpu: "Cpu") -> None:
    """Discard the kernel's current state (the failed instance).

    Address spaces are torn down through the VO so that, in virtual mode,
    the VMM unpins them and its page type/count info stays coherent before
    the rebuild re-pins the restored tables."""
    mem = kernel.machine.memory
    kernel.scheduler.current = None
    kernel.scheduler.runqueue.clear()
    kernel.procs.tasks.clear()
    for aspace in list(kernel.aspaces):
        kernel.unregister_aspace(aspace)
        kernel.vo.destroy_address_space(cpu, aspace)
    for frame in list(mem.frames_owned_by(kernel.owner_id)):
        mem.free(int(frame))
    kernel.vmem._frame_refs.clear()
    kernel.fs.inodes.clear()
    kernel.fs.cache.invalidate()


def _rebuild(kernel: "Kernel", image: CheckpointImage, cpu: "Cpu") -> None:
    mem = kernel.machine.memory

    # frames: allocate fresh ones on this machine and remap every reference
    # (the pseudo-physical -> physical translation of §3.2.2; the target's
    # frame numbering never matches the source's)
    fmap: dict[int, int] = {}
    for old_frame, content in image.frames.items():
        new_frame = mem.alloc(kernel.owner_id)
        fmap[old_frame] = new_frame
        if content is not None:
            mem.write(new_frame, copy.deepcopy(content))
        cpu.charge(CYC_SNAPSHOT_PER_FRAME)
    kernel.vmem._frame_refs = {fmap[f]: n for f, n in image.frame_refs.items()
                               if f in fmap}

    # address spaces: rebuild the structural objects over the new frames,
    # under one lazy-MMU region — the tables are unpinned while being
    # rebuilt (plain stores), and pinning via new_address_space flushes
    # anything a virtual-mode restore queued before validation
    restored_aspaces: list[AddressSpace] = []
    with kernel.lazy_mmu(cpu):
        for a_img in image.aspaces:
            aspace = _rebuild_aspace(kernel, a_img, fmap)
            kernel.register_aspace(aspace)
            restored_aspaces.append(aspace)
            if kernel.vo.is_virtual:
                kernel.vo.new_address_space(cpu, aspace)

    # tasks
    by_pid: dict[int, Task] = {}
    for t_img in image.tasks:
        task = Task(pid=t_img.pid, name=t_img.name,
                    aspace=restored_aspaces[t_img.aspace_index],
                    state=TaskState(t_img.state),
                    brk=t_img.brk, exit_code=t_img.exit_code,
                    stack_cached_selector_dpl=t_img.selector_dpl)
        task.vmas = [v.clone() for v in t_img.vmas]
        task.fds = {fd: list(v) for fd, v in t_img.fds.items()}
        task.next_fd = t_img.next_fd
        by_pid[task.pid] = task
        kernel.procs.tasks[task.pid] = task
    for t_img in image.tasks:
        if t_img.parent_pid is not None and t_img.parent_pid in by_pid:
            by_pid[t_img.pid].parent = by_pid[t_img.parent_pid]
    kernel.procs._next_pid = image.next_pid

    # scheduler
    for pid in image.runqueue_pids:
        if pid in by_pid:
            kernel.scheduler.runqueue.append(by_pid[pid])
    if image.current_pid is not None and image.current_pid in by_pid:
        current = by_pid[image.current_pid]
        current.state = TaskState.READY
        kernel.scheduler.context_switch(cpu, current)

    # filesystem
    kernel.fs.inodes = copy.deepcopy(image.fs_inodes)
    kernel.fs._next_block = image.fs_next_block
    if image.disk_blocks is not None:
        kernel.machine.disk.blocks.update(image.disk_blocks)


def _rebuild_aspace(kernel: "Kernel", a_img: AspaceImage,
                    fmap: dict[int, int]) -> AddressSpace:
    """Reconstruct an AddressSpace over the remapped frames — including the
    page-table pages themselves, so the VMM's view after a later
    attach/pin is structurally identical to the snapshot."""
    from repro.hw.paging import PageTablePage

    mem = kernel.machine.memory
    aspace = AddressSpace.__new__(AddressSpace)
    aspace.mem = mem
    aspace.owner = kernel.owner_id
    pgd_frame = fmap[a_img.pgd_frame]
    aspace.pgd = PageTablePage(pgd_frame, level=2)
    mem.frame_objects[pgd_frame] = aspace.pgd
    for pgd_idx, leaf_frame in a_img.leaf_frames.items():
        leaf = PageTablePage(fmap[leaf_frame], level=1)
        aspace.pgd.entries[pgd_idx] = leaf
        mem.frame_objects[fmap[leaf_frame]] = leaf
    for vaddr, (frame, present, writable, user, cow) in a_img.ptes.items():
        aspace.set_pte(vaddr, Pte(frame=fmap[frame], present=present,
                                  writable=writable, user=user, cow=cow))
    return aspace
