"""Self-healing of operating systems (§6.2).

Sensors monitor the OS for anomalies; when one fires, the OS is
self-virtualized into partial-virtual mode, the pre-cached VMM — which has
full control over the operating system — repairs the tainted state, and is
detached again.  No remote repair machine (the paper's contrast with
Backdoors-style healing) and no steady-state overhead.

A :class:`Sensor` pairs a detector with a repairer.  Built-in sensors cover
the kinds of state corruption the tests inject: scheduler runqueue damage,
process-table inconsistencies, filesystem metadata corruption, and frame
reference-count skew.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.mercury import Mercury, Mode
from repro.errors import HealingError
from repro.guestos.process import TaskState

if TYPE_CHECKING:
    from repro.guestos.kernel import Kernel
    from repro.hw.cpu import Cpu

#: cycles the VMM spends introspecting + repairing per detected anomaly
CYC_REPAIR = 60_000


@dataclass
class Sensor:
    """One anomaly detector + repairer pair.

    ``detect(kernel) -> bool`` (True = anomaly present);
    ``repair(kernel, cpu)`` fixes the state (runs with the VMM attached)."""

    name: str
    detect: Callable[["Kernel"], bool]
    repair: Callable[["Kernel", "Cpu"], None]
    fires: int = 0


@dataclass
class HealingRecord:
    sensor_name: str
    detected_at_cycles: int
    repair_cycles: int
    healed: bool


class SelfHealer:
    """Monitors a self-virtualized OS and heals it through the VMM.

    One detection loop covers both damage domains: guest-OS anomalies
    (the sensor suite below, repaired *through* the attached VMM) and
    VMM-structure corruption (the VMI watchdog's verdicts, repaired by
    microrebooting the VMM via :class:`~repro.core.recovery.
    RecoveryManager`).  Pass ``watchdog``/``recovery`` — or pre-install
    them on the Mercury instance — to enable the VMM half."""

    def __init__(self, mercury: Mercury,
                 sensors: Optional[list[Sensor]] = None,
                 watchdog=None, recovery=None):
        self.mercury = mercury
        self.sensors = sensors if sensors is not None else default_sensors()
        self.watchdog = (watchdog if watchdog is not None
                         else getattr(mercury, "watchdog", None))
        self.recovery = (recovery if recovery is not None
                         else getattr(mercury, "recovery", None))
        self.history: list[HealingRecord] = []

    def scan(self, cpu: Optional["Cpu"] = None) -> list[HealingRecord]:
        """One monitoring pass: run every sensor; heal anything that
        fires.  The VMM is attached at most once per pass (§6.2: 'it incurs
        no performance degradation as the VMM is only required during
        system healing')."""
        mercury = self.mercury
        kernel = mercury.kernel
        cpu = cpu or mercury.machine.boot_cpu

        records = self._scan_vmm(cpu)
        firing = [s for s in self.sensors if s.detect(kernel)]
        if not firing:
            return records

        was_native = mercury.mode is Mode.NATIVE
        if was_native:
            mercury.attach(cpu)
        vmm_records, records = records, []
        try:
            for sensor in firing:
                sensor.fires += 1
                t0 = mercury.machine.clock.cycles
                cpu.charge(CYC_REPAIR)
                sensor.repair(kernel, cpu)
                healed = not sensor.detect(kernel)
                records.append(HealingRecord(
                    sensor_name=sensor.name,
                    detected_at_cycles=t0,
                    repair_cycles=mercury.machine.clock.cycles - t0,
                    healed=healed))
                if not healed:
                    raise HealingError(
                        f"sensor {sensor.name!r} could not repair the anomaly")
        finally:
            self.history.extend(records)
            if was_native and mercury.mode is not Mode.NATIVE:
                mercury.detach(cpu)
        return vmm_records + records

    def _scan_vmm(self, cpu: "Cpu") -> list[HealingRecord]:
        """The VMM half of the loop: consume a watchdog verdict (running a
        fresh scan if none is pending) and heal by microreboot."""
        watchdog, recovery = self.watchdog, self.recovery
        if watchdog is None or recovery is None:
            return []
        verdict = watchdog.take_verdict()
        if verdict is None:
            verdict = watchdog.scan(cpu)
            watchdog.pending_verdict = None
        if verdict is None:
            return []
        record = recovery.recover(verdict, cpu=cpu)
        if record is None:  # re-entrant scan during a recovery
            return []
        healing = HealingRecord(
            sensor_name=f"vmm:{record.invariant}",
            detected_at_cycles=record.detected_at,
            repair_cycles=record.mttr_cycles or 0,
            healed=record.success)
        self.history.append(healing)
        if not record.success:
            raise HealingError(
                f"VMM recovery for {record.invariant!r} failed: "
                f"{record.error}")
        return [healing]


# ---------------------------------------------------------------------------
# built-in sensors
# ---------------------------------------------------------------------------

def _detect_runqueue_damage(kernel: "Kernel") -> bool:
    """Zombie or duplicate entries on the runqueue."""
    seen = set()
    for task in kernel.scheduler.runqueue:
        if task.state == TaskState.ZOMBIE or task.pid in seen:
            return True
        seen.add(task.pid)
    return False


def _repair_runqueue(kernel: "Kernel", cpu: "Cpu") -> None:
    seen = set()
    fixed = []
    for task in kernel.scheduler.runqueue:
        if task.state != TaskState.ZOMBIE and task.pid not in seen:
            fixed.append(task)
            seen.add(task.pid)
    kernel.scheduler.runqueue.clear()
    kernel.scheduler.runqueue.extend(fixed)


def _detect_proc_table_skew(kernel: "Kernel") -> bool:
    """A task whose pid key disagrees with the task, or a dangling parent."""
    for pid, task in kernel.procs.tasks.items():
        if task.pid != pid:
            return True
        if task.parent is not None and \
                task.parent.pid not in kernel.procs.tasks and \
                task.parent.state != TaskState.ZOMBIE:
            return True
    return False


def _repair_proc_table(kernel: "Kernel", cpu: "Cpu") -> None:
    fixed = {}
    for pid, task in kernel.procs.tasks.items():
        task.pid = pid
        if task.parent is not None and \
                task.parent.pid not in kernel.procs.tasks:
            task.parent = None  # reparent to init semantics
        fixed[pid] = task
    kernel.procs.tasks = fixed


def _detect_fs_corruption(kernel: "Kernel") -> bool:
    """An inode whose size disagrees with its block list, or negative
    link counts."""
    from repro.guestos.fs import BLOCK_SIZE
    for inode in kernel.fs.inodes.values():
        if inode.nlink < 0:
            return True
        if inode.size > len(inode.blocks) * BLOCK_SIZE:
            return True
    return False


def _repair_fs(kernel: "Kernel", cpu: "Cpu") -> None:
    from repro.guestos.fs import BLOCK_SIZE
    for inode in kernel.fs.inodes.values():
        if inode.nlink < 0:
            inode.nlink = 1
        if inode.size > len(inode.blocks) * BLOCK_SIZE:
            inode.size = len(inode.blocks) * BLOCK_SIZE


def _detect_frame_ref_skew(kernel: "Kernel") -> bool:
    """A COW share count for a frame nobody maps."""
    mapped = set()
    for aspace in kernel.aspaces:
        mapped.update(aspace.mapped_frames())
    return any(f not in mapped for f in kernel.vmem._frame_refs)


def _repair_frame_refs(kernel: "Kernel", cpu: "Cpu") -> None:
    mapped = set()
    for aspace in kernel.aspaces:
        mapped.update(aspace.mapped_frames())
    for frame in [f for f in kernel.vmem._frame_refs if f not in mapped]:
        del kernel.vmem._frame_refs[frame]
        if kernel.machine.memory.owner_of(frame) == kernel.owner_id:
            kernel.machine.memory.free(frame)


def default_sensors() -> list[Sensor]:
    """The standard sensor suite."""
    return [
        Sensor("runqueue", _detect_runqueue_damage, _repair_runqueue),
        Sensor("proc-table", _detect_proc_table_skew, _repair_proc_table),
        Sensor("fs-metadata", _detect_fs_corruption, _repair_fs),
        Sensor("frame-refs", _detect_frame_ref_skew, _repair_frame_refs),
    ]
