"""Usage scenarios of self-virtualization (§6 of the paper).

Each module is one scenario, built on the Mercury core:

- :mod:`repro.scenarios.checkpoint` — checkpoint/restart of operating
  systems (§6.1): attach, snapshot, detach; restore locally after a
  software failure or on another machine after a hardware failure.
- :mod:`repro.scenarios.migration` — live migration with iterative
  pre-copy and dirty-page logging (the primitive §6.3 and §6.5 rely on).
- :mod:`repro.scenarios.maintenance` — online hardware maintenance
  (§6.3): migrate away, maintain, migrate back, return to native.
- :mod:`repro.scenarios.liveupdate` — live kernel updating (§6.4,
  LUCOS-style) with the VMM attached only for the update window.
- :mod:`repro.scenarios.healing` — self-healing (§6.2): sensors detect
  anomalies, the attached VMM repairs tainted state.
- :mod:`repro.scenarios.cluster` — HPC cluster availability (§6.5):
  failure prediction plus proactive migration.
"""

from repro.scenarios.checkpoint import CheckpointImage, checkpoint, restore
from repro.scenarios.migration import LiveMigration, MigrationReport

__all__ = [
    "CheckpointImage",
    "LiveMigration",
    "MigrationReport",
    "checkpoint",
    "restore",
]
