"""Live updating operating systems (§6.4).

LUCOS-style kernel patching, but without LUCOS's always-on VMM: "When
there is a need to perform a live update, a VMM could be dynamically
attached and the operating systems could be turned into partial-virtual
mode.  The attached VMM then applies the live update and is detached when
the live update is completed."

A :class:`KernelPatch` replaces a syscall handler (the simulator's stand-in
for patching kernel text) and may carry a state transformer (for patches
that change data layouts) plus a validator.  The updater quiesces the
kernel at a safe point (VO refcount zero — the same safety condition as a
mode switch), applies under the VMM, validates, and can roll back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.mercury import Mercury, Mode
from repro.errors import LiveUpdateError
from repro.guestos.syscalls import SYSCALL_TABLE

if TYPE_CHECKING:
    from repro.guestos.kernel import Kernel
    from repro.hw.cpu import Cpu

#: cycles the VMM spends applying one patch (map kernel text, write
#: trampolines, flush icache)
CYC_APPLY_PATCH = 45_000


@dataclass
class KernelPatch:
    """One live update."""

    name: str
    target_syscall: str
    replacement: Callable
    #: optional data-state transformer run under the VMM
    state_transform: Optional[Callable[["Kernel"], None]] = None
    #: must return True on a healthy post-patch kernel
    validator: Optional[Callable[["Kernel"], bool]] = None


@dataclass
class UpdateRecord:
    patch: KernelPatch
    applied_at_cycles: int
    attach_us: float
    detach_us: float
    rolled_back: bool = False


class LiveUpdater:
    """Applies kernel patches through a transiently-attached VMM."""

    def __init__(self, mercury: Mercury):
        self.mercury = mercury
        self.history: list[UpdateRecord] = []
        self._saved: dict[str, Callable] = {}

    def apply(self, patch: KernelPatch,
              cpu: Optional["Cpu"] = None) -> UpdateRecord:
        """The full §6.4 flow: attach, patch, validate, detach."""
        mercury = self.mercury
        kernel = mercury.kernel
        cpu = cpu or mercury.machine.boot_cpu
        if patch.target_syscall not in SYSCALL_TABLE:
            raise LiveUpdateError(
                f"patch {patch.name!r} targets unknown syscall "
                f"{patch.target_syscall!r}")

        was_native = mercury.mode is Mode.NATIVE
        attach_us = 0.0
        if was_native:
            rec = mercury.attach(cpu)
            attach_us = rec.us(cpu.cost.freq_mhz)

        # safe point: nobody inside virtualization-sensitive code
        if kernel.vo.busy():
            raise LiveUpdateError("kernel not quiescent; retry later")

        cpu.charge(CYC_APPLY_PATCH)
        self._saved.setdefault(patch.target_syscall,
                               kernel.syscall_overrides.get(
                                   patch.target_syscall,
                                   SYSCALL_TABLE[patch.target_syscall]))
        kernel.syscall_overrides[patch.target_syscall] = patch.replacement
        if patch.state_transform is not None:
            patch.state_transform(kernel)

        rolled_back = False
        if patch.validator is not None and not patch.validator(kernel):
            # roll back under the same VMM
            kernel.syscall_overrides[patch.target_syscall] = \
                self._saved[patch.target_syscall]
            rolled_back = True

        detach_us = 0.0
        if was_native:
            rec = mercury.detach(cpu)
            detach_us = rec.us(cpu.cost.freq_mhz)

        record = UpdateRecord(patch=patch,
                              applied_at_cycles=mercury.machine.clock.cycles,
                              attach_us=attach_us, detach_us=detach_us,
                              rolled_back=rolled_back)
        self.history.append(record)
        if rolled_back:
            raise LiveUpdateError(
                f"patch {patch.name!r} failed validation; rolled back")
        return record

    def revert(self, patch: KernelPatch,
               cpu: Optional["Cpu"] = None) -> None:
        """Undo a previously applied patch (again through the VMM)."""
        mercury = self.mercury
        kernel = mercury.kernel
        cpu = cpu or mercury.machine.boot_cpu
        original = self._saved.get(patch.target_syscall)
        if original is None:
            raise LiveUpdateError(f"patch {patch.name!r} was never applied")
        was_native = mercury.mode is Mode.NATIVE
        if was_native:
            mercury.attach(cpu)
        cpu.charge(CYC_APPLY_PATCH)
        kernel.syscall_overrides[patch.target_syscall] = original
        if was_native:
            mercury.detach(cpu)
