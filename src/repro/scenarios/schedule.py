"""Periodic checkpointing (§6.1's deployment mode).

"By checkpointing the execution environment periodically and restarting
the execution from a specific checkpoint during a failure, they provide
proactive fault-tolerant features to many mission-critical systems."

:class:`CheckpointSchedule` arms a repeating timer on the machine clock;
each firing attaches the pre-cached VMM, snapshots, detaches, and retains
the most recent ``keep`` images.  Recovery rolls back to the newest (or
any retained) image.  The interesting quantity — asserted in tests — is
the *work lost* upper bound: at most one period plus the failure-detection
lag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core.mercury import Mercury
from repro.errors import CheckpointError
from repro.scenarios.checkpoint import CheckpointImage, checkpoint, restore

if TYPE_CHECKING:
    from repro.hw.cpu import Cpu


@dataclass
class RetainedImage:
    image: CheckpointImage
    taken_at_cycles: int
    sequence: int


class CheckpointSchedule:
    """Periodic, timer-driven checkpoints with bounded retention."""

    def __init__(self, mercury: Mercury, period_ms: float = 1000.0,
                 keep: int = 3):
        if keep < 1:
            raise CheckpointError("must retain at least one image")
        self.mercury = mercury
        self.period_ms = period_ms
        self.keep = keep
        self.images: list[RetainedImage] = []
        self._armed = False
        self._sequence = 0

    @property
    def period_cycles(self) -> int:
        freq = self.mercury.machine.config.cost.freq_mhz
        return int(self.period_ms * 1000 * freq)

    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._armed:
            return
        self._armed = True
        self._arm()

    def stop(self) -> None:
        self._armed = False

    def _arm(self) -> None:
        def fire() -> None:
            if not self._armed:
                return
            self.take_now()
            self._arm()
        self.mercury.machine.clock.schedule(self.period_cycles, fire)

    def take_now(self, cpu: Optional["Cpu"] = None) -> RetainedImage:
        """One checkpoint, immediately (also the timer's body)."""
        image = checkpoint(self.mercury, cpu)
        retained = RetainedImage(
            image=image,
            taken_at_cycles=self.mercury.machine.clock.cycles,
            sequence=self._sequence)
        self._sequence += 1
        self.images.append(retained)
        while len(self.images) > self.keep:
            self.images.pop(0)
        return retained

    # ------------------------------------------------------------------

    def latest(self) -> RetainedImage:
        if not self.images:
            raise CheckpointError("no checkpoint retained yet")
        return self.images[-1]

    def recover(self, cpu: Optional["Cpu"] = None,
                sequence: Optional[int] = None) -> RetainedImage:
        """Roll the OS back to the newest (or a specific) retained image."""
        if sequence is None:
            chosen = self.latest()
        else:
            matches = [r for r in self.images if r.sequence == sequence]
            if not matches:
                raise CheckpointError(f"no retained image #{sequence}")
            chosen = matches[0]
        restore(chosen.image, self.mercury, cpu)
        return chosen

    def work_at_risk_cycles(self) -> int:
        """Upper bound on lost work if the OS died right now."""
        if not self.images:
            return self.mercury.machine.clock.cycles
        return self.mercury.machine.clock.cycles - self.latest().taken_at_cycles
