"""Live migration with iterative pre-copy (the Clark et al. algorithm the
paper cites as [39]; the primitive behind §6.3 online maintenance and §6.5
HPC availability).

Rounds: push every guest frame across the wire while the guest keeps
running (a mutator callback models that); frames dirtied during a round are
re-sent in the next; when the dirty set stops shrinking (or a round budget
is hit), the guest is paused for a brief stop-and-copy of the remainder and
its execution context — that pause is the measured *downtime*.

Dirty logging rides on :attr:`PhysicalMemory.generation`, the simulator's
per-frame write counter — the stand-in for the shadow-mode dirty bitmap a
real VMM keeps.  Device handling follows §5.2: disk state is assumed shared
(networked storage); network frontends are *re-created* on the target after
the migration completes rather than decoupled before it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.core.mercury import Mercury, Mode
from repro.errors import MigrationError
from repro.scenarios.checkpoint import (CheckpointImage, checkpoint, restore,
                                        restore_as_guest, _snapshot)
from repro.params import PAGE_SIZE

if TYPE_CHECKING:
    from repro.guestos.kernel import Kernel
    from repro.hw.cpu import Cpu

#: cycles of CPU work to transmit one page (map, copy, packetize)
CYC_SEND_PER_PAGE = 900
#: wire nanoseconds per page at gigabit rate
WIRE_NS_PER_PAGE = 34_000


@dataclass
class RoundStats:
    round_no: int
    pages_sent: int
    cycles: int


@dataclass
class MigrationReport:
    """Outcome of one live migration."""

    rounds: list[RoundStats] = field(default_factory=list)
    stop_and_copy_pages: int = 0
    #: total wall-clock of the whole migration, cycles
    total_cycles: int = 0
    #: guest-visible pause (stop-and-copy + resume), cycles
    downtime_cycles: int = 0
    aborted: bool = False

    @property
    def total_pages_sent(self) -> int:
        return sum(r.pages_sent for r in self.rounds) + self.stop_and_copy_pages

    def downtime_ms(self, freq_mhz: int = 3000) -> float:
        return self.downtime_cycles / (freq_mhz * 1000.0)

    def total_ms(self, freq_mhz: int = 3000) -> float:
        return self.total_cycles / (freq_mhz * 1000.0)


class LiveMigration:
    """Migrate a self-virtualized OS from one Mercury machine to another.

    The source must be in full-virtual mode (§6.3: the operator switches
    the machine to full-virtual dynamically); the target must have an
    attached VMM in partial-virtual mode to accommodate the incomer."""

    def __init__(self, source: Mercury, target: Mercury,
                 max_rounds: int = 5, dirty_threshold: int = 32):
        if source.machine.clock is not target.machine.clock:
            raise MigrationError(
                "source and target machines must share a clock (link them)")
        self.source = source
        self.target = target
        self.max_rounds = max_rounds
        self.dirty_threshold = dirty_threshold

    def run(self, mutator: Optional[Callable[[int], None]] = None
            ) -> tuple["Kernel", MigrationReport]:
        """Execute the migration.  ``mutator(round_no)`` models the guest
        continuing to run (and dirty pages) during each pre-copy round.
        Returns the restored kernel on the target and the report."""
        src, dst = self.source, self.target
        if src.mode is not Mode.FULL_VIRTUAL:
            raise MigrationError(
                f"source must be in full-virtual mode, is {src.mode}")
        if dst.mode is Mode.NATIVE:
            raise MigrationError("target must have its VMM attached")

        clock = src.machine.clock
        cpu = src.machine.boot_cpu
        mem = src.machine.memory
        kernel = src.kernel
        report = MigrationReport()
        t0 = clock.cycles

        # -- iterative pre-copy -----------------------------------------
        owned = mem.frames_owned_by(kernel.owner_id)
        dirty = set(int(f) for f in owned)           # round 0: everything
        gen_seen = {int(f): -1 for f in owned}

        for round_no in range(self.max_rounds):
            # round 0 always pushes the full image; later rounds stop once
            # the dirty set is small enough to stop-and-copy cheaply
            if round_no > 0 and len(dirty) <= self.dirty_threshold:
                break
            r0 = clock.cycles
            for frame in sorted(dirty):
                self._send_page(cpu)
                gen_seen[frame] = int(mem.generation[frame])
            report.rounds.append(RoundStats(
                round_no=round_no, pages_sent=len(dirty),
                cycles=clock.cycles - r0))
            # the guest ran meanwhile and dirtied pages
            if mutator is not None:
                mutator(round_no)
            owned = mem.frames_owned_by(kernel.owner_id)
            dirty = {
                int(f) for f in owned
                if int(mem.generation[f]) != gen_seen.get(int(f), -1)
            }

        # -- stop-and-copy ------------------------------------------------
        pause_start = clock.cycles
        image = _snapshot(kernel, cpu, include_disk=True)  # networked FS: disk shared
        for _ in range(len(dirty)):
            self._send_page(cpu)
        report.stop_and_copy_pages = len(dirty)

        if dst.kernel is None:
            # target is an empty shell: the migrated OS becomes its OS
            restored = restore(image, dst, cpu=dst.machine.boot_cpu,
                               fresh_kernel=True)
            self._reconnect_devices(restored, dst)
        else:
            # target runs its own driver-domain OS: the incomer lands as a
            # hosted guest with split I/O (§6.3)
            restored = restore_as_guest(image, dst,
                                        cpu=dst.machine.boot_cpu)
        report.downtime_cycles = clock.cycles - pause_start
        report.total_cycles = clock.cycles - t0

        # the source instance is gone; release its frames and the VMM's
        # (now meaningless) validation state for them
        self._release_source(self.source)
        return restored, report

    # ------------------------------------------------------------------

    def _send_page(self, cpu: "Cpu") -> None:
        cpu.charge(CYC_SEND_PER_PAGE)
        cpu.charge(int(cpu.cost.cycles_from_ns(WIRE_NS_PER_PAGE)))

    def _reconnect_devices(self, restored: "Kernel", dst: Mercury) -> None:
        """Point the restored kernel's I/O at the target machine.

        When the restored kernel lands as the target's own (driver-domain)
        kernel, it gets native drivers on the target's devices; when it
        lands as a hosted guest it would get frontends (handled by
        host_guest)."""
        from repro.guestos.drivers import NativeBlockDriver, NativeNetDriver
        if restored is dst.kernel:
            restored.block_driver = NativeBlockDriver(restored)
            restored.net_driver = NativeNetDriver(restored)

    def _release_source(self, source: Mercury) -> None:
        kernel = source.kernel
        mem = kernel.machine.memory
        kernel.scheduler.current = None
        kernel.scheduler.runqueue.clear()
        kernel.procs.tasks.clear()
        for aspace in list(kernel.aspaces):
            kernel.aspaces.remove(aspace)
            if source.domain is not None and aspace in source.domain.aspaces:
                source.domain.unregister_aspace(aspace)
        # the evacuated OS's page validations are void
        source.vmm.page_info.reset()
        for frame in list(mem.frames_owned_by(kernel.owner_id)):
            mem.free(int(frame))
        kernel.vmem._frame_refs.clear()
        kernel.booted = False
