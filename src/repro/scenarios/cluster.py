"""HPC cluster availability through self-virtualization (§6.5).

Nodes run long computations in native mode at full speed.  Hardware
monitors (temperature, fan, voltage, power — here: injected predictions)
warn of imminent failures; the threatened node self-virtualizes to
full-virtual mode and live-migrates its OS to a healthy node, which
simultaneously self-virtualizes to partial-virtual mode to accommodate it.
The running programs never stop.

The module also implements the comparison baselines the §6.5 argument is
made against: *stop-and-restart* (job dies with the node, restarts from
zero) and *periodic checkpoint* (restarts from the last checkpoint) — the
benches report lost work under each policy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core.mercury import Mercury, Mode
from repro.errors import MachineCheck, ScenarioError
from repro.hw.clock import Clock
from repro.hw.machine import Machine
from repro.params import MachineConfig, small_config
from repro.scenarios.checkpoint import checkpoint, restore
from repro.scenarios.migration import LiveMigration

if TYPE_CHECKING:
    from repro.guestos.kernel import Kernel
    from repro.scenarios.checkpoint import CheckpointImage


class _PredictionCleared(Exception):
    """Internal: sensors recovered mid-pre-copy; abandon the migration."""


class NodeState(enum.Enum):
    HEALTHY = "healthy"
    WARNED = "warned"       # monitors predict a failure
    FAILED = "failed"
    EVACUATED = "evacuated"


@dataclass
class HardwareMonitor:
    """The §6.5 sensor bank: temperature/fan/voltage/power thresholds.

    Readings are injected by the simulation; ``predicts_failure`` is the
    policy evaluation of [51]'s failure-prediction strategy."""

    temperature_c: float = 45.0
    fan_rpm: float = 9000.0
    voltage_v: float = 12.0
    power_ok: bool = True
    temp_limit_c: float = 85.0
    fan_min_rpm: float = 2000.0
    voltage_band_v: tuple[float, float] = (11.0, 13.0)

    def predicts_failure(self) -> bool:
        lo, hi = self.voltage_band_v
        return (self.temperature_c >= self.temp_limit_c
                or self.fan_rpm <= self.fan_min_rpm
                or not (lo <= self.voltage_v <= hi)
                or not self.power_ok)


class ClusterNode:
    """One machine in the cluster, with Mercury and a monitor."""

    def __init__(self, name: str, clock: Clock,
                 config: Optional[MachineConfig] = None):
        self.name = name
        self.machine = Machine(config or small_config(), clock=clock,
                               name=name)
        self.mercury = Mercury(self.machine)
        self.kernel = self.mercury.create_kernel(name=f"{name}-linux")
        self.monitor = HardwareMonitor()
        self.state = NodeState.HEALTHY
        #: progress counter of the long-running job hosted here (if any)
        self.job_progress: Optional[int] = None

    def run_job_step(self, work_us: float = 1000.0) -> None:
        """Advance the hosted computation by one step."""
        if self.job_progress is None:
            raise ScenarioError(f"{self.name} hosts no job")
        self.kernel.user_compute(self.machine.boot_cpu, work_us)
        self.job_progress += 1

    def fail(self) -> None:
        """The predicted hardware failure arrives."""
        self.machine.failed = True
        self.state = NodeState.FAILED


@dataclass
class AvailabilityReport:
    """Comparing §6.5 self-virtualization against restart baselines."""

    policy: str
    job_steps_completed: int
    job_steps_lost: int
    downtime_cycles: int

    def downtime_ms(self, freq_mhz: int = 3000) -> float:
        return self.downtime_cycles / (freq_mhz * 1000.0)


class HpcCluster:
    """A set of nodes plus the evacuation policy of §6.5."""

    def __init__(self, num_nodes: int = 2,
                 config: Optional[MachineConfig] = None):
        if num_nodes < 2:
            raise ScenarioError("a cluster needs at least two nodes")
        self.clock = Clock(freq_mhz=(config or small_config()).cost.freq_mhz)
        self.nodes = [ClusterNode(f"node{i}", self.clock, config)
                      for i in range(num_nodes)]
        for a, b in zip(self.nodes, self.nodes[1:]):
            a.machine.link_to(b.machine)
        self.evacuations = 0

    def healthy_standby(self, exclude: ClusterNode) -> ClusterNode:
        """Pick the evacuation target: a healthy peer whose own sensors
        are quiet, preferring one not already accommodating an evacuee —
        so simultaneous predictions spread across distinct standbys
        instead of piling onto the first (they share one only when
        nothing else is left), and an evacuee is never parked on a
        machine that is itself about to fail."""
        candidates = [n for n in self.nodes
                      if n is not exclude and n.state == NodeState.HEALTHY
                      and not n.monitor.predicts_failure()]
        if not candidates:
            raise ScenarioError("no healthy standby node available")
        return min(candidates,
                   key=lambda n: (len(n.mercury.guests),
                                  self.nodes.index(n)))

    # ------------------------------------------------------------------
    # the self-virtualization policy
    # ------------------------------------------------------------------

    def handle_warning(self, node: ClusterNode, mutator=None,
                       cancel_on_recovery: bool = False) -> ClusterNode:
        """Monitors predicted a failure on ``node``: evacuate its OS to a
        healthy peer, per §6.5.  Returns the standby now hosting it.

        ``mutator(round_no)`` models the job running (and dirtying pages)
        during each pre-copy round.  With ``cancel_on_recovery``, the
        sensors are re-read between rounds; if the prediction has cleared
        (a transient thermal event, say) the migration is abandoned
        before stop-and-copy — pre-copy only streams page *copies*, so
        nothing needs undoing — and the node rolls back to native,
        returning ``node`` itself."""
        if not node.monitor.predicts_failure():
            raise ScenarioError(f"{node.name} has no failure prediction")
        node.state = NodeState.WARNED
        standby = self.healthy_standby(node)
        standby_was_native = standby.mercury.mode is Mode.NATIVE

        # the threatened OS goes full-virtual; the standby partial-virtual
        node.mercury.full_virtualize()
        if standby_was_native:
            standby.mercury.attach()

        def _round(round_no: int) -> None:
            if mutator is not None:
                mutator(round_no)
            if cancel_on_recovery and not node.monitor.predicts_failure():
                raise _PredictionCleared

        migration = LiveMigration(node.mercury, standby.mercury)
        try:
            hosted, report = migration.run(_round)
        except _PredictionCleared:
            node.mercury.departial()
            node.mercury.detach()
            if standby_was_native and not standby.mercury.guests:
                standby.mercury.detach()
            node.state = NodeState.HEALTHY
            return node
        standby.job_progress = node.job_progress
        node.job_progress = None
        node.state = NodeState.EVACUATED
        self.evacuations += 1
        self._last_migration = report
        return standby

    # ------------------------------------------------------------------
    # rolling maintenance (§6.3 applied fleet-wide)
    # ------------------------------------------------------------------

    def rolling_maintenance(self, maintain, job_steps_between: int = 3
                            ) -> list[str]:
        """Service every node's hardware, one at a time, while the
        cluster's job keeps running: each node in turn migrates its OS to
        a healthy peer, is maintained, and takes its OS back — the §6.3
        flow applied across the fleet.  Returns the maintenance order."""
        from repro.scenarios.maintenance import MaintenanceWindow

        order = []
        for node in list(self.nodes):
            standby = self.healthy_standby(node)
            had_job = node.job_progress is not None
            if had_job:
                # the job rides along inside the migrated OS; progress
                # bookkeeping follows it
                saved_progress = node.job_progress
            window = MaintenanceWindow(node.mercury, standby.mercury)
            window.perform(lambda n=node: maintain(n))
            order.append(node.name)
            # the standby no longer hosts anyone: back to native full speed
            if standby.mercury.mode is not Mode.NATIVE and \
                    not standby.mercury.guests:
                standby.mercury.detach()
            if had_job:
                node.job_progress = saved_progress
                for _ in range(job_steps_between):
                    node.run_job_step()
        return order

    # ------------------------------------------------------------------
    # policy comparison (for the scenario bench)
    # ------------------------------------------------------------------

    def run_with_policy(self, policy: str, total_steps: int,
                        fail_at_step: int,
                        checkpoint_every: int = 50) -> AvailabilityReport:
        """Run a ``total_steps`` job on node0 with a failure predicted (and
        then occurring) at ``fail_at_step``, under one of three policies:

        - ``"self-virtualization"``: proactive migration; no lost work.
        - ``"checkpoint"``: periodic checkpoints; work since the last one
          is lost.
        - ``"restart"``: the job restarts from zero.
        """
        node = self.nodes[0]
        node.job_progress = 0
        downtime = 0
        image: Optional["CheckpointImage"] = None
        last_ckpt_step = 0
        active = node

        step = 0
        while step < total_steps:
            if step == fail_at_step and active is node:
                if policy == "self-virtualization":
                    node.monitor.temperature_c = 95.0  # prediction fires
                    t0 = self.clock.cycles
                    active = self.handle_warning(node)
                    node.fail()  # the predicted failure arrives — harmless now
                    downtime += self._last_migration.downtime_cycles
                elif policy == "checkpoint":
                    node.fail()
                    t0 = self.clock.cycles
                    standby = self.healthy_standby(node)
                    if image is not None:
                        if standby.mercury.mode is Mode.NATIVE:
                            standby.mercury.attach()
                        from repro.scenarios.checkpoint import restore_as_guest
                        restore_as_guest(image, standby.mercury)
                        standby.job_progress = last_ckpt_step
                    else:
                        standby.job_progress = 0
                    active = standby
                    step = active.job_progress
                    downtime += self.clock.cycles - t0
                    continue
                elif policy == "restart":
                    node.fail()
                    t0 = self.clock.cycles
                    standby = self.healthy_standby(node)
                    standby.job_progress = 0
                    active = standby
                    step = 0
                    # a reboot + job restart window
                    self.clock.advance(30_000_000_000)  # ~10 s at 3 GHz
                    downtime += self.clock.cycles - t0
                    continue
                else:
                    raise ScenarioError(f"unknown policy {policy!r}")

            if policy == "checkpoint" and active is node and \
                    step and step % checkpoint_every == 0 and \
                    step != last_ckpt_step:
                image = checkpoint(node.mercury)
                last_ckpt_step = step

            active.run_job_step()
            step = active.job_progress

        lost = max(0, fail_at_step - (last_ckpt_step if policy == "checkpoint"
                                      else (0 if policy == "restart"
                                            else fail_at_step)))
        if policy == "restart":
            lost = fail_at_step
        elif policy == "self-virtualization":
            lost = 0
        return AvailabilityReport(policy=policy,
                                  job_steps_completed=total_steps,
                                  job_steps_lost=lost,
                                  downtime_cycles=downtime)
