"""Domains and virtual CPUs.

A :class:`Domain` is one guest OS instance as the VMM sees it: an id, a
memory reservation, the set of address spaces it has registered, its event
channels/grant entries, and one :class:`Vcpu` per virtual processor.

Domain 0 conventions follow Xen: the *driver domain* has direct device
access and hosts the backend drivers (§5.2).  Under Mercury the
self-virtualized OS itself becomes the driver domain when the VMM attaches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.errors import DomainError

if TYPE_CHECKING:
    from repro.hw.paging import AddressSpace

DOM0_ID = 0


@dataclass(eq=False)
class Vcpu:
    """One virtual CPU: scheduling state plus the architectural context the
    VMM saves/restores at world switches.  Identity semantics (``eq=False``)
    — a VCPU is a unique schedulable entity, not a value."""

    vcpu_id: int
    domain_id: int
    runnable: bool = True
    #: saved guest context (CR3 frame, privilege, interrupt flag)
    saved_cr3: Optional[int] = None
    saved_if: bool = True
    #: credit-scheduler accounting
    credits: int = 0
    runtime_cycles: int = 0


class Domain:
    """One guest as managed by the VMM."""

    def __init__(self, domain_id: int, name: str, num_vcpus: int = 1,
                 is_driver_domain: bool = False):
        if domain_id < 0:
            raise DomainError(f"bad domain id {domain_id}")
        self.domain_id = domain_id
        self.name = name
        self.is_driver_domain = is_driver_domain
        self.vcpus = [Vcpu(i, domain_id) for i in range(num_vcpus)]
        #: address spaces this domain registered (pinned page tables)
        self.aspaces: list["AddressSpace"] = []
        #: pgd frame -> aspace index for CR3 loads (runs on every context
        #: switch; the list above stays for ordered iteration)
        self.aspace_by_pgd: dict[int, "AddressSpace"] = {}
        #: guest-installed trap table (vector -> handler) the VMM forwards to
        self.trap_table: dict[int, object] = {}
        self.event_pending: set[int] = set()
        self.event_mask: set[int] = set()
        self.alive = True
        #: the guest kernel object (set by the OS layer; opaque to the VMM)
        self.guest = None
        #: balloon reservation ledger, in pages.  Maintained by the balloon
        #: backend (inflate decrements, deflate increments); 0 means no
        #: balloon is connected and the domain's footprint is static.
        self.mem_pages = 0
        #: reservation floor: the elastic controller must never reclaim the
        #: domain below this, and the fleet balancer refuses to route to a
        #: domain under it
        self.mem_floor = 0
        #: last reservation target posted by the elastic controller
        #: (None = no balloon request outstanding)
        self.mem_target: Optional[int] = None

    @property
    def below_floor(self) -> bool:
        """True when the balloon ledger sits under the domain's floor."""
        return 0 < self.mem_pages < self.mem_floor

    def balloon_adjust(self, delta: int) -> None:
        """Move the reservation ledger by ``delta`` pages (the backend's
        commit point for inflate/deflate).  The ledger can never go
        negative: the frontend surrenders only frames it owns, so a
        negative ledger means double-accounting."""
        if self.mem_pages + delta < 0:
            raise DomainError(
                f"domain {self.domain_id} balloon ledger would go negative "
                f"({self.mem_pages} {delta:+d})")
        self.mem_pages += delta

    def register_aspace(self, aspace: "AddressSpace") -> None:
        if aspace not in self.aspaces:
            self.aspaces.append(aspace)
            self.aspace_by_pgd[aspace.pgd_frame] = aspace

    def unregister_aspace(self, aspace: "AddressSpace") -> None:
        try:
            self.aspaces.remove(aspace)
        except ValueError:
            raise DomainError("address space was not registered") from None
        self.aspace_by_pgd.pop(aspace.pgd_frame, None)

    def destroy(self) -> None:
        if not self.alive:
            raise DomainError(f"domain {self.domain_id} already destroyed")
        self.alive = False
        self.aspaces.clear()
        self.aspace_by_pgd.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Domain(id={self.domain_id}, name={self.name!r}, "
                f"vcpus={len(self.vcpus)}, driver={self.is_driver_domain})")
