"""Credit VCPU scheduler (Xen 3's default).

Each domain has a weight; every accounting period the scheduler hands out
credits proportionally.  VCPUs that still hold credits run at UNDER
priority, exhausted ones at OVER; within a priority class scheduling is
round-robin.  The simulator uses it to decide which VCPU a physical CPU
runs and to charge world-switch costs when hosting multiple domains
(the X-U and M-U configurations).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.errors import VMMError

if TYPE_CHECKING:
    from repro.vmm.domain import Domain, Vcpu

#: credits handed to a weight-1.0 domain's VCPU per accounting period
CREDITS_PER_PERIOD = 300
#: cycles of runtime that consume one credit
CYCLES_PER_CREDIT = 10_000


class CreditScheduler:
    """Weighted proportional-share scheduler over runnable VCPUs."""

    def __init__(self):
        self._domains: dict[int, "Domain"] = {}
        self._weights: dict[int, float] = {}
        self._under: deque["Vcpu"] = deque()
        self._over: deque["Vcpu"] = deque()
        self.world_switches = 0
        self._current: Optional["Vcpu"] = None

    def add_domain(self, domain: "Domain", weight: float = 1.0) -> None:
        if weight <= 0:
            raise VMMError(f"weight must be positive, got {weight}")
        self._domains[domain.domain_id] = domain
        self._weights[domain.domain_id] = weight
        for vcpu in domain.vcpus:
            vcpu.credits = int(CREDITS_PER_PERIOD * weight)
            if vcpu.runnable:
                self._under.append(vcpu)

    def remove_domain(self, domain: "Domain") -> None:
        self._domains.pop(domain.domain_id, None)
        self._weights.pop(domain.domain_id, None)
        vcpus = set(domain.vcpus)
        self._under = deque(v for v in self._under if v not in vcpus)
        self._over = deque(v for v in self._over if v not in vcpus)
        if self._current in vcpus:
            self._current = None

    # -- scheduling ---------------------------------------------------------

    def pick_next(self) -> Optional["Vcpu"]:
        """Choose the next VCPU: UNDER first, then OVER, round-robin."""
        for queue in (self._under, self._over):
            rotations = len(queue)
            for _ in range(rotations):
                vcpu = queue[0]
                queue.rotate(-1)
                if vcpu.runnable and self._domains.get(vcpu.domain_id, None) is not None:
                    if self._current is not vcpu:
                        self.world_switches += 1
                        self._current = vcpu
                    return vcpu
        return None

    def charge_runtime(self, vcpu: "Vcpu", cycles: int) -> None:
        """Debit credits for ``cycles`` of execution; demote to OVER when
        exhausted."""
        vcpu.runtime_cycles += cycles
        vcpu.credits -= cycles // CYCLES_PER_CREDIT
        if vcpu.credits <= 0 and vcpu in self._under:
            self._under.remove(vcpu)
            self._over.append(vcpu)

    def accounting_tick(self) -> None:
        """Periodic credit refresh: the period's credits are divided among
        domains *proportionally to weight* (Xen's scheme — the total handed
        out per period is fixed, so demand beyond a domain's share drains
        it and demotes it to OVER).  Replenished VCPUs return to UNDER."""
        total_weight = sum(self._weights.values()) or 1.0
        for dom_id, domain in self._domains.items():
            grant = int(CREDITS_PER_PERIOD * self._weights[dom_id]
                        / total_weight)
            grant = max(grant, 1)
            for vcpu in domain.vcpus:
                vcpu.credits = min(vcpu.credits + grant, 2 * grant)
        promoted = [v for v in self._over if v.credits > 0]
        for vcpu in promoted:
            self._over.remove(vcpu)
            self._under.append(vcpu)

    def block(self, vcpu: "Vcpu") -> None:
        vcpu.runnable = False

    def wake(self, vcpu: "Vcpu") -> None:
        if not vcpu.runnable:
            vcpu.runnable = True
            if vcpu not in self._under and vcpu not in self._over:
                self._under.appendleft(vcpu)  # boost wakers (Xen's BOOST)

    def runtime_share(self) -> dict[int, float]:
        """Fraction of total charged runtime per domain (for fairness tests)."""
        total = sum(v.runtime_cycles for d in self._domains.values()
                    for v in d.vcpus)
        if total == 0:
            return {d: 0.0 for d in self._domains}
        return {
            dom_id: sum(v.runtime_cycles for v in dom.vcpus) / total
            for dom_id, dom in self._domains.items()
        }
