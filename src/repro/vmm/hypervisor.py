"""The VMM core: pre-caching, activation, trap handling, hypercall dispatch.

Lifecycle (§4.1, §4.4):

- ``COLD``: nothing resident.
- ``WARM``: the VMM has been *pre-cached* — its data structures are built
  and resident in reserved frames, but it does not control the hardware.
  This is Mercury's steady state in native mode.
- ``ACTIVE``: the VMM owns PL0.  Guests run de-privileged at PL1; their
  privileged instructions trap here; their page-table updates arrive as
  hypercalls; hardware interrupts land in the VMM's IDT and are forwarded
  to guests as events.

A conventional always-on Xen configuration is just ``warm_up(); activate()``
at boot — which is how the X-0/X-U baseline configurations are built.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

from repro import trace
from repro.errors import DomainError, HypercallError, VMMError
from repro.hw.cpu import PrivilegeLevel
from repro.hw.interrupts import Idt
from repro.vmm.domain import DOM0_ID, Domain, Vcpu
from repro.vmm.events import EventChannels
from repro.vmm.grants import GrantTable
from repro.vmm.hypercalls import HYPERCALL_TABLE
from repro.vmm.page_info import PageInfoTable
from repro.vmm.rings import IoStats
from repro.vmm.sched_credit import CreditScheduler

if TYPE_CHECKING:
    from repro.hw.cpu import Cpu
    from repro.hw.machine import Machine

#: identity the VMM uses as frame owner for its own reserved memory
VMM_OWNER = 1_000_000

#: frames the pre-cached VMM reserves for its own image + heap ("a VMM
#: occupies only a reasonably small chunk of memory", §4.1) — 16 MiB
VMM_RESERVED_FRAMES = 4096


class VmmState(enum.Enum):
    COLD = "cold"
    WARM = "warm"       # pre-cached, inactive
    ACTIVE = "active"


class Hypervisor:
    """A Xen-like VMM bound to one machine."""

    def __init__(self, machine: "Machine"):
        self.machine = machine
        self.state = VmmState.COLD
        self.page_info: Optional[PageInfoTable] = None
        self.events: Optional[EventChannels] = None
        self.grants: Optional[GrantTable] = None
        self.scheduler: Optional[CreditScheduler] = None
        self.domains: dict[int, Domain] = {}
        self._next_domid = DOM0_ID
        self._reserved_frames: list[int] = []
        self.idt = Idt(owner="vmm")
        #: gates that survive IDT rebuilds (Mercury's detach vector lives
        #: here — part of the VO-assistant, §4.4)
        self.extra_gates: dict[int, object] = {}
        self.hypercalls_served = 0
        self.traps_emulated = 0
        #: batched mmu_update accounting (lazy-MMU / apply_pte_region paths)
        self.mmu_batches = 0
        self.mmu_batched_updates = 0
        #: per-hypercall-name dispatch counts (perf tests assert the
        #: single-PTE update_va_mapping path stays cold)
        self.hypercall_counts: dict[str, int] = {}
        #: split-driver datapath counters, shared by every frontend/backend
        #: this hypervisor wires (notification avoidance, §5.2)
        self.io_stats = IoStats()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def warm_up(self) -> None:
        """Pre-cache the VMM (§4.1): build all resident data structures.

        Done once at machine boot; afterwards attaching the VMM is cheap
        because only in-time execution context, page type/count info and
        interrupt bindings need (re)synchronizing."""
        if self.state != VmmState.COLD:
            raise VMMError(f"warm_up from state {self.state}")
        reserve = min(VMM_RESERVED_FRAMES, self.machine.memory.num_frames // 8)
        self._reserved_frames = self.machine.memory.alloc_many(VMM_OWNER, reserve)
        self.page_info = PageInfoTable(self.machine.memory)
        self.events = EventChannels()
        self.grants = GrantTable(self.machine.memory)
        self.scheduler = CreditScheduler()
        self.state = VmmState.WARM

    def activate(self) -> None:
        """Take control of the hardware: install trap interception on every
        CPU.  Page-info synchronization and IDT/GDT reloading are the mode
        switch's job (:mod:`repro.core.reload`); a from-boot Xen gets them
        for free because guests start out registered."""
        if self.state != VmmState.WARM:
            raise VMMError(f"activate from state {self.state}")
        for cpu in self.machine.cpus:
            cpu.trap_handler = self._handle_trap
        self.state = VmmState.ACTIVE

    def deactivate(self) -> None:
        """Release the hardware back to a native OS (mode switch to native).

        The page-info table goes stale at this instant — §5.1.2's central
        problem — and must be recomputed (or actively maintained) before the
        next activation."""
        if self.state != VmmState.ACTIVE:
            raise VMMError(f"deactivate from state {self.state}")
        for cpu in self.machine.cpus:
            cpu.trap_handler = None
        self.state = VmmState.WARM

    @property
    def active(self) -> bool:
        return self.state == VmmState.ACTIVE

    # ------------------------------------------------------------------
    # domains
    # ------------------------------------------------------------------

    def create_domain(self, name: str, num_vcpus: int = 1,
                      is_driver_domain: bool = False,
                      weight: float = 1.0,
                      domain_id: Optional[int] = None) -> Domain:
        """Create a domain.  ``domain_id`` may be forced so that a
        self-virtualizing OS keeps its frame-owner identity when it becomes
        the driver domain (Mercury attach path)."""
        if self.state == VmmState.COLD:
            raise VMMError("VMM not warmed up")
        if domain_id is None:
            domain_id = self._next_domid
        if domain_id in self.domains:
            raise DomainError(f"domain id {domain_id} already exists")
        domain = Domain(domain_id, name, num_vcpus, is_driver_domain)
        self._next_domid = max(self._next_domid, domain_id) + 1
        self.domains[domain.domain_id] = domain
        self.scheduler.add_domain(domain, weight)
        return domain

    def destroy_domain(self, domain: Domain) -> None:
        if domain.domain_id not in self.domains:
            raise DomainError(f"unknown domain {domain.domain_id}")
        # drop every page reference the dying domain held: its pinned page
        # tables (and through them its data-frame type counts) must not
        # survive as stale state that poisons later validations
        cpu = self.machine.boot_cpu
        for aspace in list(domain.aspaces):
            if aspace.pgd.frame in self.page_info.pinned:
                self.page_info.unpin_aspace(cpu, aspace)
        self.scheduler.remove_domain(domain)
        self.events.close_domain(domain.domain_id)
        del self.domains[domain.domain_id]
        domain.destroy()

    def driver_domain(self) -> Optional[Domain]:
        for d in self.domains.values():
            if d.is_driver_domain:
                return d
        return None

    # ------------------------------------------------------------------
    # hypercalls
    # ------------------------------------------------------------------

    def hypercall(self, cpu: "Cpu", domain: Domain, name: str, *args):
        """Dispatch one hypercall from ``domain`` running on ``cpu``."""
        if self.state != VmmState.ACTIVE:
            raise HypercallError(f"hypercall {name!r} while VMM {self.state}")
        try:
            fn = HYPERCALL_TABLE[name]
        except KeyError:
            raise HypercallError(f"unknown hypercall {name!r}") from None
        cpu.charge(cpu.cost.cyc_hypercall)
        self.hypercalls_served += 1
        counts = self.hypercall_counts
        counts[name] = counts.get(name, 0) + 1
        if trace._ACTIVE is not None:  # hot path: skip the hook call
            trace.instant(cpu.cpu_id, "hypercall", call=name)
        return fn(self, cpu, domain, *args)

    # ------------------------------------------------------------------
    # trap interception (privileged instructions from PL1 guests)
    # ------------------------------------------------------------------

    def _handle_trap(self, cpu: "Cpu", what: str, args: tuple):
        """Emulate a trapped sensitive instruction (§3.1: interception of
        privileged instructions is mandatory and cannot be bypassed)."""
        cpu.charge(cpu.cost.cyc_emulate_privop)
        self.traps_emulated += 1
        if what == "write_cr3":
            (pgd_frame,) = args
            self._emulate_cr3_load(cpu, pgd_frame)
        elif what in ("cli", "sti"):
            # virtual interrupt flag lives in the vcpu, hardware IF stays
            # under VMM control
            vcpu = self._vcpu_of(cpu)
            if vcpu is not None:
                vcpu.saved_if = (what == "sti")
        elif what in ("lidt", "lgdt", "lldt"):
            pass  # guest descriptor tables are shadowed; nothing to do here
        else:
            raise HypercallError(f"VMM cannot emulate {what!r}")
        return None

    def _emulate_cr3_load(self, cpu: "Cpu", pgd_frame: int) -> None:
        if not self.page_info.is_pt_frame(pgd_frame):
            raise HypercallError(
                f"guest loaded CR3 with unvalidated frame {pgd_frame}")
        saved, cpu.pl = cpu.pl, PrivilegeLevel.PL0
        try:
            cpu.write_cr3(pgd_frame)
        finally:
            cpu.pl = saved

    def _vcpu_of(self, cpu: "Cpu") -> Optional[Vcpu]:
        # the VCPU currently bound to this physical CPU; with one running
        # guest per CPU the mapping is direct
        for domain in self.domains.values():
            for vcpu in domain.vcpus:
                if vcpu.vcpu_id == cpu.cpu_id and vcpu.runnable:
                    return vcpu
        return None

    # ------------------------------------------------------------------
    # interrupt forwarding
    # ------------------------------------------------------------------

    def install_idt_for(self, domain: Domain) -> None:
        """Point the hardware IDT at the VMM, with gates that forward each
        vector to ``domain``'s registered trap handlers.  Looks handlers up
        at delivery time so later ``set_trap_table`` calls take effect."""
        self.idt = Idt(owner="vmm")
        for vector in domain.trap_table:
            self.idt.set_gate(
                vector,
                lambda cpu, vec, _d=domain: self.forward_irq(cpu, _d, vec),
                handler_pl=0, name=f"vmm-fwd-{vector:#x}")
        for vector, handler in self.extra_gates.items():
            self.idt.set_gate(vector, handler, handler_pl=0,
                              name=f"vmm-extra-{vector:#x}")
        for cpu in self.machine.cpus:
            saved, cpu.pl = cpu.pl, PrivilegeLevel.PL0
            try:
                cpu.load_idt(self.idt)
            finally:
                cpu.pl = saved

    def forward_irq(self, cpu: "Cpu", domain: Domain, vector: int) -> None:
        """Deliver a hardware interrupt to a guest as an upcall: charge the
        VMM-mediated path and run the guest's registered trap handler.

        Network interrupts additionally pay the hypervisor's delivery
        latency (the dominant ping/iperf tax the paper measures); other
        vectors pay only the trap + event-channel CPU cost."""
        from repro.hw.interrupts import VEC_NET
        extra = (cpu.cost.cyc_vmm_irq_latency if vector == VEC_NET
                 else cpu.cost.cyc_event_channel)
        cpu.charge(cpu.cost.cyc_trap_roundtrip + extra)
        handler = domain.trap_table.get(vector)
        if handler is None:
            return  # guest has no handler; drop (Xen would log and drop)
        handler(cpu, vector)

    # ------------------------------------------------------------------
    # world switching (multiple domains per physical CPU)
    # ------------------------------------------------------------------

    def world_switch(self, cpu: "Cpu", from_vcpu: Optional[Vcpu],
                     to_vcpu: Vcpu) -> None:
        """Save one VCPU's context and load another's."""
        if from_vcpu is not None:
            from_vcpu.saved_cr3 = cpu.cr3
            from_vcpu.saved_if = cpu.interrupts_enabled
        cpu.charge(cpu.cost.cyc_sched_pick)
        if to_vcpu.saved_cr3 is not None:
            saved, cpu.pl = cpu.pl, PrivilegeLevel.PL0
            try:
                cpu.write_cr3(to_vcpu.saved_cr3)
            finally:
                cpu.pl = saved
