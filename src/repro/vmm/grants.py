"""Grant tables — controlled page sharing between domains.

A domain *grants* a peer access to one of its frames by filling a grant
entry; the peer *maps* the grant (paying a map cost) and later unmaps it.
Split-driver I/O rides on grants: the frontend grants the pages holding
request payloads, the backend maps them to read/write the data (§5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import GrantError

if TYPE_CHECKING:
    from repro.hw.cpu import Cpu
    from repro.hw.memory import PhysicalMemory


@dataclass
class GrantEntry:
    ref: int
    granting_domain: int
    frame: int
    peer_domain: int
    readonly: bool
    active_maps: int = 0
    revoked: bool = False


class GrantTable:
    """Machine-wide grant state (per-domain tables keyed by domain id)."""

    def __init__(self, mem: "PhysicalMemory"):
        self.mem = mem
        self._entries: dict[tuple[int, int], GrantEntry] = {}
        self._next_ref: dict[int, int] = {}

    def grant(self, granting_domain: int, frame: int, peer_domain: int,
              readonly: bool = False) -> GrantEntry:
        """Create a grant of ``frame`` to ``peer_domain``."""
        if self.mem.owner_of(frame) != granting_domain:
            raise GrantError(
                f"domain {granting_domain} granting frame {frame} it does not own")
        ref = self._next_ref.get(granting_domain, 1)
        self._next_ref[granting_domain] = ref + 1
        entry = GrantEntry(ref, granting_domain, frame, peer_domain, readonly)
        self._entries[(granting_domain, ref)] = entry
        return entry

    def map(self, cpu: "Cpu", mapping_domain: int, granting_domain: int,
            ref: int) -> GrantEntry:
        """Map a granted frame into the peer.  Charges the map cost."""
        entry = self._lookup(granting_domain, ref)
        if entry.revoked:
            raise GrantError(f"grant {ref} of domain {granting_domain} is revoked")
        if entry.peer_domain != mapping_domain:
            raise GrantError(
                f"grant {ref} is for domain {entry.peer_domain}, "
                f"not {mapping_domain}")
        cpu.charge(cpu.cost.cyc_grant_map)
        entry.active_maps += 1
        return entry

    def unmap(self, cpu: "Cpu", granting_domain: int, ref: int) -> None:
        entry = self._lookup(granting_domain, ref)
        if entry.active_maps <= 0:
            raise GrantError(f"grant {ref} is not mapped")
        cpu.charge(cpu.cost.cyc_grant_map)
        entry.active_maps -= 1

    def revoke(self, granting_domain: int, ref: int) -> None:
        """End a grant; refuses while mappings are active (as Xen does)."""
        entry = self._lookup(granting_domain, ref)
        if entry.active_maps > 0:
            raise GrantError(f"grant {ref} still has {entry.active_maps} mappings")
        entry.revoked = True

    def active_grants_of(self, domain_id: int) -> list[GrantEntry]:
        return [e for (d, _), e in self._entries.items()
                if d == domain_id and not e.revoked]

    def _lookup(self, granting_domain: int, ref: int) -> GrantEntry:
        try:
            return self._entries[(granting_domain, ref)]
        except KeyError:
            raise GrantError(
                f"no grant {ref} in domain {granting_domain}") from None
