"""Cross-domain memory elasticity: the host-side reclaim/grant policy.

The balloon datapath (``guestos.splitio.BalloonFront`` /
``vmm.backend.BalloonBack``) moves frames; this controller decides *which
way* and *how many*.  Each round it samples per-domain memory pressure,
reclaims from idle domains (never below their floor) and grants to loaded
ones (never past what the host free pool can back).

Two ablatable strategies, following the related work:

- ``hypervisor-driven`` (HyperAlloc-style): the host names the exact
  victim frames, highest frame number first, from its P2M view of the
  guest's balloon-visible memory.  Victims may be mapped and hot — the
  guest must unmap them and pays a victim-page fault on the next touch.
- ``guest-delegated`` (Demeter-style): the host posts only a target; the
  guest surrenders its own coldest memory (pool first, region tails
  last), so no faults follow.

Both strategies converge to identical final domain sizes — the policy is
strategy-independent, only the victim choice (and so reclaim latency and
fault tax) differs.  All decisions are pure functions of simulator state,
preserving the byte-identical determinism contract.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:
    from repro.core.mercury import Mercury
    from repro.hw.cpu import Cpu

STRATEGIES = ("hypervisor-driven", "guest-delegated")

#: frames the controller always leaves in the host free pool — a grant
#: must never starve the host's own allocations
HOST_HEADROOM_FRAMES = 16


class ElasticMemoryController:
    """Samples pressure and drives balloon targets for every connected
    domain of one :class:`~repro.core.mercury.Mercury` stack."""

    def __init__(self, mercury: "Mercury",
                 strategy: str = "guest-delegated", *,
                 reclaim_step: int = 16, grant_step: int = 16,
                 idle_threshold: int = 0,
                 pressure_fn: Optional[Callable[[int], int]] = None):
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown elastic strategy {strategy!r}")
        self.mercury = mercury
        self.strategy = strategy
        self.reclaim_step = reclaim_step
        self.grant_step = grant_step
        #: pressure at or below this samples as idle (reclaim candidate)
        self.idle_threshold = idle_threshold
        #: override pressure source (the fleet feeds queue depth through
        #: this); default is the guest's minor-fault delta per round
        self._pressure_fn = pressure_fn
        self._last_faults: dict[int, int] = {}
        self.rounds = 0
        self.reclaims = 0
        self.grants = 0
        self.pages_reclaimed = 0
        self.pages_granted = 0
        #: cycles from posting a reclaim target to the ledger reaching it
        self.reclaim_latencies: list[int] = []
        #: ``(round, op, owner, pages)`` — canonical decision log
        self.log: list[tuple] = []

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------

    def pressure(self, owner_id: int) -> int:
        """Memory pressure of one domain this round.  The default metric
        is the guest's minor-fault delta since the last sample: a domain
        that faults is growing its working set; one that does not is
        idle."""
        if self._pressure_fn is not None:
            return self._pressure_fn(owner_id)
        front, _ = self.mercury._balloons[owner_id]
        faults = front.kernel.vmem.minor_faults
        last = self._last_faults.get(owner_id, 0)
        self._last_faults[owner_id] = faults
        return faults - last

    # ------------------------------------------------------------------
    # one policy round
    # ------------------------------------------------------------------

    def rebalance(self, cpu: "Cpu") -> list[tuple]:
        """Sample every domain, then apply reclaims before grants (the
        reclaims stock the host free pool the grants draw from).  Returns
        this round's decision log entries."""
        self.rounds += 1
        decisions: list[tuple] = []
        reclaim_plans = []
        grant_plans = []
        for owner, (front, back) in sorted(self.mercury._balloons.items()):
            dom = back.guest_domain
            if dom.mem_pages == 0:
                continue
            if self.pressure(owner) <= self.idle_threshold:
                target = max(dom.mem_floor,
                             dom.mem_pages - self.reclaim_step)
                if target < dom.mem_pages:
                    reclaim_plans.append((owner, front, back, target))
            else:
                grant_plans.append((owner, front, back))

        for owner, front, back, target in reclaim_plans:
            dom = back.guest_domain
            before = dom.mem_pages
            victims = ()
            if self.strategy == "hypervisor-driven":
                need = before - target
                victims = tuple(sorted(front.resident_frames,
                                       reverse=True)[:need])
            start = self.mercury.machine.clock.cycles
            back.set_target(cpu, target, victims=victims)
            if dom.mem_pages > target:
                # the notify coalesced onto a pending event; chase directly
                front.process_target(cpu)
            self.reclaim_latencies.append(
                self.mercury.machine.clock.cycles - start)
            moved = before - dom.mem_pages
            self.reclaims += 1
            self.pages_reclaimed += moved
            decisions.append((self.rounds, "reclaim", owner, moved))

        mem = self.mercury.machine.memory
        for owner, front, back in grant_plans:
            dom = back.guest_domain
            budget = max(0, mem.free_frames - HOST_HEADROOM_FRAMES)
            step = min(self.grant_step, budget)
            if step == 0:
                continue
            before = dom.mem_pages
            back.set_target(cpu, before + step)
            if dom.mem_pages < before + step:
                front.process_target(cpu)
            moved = dom.mem_pages - before
            self.grants += 1
            self.pages_granted += moved
            decisions.append((self.rounds, "grant", owner, moved))

        self.log.extend(decisions)
        return decisions

    # fleet-facing alias
    step = rebalance

    def summary(self) -> dict:
        lat = sorted(self.reclaim_latencies)
        return {
            "strategy": self.strategy,
            "rounds": self.rounds,
            "reclaims": self.reclaims,
            "grants": self.grants,
            "pages_reclaimed": self.pages_reclaimed,
            "pages_granted": self.pages_granted,
            "reclaim_latency_cycles_p50":
                lat[len(lat) // 2] if lat else 0,
            "reclaim_latency_cycles_max": lat[-1] if lat else 0,
        }
