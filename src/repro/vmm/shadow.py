"""Shadow paging — the §3.2.2 alternative Mercury deliberately avoids.

"In shadow mode, a VMM presents the guest operating systems an illusion of
contiguous pseudo-physical memory and is responsible for translating
pseudo-physical memory to physical memory.  Thus, a translation from
pseudo-physical memory to physical memory is required during a
self-virtualization.  In direct mode ... no translation is required during
a mode switch, which could largely reduce the complexity.  Currently,
Mercury utilizes the direct access mode to simplify the implementation."

This module implements the road not taken, so the design choice can be
*measured* (ablation A4): the VMM keeps a shadow copy of every guest page
table; the hardware runs on the shadows; every guest PTE write traps and
is re-translated into the shadow.  A mode switch must build (or discard)
the full shadow set — strictly more work than direct mode's validation
scan, plus a per-shadow-page memory tax.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import VMMError
from repro.hw.paging import AddressSpace, Pte

if TYPE_CHECKING:
    from repro.hw.cpu import Cpu
    from repro.hw.memory import PhysicalMemory

#: cycles to translate one pseudo-physical frame through the p2m map
CYC_P2M_LOOKUP = 34
#: cycles to install one shadow PTE during a bulk build: translation,
#: mapping validation, reverse-map bookkeeping (shadow construction is
#: famously heavier than a validation scan — the §3.2.2 complexity)
CYC_SHADOW_INSTALL = 220
#: cycles to emulate one trapped guest PTE write and resync its shadow
CYC_SHADOW_SYNC = 2_800
#: frame owner id for shadow page-table pages (they belong to the VMM)
SHADOW_OWNER = 1_000_001


class ShadowPager:
    """Shadow page tables for one domain's address spaces."""

    def __init__(self, mem: "PhysicalMemory", domain_id: int):
        self.mem = mem
        self.domain_id = domain_id
        #: guest AddressSpace -> shadow AddressSpace
        self.shadows: dict[int, AddressSpace] = {}
        self._guests: dict[int, AddressSpace] = {}
        self.syncs = 0
        self.builds = 0

    # ------------------------------------------------------------------
    # p2m: in this simulator guests address host frames directly, so the
    # translation is the identity — but a real shadow VMM pays the lookup
    # per entry, which is exactly the cost §3.2.2 warns about.
    # ------------------------------------------------------------------

    def p2m(self, cpu: "Cpu", pseudo_frame: int) -> int:
        cpu.charge(CYC_P2M_LOOKUP)
        return pseudo_frame

    # ------------------------------------------------------------------
    # building / tearing down shadows (the mode-switch cost)
    # ------------------------------------------------------------------

    def build(self, cpu: "Cpu", guest_aspace: AddressSpace) -> AddressSpace:
        """Construct the shadow of one guest address space: allocate
        VMM-owned page-table pages and translate every present PTE."""
        shadow = AddressSpace(self.mem, SHADOW_OWNER)
        for vaddr in guest_aspace.mapped_vaddrs():
            gpte = guest_aspace.get_pte(vaddr)
            frame = self.p2m(cpu, gpte.frame)
            cpu.charge(CYC_SHADOW_INSTALL)
            shadow.set_pte(vaddr, Pte(frame=frame, present=gpte.present,
                                      writable=gpte.writable,
                                      user=gpte.user, cow=gpte.cow))
        self.shadows[id(guest_aspace)] = shadow
        self._guests[id(guest_aspace)] = guest_aspace
        self.builds += 1
        return shadow

    def build_all(self, cpu: "Cpu", aspaces: list[AddressSpace]) -> int:
        """Shadow every address space (the native→virtual transfer in
        shadow mode).  Returns shadow PT pages allocated."""
        pages = 0
        for aspace in aspaces:
            shadow = self.build(cpu, aspace)
            pages += shadow.num_pt_pages()
        return pages

    def drop(self, cpu: "Cpu", guest_aspace: AddressSpace) -> None:
        shadow = self.shadows.pop(id(guest_aspace), None)
        self._guests.pop(id(guest_aspace), None)
        if shadow is not None:
            shadow.destroy()

    def drop_all(self, cpu: "Cpu") -> None:
        """Discard every shadow (the virtual→native transfer)."""
        for key in list(self.shadows):
            shadow = self.shadows.pop(key)
            self._guests.pop(key, None)
            cpu.charge(cpu.cost.cyc_transfer_per_pt_page
                       * shadow.num_pt_pages())
            shadow.destroy()

    # ------------------------------------------------------------------
    # runtime maintenance (the trap-per-PTE-write cost)
    # ------------------------------------------------------------------

    def shadow_of(self, guest_aspace: AddressSpace) -> AddressSpace:
        try:
            return self.shadows[id(guest_aspace)]
        except KeyError:
            raise VMMError("no shadow for this address space") from None

    def sync_pte(self, cpu: "Cpu", guest_aspace: AddressSpace,
                 vaddr: int) -> None:
        """A guest PTE write trapped: re-translate that entry into the
        shadow."""
        cpu.charge(CYC_SHADOW_SYNC)
        shadow = self.shadow_of(guest_aspace)
        gpte = guest_aspace.get_pte(vaddr)
        if gpte is None or not gpte.present:
            shadow.clear_pte(vaddr)
        else:
            frame = self.p2m(cpu, gpte.frame)
            shadow.set_pte(vaddr, Pte(frame=frame, present=True,
                                      writable=gpte.writable,
                                      user=gpte.user, cow=gpte.cow))
        cpu.tlb.invalidate(vaddr // 4096)
        self.syncs += 1

    # ------------------------------------------------------------------

    def shadow_frames_in_use(self) -> int:
        """The memory tax: frames held by shadow page tables right now."""
        return sum(s.num_pt_pages() for s in self.shadows.values())

    def verify_coherent(self, guest_aspace: AddressSpace) -> bool:
        """Every guest mapping must appear, translated, in the shadow."""
        shadow = self.shadow_of(guest_aspace)
        for vaddr in guest_aspace.mapped_vaddrs():
            gpte = guest_aspace.get_pte(vaddr)
            spte = shadow.get_pte(vaddr)
            if gpte.present:
                if spte is None or spte.frame != gpte.frame or \
                        spte.writable != gpte.writable:
                    return False
        return True
