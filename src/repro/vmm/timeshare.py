"""Time-sharing multiple domains on one physical CPU.

The X-U/M-U configurations host two OSes on the paper's 2-CPU box; when
runnable VCPUs outnumber physical CPUs, the credit scheduler
(:mod:`repro.vmm.sched_credit`) decides who runs.  This runner drives that
machinery end to end: it picks VCPUs, charges world switches, runs one
quantum of the owning domain's workload, and bills the runtime back to the
scheduler — so fairness (runtime share tracks domain weights) is an
emergent, testable property rather than an assumption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import VMMError

if TYPE_CHECKING:
    from repro.hw.cpu import Cpu
    from repro.vmm.domain import Vcpu
    from repro.vmm.hypervisor import Hypervisor

#: cycles between credit accounting ticks (Xen: 30 ms; scaled down so short
#: simulations see several periods)
ACCOUNTING_PERIOD_CYCLES = 3_000_000


@dataclass
class DomainJob:
    """One domain's workload: ``step()`` advances it one quantum and
    returns False when finished."""

    domain_id: int
    step: Callable[[], bool]
    quanta_run: int = 0
    runtime_cycles: int = 0
    finished: bool = False


@dataclass
class TimeshareReport:
    quanta: int = 0
    world_switches: int = 0
    #: domain id -> fraction of total billed runtime
    runtime_share: dict = field(default_factory=dict)
    #: domain id -> quanta executed
    quanta_per_domain: dict = field(default_factory=dict)


class TimeSharedRunner:
    """Run several domains' jobs under the credit scheduler."""

    def __init__(self, vmm: "Hypervisor", cpu: "Cpu"):
        if vmm.scheduler is None:
            raise VMMError("hypervisor not warmed up")
        self.vmm = vmm
        self.cpu = cpu
        self.jobs: dict[int, DomainJob] = {}
        self._current: Optional["Vcpu"] = None

    def add_job(self, domain_id: int, step: Callable[[], bool]) -> DomainJob:
        if domain_id not in self.vmm.domains:
            raise VMMError(f"no domain {domain_id}")
        job = DomainJob(domain_id, step)
        self.jobs[domain_id] = job
        return job

    def run(self, max_quanta: int = 10_000) -> TimeshareReport:
        """Schedule until every job finishes (or the quantum budget runs
        out)."""
        sched = self.vmm.scheduler
        report = TimeshareReport()
        last_tick = self.cpu.rdtsc()

        while report.quanta < max_quanta and \
                any(not j.finished for j in self.jobs.values()):
            vcpu = sched.pick_next()
            if vcpu is None:
                break
            job = self.jobs.get(vcpu.domain_id)
            if job is None or job.finished:
                sched.block(vcpu)
                continue

            if vcpu is not self._current:
                self.vmm.world_switch(self.cpu, self._current, vcpu)
                self._current = vcpu
                report.world_switches += 1

            t0 = self.cpu.rdtsc()
            alive = job.step()
            ran = self.cpu.rdtsc() - t0
            job.quanta_run += 1
            job.runtime_cycles += ran
            sched.charge_runtime(vcpu, ran)
            report.quanta += 1
            if not alive:
                job.finished = True
                sched.block(vcpu)

            if self.cpu.rdtsc() - last_tick >= ACCOUNTING_PERIOD_CYCLES:
                sched.accounting_tick()
                last_tick = self.cpu.rdtsc()

        total = sum(j.runtime_cycles for j in self.jobs.values()) or 1
        report.runtime_share = {d: j.runtime_cycles / total
                                for d, j in self.jobs.items()}
        report.quanta_per_domain = {d: j.quanta_run
                                    for d, j in self.jobs.items()}
        return report
