"""The hypercall table — the services a para-virtualized guest calls
instead of executing privileged instructions (§3.2.1).

Names and shapes follow Xen 3.x: ``mmu_update`` batches page-table writes,
``mmuext_op`` carries pin/unpin/flush operations, ``update_va_mapping`` is
the single-PTE fast path, ``set_trap_table`` registers guest interrupt
handlers, ``event_channel_op``/``grant_table_op`` drive the inter-domain
plumbing, and ``sched_op`` yields/blocks the calling VCPU.

Each function receives ``(vmm, cpu, domain, *args)``; argument validation
errors raise :class:`~repro.errors.HypercallError` and page-table safety
violations raise :class:`~repro.errors.PageValidationError` — a guest can
*never* corrupt another domain through these paths, and tests prove it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro import faults
from repro.errors import HypercallError, PageValidationError
from repro.params import PAGE_SIZE, PT_ENTRIES
from repro.vmm.page_info import _L1, _L2, _NONE, _WRITABLE

if TYPE_CHECKING:
    from repro.hw.cpu import Cpu
    from repro.hw.paging import AddressSpace, Pte
    from repro.vmm.domain import Domain
    from repro.vmm.hypervisor import Hypervisor


def _require_registered(domain: "Domain", aspace: "AddressSpace") -> None:
    if aspace not in domain.aspaces:
        raise HypercallError(
            f"domain {domain.domain_id} used an unregistered address space")


# ---------------------------------------------------------------------------
# memory management
# ---------------------------------------------------------------------------

def mmu_update(vmm: "Hypervisor", cpu: "Cpu", domain: "Domain",
               updates: list, per_pte_cycles: Optional[int] = None) -> int:
    """Apply a batch of page-table updates.

    ``updates`` is a list of ``(aspace, vaddr, pte_or_None)`` tuples: a Pte
    installs/replaces a mapping, None clears one.  Every update is validated
    against the page-info table before being applied.  Charged at the
    *batched* per-PTE rate unless the caller overrides (the unbatched
    ``update_va_mapping`` path costs more per entry).

    This is the hottest VMM path (fork/exit/mmap all funnel through it), so
    the loop resolves each entry's leaf once, inlines the page-info column
    bookkeeping (:meth:`validate_pte_write`/:meth:`account_pte_clear`
    semantics, verbatim), and caches per-address-space state across runs of
    consecutive entries — registration and PGD pinned-ness cannot change
    mid-batch, nothing here reenters the hypercall layer."""
    if faults.fire(faults.MMU_UPDATE_TRANSIENT, cpu_id=cpu.cpu_id):
        # rejected before any entry is applied: the batch is all-or-nothing
        # from the guest's point of view, so a transient refusal is safe to
        # retry and corrupts nothing
        raise HypercallError("injected: transient mmu_update refusal")
    batched = per_pte_cycles is None
    rate = cpu.cost.cyc_mmu_update_batched if batched else per_pte_cycles
    page_info = vmm.page_info
    ptype, pcount, prefs = page_info.type, page_info.type_count, \
        page_info.ref_count
    pinned_map = page_info.pinned_map
    owner = page_info.mem.owner
    domain_id = domain.domain_id
    clk = cpu.clock
    drop = cpu.tlb.drop
    cur_aspace = None
    pgd_entries = None
    pgd_pinned = False
    applied = 0
    for aspace, vaddr, pte in updates:
        if aspace is not cur_aspace:
            _require_registered(domain, aspace)
            cur_aspace = aspace
            pgd_entries = aspace.pgd.entries
            pgd_pinned = pinned_map[aspace.pgd.frame] != 0
        clk.cycles += rate
        vpn = vaddr // PAGE_SIZE
        leaf = pgd_entries.get(vpn // PT_ENTRIES)
        idx = vpn % PT_ENTRIES
        if pte is None:
            removed = leaf.entries.pop(idx, None) if leaf is not None else None
            if removed is not None and removed.present:
                frame = removed.frame
                n = pcount[frame]
                # n <= 0 means the entry's accounting was already dropped
                # (unpin wipes the counts its entries contributed): nothing
                # to unaccount, and decrementing would go negative
                if n > 0:
                    pcount[frame] = n - 1
                    prefs[frame] -= 1
                    if n == 1 and ptype[frame] == _WRITABLE:
                        ptype[frame] = _NONE
            drop(vpn, None)
        else:
            old = leaf.entries.get(idx) if leaf is not None else None
            if pte.present:
                frame = pte.frame
                if owner[frame] != domain_id:
                    page_info._check_frame_for(frame, domain_id)
                t = ptype[frame]
                if pte.writable and (t == _L1 or t == _L2):
                    raise PageValidationError(
                        f"mmu_update installs writable mapping of PT frame "
                        f"{frame}")
                prefs[frame] += 1
                if t == _NONE:
                    ptype[frame] = _WRITABLE
                pcount[frame] += 1
            if old is not None and old.present:
                frame = old.frame
                n = pcount[frame]
                if n > 0:
                    pcount[frame] = n - 1
                    prefs[frame] -= 1
                    if n == 1 and ptype[frame] == _WRITABLE:
                        ptype[frame] = _NONE
            if leaf is None:
                leaf = aspace.leaf_for(vaddr, create=True)
            leaf.entries[idx] = pte
            # the write may have instantiated a new leaf PT page under a
            # pinned PGD (an L2-entry install): validate-and-adopt it
            if pgd_pinned:
                t = ptype[leaf.frame]
                if t != _L1 and t != _L2:
                    page_info.adopt_new_leaf(cpu, leaf)
            drop(vpn, None)
        applied += 1
    if batched:
        vmm.mmu_batches += 1
        vmm.mmu_batched_updates += applied
    return applied


def update_va_mapping(vmm: "Hypervisor", cpu: "Cpu", domain: "Domain",
                      aspace: "AddressSpace", vaddr: int,
                      pte: Optional["Pte"]) -> None:
    """Single-PTE fast path (Xen's most common hypercall)."""
    mmu_update(vmm, cpu, domain, [(aspace, vaddr, pte)],
               per_pte_cycles=cpu.cost.cyc_mmu_update_per_pte)


def mmuext_op(vmm: "Hypervisor", cpu: "Cpu", domain: "Domain",
              op: str, aspace: Optional["AddressSpace"] = None,
              vaddr: int = 0) -> None:
    """Extended MMU operations: pin/unpin page tables, TLB management."""
    if op == "pin_table":
        _require_registered(domain, aspace)
        vmm.page_info.validate_pgd(cpu, aspace, domain.domain_id)
    elif op == "unpin_table":
        _require_registered(domain, aspace)
        vmm.page_info.unpin_aspace(cpu, aspace)
    elif op == "new_baseptr":
        _require_registered(domain, aspace)
        vmm._emulate_cr3_load(cpu, aspace.pgd_frame)
    elif op == "tlb_flush_local":
        cpu.charge(cpu.cost.cyc_tlb_flush)
        cpu.tlb.flush()
    elif op == "invlpg_local":
        cpu.tlb.invalidate(vaddr // PAGE_SIZE)
    else:
        raise HypercallError(f"unknown mmuext op {op!r}")


# ---------------------------------------------------------------------------
# CPU state
# ---------------------------------------------------------------------------

def set_trap_table(vmm: "Hypervisor", cpu: "Cpu", domain: "Domain",
                   table: dict) -> None:
    """Register the guest's interrupt/exception handlers with the VMM."""
    domain.trap_table = dict(table)
    if vmm.active and domain.is_driver_domain:
        vmm.install_idt_for(domain)


def stack_switch(vmm: "Hypervisor", cpu: "Cpu", domain: "Domain",
                 kernel_sp: int = 0) -> None:
    """Tell the VMM the guest kernel stack for the next entry (charged on
    every guest context switch — a visible chunk of the Xen ctx overhead)."""
    # state is per-vcpu; the cost is the point here
    vcpu = vmm._vcpu_of(cpu)
    if vcpu is not None:
        vcpu.kernel_sp = kernel_sp  # type: ignore[attr-defined]


def set_gdt(vmm: "Hypervisor", cpu: "Cpu", domain: "Domain",
            dpl: int) -> None:
    """Install guest segment descriptors (the VMM forces kernel segments to
    the de-privileged level — §5.1.2 item 2)."""
    if dpl < 1:
        raise HypercallError("guest may not install PL0 segments")
    for desc in cpu.gdt.values():
        desc.dpl = dpl


def vm_assist(vmm: "Hypervisor", cpu: "Cpu", domain: "Domain",
              feature: str, enable: bool) -> None:
    """Toggle guest assists (writable page tables, 4 GB segments, ...)."""
    assists = getattr(domain, "assists", None)
    if assists is None:
        assists = domain.assists = set()  # type: ignore[attr-defined]
    if enable:
        assists.add(feature)
    else:
        assists.discard(feature)


# ---------------------------------------------------------------------------
# events / grants / scheduling
# ---------------------------------------------------------------------------

def event_channel_op(vmm: "Hypervisor", cpu: "Cpu", domain: "Domain",
                     op: str, *args):
    ev = vmm.events
    if op == "alloc":
        return ev.alloc(domain.domain_id, *args)
    if op == "send":
        (channel,) = args
        if channel.owner_domain != domain.domain_id:
            raise HypercallError("sending on a foreign channel")
        ev.send(cpu, channel)
        return None
    if op == "unmask":
        (channel,) = args
        ev.unmask(cpu, channel)
        return None
    raise HypercallError(f"unknown event op {op!r}")


def grant_table_op(vmm: "Hypervisor", cpu: "Cpu", domain: "Domain",
                   op: str, *args):
    gt = vmm.grants
    if op == "grant":
        frame, peer, readonly = args
        return gt.grant(domain.domain_id, frame, peer, readonly)
    if op == "map":
        granting_domain, ref = args
        return gt.map(cpu, domain.domain_id, granting_domain, ref)
    if op == "unmap":
        granting_domain, ref = args
        gt.unmap(cpu, granting_domain, ref)
        return None
    raise HypercallError(f"unknown grant op {op!r}")


def sched_op(vmm: "Hypervisor", cpu: "Cpu", domain: "Domain", op: str):
    sched = vmm.scheduler
    vcpu = vmm._vcpu_of(cpu)
    if op == "yield":
        return sched.pick_next()
    if op == "block":
        if vcpu is not None:
            sched.block(vcpu)
        return sched.pick_next()
    raise HypercallError(f"unknown sched op {op!r}")


def console_io(vmm: "Hypervisor", cpu: "Cpu", domain: "Domain",
               message: str) -> None:
    log = getattr(vmm, "console_log", None)
    if log is None:
        log = vmm.console_log = []  # type: ignore[attr-defined]
    log.append((domain.domain_id, message))


#: the dispatch table used by :meth:`Hypervisor.hypercall`
HYPERCALL_TABLE: dict[str, Callable] = {
    "mmu_update": mmu_update,
    "update_va_mapping": update_va_mapping,
    "mmuext_op": mmuext_op,
    "set_trap_table": set_trap_table,
    "stack_switch": stack_switch,
    "set_gdt": set_gdt,
    "vm_assist": vm_assist,
    "event_channel_op": event_channel_op,
    "grant_table_op": grant_table_op,
    "sched_op": sched_op,
    "console_io": console_io,
}
