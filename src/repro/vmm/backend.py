"""Backend drivers (blkback / netback) hosted in the driver domain (§5.2).

The backend end of the split-driver model: it consumes requests from a
shared-memory ring, maps the granted payload pages, performs the real device
operation through the driver domain's own (native or para-virtual) driver,
and pushes responses back, notifying the frontend over an event channel.

Both backends are NAPI-style polled consumers: a frontend notification
masks the event channel and enters a poll loop that drains requests under a
bounded budget (``io_poll_budget``), maps grants once per drain batch,
pushes the whole batch of responses with at most one coalesced completion
notify (:meth:`~repro.vmm.rings.IoRing.push_responses_and_check_notify`),
and only goes back to sleep after unmasking and running the lost-wakeup-free
final check (:meth:`~repro.vmm.rings.IoRing.final_check_for_requests`).

The paper's dbench observation — domainU *faster* than native because the
split model batches and caches writes (§7.3) — comes from
:attr:`BlkBack.write_cache`: the backend acknowledges writes once they are
in its cache, flushing asynchronously, "at the cost of possible
inconsistency during crash" (the paper cites EXPLODE for that caveat).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro import trace
from repro.errors import RingError
from repro.hw.devices import BlockRequest, Packet
from repro.vmm.rings import IoRing, IoStats

if TYPE_CHECKING:
    from repro.hw.cpu import Cpu
    from repro.vmm.domain import Domain
    from repro.vmm.events import Channel, EventChannels
    from repro.vmm.grants import GrantTable
    from repro.vmm.hypervisor import Hypervisor


@dataclass
class BlkRingEntry:
    """One block request as carried on the ring."""

    op: str                # "read" | "write" | "flush"
    block: int
    grant_ref: Optional[int] = None
    data: object = None
    result: object = None
    ok: bool = True
    tag: object = None
    #: set by the frontend once the response has been consumed
    completed: bool = False


@dataclass
class NetRingEntry:
    """One packet handed between netfront and netback."""

    pkt: Packet = None
    tag: object = None


@dataclass
class BalloonRingEntry:
    """One balloon message as carried on the ring.

    ``inflate`` surrenders frames: ``frames`` holds ``(frame, grant_ref)``
    pairs the guest granted to the driver domain.  ``deflate`` asks for
    ``count`` pages back; the backend fills ``frames`` with the granted
    frame numbers in the response."""

    op: str                               # "inflate" | "deflate"
    frames: tuple = ()
    count: int = 0
    tag: object = None                    # granting (guest) domain id
    ok: bool = True
    #: set by the frontend once the response has been consumed
    completed: bool = False


class _NapiBackend:
    """Shared poll-loop machinery: channel masking, budgeted drain rounds,
    and the unmask + final-check sleep protocol."""

    def __init__(self, vmm: "Hypervisor", stats: Optional[IoStats]):
        self.vmm = vmm
        self.stats = stats if stats is not None else IoStats()
        #: the backend's end of the event channel, when wired through one
        self.channel: Optional["Channel"] = None
        self._in_poll = False
        self.polls = 0

    def bind_channel(self, channel: "Channel") -> None:
        self.channel = channel

    def _drain(self, cpu: "Cpu") -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def _main_ring(self) -> IoRing:  # pragma: no cover - abstract
        raise NotImplementedError

    def poll(self, cpu: "Cpu") -> int:
        """Service the request ring: mask, drain in budgeted rounds, then
        unmask and final-check before going idle.  Returns entries handled.

        Re-entrant calls (the unmask replaying a pending event into the
        handler mid-poll) are absorbed — the outer loop's final check picks
        up whatever the replay would have signalled."""
        if self._in_poll:
            return 0
        self._in_poll = True
        self.polls += 1
        ch = self.channel
        events = self.vmm.events if self.vmm is not None else None
        try:
            total = 0
            guard = 0
            if ch is not None and events is not None:
                events.mask(ch)
            while True:
                total += self._drain(cpu)
                if ch is not None and events is not None:
                    events.unmask(cpu, ch)
                if not self._main_ring().final_check_for_requests():
                    return total
                if ch is not None and events is not None:
                    events.mask(ch)
                guard += 1
                if guard > 1_000_000:  # pragma: no cover - defensive
                    raise RingError("backend poll did not converge")
        finally:
            self._in_poll = False


class BlkBack(_NapiBackend):
    """Block backend: bridges a frontend ring to the real disk."""

    def __init__(self, vmm: "Hypervisor", driver_domain: "Domain",
                 ring: IoRing, notify_frontend: Callable[["Cpu"], None],
                 submit: Callable[["Cpu", BlockRequest], None],
                 write_cache: bool = True,
                 stats: Optional[IoStats] = None):
        super().__init__(vmm, stats)
        self.driver_domain = driver_domain
        self.ring = ring
        self.notify_frontend = notify_frontend
        self._submit = submit
        #: backend write caching: acknowledge writes from cache (the split
        #: model's throughput win on dbench)
        self.write_cache = write_cache
        self._cache: dict[int, object] = {}
        #: async flushes in flight (bounded write-behind)
        self._in_flight: list[BlockRequest] = []
        self.requests_handled = 0
        self.flushes = 0

    #: max cached-acked writes in flight before the backend throttles
    FLUSH_DEPTH = 4

    def _main_ring(self) -> IoRing:
        return self.ring

    def _reap_flushes(self) -> None:
        self._in_flight = [r for r in self._in_flight if not r.done]

    def _wait_tick(self) -> None:
        """Advance to the next device event (while throttled)."""
        machine = self.vmm.machine
        deadline = machine.clock.next_deadline()
        if deadline is None:
            self._in_flight.clear()
            return
        if deadline > machine.clock.cycles:
            machine.clock.cycles = deadline
        machine.clock.run_due()

    # ``kick`` kept as the pre-NAPI entry point name
    def kick(self, cpu: "Cpu") -> int:
        return self.poll(cpu)

    def _drain(self, cpu: "Cpu") -> int:
        """One budgeted drain round: batch-consume requests, map each
        distinct grant once, push the batch of responses with a single
        coalesced completion notify."""
        budget = cpu.cost.io_poll_budget
        batch: list[BlkRingEntry] = []
        mapped: dict[tuple, None] = {}
        while self.ring.has_requests() and len(batch) < budget:
            entry: BlkRingEntry = self.ring.pop_request()
            cpu.charge(cpu.cost.cyc_ring_hop if not batch
                       else cpu.cost.cyc_ring_entry_batched)
            key = (entry.tag, entry.grant_ref)
            if entry.grant_ref is not None and key not in mapped:
                # map the frontend's payload page once for the whole drain
                self.vmm.grants.map(cpu, self.driver_domain.domain_id,
                                    entry.tag, entry.grant_ref)
                mapped[key] = None
            self._handle(cpu, entry)
            batch.append(entry)
            self.requests_handled += 1
        for tag, ref in mapped:
            self.vmm.grants.unmap(cpu, tag, ref)
        for entry in batch:
            self.ring.push_response(entry)
        if batch:
            self.stats.ring_batches += 1
            self.stats.ring_batched_entries += len(batch)
            if self.ring.push_responses_and_check_notify():
                self.stats.notifies_sent += 1
                if trace._ACTIVE is not None:  # hot path: skip the hook
                    trace.instant(cpu.cpu_id, "io.doorbell", dev="blk",
                                  ring="resp")
                self.notify_frontend(cpu)
            else:
                self.stats.notifies_suppressed += 1
        return len(batch)

    def _handle(self, cpu: "Cpu", entry: BlkRingEntry) -> None:
        if entry.op == "read":
            if entry.block in self._cache:
                entry.result = self._cache[entry.block]
                return
            req = BlockRequest(op="read", block=entry.block)
            self._submit(cpu, req)
            self._wait(req)
            entry.result = req.result
        elif entry.op == "write":
            if self.write_cache:
                self._cache[entry.block] = entry.data
                # async flush: cheap ack now, device work deferred
                req = BlockRequest(op="write", block=entry.block, data=entry.data)
                self._in_flight.append(req)
                self.vmm.machine.clock.schedule(
                    cpu.cost.cyc_disk_submit,
                    lambda r=req: self.vmm.machine.disk.submit(r))
                # bounded write-behind: past FLUSH_DEPTH the backend stops
                # acking from cache and lets the backlog drain
                self._reap_flushes()
                while len(self._in_flight) > self.FLUSH_DEPTH:
                    self._wait_tick()
                    self._reap_flushes()
            else:
                req = BlockRequest(op="write", block=entry.block, data=entry.data)
                self._submit(cpu, req)
                self._wait(req)
        elif entry.op == "flush":
            self.flushes += 1
            self._cache.clear()
        else:
            entry.ok = False

    def _wait(self, req: BlockRequest) -> None:
        """Drive the machine's event loop until the device completes."""
        machine = self.vmm.machine
        guard = 0
        while not req.done:
            deadline = machine.clock.next_deadline()
            if deadline is None:
                raise RingError("blkback waiting with no pending device event")
            if deadline > machine.clock.cycles:
                machine.clock.cycles = deadline
            machine.clock.run_due()
            guard += 1
            if guard > 1_000_000:  # pragma: no cover - defensive
                raise RingError("blkback wait did not converge")


class BalloonBack(_NapiBackend):
    """Balloon backend: commits reservation changes for one guest domain.

    Inflate requests carry granted frames; the backend takes each grant
    (paying the map/unmap cost — the ownership check rides the grant
    machinery), retires the frame's page-info columns and returns it to the
    host free pool.  Deflate requests allocate frames back to the guest.
    The reservation ledger on the :class:`~repro.vmm.domain.Domain` is
    adjusted only here, so ledger and owner column move together."""

    def __init__(self, vmm: "Hypervisor", driver_domain: "Domain",
                 guest_domain: "Domain", ring: IoRing,
                 notify_frontend: Callable[["Cpu"], None],
                 stats: Optional[IoStats] = None):
        super().__init__(vmm, stats)
        self.driver_domain = driver_domain
        self.guest_domain = guest_domain
        self.ring = ring
        self.notify_frontend = notify_frontend
        #: pages moved guest -> host pool / host pool -> guest, lifetime
        self.inflated = 0
        self.deflated = 0
        self.requests_handled = 0
        #: reservation target + (hypervisor-driven only) explicit victim
        #: frames, posted by the elastic controller; the frontend reads
        #: them on the target upcall — the xenstore-watch analogue
        self.target_pages: Optional[int] = None
        self.victim_frames: tuple = ()

    def _main_ring(self) -> IoRing:
        return self.ring

    def set_target(self, cpu: "Cpu", pages: int, victims=()) -> None:
        """Post a new reservation target (and, for hypervisor-driven
        reclaim, the exact frames to surrender) and kick the frontend."""
        self.target_pages = pages
        self.victim_frames = tuple(victims)
        self.guest_domain.mem_target = pages
        cpu.charge(cpu.cost.cyc_event_channel)
        self.notify_frontend(cpu)

    def _drain(self, cpu: "Cpu") -> int:
        """One budgeted drain round: commit a batch of reservation changes,
        push the batch of responses with a single coalesced notify."""
        budget = cpu.cost.io_poll_budget
        batch: list[BalloonRingEntry] = []
        while self.ring.has_requests() and len(batch) < budget:
            entry: BalloonRingEntry = self.ring.pop_request()
            cpu.charge(cpu.cost.cyc_ring_hop if not batch
                       else cpu.cost.cyc_ring_entry_batched)
            self._handle(cpu, entry)
            batch.append(entry)
            self.requests_handled += 1
        for entry in batch:
            self.ring.push_response(entry)
        if batch:
            self.stats.ring_batches += 1
            self.stats.ring_batched_entries += len(batch)
            if self.ring.push_responses_and_check_notify():
                self.stats.notifies_sent += 1
                if trace._ACTIVE is not None:  # hot path: skip the hook
                    trace.instant(cpu.cpu_id, "io.doorbell", dev="balloon",
                                  ring="resp")
                self.notify_frontend(cpu)
            else:
                self.stats.notifies_suppressed += 1
        return len(batch)

    def _handle(self, cpu: "Cpu", entry: BalloonRingEntry) -> None:
        mem = self.vmm.machine.memory
        dom = self.guest_domain
        if entry.op == "inflate":
            for frame, ref in entry.frames:
                # take the grant (ownership was checked when the guest
                # created it; the map checks it is really for us) ...
                self.vmm.grants.map(cpu, self.driver_domain.domain_id,
                                    dom.domain_id, ref)
                self.vmm.grants.unmap(cpu, dom.domain_id, ref)
                self.vmm.grants.revoke(dom.domain_id, ref)
                # ... then move the frame to the host free pool.  The
                # page-info release refuses pinned/PT/still-mapped frames,
                # so a buggy frontend cannot leak dangling references.
                self.vmm.page_info.release_frame(frame)
                mem.free(frame)
            dom.balloon_adjust(-len(entry.frames))
            self.inflated += len(entry.frames)
        elif entry.op == "deflate":
            frames = mem.alloc_many(dom.domain_id, entry.count)
            cpu.charge(cpu.cost.cyc_page_alloc * entry.count)
            entry.frames = tuple(frames)
            dom.balloon_adjust(entry.count)
            self.deflated += entry.count
        else:
            entry.ok = False


class NetBack(_NapiBackend):
    """Network backend: bridges netfront rings to the real NIC."""

    def __init__(self, vmm: "Hypervisor", driver_domain: "Domain",
                 tx_ring: IoRing, rx_ring: IoRing,
                 notify_frontend: Callable[["Cpu"], None],
                 transmit: Callable[["Cpu", Packet], None],
                 stats: Optional[IoStats] = None):
        super().__init__(vmm, stats)
        self.driver_domain = driver_domain
        self.tx_ring = tx_ring      # frontend -> backend (guest transmits)
        self.rx_ring = rx_ring      # backend -> frontend (guest receives)
        self.notify_frontend = notify_frontend
        self._transmit = transmit
        self.tx_handled = 0
        self.rx_forwarded = 0
        self.rx_dropped = 0

    def _main_ring(self) -> IoRing:
        return self.tx_ring

    def kick_tx(self, cpu: "Cpu") -> int:
        return self.poll(cpu)

    def _drain(self, cpu: "Cpu") -> int:
        """One budgeted TX drain round: forward a batch to the wire, then
        push the whole batch of completions with one coalesced notify."""
        self._reap_rx_completions()
        cost = cpu.cost
        budget = cost.io_poll_budget
        clk = cpu.clock
        batch: list[NetRingEntry] = []
        while self.tx_ring.has_requests() and len(batch) < budget:
            entry: NetRingEntry = self.tx_ring.pop_request()
            # ring hop (first entry) or batched-entry cost, plus the payload
            # copy out of the granted page and the per-packet netback tax
            # (grant map/unmap, page-flip mmu work, softirq, bridge) — one
            # direct clock add per packet on the datapath's hottest loop
            clk.cycles += ((cost.cyc_ring_hop if not batch
                            else cost.cyc_ring_entry_batched)
                           + cost.cyc_net_copy_per_kb
                           * max(1, entry.pkt.size_bytes // 1024)
                           + cost.cyc_netback_per_packet)
            self._transmit(cpu, entry.pkt)
            batch.append(entry)
            self.tx_handled += 1
        for entry in batch:
            self.tx_ring.push_response(entry)
        if batch:
            self.stats.ring_batches += 1
            self.stats.ring_batched_entries += len(batch)
            if self.tx_ring.push_responses_and_check_notify():
                self.stats.notifies_sent += 1
                if trace._ACTIVE is not None:  # hot path: skip the hook
                    trace.instant(cpu.cpu_id, "io.doorbell", dev="net",
                                  ring="resp")
                self.notify_frontend(cpu)
            else:
                self.stats.notifies_suppressed += 1
        return len(batch)

    def _reap_rx_completions(self) -> None:
        """Reclaim RX buffers the frontend has consumed (frees rx slots)."""
        while self.rx_ring.has_responses():
            self.rx_ring.pop_response()

    def forward_rx(self, cpu: "Cpu", pkt: Packet) -> None:
        """Push a received wire packet up to the frontend.

        Notification rides the check-notify protocol: only the push that
        finds the guest idle fires the channel (and so pays the guest
        wakeup); a burst arriving while the guest's upcall is still in
        flight coalesces onto the already-pending event.  A ring with no
        free slots drops the frame, as real netback does — reliability is
        the transport protocol's job (§5.2)."""
        self._reap_rx_completions()
        if self.rx_ring.free_request_slots() == 0:
            self.rx_dropped += 1
            self.stats.rx_dropped += 1
            return
        cpu.charge(cpu.cost.cyc_ring_hop)
        cpu.charge(cpu.cost.cyc_net_copy_per_kb * max(1, pkt.size_bytes // 1024))
        self.rx_ring.push_request(NetRingEntry(pkt=pkt))
        # rings are symmetric; the frontend consumes rx entries as requests
        self.rx_forwarded += 1
        if self.rx_ring.push_requests_and_check_notify():
            self.stats.notifies_sent += 1
            self.notify_frontend(cpu)
        else:
            self.stats.notifies_suppressed += 1
