"""Backend drivers (blkback / netback) hosted in the driver domain (§5.2).

The backend end of the split-driver model: it consumes requests from a
shared-memory ring, maps the granted payload pages, performs the real device
operation through the driver domain's own (native or para-virtual) driver,
and pushes responses back, notifying the frontend over an event channel.

The paper's dbench observation — domainU *faster* than native because the
split model batches and caches writes (§7.3) — comes from
:attr:`BlkBack.write_cache`: the backend acknowledges writes once they are
in its cache, flushing asynchronously, "at the cost of possible
inconsistency during crash" (the paper cites EXPLODE for that caveat).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import RingError
from repro.hw.devices import BlockRequest, Packet
from repro.vmm.rings import IoRing

if TYPE_CHECKING:
    from repro.hw.cpu import Cpu
    from repro.vmm.domain import Domain
    from repro.vmm.events import Channel, EventChannels
    from repro.vmm.grants import GrantTable
    from repro.vmm.hypervisor import Hypervisor


@dataclass
class BlkRingEntry:
    """One block request as carried on the ring."""

    op: str                # "read" | "write" | "flush"
    block: int
    grant_ref: Optional[int] = None
    data: object = None
    result: object = None
    ok: bool = True
    tag: object = None


@dataclass
class NetRingEntry:
    """One packet handed between netfront and netback."""

    pkt: Packet = None
    tag: object = None


class BlkBack:
    """Block backend: bridges a frontend ring to the real disk."""

    def __init__(self, vmm: "Hypervisor", driver_domain: "Domain",
                 ring: IoRing, notify_frontend: Callable[["Cpu"], None],
                 submit: Callable[["Cpu", BlockRequest], None],
                 write_cache: bool = True):
        self.vmm = vmm
        self.driver_domain = driver_domain
        self.ring = ring
        self.notify_frontend = notify_frontend
        self._submit = submit
        #: backend write caching: acknowledge writes from cache (the split
        #: model's throughput win on dbench)
        self.write_cache = write_cache
        self._cache: dict[int, object] = {}
        #: async flushes in flight (bounded write-behind)
        self._in_flight: list[BlockRequest] = []
        self.requests_handled = 0
        self.flushes = 0

    #: max cached-acked writes in flight before the backend throttles
    FLUSH_DEPTH = 4

    def _reap_flushes(self) -> None:
        self._in_flight = [r for r in self._in_flight if not r.done]

    def _wait_tick(self) -> None:
        """Advance to the next device event (while throttled)."""
        machine = self.vmm.machine
        deadline = machine.clock.next_deadline()
        if deadline is None:
            self._in_flight.clear()
            return
        if deadline > machine.clock.cycles:
            machine.clock.cycles = deadline
        machine.clock.run_due()

    def kick(self, cpu: "Cpu") -> int:
        """Process all pending ring requests; returns how many."""
        handled = 0
        while self.ring.has_requests():
            entry: BlkRingEntry = self.ring.pop_request()
            cpu.charge(cpu.cost.cyc_ring_hop)
            if entry.grant_ref is not None:
                # map the frontend's payload page for the duration
                self.vmm.grants.map(cpu, self.driver_domain.domain_id,
                                    entry.tag, entry.grant_ref)
            self._handle(cpu, entry)
            if entry.grant_ref is not None:
                self.vmm.grants.unmap(cpu, entry.tag, entry.grant_ref)
            self.ring.push_response(entry)
            handled += 1
            self.requests_handled += 1
        if handled:
            self.notify_frontend(cpu)
        return handled

    def _handle(self, cpu: "Cpu", entry: BlkRingEntry) -> None:
        if entry.op == "read":
            if entry.block in self._cache:
                entry.result = self._cache[entry.block]
                return
            req = BlockRequest(op="read", block=entry.block)
            self._submit(cpu, req)
            self._wait(req)
            entry.result = req.result
        elif entry.op == "write":
            if self.write_cache:
                self._cache[entry.block] = entry.data
                # async flush: cheap ack now, device work deferred
                req = BlockRequest(op="write", block=entry.block, data=entry.data)
                self._in_flight.append(req)
                self.vmm.machine.clock.schedule(
                    cpu.cost.cyc_disk_submit,
                    lambda r=req: self.vmm.machine.disk.submit(r))
                # bounded write-behind: past FLUSH_DEPTH the backend stops
                # acking from cache and lets the backlog drain
                self._reap_flushes()
                while len(self._in_flight) > self.FLUSH_DEPTH:
                    self._wait_tick()
                    self._reap_flushes()
            else:
                req = BlockRequest(op="write", block=entry.block, data=entry.data)
                self._submit(cpu, req)
                self._wait(req)
        elif entry.op == "flush":
            self.flushes += 1
            self._cache.clear()
        else:
            entry.ok = False

    def _wait(self, req: BlockRequest) -> None:
        """Drive the machine's event loop until the device completes."""
        machine = self.vmm.machine
        guard = 0
        while not req.done:
            deadline = machine.clock.next_deadline()
            if deadline is None:
                raise RingError("blkback waiting with no pending device event")
            if deadline > machine.clock.cycles:
                machine.clock.cycles = deadline
            machine.clock.run_due()
            guard += 1
            if guard > 1_000_000:  # pragma: no cover - defensive
                raise RingError("blkback wait did not converge")


class NetBack:
    """Network backend: bridges netfront rings to the real NIC."""

    def __init__(self, vmm: "Hypervisor", driver_domain: "Domain",
                 tx_ring: IoRing, rx_ring: IoRing,
                 notify_frontend: Callable[["Cpu"], None],
                 transmit: Callable[["Cpu", Packet], None]):
        self.vmm = vmm
        self.driver_domain = driver_domain
        self.tx_ring = tx_ring      # frontend -> backend (guest transmits)
        self.rx_ring = rx_ring      # backend -> frontend (guest receives)
        self.notify_frontend = notify_frontend
        self._transmit = transmit
        self.tx_handled = 0
        self.rx_forwarded = 0

    def kick_tx(self, cpu: "Cpu") -> int:
        """Forward guest transmissions to the wire."""
        handled = 0
        while self.tx_ring.has_requests():
            entry: NetRingEntry = self.tx_ring.pop_request()
            cpu.charge(cpu.cost.cyc_ring_hop)
            # payload copy out of the granted page
            cpu.charge(cpu.cost.cyc_net_copy_per_kb
                       * max(1, entry.pkt.size_bytes // 1024))
            self._transmit(cpu, entry.pkt)
            self.tx_ring.push_response(entry)
            handled += 1
            self.tx_handled += 1
        if handled:
            self.notify_frontend(cpu)
        return handled

    def forward_rx(self, cpu: "Cpu", pkt: Packet) -> None:
        """Push a received wire packet up to the frontend."""
        cpu.charge(cpu.cost.cyc_ring_hop)
        cpu.charge(cpu.cost.cyc_net_copy_per_kb * max(1, pkt.size_bytes // 1024))
        # dom0 softirq + netback processing + waking the guest's vcpu
        cpu.charge(cpu.cost.cyc_guest_rx_latency)
        self.rx_ring.push_request(NetRingEntry(pkt=pkt))
        # rings are symmetric; the frontend consumes rx entries as requests
        self.rx_forwarded += 1
        self.notify_frontend(cpu)
