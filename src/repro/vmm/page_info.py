"""Per-frame owner/type/count tracking — Xen's page_info, §5.1.2.

To enforce isolation the VMM tracks, for every physical frame: which domain
owns it, what *type* it is currently validated as (leaf page table, PGD, or
plain writable memory), and two counts (type count and general reference
count).  A frame may never simultaneously be a page-table page and writable
by the guest — that is the invariant that makes direct paging safe.

This table is exactly the state Mercury must reconstruct when attaching the
VMM to a formerly-native OS: the paper's measurement (§7.4) shows that
recomputing it dominates the 0.22 ms native→virtual switch.  Both strategies
of §5.1.2 are here:

- **RECOMPUTE**: :meth:`PageInfoTable.recompute` rebuilds the table from the
  OS's address spaces at switch time (the paper's chosen default).
- **ACTIVE**: :class:`repro.core.accounting.ActiveAccountant` calls the
  ``track_*`` methods from native mode on every PT operation, keeping the
  table warm at a 2–3% running cost.

Storage is *columnar*: parallel ``bytearray``/``array('i')`` columns indexed
by frame number, plus a pinned byte-map.  Scalar indexing into these columns
is a plain C-level load/store, which matters because the validation and
count bookkeeping below run per-PTE on the hottest guest paths
(``mmu_update``), and because a reset is a single memset-style slice write.
The pinned map is owned by this class: external code pins and unpins through
:meth:`pin_frame`/:meth:`unpin_frame` (or the bulk variants) and reads
through the set-like :attr:`pinned` view or the raw :attr:`pinned_map`.

On top of the columns sit the *incremental attach* primitives: a
:class:`RootContribution` records exactly what one page-table root adds to
the columns, captured at detach time and subtracted (or merely re-pinned)
at the next attach so only roots dirtied in native mode pay revalidation —
see :class:`repro.core.accounting.MmuAccounting`.
"""

from __future__ import annotations

import enum
from array import array
from collections.abc import Set as AbstractSet
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.errors import PageValidationError
from repro.params import PT_ENTRIES

if TYPE_CHECKING:
    from repro.hw.cpu import Cpu
    from repro.hw.memory import PhysicalMemory
    from repro.hw.paging import AddressSpace, PageTablePage


class PageType(enum.IntEnum):
    NONE = 0
    WRITABLE = 1
    L1_PAGETABLE = 2   # leaf page-table page
    L2_PAGETABLE = 3   # PGD


# enum member access goes through EnumType.__getattr__ on every lookup and
# the validation loops below run per-PTE on the hottest guest paths — hoist
# the values to plain ints once
_NONE = int(PageType.NONE)
_WRITABLE = int(PageType.WRITABLE)
_L1 = int(PageType.L1_PAGETABLE)
_L2 = int(PageType.L2_PAGETABLE)


class PinnedView(AbstractSet):
    """Set-like read view over the pinned byte-map.

    Supports ``in``, iteration, ``len``, truthiness and ``==`` against real
    sets (via :class:`collections.abc.Set`), so existing callers that treat
    the pinned frames as a set keep working; mutation goes through the
    table's explicit pin/unpin API."""

    __slots__ = ("_map", "_table")

    def __init__(self, table: "PageInfoTable"):
        self._table = table
        self._map = table.pinned_map

    def __contains__(self, frame: object) -> bool:
        try:
            return frame >= 0 and self._map[frame] != 0
        except (IndexError, TypeError):
            return False

    def __iter__(self) -> Iterator[int]:
        m = self._map
        return (f for f in range(len(m)) if m[f])

    def __len__(self) -> int:
        return self._table.pinned_count


class RootContribution:
    """Exactly what one validated page-table root contributes to the
    columns: the PGD (typed L2, one type ref), each leaf (typed L1, one type
    ref, one general ref held by the PGD) and, per present PTE, one type
    count and one general ref on the mapped frame.

    Captured from the root's *structure* at detach time — legitimate while
    the root is pinned, because from pin to unpin every structural change
    flows through ``mmu_update``/``adopt_new_leaf``, which maintain the
    table in exactly this canonical shape."""

    __slots__ = ("pgd_frame", "leaf_frames", "mapped")

    def __init__(self, pgd_frame: int, leaf_frames: tuple,
                 mapped: dict):
        self.pgd_frame = pgd_frame
        self.leaf_frames = leaf_frames
        #: frame -> number of present PTEs of this root mapping it (each
        #: contributes +1 type count and +1 ref count)
        self.mapped = mapped

    @classmethod
    def capture(cls, aspace: "AddressSpace") -> "RootContribution":
        mapped: dict[int, int] = {}
        get = mapped.get
        for leaf in aspace.pgd.entries.values():
            for pte in leaf.entries.values():
                if pte.present:
                    f = pte.frame
                    mapped[f] = get(f, 0) + 1
        return cls(aspace.pgd.frame,
                   tuple(l.frame for l in aspace.pgd.entries.values()),
                   mapped)

    def num_pt_pages(self) -> int:
        return 1 + len(self.leaf_frames)


class PageInfoTable:
    """The VMM's view of every physical frame (columnar)."""

    def __init__(self, mem: "PhysicalMemory"):
        self.mem = mem
        n = mem.num_frames
        #: validated type per frame (PageType values), one byte each
        self.type = bytearray(n)
        self.type_count = array("i", bytes(4 * n))
        self.ref_count = array("i", bytes(4 * n))
        #: pinned page-table frames as a byte-map (1 = pinned); mutate only
        #: through pin_frame/unpin_frame so the count stays coherent
        self.pinned_map = bytearray(n)
        self.pinned_count = 0
        #: set-like view over :attr:`pinned_map` for membership/iteration
        self.pinned = PinnedView(self)
        self.validations = 0
        #: bumped by :meth:`reset` — anyone holding captured per-root
        #: contributions (the incremental-attach tracker) must consider
        #: them void when the epoch moved under them
        self.epoch = 0

    # ------------------------------------------------------------------
    # pinning — the byte-map has one owner: this API
    # ------------------------------------------------------------------

    def is_pinned(self, frame: int) -> bool:
        return self.pinned_map[frame] != 0

    def pin_frame(self, frame: int) -> bool:
        """Mark ``frame`` pinned; returns True if it was not already."""
        m = self.pinned_map
        if m[frame]:
            return False
        m[frame] = 1
        self.pinned_count += 1
        return True

    def unpin_frame(self, frame: int) -> bool:
        """Clear ``frame``'s pin mark; returns True if it was pinned."""
        m = self.pinned_map
        if not m[frame]:
            return False
        m[frame] = 0
        self.pinned_count -= 1
        return True

    def pin_frames(self, frames: Iterable[int]) -> None:
        for f in frames:
            self.pin_frame(f)

    def unpin_frames(self, frames: Iterable[int]) -> None:
        for f in frames:
            self.unpin_frame(f)

    # ------------------------------------------------------------------
    # validation / pinning (used when the VMM is ACTIVE, and during the
    # native->virtual state transfer)
    # ------------------------------------------------------------------

    def validate_leaf(self, cpu: "Cpu", leaf: "PageTablePage", domain_id: int) -> None:
        """Validate one leaf PT page for ``domain_id`` and account its
        references.  Charges a full-width entry scan (hardware must look at
        every slot, present or not); the scan itself is one pass over the
        frame columns."""
        cpu.charge(cpu.cost.cyc_pte_validate * PT_ENTRIES)
        self.validations += 1
        ptype, pcount, prefs = self.type, self.type_count, self.ref_count
        owner = self.mem.owner
        for pte in leaf.entries.values():
            if not pte.present:
                continue
            frame = pte.frame
            if owner[frame] != domain_id:
                self._check_frame_for(frame, domain_id)
            t = ptype[frame]
            if pte.writable and (t == _L1 or t == _L2):
                raise PageValidationError(
                    f"writable mapping of page-table frame {frame}")
            prefs[frame] += 1
            if t == _NONE:
                ptype[frame] = _WRITABLE
            pcount[frame] += 1
        self._set_type(leaf.frame, PageType.L1_PAGETABLE)

    def validate_pgd(self, cpu: "Cpu", aspace: "AddressSpace", domain_id: int) -> None:
        """Validate a whole address space top-down (pin operation)."""
        for leaf in aspace.pgd.entries.values():
            if not self.pinned_map[leaf.frame]:
                self.validate_leaf(cpu, leaf, domain_id)
                self.pin_frame(leaf.frame)
            self._get_ref(leaf.frame)
        cpu.charge(cpu.cost.cyc_pte_validate * PT_ENTRIES)
        self._set_type(aspace.pgd.frame, PageType.L2_PAGETABLE)
        self.pin_frame(aspace.pgd.frame)

    def adopt_new_leaf(self, cpu: "Cpu", leaf: "PageTablePage") -> None:
        """A validated mmu_update just instantiated a fresh leaf under a
        pinned PGD (an L2-entry install): the new page-table page must be
        typed, referenced and pinned like any other, or a later unpin
        would unbalance the counts."""
        cpu.charge(cpu.cost.cyc_pte_validate * PT_ENTRIES)
        self._set_type(leaf.frame, PageType.L1_PAGETABLE)
        self._get_ref(leaf.frame)   # the PGD's reference on its leaf
        self.pin_frame(leaf.frame)

    def unpin_aspace(self, cpu: "Cpu", aspace: "AddressSpace") -> None:
        """Drop validation of an address space being torn down.

        Unpinning a table that was never pinned is a guest error (Xen
        returns -EINVAL); accepting it would drive reference counts
        negative."""
        if not self.pinned_map[aspace.pgd.frame]:
            raise PageValidationError(
                f"unpin of unpinned PGD frame {aspace.pgd.frame}")
        for leaf in aspace.pgd.entries.values():
            # drop the PGD's reference on the leaf *before* the leaf's
            # counters are wiped (the mirror image of validate_pgd's
            # validate-then-get_ref order)
            self._put_ref(leaf.frame)
            if self.unpin_frame(leaf.frame):
                self._unaccount_leaf(cpu, leaf)
        self.unpin_frame(aspace.pgd.frame)
        self._clear_type(aspace.pgd.frame)

    def validate_pte_write(self, cpu: "Cpu", pte, domain_id: int) -> None:
        """Validate one PTE about to be installed (mmu_update path).

        The apply/validate *cost* is charged by the hypercall layer (it
        differs between the batched and unbatched paths); this method only
        performs the safety checks and the count bookkeeping."""
        if pte is None or not pte.present:
            return
        frame = pte.frame
        if self.mem.owner[frame] != domain_id:
            self._check_frame_for(frame, domain_id)
        t = self.type[frame]
        if pte.writable and (t == _L1 or t == _L2):
            raise PageValidationError(
                f"mmu_update installs writable mapping of PT frame {frame}")
        self.ref_count[frame] += 1
        if t == _NONE:
            self.type[frame] = _WRITABLE
        self.type_count[frame] += 1

    def account_pte_clear(self, cpu: "Cpu", old_pte) -> None:
        if old_pte is None or not old_pte.present:
            return
        frame = old_pte.frame
        pcount = self.type_count
        if pcount[frame] <= 0:
            # the entry's accounting was already dropped (unpin turns a
            # table back into plain memory with its mappings intact, wiping
            # the counts its entries contributed) — there is nothing left
            # to unaccount, and decrementing anyway would let a hostile
            # pin/map/unpin/clear sequence drive the counts negative
            return
        pcount[frame] -= 1
        self.ref_count[frame] -= 1
        if pcount[frame] == 0 and self.type[frame] == _WRITABLE:
            self.type[frame] = _NONE

    # ------------------------------------------------------------------
    # ACTIVE tracking entry points (strategy 1 of §5.1.2)
    # ------------------------------------------------------------------

    def track_set_pte(self, pte, domain_id: int) -> None:
        """Cheap bookkeeping-only update (no privilege checks: the OS is
        native and trusted; we only keep counters warm)."""
        if pte is None or not pte.present:
            return
        frame = pte.frame
        self.ref_count[frame] += 1
        if self.type[frame] == _NONE:
            self.type[frame] = _WRITABLE
        self.type_count[frame] += 1

    def track_clear_pte(self, old_pte) -> None:
        if old_pte is None or not old_pte.present:
            return
        frame = old_pte.frame
        self.type_count[frame] -= 1
        self.ref_count[frame] -= 1
        if self.type_count[frame] == 0 and self.type[frame] == _WRITABLE:
            self.type[frame] = _NONE

    def track_new_pt_page(self, pt_frame: int, level: int) -> None:
        self.type[pt_frame] = _L2 if level == 2 else _L1
        self.type_count[pt_frame] = 1  # one use as a page table

    def track_drop_pt_page(self, pt_frame: int) -> None:
        self.type[pt_frame] = _NONE
        self.type_count[pt_frame] = 0
        self.ref_count[pt_frame] = 0

    # ------------------------------------------------------------------
    # RECOMPUTE (strategy 2, the paper's default) — the dominant cost of a
    # native->virtual mode switch
    # ------------------------------------------------------------------

    def recompute(self, cpu: "Cpu", aspaces: Iterable["AddressSpace"],
                  domain_id: int) -> int:
        """Rebuild type/count info from scratch for a domain's address
        spaces.  Returns the number of PT pages scanned."""
        self.reset()
        scanned = 0
        for aspace in aspaces:
            self.validate_pgd(cpu, aspace, domain_id)
            scanned += aspace.num_pt_pages()
        return scanned

    def reset(self) -> None:
        """Columnar wipe (the 'VMM lost track' state of native mode)."""
        n = len(self.type)
        self.type[:] = bytes(n)
        self.type_count[:] = array("i", bytes(4 * n))
        self.ref_count[:] = array("i", bytes(4 * n))
        self.pinned_map[:] = bytes(n)
        self.pinned_count = 0
        self.epoch += 1

    # ------------------------------------------------------------------
    # incremental attach (per-root trust) — see MmuAccounting
    # ------------------------------------------------------------------

    def repin_root(self, contrib: RootContribution) -> int:
        """Re-pin a root whose column contributions survived the detach
        untouched: the type/count columns already hold exactly what a full
        validation would rebuild (detach removes only the pin marks), so
        trusting the root costs a pin-mark write per PT page instead of a
        full-width entry scan.  Returns the number of PT pages re-pinned."""
        self.pin_frame(contrib.pgd_frame)
        for lf in contrib.leaf_frames:
            self.pin_frame(lf)
        return contrib.num_pt_pages()

    def subtract_root(self, contrib: RootContribution) -> None:
        """Remove a captured root contribution from the columns — the exact
        inverse of what validating that root added.  Used for roots that
        died or were dirtied in native mode, before their current structure
        (if any) is revalidated from scratch."""
        ptype, pcount, prefs = self.type, self.type_count, self.ref_count
        # data references first, while the PT frames still carry their
        # PT types (a mapping of a PT frame must not demote it)
        for frame, n in contrib.mapped.items():
            pcount[frame] -= n
            prefs[frame] -= n
            if pcount[frame] <= 0 and ptype[frame] == _WRITABLE:
                ptype[frame] = _NONE
        # then the PT-ness of the leaves and the PGD; residual counts mean
        # other roots map the frame as plain data, so it demotes to
        # WRITABLE rather than NONE — exactly what a full recompute without
        # this root would conclude
        for lf in contrib.leaf_frames:
            pcount[lf] -= 1
            prefs[lf] -= 1
            ptype[lf] = _WRITABLE if pcount[lf] > 0 else _NONE
        pgd = contrib.pgd_frame
        pcount[pgd] -= 1
        ptype[pgd] = _WRITABLE if pcount[pgd] > 0 else _NONE

    # ------------------------------------------------------------------
    # consistency checking (property tests compare ACTIVE vs RECOMPUTE and
    # incremental vs full)
    # ------------------------------------------------------------------

    def release_frame(self, frame: int) -> None:
        """A frame is leaving its domain for the host free pool (balloon
        inflate).  Only a plain, unreferenced page may go: a pinned frame,
        a page-table frame, or one the columns still see mapped would leave
        dangling references behind, so surrendering it is a guest error —
        the balloon driver must unmap first."""
        if self.pinned_map[frame]:
            raise PageValidationError(
                f"balloon surrender of pinned frame {frame}")
        t = self.type[frame]
        if t == _L1 or t == _L2:
            raise PageValidationError(
                f"balloon surrender of page-table frame {frame}")
        if self.type_count[frame] > 0 or self.ref_count[frame] > 0:
            raise PageValidationError(
                f"balloon surrender of frame {frame} still mapped "
                f"(uses={self.type_count[frame]}, refs={self.ref_count[frame]})")
        self.type[frame] = _NONE

    def semantically_equal(self, other: "PageInfoTable") -> bool:
        """Compare the *guest-visible* semantics: same frame types and same
        type counts.  (Internal ref counts may differ between strategies —
        pinning takes extra references the cheap tracker does not.)"""
        return (self.type == other.type
                and self.type_count == other.type_count)

    def is_pt_frame(self, frame: int) -> bool:
        t = self.type[frame]
        return t == _L1 or t == _L2

    # ------------------------------------------------------------------

    def _unaccount_leaf(self, cpu: "Cpu", leaf: "PageTablePage") -> None:
        ptype, pcount, prefs = self.type, self.type_count, self.ref_count
        for pte in leaf.entries.values():
            if pte.present and pcount[pte.frame] > 0:  # same clamp as
                frame = pte.frame                      # account_pte_clear
                pcount[frame] -= 1
                prefs[frame] -= 1
                if pcount[frame] == 0 and ptype[frame] == _WRITABLE:
                    ptype[frame] = _NONE
        self._clear_type(leaf.frame)

    def _check_frame_for(self, frame: int, domain_id: int) -> None:
        owner = self.mem.owner_of(frame)
        if owner != domain_id:
            raise PageValidationError(
                f"frame {frame} owned by {owner}, not domain {domain_id}")

    def _set_type(self, frame: int, ptype: PageType) -> None:
        cur = PageType(self.type[frame])
        if cur not in (PageType.NONE, ptype):
            raise PageValidationError(
                f"frame {frame} re-typed {cur.name} -> {ptype.name} while in use")
        self.type[frame] = ptype
        self.type_count[frame] += 1

    def _clear_type(self, frame: int) -> None:
        self.type_count[frame] = 0
        self.ref_count[frame] = 0
        self.type[frame] = _NONE

    def _get_ref(self, frame: int) -> None:
        self.ref_count[frame] += 1

    def _put_ref(self, frame: int) -> None:
        self.ref_count[frame] -= 1
