"""Per-frame owner/type/count tracking — Xen's page_info, §5.1.2.

To enforce isolation the VMM tracks, for every physical frame: which domain
owns it, what *type* it is currently validated as (leaf page table, PGD, or
plain writable memory), and two counts (type count and general reference
count).  A frame may never simultaneously be a page-table page and writable
by the guest — that is the invariant that makes direct paging safe.

This table is exactly the state Mercury must reconstruct when attaching the
VMM to a formerly-native OS: the paper's measurement (§7.4) shows that
recomputing it dominates the 0.22 ms native→virtual switch.  Both strategies
of §5.1.2 are here:

- **RECOMPUTE**: :meth:`PageInfoTable.recompute` rebuilds the table from the
  OS's address spaces at switch time (the paper's chosen default).
- **ACTIVE**: :class:`repro.core.accounting.ActiveAccountant` calls the
  ``track_*`` methods from native mode on every PT operation, keeping the
  table warm at a 2–3% running cost.

Metadata lives in numpy arrays so recompute can zero/aggregate vectorized;
per-entry *validation* still walks real PTEs, because correctness (catching
a PTE that points at a foreign frame) is part of what we reproduce.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.errors import PageValidationError
from repro.params import PT_ENTRIES

if TYPE_CHECKING:
    from repro.hw.cpu import Cpu
    from repro.hw.memory import PhysicalMemory
    from repro.hw.paging import AddressSpace, PageTablePage


class PageType(enum.IntEnum):
    NONE = 0
    WRITABLE = 1
    L1_PAGETABLE = 2   # leaf page-table page
    L2_PAGETABLE = 3   # PGD


# enum member access goes through EnumType.__getattr__ on every lookup and
# the validation loops below run per-PTE on the hottest guest paths — hoist
# the values to plain ints once
_NONE = int(PageType.NONE)
_WRITABLE = int(PageType.WRITABLE)
_L1 = int(PageType.L1_PAGETABLE)
_L2 = int(PageType.L2_PAGETABLE)


class PageInfoTable:
    """The VMM's view of every physical frame."""

    def __init__(self, mem: "PhysicalMemory"):
        self.mem = mem
        n = mem.num_frames
        self.type = np.zeros(n, dtype=np.int8)
        self.type_count = np.zeros(n, dtype=np.int32)
        self.ref_count = np.zeros(n, dtype=np.int32)
        #: pinned page-table frames (explicitly validated via mmuext pin)
        self.pinned: set[int] = set()
        self.validations = 0

    # ------------------------------------------------------------------
    # validation / pinning (used when the VMM is ACTIVE, and during the
    # native->virtual state transfer)
    # ------------------------------------------------------------------

    def validate_leaf(self, cpu: "Cpu", leaf: "PageTablePage", domain_id: int) -> None:
        """Validate one leaf PT page for ``domain_id`` and account its
        references.  Charges a full-width entry scan (hardware must look at
        every slot, present or not)."""
        cpu.charge(cpu.cost.cyc_pte_validate * PT_ENTRIES)
        self.validations += 1
        ptype, pcount, prefs = self.type, self.type_count, self.ref_count
        owner = self.mem.owner
        for pte in leaf.entries.values():
            if not pte.present:
                continue
            frame = pte.frame
            if owner[frame] != domain_id:
                self._check_frame_for(frame, domain_id)
            t = ptype[frame]
            if pte.writable and (t == _L1 or t == _L2):
                raise PageValidationError(
                    f"writable mapping of page-table frame {frame}")
            prefs[frame] += 1
            if t == _NONE:
                ptype[frame] = _WRITABLE
            pcount[frame] += 1
        self._set_type(leaf.frame, PageType.L1_PAGETABLE)

    def validate_pgd(self, cpu: "Cpu", aspace: "AddressSpace", domain_id: int) -> None:
        """Validate a whole address space top-down (pin operation)."""
        for leaf in aspace.pgd.entries.values():
            if leaf.frame not in self.pinned:
                self.validate_leaf(cpu, leaf, domain_id)
                self.pinned.add(leaf.frame)
            self._get_ref(leaf.frame)
        cpu.charge(cpu.cost.cyc_pte_validate * PT_ENTRIES)
        self._set_type(aspace.pgd.frame, PageType.L2_PAGETABLE)
        self.pinned.add(aspace.pgd.frame)

    def adopt_new_leaf(self, cpu: "Cpu", leaf: "PageTablePage") -> None:
        """A validated mmu_update just instantiated a fresh leaf under a
        pinned PGD (an L2-entry install): the new page-table page must be
        typed, referenced and pinned like any other, or a later unpin
        would unbalance the counts."""
        cpu.charge(cpu.cost.cyc_pte_validate * PT_ENTRIES)
        self._set_type(leaf.frame, PageType.L1_PAGETABLE)
        self._get_ref(leaf.frame)   # the PGD's reference on its leaf
        self.pinned.add(leaf.frame)

    def unpin_aspace(self, cpu: "Cpu", aspace: "AddressSpace") -> None:
        """Drop validation of an address space being torn down.

        Unpinning a table that was never pinned is a guest error (Xen
        returns -EINVAL); accepting it would drive reference counts
        negative."""
        if aspace.pgd.frame not in self.pinned:
            raise PageValidationError(
                f"unpin of unpinned PGD frame {aspace.pgd.frame}")
        for leaf in aspace.pgd.entries.values():
            # drop the PGD's reference on the leaf *before* the leaf's
            # counters are wiped (the mirror image of validate_pgd's
            # validate-then-get_ref order)
            self._put_ref(leaf.frame)
            if leaf.frame in self.pinned:
                self.pinned.discard(leaf.frame)
                self._unaccount_leaf(cpu, leaf)
        self.pinned.discard(aspace.pgd.frame)
        self._clear_type(aspace.pgd.frame)

    def validate_pte_write(self, cpu: "Cpu", pte, domain_id: int) -> None:
        """Validate one PTE about to be installed (mmu_update path).

        The apply/validate *cost* is charged by the hypercall layer (it
        differs between the batched and unbatched paths); this method only
        performs the safety checks and the count bookkeeping."""
        if pte is None or not pte.present:
            return
        frame = pte.frame
        if self.mem.owner[frame] != domain_id:
            self._check_frame_for(frame, domain_id)
        t = self.type[frame]
        if pte.writable and (t == _L1 or t == _L2):
            raise PageValidationError(
                f"mmu_update installs writable mapping of PT frame {frame}")
        self.ref_count[frame] += 1
        if t == _NONE:
            self.type[frame] = _WRITABLE
        self.type_count[frame] += 1

    def account_pte_clear(self, cpu: "Cpu", old_pte) -> None:
        if old_pte is None or not old_pte.present:
            return
        frame = old_pte.frame
        if self.type_count[frame] <= 0:
            # the entry's accounting was already dropped (unpin turns a
            # table back into plain memory with its mappings intact, wiping
            # the counts its entries contributed) — there is nothing left
            # to unaccount, and decrementing anyway would let a hostile
            # pin/map/unpin/clear sequence drive the counts negative
            return
        self.type_count[frame] -= 1
        self.ref_count[frame] -= 1
        if self.type_count[frame] == 0 and self.type[frame] == _WRITABLE:
            self.type[frame] = _NONE

    # ------------------------------------------------------------------
    # ACTIVE tracking entry points (strategy 1 of §5.1.2)
    # ------------------------------------------------------------------

    def track_set_pte(self, pte, domain_id: int) -> None:
        """Cheap bookkeeping-only update (no privilege checks: the OS is
        native and trusted; we only keep counters warm)."""
        if pte is None or not pte.present:
            return
        self.ref_count[pte.frame] += 1
        if self.type[pte.frame] == PageType.NONE:
            self.type[pte.frame] = PageType.WRITABLE
        self.type_count[pte.frame] += 1

    def track_clear_pte(self, old_pte) -> None:
        if old_pte is None or not old_pte.present:
            return
        self.type_count[old_pte.frame] -= 1
        self.ref_count[old_pte.frame] -= 1
        if self.type_count[old_pte.frame] == 0 and \
                self.type[old_pte.frame] == PageType.WRITABLE:
            self.type[old_pte.frame] = PageType.NONE

    def track_new_pt_page(self, pt_frame: int, level: int) -> None:
        self.type[pt_frame] = (PageType.L2_PAGETABLE if level == 2
                               else PageType.L1_PAGETABLE)
        self.type_count[pt_frame] = 1  # one use as a page table

    def track_drop_pt_page(self, pt_frame: int) -> None:
        self.type[pt_frame] = PageType.NONE
        self.type_count[pt_frame] = 0
        self.ref_count[pt_frame] = 0

    # ------------------------------------------------------------------
    # RECOMPUTE (strategy 2, the paper's default) — the dominant cost of a
    # native->virtual mode switch
    # ------------------------------------------------------------------

    def recompute(self, cpu: "Cpu", aspaces: Iterable["AddressSpace"],
                  domain_id: int) -> int:
        """Rebuild type/count info from scratch for a domain's address
        spaces.  Returns the number of PT pages scanned."""
        self.reset()
        scanned = 0
        for aspace in aspaces:
            self.validate_pgd(cpu, aspace, domain_id)
            scanned += aspace.num_pt_pages()
        return scanned

    def reset(self) -> None:
        """Vectorized wipe (the 'VMM lost track' state of native mode)."""
        self.type[:] = PageType.NONE
        self.type_count[:] = 0
        self.ref_count[:] = 0
        self.pinned.clear()

    # ------------------------------------------------------------------
    # consistency checking (property tests compare ACTIVE vs RECOMPUTE)
    # ------------------------------------------------------------------

    def semantically_equal(self, other: "PageInfoTable") -> bool:
        """Compare the *guest-visible* semantics: same frame types and same
        type counts.  (Internal ref counts may differ between strategies —
        pinning takes extra references the cheap tracker does not.)"""
        return (np.array_equal(self.type, other.type)
                and np.array_equal(self.type_count, other.type_count))

    def is_pt_frame(self, frame: int) -> bool:
        t = self.type[frame]
        return t == _L1 or t == _L2

    # ------------------------------------------------------------------

    def _unaccount_leaf(self, cpu: "Cpu", leaf: "PageTablePage") -> None:
        ptype, pcount, prefs = self.type, self.type_count, self.ref_count
        for pte in leaf.entries.values():
            if pte.present and pcount[pte.frame] > 0:  # same clamp as
                frame = pte.frame                      # account_pte_clear
                pcount[frame] -= 1
                prefs[frame] -= 1
                if pcount[frame] == 0 and ptype[frame] == _WRITABLE:
                    ptype[frame] = _NONE
        self._clear_type(leaf.frame)

    def _check_frame_for(self, frame: int, domain_id: int) -> None:
        owner = self.mem.owner_of(frame)
        if owner != domain_id:
            raise PageValidationError(
                f"frame {frame} owned by {owner}, not domain {domain_id}")

    def _set_type(self, frame: int, ptype: PageType) -> None:
        cur = PageType(int(self.type[frame]))
        if cur not in (PageType.NONE, ptype):
            raise PageValidationError(
                f"frame {frame} re-typed {cur.name} -> {ptype.name} while in use")
        self.type[frame] = ptype
        self.type_count[frame] += 1

    def _clear_type(self, frame: int) -> None:
        self.type_count[frame] = 0
        self.ref_count[frame] = 0
        self.type[frame] = PageType.NONE

    def _get_ref(self, frame: int) -> None:
        self.ref_count[frame] += 1

    def _put_ref(self, frame: int) -> None:
        self.ref_count[frame] -= 1
