"""Shared-memory I/O rings — the Xen frontend/backend transport (§5.2).

One ring lives in a shared page and carries fixed-size request and response
slots with free-running producer/consumer indices (Xen's ``RING_*`` macros).
The frontend produces requests and consumes responses; the backend does the
opposite.  Indices only ever increase; slot positions are ``index % size``.
Protocol violations (overrun, consuming past the producer) raise
:class:`~repro.errors.RingError` — property tests hammer these invariants.

Notification avoidance
----------------------
Besides the four data indices the ring carries two *event* indices,
``req_event`` and ``rsp_event``, exactly as Xen's shared ring does.  A
consumer that is about to go idle advertises the producer index at which it
wants to be woken (``final_check_for_requests``: set ``req_event =
req_cons + 1`` *then* re-check for work — that ordering is what makes the
protocol lost-wakeup free).  A producer that has just published a batch
only notifies when its push crossed the advertised wakeup index
(``push_requests_and_check_notify``); while the consumer is known to be
awake and polling, the event channel stays silent.  This is the
``RING_PUSH_REQUESTS_AND_CHECK_NOTIFY`` / ``RING_FINAL_CHECK_FOR_*``
pairing that lets the split-driver datapath amortize one notification over
a whole batch of requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generic, Optional, TypeVar

from repro.errors import RingError

T = TypeVar("T")


@dataclass
class RingCounters:
    req_prod: int = 0
    req_cons: int = 0
    rsp_prod: int = 0
    rsp_cons: int = 0
    #: producer index at which the request consumer wants a wakeup
    #: (Xen: notify iff a push crosses this index)
    req_event: int = 1
    #: producer index at which the response consumer wants a wakeup
    rsp_event: int = 1


@dataclass
class IoStats:
    """Datapath-wide notification and batching counters.

    One instance is shared by every frontend/backend a hypervisor wires
    (``vmm.io_stats``); standalone drivers get a private one.  The metrics
    layer surfaces these as the §5.2 notification-avoidance figures.
    """

    notifies_sent: int = 0
    notifies_suppressed: int = 0
    ring_batches: int = 0
    ring_batched_entries: int = 0
    rx_dropped: int = 0

    @property
    def avg_batch(self) -> float:
        return (self.ring_batched_entries / self.ring_batches
                if self.ring_batches else 0.0)

    @property
    def suppression_ratio(self) -> float:
        total = self.notifies_sent + self.notifies_suppressed
        return self.notifies_suppressed / total if total else 0.0


class IoRing(Generic[T]):
    """One front/back ring pair of ``size`` slots (power of two)."""

    def __init__(self, size: int = 32):
        if size <= 0 or size & (size - 1):
            raise RingError(f"ring size must be a power of two, got {size}")
        self.size = size
        self.c = RingCounters()
        self._req: list[Optional[T]] = [None] * size
        self._rsp: list[Optional[T]] = [None] * size
        #: producer indices already published at the last notify check —
        #: the ``old`` of Xen's PUSH_AND_CHECK macros
        self._req_pub = 0
        self._rsp_pub = 0

    # -- frontend side ----------------------------------------------------

    def push_request(self, req: T) -> None:
        # A request slot is reusable once its *response* has been consumed;
        # in-flight work (produced requests + pending responses) may never
        # exceed the ring size.
        if self.c.req_prod - self.c.rsp_cons >= self.size:
            raise RingError("request ring full")
        self._req[self.c.req_prod % self.size] = req
        self.c.req_prod += 1

    def pop_response(self) -> T:
        if self.c.rsp_cons >= self.c.rsp_prod:
            raise RingError("no responses to consume")
        rsp = self._rsp[self.c.rsp_cons % self.size]
        self.c.rsp_cons += 1
        return rsp  # type: ignore[return-value]

    def has_responses(self) -> bool:
        return self.c.rsp_cons < self.c.rsp_prod

    def free_request_slots(self) -> int:
        return self.size - (self.c.req_prod - self.c.rsp_cons)

    # -- backend side --------------------------------------------------------

    def pop_request(self) -> T:
        if self.c.req_cons >= self.c.req_prod:
            raise RingError("no requests to consume")
        req = self._req[self.c.req_cons % self.size]
        self.c.req_cons += 1
        return req  # type: ignore[return-value]

    def has_requests(self) -> bool:
        return self.c.req_cons < self.c.req_prod

    def push_response(self, rsp: T) -> None:
        # every response answers a consumed request, so rsp_prod can never
        # pass req_cons
        if self.c.rsp_prod >= self.c.req_cons:
            raise RingError("response without a consumed request")
        self._rsp[self.c.rsp_prod % self.size] = rsp
        self.c.rsp_prod += 1

    # -- notification-avoidance protocol -----------------------------------

    def push_requests_and_check_notify(self) -> bool:
        """Publish pushed requests; True iff the consumer needs a kick.

        Xen's ``RING_PUSH_REQUESTS_AND_CHECK_NOTIFY``: notify only when the
        new producer index crossed the consumer's advertised ``req_event``
        — i.e. the consumer declared itself idle somewhere inside the span
        this push just published."""
        old, new = self._req_pub, self.c.req_prod
        self._req_pub = new
        return old < self.c.req_event <= new

    def final_check_for_requests(self) -> bool:
        """Consumer is about to sleep: advertise the wakeup index, *then*
        re-check.  True means requests slipped in and the consumer must do
        another pass instead of sleeping (``RING_FINAL_CHECK_FOR_REQUESTS``
        — the re-check after publishing ``req_event`` is what closes the
        lost-wakeup window)."""
        self.c.req_event = self.c.req_cons + 1
        return self.has_requests()

    def push_responses_and_check_notify(self) -> bool:
        """Backend twin of :meth:`push_requests_and_check_notify`."""
        old, new = self._rsp_pub, self.c.rsp_prod
        self._rsp_pub = new
        return old < self.c.rsp_event <= new

    def final_check_for_responses(self) -> bool:
        """Frontend twin of :meth:`final_check_for_requests`."""
        self.c.rsp_event = self.c.rsp_cons + 1
        return self.has_responses()

    # -- invariants ------------------------------------------------------------

    def check_invariants(self) -> None:
        c = self.c
        if not (c.rsp_cons <= c.rsp_prod <= c.req_cons <= c.req_prod):
            raise RingError(f"index ordering violated: {c}")
        if c.req_prod - c.rsp_cons > self.size:
            raise RingError(f"ring overcommitted: {c}")
        if not (self._req_pub <= c.req_prod and self._rsp_pub <= c.rsp_prod):
            raise RingError(f"published past produced: {c}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IoRing(size={self.size}, {self.c})"
