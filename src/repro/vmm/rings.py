"""Shared-memory I/O rings — the Xen frontend/backend transport (§5.2).

One ring lives in a shared page and carries fixed-size request and response
slots with free-running producer/consumer indices (Xen's ``RING_*`` macros).
The frontend produces requests and consumes responses; the backend does the
opposite.  Indices only ever increase; slot positions are ``index % size``.
Protocol violations (overrun, consuming past the producer) raise
:class:`~repro.errors.RingError` — property tests hammer these invariants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generic, Optional, TypeVar

from repro.errors import RingError

T = TypeVar("T")


@dataclass
class RingCounters:
    req_prod: int = 0
    req_cons: int = 0
    rsp_prod: int = 0
    rsp_cons: int = 0


class IoRing(Generic[T]):
    """One front/back ring pair of ``size`` slots (power of two)."""

    def __init__(self, size: int = 32):
        if size <= 0 or size & (size - 1):
            raise RingError(f"ring size must be a power of two, got {size}")
        self.size = size
        self.c = RingCounters()
        self._req: list[Optional[T]] = [None] * size
        self._rsp: list[Optional[T]] = [None] * size

    # -- frontend side ----------------------------------------------------

    def push_request(self, req: T) -> None:
        # A request slot is reusable once its *response* has been consumed;
        # in-flight work (produced requests + pending responses) may never
        # exceed the ring size.
        if self.c.req_prod - self.c.rsp_cons >= self.size:
            raise RingError("request ring full")
        self._req[self.c.req_prod % self.size] = req
        self.c.req_prod += 1

    def pop_response(self) -> T:
        if self.c.rsp_cons >= self.c.rsp_prod:
            raise RingError("no responses to consume")
        rsp = self._rsp[self.c.rsp_cons % self.size]
        self.c.rsp_cons += 1
        return rsp  # type: ignore[return-value]

    def has_responses(self) -> bool:
        return self.c.rsp_cons < self.c.rsp_prod

    def free_request_slots(self) -> int:
        return self.size - (self.c.req_prod - self.c.rsp_cons)

    # -- backend side --------------------------------------------------------

    def pop_request(self) -> T:
        if self.c.req_cons >= self.c.req_prod:
            raise RingError("no requests to consume")
        req = self._req[self.c.req_cons % self.size]
        self.c.req_cons += 1
        return req  # type: ignore[return-value]

    def has_requests(self) -> bool:
        return self.c.req_cons < self.c.req_prod

    def push_response(self, rsp: T) -> None:
        # every response answers a consumed request, so rsp_prod can never
        # pass req_cons
        if self.c.rsp_prod >= self.c.req_cons:
            raise RingError("response without a consumed request")
        self._rsp[self.c.rsp_prod % self.size] = rsp
        self.c.rsp_prod += 1

    # -- invariants ------------------------------------------------------------

    def check_invariants(self) -> None:
        c = self.c
        if not (c.rsp_cons <= c.rsp_prod <= c.req_cons <= c.req_prod):
            raise RingError(f"index ordering violated: {c}")
        if c.req_prod - c.rsp_cons > self.size:
            raise RingError(f"ring overcommitted: {c}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IoRing(size={self.size}, {self.c})"
