"""A Xen-like virtual machine monitor (the substrate Mercury attaches).

The pieces mirror Xen 3.0.2 as the paper used it:

- :mod:`repro.vmm.hypervisor` — the VMM core: warm-up (pre-caching),
  activation/deactivation, trap handling, hypercall dispatch.
- :mod:`repro.vmm.domain` — domains and VCPUs.
- :mod:`repro.vmm.page_info` — per-frame owner/type/count tracking with
  page-table pinning and validation (direct paging mode, §3.2.2).
- :mod:`repro.vmm.hypercalls` — the hypercall table.
- :mod:`repro.vmm.events` — event channels (virtual interrupts).
- :mod:`repro.vmm.grants` — grant tables (page sharing for split I/O).
- :mod:`repro.vmm.rings` — shared-memory I/O rings.
- :mod:`repro.vmm.backend` — blkback/netback drivers in the driver domain.
- :mod:`repro.vmm.sched_credit` — the credit VCPU scheduler.
"""

from repro.vmm.domain import Domain, Vcpu
from repro.vmm.hypervisor import Hypervisor, VmmState
from repro.vmm.page_info import PageInfoTable, PageType

__all__ = [
    "Domain",
    "Hypervisor",
    "PageInfoTable",
    "PageType",
    "Vcpu",
    "VmmState",
]
