"""Event channels — Xen's virtual interrupts.

An event channel is a port pair binding two endpoints (domain, port).  The
VMM turns hardware interrupts and inter-domain notifications into events;
the guest receives them through an upcall.  Under the split-driver model the
frontend and backend notify each other over an event channel after posting
ring entries (§5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import VMMError

if TYPE_CHECKING:
    from repro.hw.cpu import Cpu
    from repro.vmm.domain import Domain


@dataclass
class Channel:
    port: int
    owner_domain: int
    peer_domain: Optional[int] = None
    peer_port: Optional[int] = None
    #: upcall invoked on the owner when the channel fires
    handler: Optional[Callable[[], None]] = None
    pending: bool = False
    masked: bool = False
    fires: int = 0
    #: sends that collapsed into an already-pending event (Xen's pending
    #: bit is level-triggered: N sends before the upcall runs deliver once)
    coalesced: int = 0
    #: total sends addressed at this channel (fires + coalesced)
    sends: int = 0


class EventChannels:
    """The machine-wide event-channel table."""

    def __init__(self):
        self._channels: dict[tuple[int, int], Channel] = {}
        self._next_port: dict[int, int] = {}

    def alloc(self, domain_id: int,
              handler: Optional[Callable[[], None]] = None) -> Channel:
        port = self._next_port.get(domain_id, 1)
        self._next_port[domain_id] = port + 1
        ch = Channel(port=port, owner_domain=domain_id, handler=handler)
        self._channels[(domain_id, port)] = ch
        return ch

    def connect(self, a: Channel, b: Channel) -> None:
        """Bind two channels into an inter-domain pair."""
        a.peer_domain, a.peer_port = b.owner_domain, b.port
        b.peer_domain, b.peer_port = a.owner_domain, a.port

    def lookup(self, domain_id: int, port: int) -> Channel:
        try:
            return self._channels[(domain_id, port)]
        except KeyError:
            raise VMMError(f"no event channel ({domain_id}, {port})") from None

    def send(self, cpu: "Cpu", from_ch: Channel) -> None:
        """Notify the peer of ``from_ch``: mark pending and deliver the
        upcall if unmasked.  Charges the event-channel cost.

        The pending bit is level-triggered, so repeated sends while the
        peer has not yet serviced the event coalesce into one delivery —
        the backend masks its channel while polling and every send in that
        window collapses (counted in :attr:`Channel.coalesced`)."""
        if from_ch.peer_domain is None:
            raise VMMError(f"channel {from_ch.port} is not connected")
        peer = self.lookup(from_ch.peer_domain, from_ch.peer_port)
        cpu.charge(cpu.cost.cyc_event_channel)
        peer.sends += 1
        if peer.pending:
            peer.coalesced += 1
            return
        peer.pending = True
        peer.fires += 1
        if not peer.masked and peer.handler is not None:
            peer.pending = False
            peer.handler()

    def unmask(self, cpu: "Cpu", ch: Channel) -> None:
        ch.masked = False
        if ch.pending and ch.handler is not None:
            ch.pending = False
            cpu.charge(cpu.cost.cyc_event_channel)
            ch.handler()

    def mask(self, ch: Channel) -> None:
        ch.masked = True

    def total_coalesced(self) -> int:
        """Machine-wide count of sends absorbed by the pending bit."""
        return sum(ch.coalesced for ch in self._channels.values())

    def close_domain(self, domain_id: int) -> None:
        """Tear down every channel a dying domain owns."""
        for key in [k for k in self._channels if k[0] == domain_id]:
            ch = self._channels.pop(key)
            if ch.peer_domain is not None:
                peer = self._channels.get((ch.peer_domain, ch.peer_port))
                if peer is not None:
                    peer.peer_domain = peer.peer_port = None
