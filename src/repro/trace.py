"""Cycle-domain tracing for the mode-switch pipeline (xentrace-style).

The paper's headline number — a whole attach completes in ~0.2 ms (§7.4) —
is a *sum* over the phases of §4.3/§5.1: state tracking, state transfer,
and state reloading.  The metrics layer can say *that* a switch happened;
this module records *where the cycles went*: a per-CPU bounded ring buffer
of typed events stamped in the **simulated cycle domain** (the same RDTSC
timeline §7.4 measures with), recorded by hooks threaded through the switch
engine, the state-transfer functions, the per-CPU reloads, the SMP
rendezvous, the hypercall dispatcher, the fault-injection seams, and the
split-driver doorbell path.

Design rules:

- **Near-zero cost when disabled.**  Every hook starts with one
  ``_ACTIVE is None`` test and returns.  No tracer installed — no
  allocation, no clock read, no string formatting.
- **Observation only.**  The tracer never calls :meth:`Cpu.charge` or
  advances the clock; enabling it cannot perturb a single simulated cycle
  (``tests/integration/test_trace_equivalence.py`` proves it).
- **Bounded.**  Each CPU's buffer is a ring of ``capacity_per_cpu``
  events; overflow drops oldest-first and counts what it dropped
  (surfaced as the ``trace_dropped`` metric).
- **Well-formed by construction.**  Pipeline spans are emitted through
  ``try/finally`` (the :func:`span` context manager), so every begin has
  a matching end even when a fault unwinds the switch mid-transfer.
- **Monotonic per CPU.**  The SMP coordinator overlaps secondary work
  against the control processor's timeline by rewinding the shared clock
  (:mod:`repro.core.smp`); the recorder clamps each CPU's timestamps to be
  non-decreasing so every per-CPU track reads as a valid timeline.

Three consumers sit on top of the raw ring:

- :func:`build_span_trees` / :func:`phase_summary` — the per-phase latency
  breakdown (mean/min/max cycles per phase, the §7.4 decomposition);
- :func:`to_chrome_trace` / :func:`write_chrome_trace` — Chrome
  ``trace_event`` JSON (load in ``chrome://tracing`` / Perfetto);
- :func:`canonical_lines` — a *structural* rendering (event kinds,
  nesting, phase ordering, symbolic args with digit runs scrubbed; no raw
  cycle values) diffed against the committed goldens in ``tests/goldens/``.
"""

from __future__ import annotations

import json
import re
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:
    from repro.hw.clock import Clock

#: event kinds (Chrome trace_event phase letters)
BEGIN = "B"
END = "E"
INSTANT = "I"

#: default per-CPU ring capacity (events, not bytes)
DEFAULT_CAPACITY = 65536

#: the span names that make up one mode switch, in pipeline order — the
#: per-phase breakdown reports exactly these (benches and docs key off it)
SWITCH_PHASES = (
    "switch.quiesce",
    "smp.gather",
    "switch.lazy-drain",
    "transfer.page-tables",
    "transfer.segments",
    "transfer.irq-bindings",
    "reload.cp",
    "reload.secondary",
    "switch.rollback",
    "switch.commit",
)


@dataclass
class TraceEvent:
    """One recorded event: a span edge (B/E) or an instant (I)."""

    kind: str
    name: str
    cpu_id: int
    #: simulated cycle timestamp (clamped monotonic per CPU)
    ts: int
    #: global emission order (total order across CPUs)
    seq: int
    args: Optional[dict] = None


class _CpuRing:
    """Bounded per-CPU ring: overflow evicts oldest-first, counted."""

    __slots__ = ("events", "capacity", "dropped", "last_ts")

    def __init__(self, capacity: int):
        self.events: deque[TraceEvent] = deque(maxlen=capacity)
        self.capacity = capacity
        self.dropped = 0
        self.last_ts = 0

    def append(self, event: TraceEvent) -> None:
        if len(self.events) == self.capacity:
            self.dropped += 1  # deque(maxlen) evicts the oldest on append
        self.events.append(event)


class Tracer:
    """Records events against one machine's clock until uninstalled."""

    def __init__(self, clock: "Clock", capacity_per_cpu: int = DEFAULT_CAPACITY):
        if capacity_per_cpu < 1:
            raise ValueError("capacity_per_cpu must be >= 1")
        self.clock = clock
        self.capacity_per_cpu = capacity_per_cpu
        self._rings: dict[int, _CpuRing] = {}
        self._seq = 0
        #: lifetime count of recorded events (monotonic; metrics snapshots
        #: diff it, so it is not reduced by ring eviction or clear())
        self.recorded = 0

    # -- recording -------------------------------------------------------

    def _ring(self, cpu_id: int) -> _CpuRing:
        ring = self._rings.get(cpu_id)
        if ring is None:
            ring = self._rings[cpu_id] = _CpuRing(self.capacity_per_cpu)
        return ring

    def _emit(self, kind: str, cpu_id: int, name: str,
              args: Optional[dict]) -> None:
        ring = self._ring(cpu_id)
        ts = self.clock.cycles
        if ts < ring.last_ts:       # overlapped SMP timeline: clamp
            ts = ring.last_ts
        else:
            ring.last_ts = ts
        ring.append(TraceEvent(kind, name, cpu_id, ts, self._seq, args))
        self._seq += 1
        self.recorded += 1

    def begin(self, cpu_id: int, name: str, **args) -> None:
        self._emit(BEGIN, cpu_id, name, args or None)

    def end(self, cpu_id: int, name: str, **args) -> None:
        self._emit(END, cpu_id, name, args or None)

    def instant(self, cpu_id: int, name: str, **args) -> None:
        self._emit(INSTANT, cpu_id, name, args or None)

    @contextmanager
    def span(self, cpu_id: int, name: str, **args) -> Iterator[None]:
        self.begin(cpu_id, name, **args)
        try:
            yield
        finally:
            self.end(cpu_id, name)

    # -- reading ---------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Events evicted by ring overflow, across all CPUs."""
        return sum(r.dropped for r in self._rings.values())

    def dropped_on(self, cpu_id: int) -> int:
        ring = self._rings.get(cpu_id)
        return ring.dropped if ring is not None else 0

    def events(self, cpu_id: Optional[int] = None) -> list[TraceEvent]:
        """Buffered events in emission order (one CPU, or all merged)."""
        if cpu_id is not None:
            ring = self._rings.get(cpu_id)
            return list(ring.events) if ring is not None else []
        merged: list[TraceEvent] = []
        for ring in self._rings.values():
            merged.extend(ring.events)
        merged.sort(key=lambda e: e.seq)
        return merged

    def clear(self) -> None:
        """Drop the buffered events (counters stay monotonic)."""
        self._rings.clear()


# ---------------------------------------------------------------------------
# the active tracer (module scope == machine-wide scope, like repro.faults;
# the simulator is single-threaded)
# ---------------------------------------------------------------------------

_ACTIVE: Optional[Tracer] = None


def install(tracer: Tracer) -> None:
    global _ACTIVE
    _ACTIVE = tracer


def uninstall() -> None:
    global _ACTIVE
    _ACTIVE = None


def active() -> Optional[Tracer]:
    return _ACTIVE


def enabled() -> bool:
    return _ACTIVE is not None


@contextmanager
def tracing(target,
            capacity_per_cpu: int = DEFAULT_CAPACITY) -> Iterator[Tracer]:
    """Install a tracer for the duration of a with-block.

    ``target`` is a ready-made :class:`Tracer`, a clock, or anything with
    a ``.clock`` attribute (a ``Machine``) to build a fresh tracer
    against."""
    if isinstance(target, Tracer):
        tracer = target
    else:
        clock = getattr(target, "clock", target)
        tracer = Tracer(clock, capacity_per_cpu=capacity_per_cpu)
    install(tracer)
    try:
        yield tracer
    finally:
        uninstall()


# -- the pipeline hooks (near-zero cost when no tracer is installed) --------

def begin(cpu_id: int, name: str, **args) -> None:
    if _ACTIVE is None:
        return
    _ACTIVE.begin(cpu_id, name, **args)


def end(cpu_id: int, name: str, **args) -> None:
    if _ACTIVE is None:
        return
    _ACTIVE.end(cpu_id, name, **args)


def instant(cpu_id: int, name: str, **args) -> None:
    if _ACTIVE is None:
        return
    _ACTIVE.instant(cpu_id, name, **args)


@contextmanager
def span(cpu_id: int, name: str, **args) -> Iterator[None]:
    """Begin/end pair guaranteed to match across exceptions.  The enabled
    check happens at both edges so the pair stays balanced even if a tracer
    is (un)installed mid-span."""
    begin(cpu_id, name, **args)
    try:
        yield
    finally:
        end(cpu_id, name)


# ---------------------------------------------------------------------------
# span trees
# ---------------------------------------------------------------------------

@dataclass
class Span:
    """One node of the reconstructed per-CPU span tree.  Instants become
    leaf nodes with ``end == start`` and ``kind == "instant"``."""

    name: str
    cpu_id: int
    start: int
    end: Optional[int] = None
    args: Optional[dict] = None
    kind: str = "span"
    children: list["Span"] = field(default_factory=list)

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def cycles(self) -> int:
        return (self.end - self.start) if self.end is not None else 0

    def us(self, freq_mhz: int = 3000) -> float:
        return self.cycles / freq_mhz

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()


def build_span_trees(events: list[TraceEvent]) -> dict[int, list[Span]]:
    """Reconstruct per-CPU span forests from a B/E/I event stream.

    Tolerant of ring truncation: an END with no open span (its BEGIN was
    evicted) is dropped; a BEGIN still open at the end of the stream stays
    in the tree with ``end=None`` (and is excluded from histograms)."""
    roots: dict[int, list[Span]] = {}
    stacks: dict[int, list[Span]] = {}
    for ev in events:
        stack = stacks.setdefault(ev.cpu_id, [])
        dest = stack[-1].children if stack else \
            roots.setdefault(ev.cpu_id, [])
        if ev.kind == BEGIN:
            node = Span(ev.name, ev.cpu_id, ev.ts, args=ev.args)
            dest.append(node)
            stack.append(node)
        elif ev.kind == END:
            if stack and stack[-1].name == ev.name:
                stack.pop().end = ev.ts
            # else: truncated head — matching BEGIN was evicted
        else:
            dest.append(Span(ev.name, ev.cpu_id, ev.ts, end=ev.ts,
                             args=ev.args, kind="instant"))
    return roots


def validate(events: list[TraceEvent], dropped: int = 0) -> list[str]:
    """Well-formedness check; returns human-readable violations.

    Rules: per-CPU timestamps never decrease; END events match the
    innermost open BEGIN of the same CPU (strict nesting); every BEGIN is
    closed by the end of the stream.  When ``dropped > 0`` the buffer head
    was evicted oldest-first, so an END arriving with an *empty* stack is
    the expected truncation artifact and is tolerated; a mismatched END on
    a non-empty stack never is."""
    errors: list[str] = []
    stacks: dict[int, list[str]] = {}
    last_ts: dict[int, int] = {}
    for ev in events:
        prev = last_ts.get(ev.cpu_id)
        if prev is not None and ev.ts < prev:
            errors.append(f"cpu{ev.cpu_id}: timestamp went backwards at "
                          f"{ev.kind} {ev.name} ({ev.ts} < {prev})")
        last_ts[ev.cpu_id] = ev.ts
        stack = stacks.setdefault(ev.cpu_id, [])
        if ev.kind == BEGIN:
            stack.append(ev.name)
        elif ev.kind == END:
            if stack:
                if stack[-1] != ev.name:
                    errors.append(
                        f"cpu{ev.cpu_id}: end {ev.name!r} does not match "
                        f"open span {stack[-1]!r} (spans must nest)")
                else:
                    stack.pop()
            elif dropped == 0:
                errors.append(f"cpu{ev.cpu_id}: end {ev.name!r} with no "
                              f"open span and nothing dropped")
        elif ev.kind != INSTANT:
            errors.append(f"cpu{ev.cpu_id}: unknown event kind {ev.kind!r}")
    for cpu_id, stack in stacks.items():
        for name in stack:
            errors.append(f"cpu{cpu_id}: span {name!r} never ended")
    return errors


# ---------------------------------------------------------------------------
# per-phase latency breakdown
# ---------------------------------------------------------------------------

@dataclass
class PhaseStat:
    """Duration distribution of one span name across a trace."""

    name: str
    durations: list[int] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.durations)

    @property
    def total_cycles(self) -> int:
        return sum(self.durations)

    @property
    def min_cycles(self) -> int:
        return min(self.durations) if self.durations else 0

    @property
    def max_cycles(self) -> int:
        return max(self.durations) if self.durations else 0

    @property
    def mean_cycles(self) -> float:
        return self.total_cycles / self.count if self.durations else 0.0

    def mean_us(self, freq_mhz: int = 3000) -> float:
        return self.mean_cycles / freq_mhz


def phase_summary(events: list[TraceEvent],
                  names: Optional[tuple[str, ...]] = None
                  ) -> dict[str, PhaseStat]:
    """Histogram of closed-span durations by name (all names, or a
    selection such as :data:`SWITCH_PHASES`)."""
    stats: dict[str, PhaseStat] = {}
    for forest in build_span_trees(events).values():
        for root in forest:
            for node in root.walk():
                if node.kind != "span" or not node.closed:
                    continue
                if names is not None and node.name not in names:
                    continue
                stats.setdefault(node.name,
                                 PhaseStat(node.name)).durations.append(
                    node.cycles)
    return stats


def format_phase_table(stats: dict[str, PhaseStat],
                       freq_mhz: int = 3000,
                       order: tuple[str, ...] = SWITCH_PHASES) -> str:
    """Fixed-width per-phase latency table (µs), pipeline order first."""
    lines = [f"  {'phase':<24}{'count':>7}{'mean µs':>10}{'min µs':>10}"
             f"{'max µs':>10}"]
    ordered = [n for n in order if n in stats]
    ordered += [n for n in sorted(stats) if n not in order]
    for name in ordered:
        s = stats[name]
        lines.append(
            f"  {name:<24}{s.count:>7}{s.mean_cycles / freq_mhz:>10.2f}"
            f"{s.min_cycles / freq_mhz:>10.2f}"
            f"{s.max_cycles / freq_mhz:>10.2f}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------

def to_chrome_trace(events: list[TraceEvent],
                    freq_mhz: int = 3000) -> list[dict]:
    """Chrome ``trace_event`` array: one dict per event, timestamps in µs,
    CPUs as threads of a single "machine" process."""
    out: list[dict] = []
    for ev in events:
        entry: dict = {
            "name": ev.name,
            "ph": "i" if ev.kind == INSTANT else ev.kind,
            "ts": ev.ts / freq_mhz,
            "pid": 0,
            "tid": ev.cpu_id,
        }
        if ev.kind == INSTANT:
            entry["s"] = "t"  # thread-scoped instant
        if ev.args:
            entry["args"] = dict(ev.args)
        out.append(entry)
    return out


def write_chrome_trace(path, events: list[TraceEvent],
                       freq_mhz: int = 3000) -> None:
    """Write a ``chrome://tracing`` / Perfetto-loadable JSON file."""
    payload = {
        "displayTimeUnit": "ns",
        "traceEvents": to_chrome_trace(events, freq_mhz),
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")


def format_timeline(events: list[TraceEvent], freq_mhz: int = 3000) -> str:
    """Human-readable text timeline: one line per span (with duration) or
    instant, indented by nesting depth, offsets relative to the first
    event."""
    if not events:
        return "  (no events recorded)"
    base = min(ev.ts for ev in events)
    lines: list[str] = []

    def _args(span: Span) -> str:
        if not span.args:
            return ""
        body = ", ".join(f"{k}={v}" for k, v in sorted(span.args.items()))
        return f" ({body})"

    def _render(node: Span, depth: int) -> None:
        at = (node.start - base) / freq_mhz
        indent = "  " * depth
        if node.kind == "instant":
            lines.append(f"  cpu{node.cpu_id} {at:>10.2f}µs  {indent}"
                         f"* {node.name}{_args(node)}")
        else:
            dur = (f"{node.cycles / freq_mhz:.2f}µs" if node.closed
                   else "unclosed")
            lines.append(f"  cpu{node.cpu_id} {at:>10.2f}µs  {indent}"
                         f"{node.name}{_args(node)} [{dur}]")
        for child in node.children:
            _render(child, depth + 1)

    forests = build_span_trees(events)
    roots = [r for forest in forests.values() for r in forest]
    roots.sort(key=lambda s: (s.start, s.cpu_id))
    for root in roots:
        _render(root, 0)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# canonicalization (the golden-trace form)
# ---------------------------------------------------------------------------

_DIGITS = re.compile(r"\d+")

#: canonical rendering of the three event kinds
_KIND_MARK = {BEGIN: ">", END: "<", INSTANT: "*"}


def canonical_lines(events: list[TraceEvent]) -> list[str]:
    """Structural canonical form, stable under cost-model recalibration.

    Keeps: event kinds, names, per-CPU nesting depth, event ordering, and
    *symbolic* args (strings/bools, with digit runs scrubbed to ``N`` so
    frame numbers and cycle-derived values cannot leak in).  Drops: raw
    timestamps and every numeric arg.  Two traces with the same structure
    canonicalize identically even if every cycle count differs."""
    depths: dict[int, int] = {}
    lines: list[str] = []
    for ev in events:
        depth = depths.get(ev.cpu_id, 0)
        if ev.kind == END:
            depth = max(0, depth - 1)
            depths[ev.cpu_id] = depth
        parts = [f"cpu{ev.cpu_id}", ". " * depth + _KIND_MARK[ev.kind],
                 ev.name]
        if ev.args:
            for key in sorted(ev.args):
                value = ev.args[key]
                if isinstance(value, bool) or not isinstance(
                        value, (int, float)):
                    parts.append(f"{key}={_DIGITS.sub('N', str(value))}")
        lines.append(" ".join(parts))
        if ev.kind == BEGIN:
            depths[ev.cpu_id] = depth + 1
    return lines


# ---------------------------------------------------------------------------
# ring transport (sharded simulation)
# ---------------------------------------------------------------------------

def export_ring(tracer: Tracer) -> list[tuple]:
    """Flatten a tracer's buffered events to plain tuples.

    Shard worker processes ship their rings back to the parent over a
    pipe; tuples of primitives keep the payload small and decouple the
    wire format from the :class:`TraceEvent` class."""
    return [(ev.kind, ev.name, ev.cpu_id, ev.ts, ev.seq,
             dict(ev.args) if ev.args else None)
            for ev in tracer.events()]


def import_ring(rows: list[tuple]) -> list[TraceEvent]:
    """Rebuild :class:`TraceEvent` objects from :func:`export_ring` rows."""
    return [TraceEvent(kind, name, cpu_id, ts, seq, args)
            for kind, name, cpu_id, ts, seq, args in rows]


def merge_canonical(per_machine: dict[int, list[str]]) -> list[str]:
    """Merge per-machine canonical lines into one fleet-wide listing.

    Each machine's lines are prefixed ``m{index}|`` and machines appear in
    ascending index order.  Concatenation (not timestamp interleaving) is
    deliberate: canonical lines carry no timestamps, and each machine's
    stream is already internally ordered — so the merged listing is a pure
    function of the per-machine streams, identical however the fleet was
    sharded."""
    merged: list[str] = []
    for index in sorted(per_machine):
        merged.extend(f"m{index}|{line}" for line in per_machine[index])
    return merged
