"""System-wide metrics collection and reporting.

Gathers the counters every layer already maintains — hypercalls served,
traps emulated, interrupts delivered, TLB hit rates, buffer-cache hit
rates, ring traffic, mode switches — into one snapshot, diffable across a
workload run.  The examples and benches use it to explain *why* a
configuration is slower, not just that it is.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from repro.core.mercury import Mercury
    from repro.guestos.kernel import Kernel
    from repro.hw.machine import Machine
    from repro.vmm.hypervisor import Hypervisor


@dataclass
class MetricsSnapshot:
    """One point-in-time reading of every counter."""

    cycles: int = 0
    # hardware
    tlb_hits: int = 0
    tlb_misses: int = 0
    tlb_flushes: int = 0
    interrupts_delivered: int = 0
    ipis_sent: int = 0
    disk_requests: int = 0
    nic_tx_packets: int = 0
    nic_rx_packets: int = 0
    # kernel
    syscalls: int = 0
    forks: int = 0
    execs: int = 0
    minor_faults: int = 0
    cow_breaks: int = 0
    prot_faults: int = 0
    context_switches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    journal_commits: int = 0
    # vmm
    hypercalls: int = 0
    traps_emulated: int = 0
    page_validations: int = 0
    world_switches: int = 0
    mmu_batches: int = 0
    mmu_batched_updates: int = 0
    # split-driver datapath (§5.2 notification avoidance)
    io_notifies_sent: int = 0
    io_notifies_suppressed: int = 0
    io_ring_batches: int = 0
    io_ring_batched_entries: int = 0
    io_rx_dropped: int = 0
    events_coalesced: int = 0
    # mercury
    mode_switches: int = 0
    vo_entries: int = 0
    # dependability (§8 failure-resistant switching)
    switch_aborts: int = 0
    switch_rollbacks: int = 0
    rollback_steps: int = 0
    switch_retries: int = 0
    pending_retries: int = 0
    failed_attempts: int = 0
    faults_injected: int = 0
    # chaos-to-recovery (VMI watchdog + ReHype-style microreboot)
    watchdog_scans: int = 0
    watchdog_detections: int = 0
    recoveries: int = 0
    recovery_failures: int = 0
    emergency_detaches: int = 0
    # tracing (observation-only: both stay 0 unless a tracer is installed)
    trace_events: int = 0
    trace_dropped: int = 0
    #: committed-switch retry distribution: retries-consumed -> #switches
    retry_histogram: dict = field(default_factory=dict)
    #: fleet request-latency distribution: log-bucketed cycles -> #requests
    #: (see :mod:`repro.fleet.latency`; empty outside fleet scenarios)
    latency_histogram: dict = field(default_factory=dict)

    def __sub__(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        out = MetricsSnapshot()
        for name in _FIELD_NAMES:
            setattr(out, name, getattr(self, name) - getattr(other, name))
        for name in _DICT_FIELDS:
            mine, theirs = getattr(self, name), getattr(other, name)
            setattr(out, name, {
                k: v - theirs.get(k, 0)
                for k, v in mine.items() if v - theirs.get(k, 0)})
        return out

    @classmethod
    def merge(cls, snapshots) -> "MetricsSnapshot":
        """Combine snapshots of *disjoint* machine sets into one fleet-wide
        reading: every counter adds, the histogram fields merge key-wise,
        and ``cycles`` — each machine has its own clock in a sharded fleet
        — reports the furthest clock (max).  Associative and commutative,
        so merging per-shard merges equals merging all per-machine
        snapshots directly, however the fleet was partitioned."""
        out = cls()
        for snap in snapshots:
            for name in _FIELD_NAMES:
                if name == "cycles":
                    continue
                setattr(out, name, getattr(out, name) + getattr(snap, name))
            if snap.cycles > out.cycles:
                out.cycles = snap.cycles
            for name in _DICT_FIELDS:
                acc = getattr(out, name)
                for key, value in getattr(snap, name).items():
                    acc[key] = acc.get(key, 0) + value
        return out

    def merged_with(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Two-snapshot convenience form of :meth:`merge`."""
        return MetricsSnapshot.merge((self, other))

    @property
    def tlb_hit_rate(self) -> float:
        total = self.tlb_hits + self.tlb_misses
        return self.tlb_hits / total if total else 0.0

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def avg_batch_size(self) -> float:
        return (self.mmu_batched_updates / self.mmu_batches
                if self.mmu_batches else 0.0)

    @property
    def avg_io_batch_size(self) -> float:
        return (self.io_ring_batched_entries / self.io_ring_batches
                if self.io_ring_batches else 0.0)

    @property
    def notify_suppression_ratio(self) -> float:
        total = self.io_notifies_sent + self.io_notifies_suppressed
        return self.io_notifies_suppressed / total if total else 0.0

    @property
    def elapsed_us(self) -> float:
        return self.cycles / 3000.0


#: histogram-valued fields: merged/diffed key-wise, not as scalars
_DICT_FIELDS = ("retry_histogram", "latency_histogram")

#: diffing a snapshot per-benchmark-iteration is hot; resolve the dataclass
#: introspection once instead of per __sub__ call (the histogram dicts are
#: diffed key-wise, not subtracted)
_FIELD_NAMES = tuple(f.name for f in fields(MetricsSnapshot)
                     if f.name not in _DICT_FIELDS)


class MetricsCollector:
    """Reads the counters of one machine/kernel/VMM/Mercury stack."""

    def __init__(self, machine: "Machine",
                 kernel: Optional["Kernel"] = None,
                 vmm: Optional["Hypervisor"] = None,
                 mercury: Optional["Mercury"] = None):
        self.machine = machine
        self.kernel = kernel
        self.vmm = vmm if vmm is not None else (
            mercury.vmm if mercury is not None else None)
        self.mercury = mercury

    def snapshot(self) -> MetricsSnapshot:
        m = self.machine
        snap = MetricsSnapshot(cycles=m.clock.cycles)
        snap.tlb_hits = sum(c.tlb.hits for c in m.cpus)
        snap.tlb_misses = sum(c.tlb.misses for c in m.cpus)
        snap.tlb_flushes = sum(c.tlb.flushes for c in m.cpus)
        snap.interrupts_delivered = m.intc.delivered
        snap.ipis_sent = m.intc.sent_ipis
        snap.disk_requests = m.disk.requests_served
        snap.nic_tx_packets = m.nic.tx_packets
        snap.nic_rx_packets = m.nic.rx_packets

        k = self.kernel
        if k is not None:
            snap.syscalls = k.syscalls_served
            snap.forks = k.procs.forks
            snap.execs = k.procs.execs
            snap.minor_faults = k.vmem.minor_faults
            snap.cow_breaks = k.vmem.cow_breaks
            snap.prot_faults = k.vmem.prot_faults
            snap.context_switches = k.scheduler.switches
            snap.cache_hits = k.fs.cache.hits
            snap.cache_misses = k.fs.cache.misses
            snap.journal_commits = k.fs.journal_commits
            snap.vo_entries = k.vo.entries

        if self.vmm is not None:
            snap.hypercalls = self.vmm.hypercalls_served
            snap.traps_emulated = self.vmm.traps_emulated
            snap.mmu_batches = self.vmm.mmu_batches
            snap.mmu_batched_updates = self.vmm.mmu_batched_updates
            io = getattr(self.vmm, "io_stats", None)
            if io is not None:
                snap.io_notifies_sent = io.notifies_sent
                snap.io_notifies_suppressed = io.notifies_suppressed
                snap.io_ring_batches = io.ring_batches
                snap.io_ring_batched_entries = io.ring_batched_entries
                snap.io_rx_dropped = io.rx_dropped
            if self.vmm.events is not None:
                snap.events_coalesced = self.vmm.events.total_coalesced()
            if self.vmm.page_info is not None:
                snap.page_validations = self.vmm.page_info.validations
            if self.vmm.scheduler is not None:
                snap.world_switches = self.vmm.scheduler.world_switches

        if self.mercury is not None:
            snap.mode_switches = len(self.mercury.switch_records)
            engine = self.mercury.engine
            snap.switch_aborts = engine.switch_aborts
            snap.switch_rollbacks = engine.switch_rollbacks
            snap.rollback_steps = engine.rollback_steps
            snap.switch_retries = engine.total_retries
            snap.pending_retries = engine.pending_retries
            snap.failed_attempts = engine.failed_attempts
            snap.retry_histogram = dict(engine.retry_histogram)
            watchdog = getattr(self.mercury, "watchdog", None)
            if watchdog is not None:
                snap.watchdog_scans = watchdog.scans
                snap.watchdog_detections = watchdog.detections
            recovery = getattr(self.mercury, "recovery", None)
            if recovery is not None:
                snap.recoveries = recovery.recoveries
                snap.recovery_failures = recovery.recovery_failures
                snap.emergency_detaches = recovery.emergency_detaches
        from repro import faults, trace
        snap.faults_injected = faults.injected_total()
        tracer = trace.active()
        if tracer is not None:
            snap.trace_events = tracer.recorded
            snap.trace_dropped = tracer.dropped
        return snap

    def measure(self, fn, *args, **kwargs):
        """Run ``fn`` and return (result, delta snapshot)."""
        before = self.snapshot()
        result = fn(*args, **kwargs)
        return result, self.snapshot() - before

    def switch_phases(self, tracer: Optional["trace.Tracer"] = None
                      ) -> dict[str, "trace.PhaseStat"]:
        """Per-phase switch-latency breakdown (§7.4 decomposition) from the
        given tracer, or the installed one.  Empty when nothing is traced."""
        from repro import trace
        tracer = tracer if tracer is not None else trace.active()
        if tracer is None:
            return {}
        return trace.phase_summary(tracer.events(),
                                   names=trace.SWITCH_PHASES)


def format_report(delta: MetricsSnapshot, title: str = "Metrics") -> str:
    """Human-readable account of one measured interval."""
    lines = [title, ""]
    lines.append(f"  elapsed           {delta.elapsed_us:14.1f} µs")
    groups = [
        ("kernel", [("syscalls", delta.syscalls), ("forks", delta.forks),
                    ("execs", delta.execs),
                    ("context switches", delta.context_switches),
                    ("minor faults", delta.minor_faults),
                    ("COW breaks", delta.cow_breaks)]),
        ("memory", [("TLB hits", delta.tlb_hits),
                    ("TLB misses", delta.tlb_misses),
                    ("TLB flushes", delta.tlb_flushes)]),
        ("I/O", [("disk requests", delta.disk_requests),
                 ("packets tx", delta.nic_tx_packets),
                 ("packets rx", delta.nic_rx_packets),
                 ("cache hits", delta.cache_hits),
                 ("cache misses", delta.cache_misses),
                 ("journal commits", delta.journal_commits),
                 ("ring batches", delta.io_ring_batches),
                 ("notifies sent", delta.io_notifies_sent),
                 ("notifies suppressed", delta.io_notifies_suppressed),
                 ("events coalesced", delta.events_coalesced),
                 ("rx dropped", delta.io_rx_dropped)]),
        ("virtualization", [("hypercalls", delta.hypercalls),
                            ("traps emulated", delta.traps_emulated),
                            ("page validations", delta.page_validations),
                            ("mmu batches", delta.mmu_batches),
                            ("batched updates", delta.mmu_batched_updates),
                            ("mode switches", delta.mode_switches),
                            ("VO entries", delta.vo_entries)]),
        ("dependability", [("switch retries", delta.switch_retries),
                           ("busy collisions", delta.failed_attempts),
                           ("switch rollbacks", delta.switch_rollbacks),
                           ("rollback steps", delta.rollback_steps),
                           ("switch aborts", delta.switch_aborts),
                           ("faults injected", delta.faults_injected),
                           ("watchdog scans", delta.watchdog_scans),
                           ("corruptions found", delta.watchdog_detections),
                           ("recoveries", delta.recoveries),
                           ("recovery failures", delta.recovery_failures),
                           ("emergency detaches", delta.emergency_detaches)]),
        ("tracing", [("trace events", delta.trace_events),
                     ("trace dropped", delta.trace_dropped)]),
    ]
    for name, rows in groups:
        shown = [(label, v) for label, v in rows if v]
        if not shown:
            continue
        lines.append(f"  {name}:")
        for label, v in shown:
            lines.append(f"    {label:<18}{v:>12}")
    if delta.mmu_batches:
        lines.append(f"  avg batch size    {delta.avg_batch_size:14.1f}")
    if delta.io_ring_batches:
        lines.append(f"  avg io batch      {delta.avg_io_batch_size:14.1f}")
    if delta.io_notifies_sent + delta.io_notifies_suppressed:
        lines.append(
            f"  notify suppression{delta.notify_suppression_ratio:14.1%}")
    if delta.retry_histogram:
        dist = ", ".join(f"{k}x{v}"
                         for k, v in sorted(delta.retry_histogram.items()))
        lines.append(f"  retry histogram   {dist:>14}")
    if delta.tlb_hits + delta.tlb_misses:
        lines.append(f"  TLB hit rate      {delta.tlb_hit_rate:14.1%}")
    if delta.cache_hits + delta.cache_misses:
        lines.append(f"  cache hit rate    {delta.cache_hit_rate:14.1%}")
    return "\n".join(lines)
