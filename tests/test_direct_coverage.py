"""Direct unit coverage for helpers that were previously only exercised
through higher-level paths."""

import pytest

from repro import Machine, paper_config, small_config
from repro.bench.configs import BareMetalVO
from repro.guestos.kernel import Kernel
from repro.hw.cpu import SegmentDescriptor
from repro.params import MachineConfig, PAGE_SIZE


def test_paper_config_matches_testbed():
    cfg = paper_config(num_cpus=2)
    assert cfg.num_cpus == 2
    assert cfg.mem_kb == 900_000
    assert cfg.timer_hz == 100
    assert cfg.cost.freq_mhz == 3000
    assert cfg.num_frames == 900_000 * 1024 // PAGE_SIZE


def test_config_with_helpers_are_nonmutating():
    base = MachineConfig()
    derived = base.with_cpus(4).with_mem_kb(1024)
    assert (derived.num_cpus, derived.mem_kb) == (4, 1024)
    assert (base.num_cpus, base.mem_kb) == (1, 900_000)


def test_cost_model_unit_conversions():
    cost = MachineConfig().cost
    assert cost.us(3000) == pytest.approx(1.0)
    assert cost.cycles_from_ns(1000) == pytest.approx(3000)


def test_clock_advance_us(machine):
    machine.clock.advance_us(2.5)
    assert machine.clock.cycles == int(2.5 * 3000)


def test_load_ldt(cpu):
    ldt = {1: SegmentDescriptor("tls", 3)}
    cpu.load_ldt(ldt)
    assert cpu.ldt[1].name == "tls"


def test_memory_written_frames_and_generation_of(machine):
    import numpy as np
    f1 = machine.memory.alloc(0)
    f2 = machine.memory.alloc(0)
    machine.memory.write(f1, "x")
    assert list(machine.memory.written_frames()) == [f1]
    gens = machine.memory.generation_of(np.array([f1, f2]))
    assert list(gens) == [1, 0]


def test_spawn_initial_builds_standalone_process(kernel):
    extra = kernel.procs.spawn_initial("daemon", image_pages=6)
    assert extra.aspace.mapped_count() == 6
    assert extra.parent is None
    assert extra.pid > 1


def test_bench_exec_and_sh_report_sane_latencies():
    from repro.workloads.lmbench import bench_exec, bench_fork, bench_sh
    m = Machine(small_config(mem_kb=131072))
    k = Kernel(m, BareMetalVO(m), name="lat")
    k.boot(image_pages=64)
    cpu = m.boot_cpu
    fork = bench_fork(k, cpu, iters=2)
    exe = bench_exec(k, cpu, iters=2)
    sh = bench_sh(k, cpu, iters=1)
    # the paper's ordering: fork < exec < sh
    assert fork < exe < sh


def test_scheduler_dequeue_clears_current(kernel, cpu):
    current = kernel.scheduler.current
    kernel.scheduler.dequeue(current)
    assert kernel.scheduler.current is None


def test_yield_with_empty_runqueue_keeps_running(kernel, cpu):
    me = kernel.scheduler.current
    kernel.syscall(cpu, "sched_yield")
    assert kernel.scheduler.current is me


def test_precache_vmm_direct(machine):
    from repro.core.precache import precache_vmm
    vmm, info = precache_vmm(machine, charge_boot_time=False)
    assert vmm.state.value == "warm"
    assert info.warmup_cycles == 0
    assert info.reserved_frames > 0


def test_netfront_rx_kick_empty_is_noop(machine):
    from repro.guestos.splitio import NetFront
    from repro.vmm.rings import IoRing
    k = Kernel(machine, BareMetalVO(machine), name="nf",
               has_devices=False)
    front = NetFront(k, IoRing(8), IoRing(8), notify_backend=lambda c: None)
    assert front.rx_kick(machine.boot_cpu) == 0


def test_open_check_direct(kernel, cpu):
    from repro.errors import FileSystemError
    inode = kernel.fs.open_check(cpu, "/direct", create=True)
    assert inode.path == "/direct"
    assert kernel.fs.open_check(cpu, "/direct", create=False) is inode
    with pytest.raises(FileSystemError):
        kernel.fs.open_check(cpu, "/missing", create=False)


def test_individual_invariant_checks_run_clean(mercury):
    from repro.core import invariants
    for check in invariants.ALL_CHECKS:
        assert check(mercury) == [], check.__name__
