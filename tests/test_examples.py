"""Smoke-run every example so they cannot rot.

Examples are part of the public surface; each must run to completion with
a zero exit status and produce its expected headline output.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", ["attached VMM", "detached VMM", "total mode switches: 2"]),
    ("online_maintenance.py", ["maintenance window", "app-visible pause",
                               "native (full speed)"]),
    ("dependable_node.py", ["checkpoint/restart", "self-healing",
                            "live update", "healed=True"]),
    ("hpc_cluster.py", ["self-virtualization", "nothing lost"]),
    ("hardware_assisted.py", ["software switch", "VT-x VMCS + EPT",
                              "VM entries"]),
    ("trace_timeline.py", ["per-phase breakdown", "reload.cp",
                           "transfer.page-tables",
                           "Chrome trace_event JSON"]),
]


@pytest.mark.parametrize("script,expected",
                         CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, expected):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr[-2000:]
    for fragment in expected:
        assert fragment in result.stdout, \
            f"{script}: missing {fragment!r} in output"


def test_reproduce_paper_quick_runs():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "reproduce_paper.py"), "--quick"],
        capture_output=True, text=True, timeout=600)
    assert result.returncode == 0, result.stderr[-2000:]
    for fragment in ("Table 1", "Table 2", "Fig. 3", "Fig. 4",
                     "Mode switch time"):
        assert fragment in result.stdout
