"""Golden-trace regression tests for the mode-switch pipeline.

Each scenario replays one switch and diffs its canonical trace against the
committed golden.  The canonical form keeps event kinds, span nesting,
phase ordering and symbolic args, and scrubs every raw number — so these
tests pin the *structure* of the pipeline (which phases run, in what
order, on which CPU, and how faults unwind) without breaking on
cost-model tuning.

On an intentional pipeline change: ``python tests/goldens/regen.py``,
review the diff, and commit with ``REGEN_GOLDENS`` in the message.
"""

from __future__ import annotations

import difflib
from pathlib import Path

import pytest

from tests.goldens.scenarios import SCENARIOS

HERE = Path(__file__).resolve().parent


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_trace(name):
    golden_file = HERE / f"{name}.trace"
    assert golden_file.exists(), (
        f"missing golden {golden_file.name} — run "
        f"`python tests/goldens/regen.py {name}` and commit it "
        f"with REGEN_GOLDENS in the message")
    want = golden_file.read_text().splitlines()
    got = SCENARIOS[name]()
    if got != want:
        diff = "\n".join(difflib.unified_diff(
            want, got, fromfile=f"goldens/{name}.trace (committed)",
            tofile=f"{name} (this run)", lineterm=""))
        pytest.fail(
            f"canonical trace for {name!r} diverged from the golden:\n"
            f"{diff}\n\n"
            f"If the pipeline change is intentional, regenerate with "
            f"`python tests/goldens/regen.py` and commit with "
            f"REGEN_GOLDENS in the message.")


def test_goldens_have_no_raw_numbers():
    """The canonicalizer must keep goldens free of measured values: every
    digit run in an arg value is scrubbed to 'N'.  (Digits in event
    *names* — ``reload.cr3`` — and in the ``cpuN`` track label are source
    identifiers, not measurements.)"""
    import re
    for f in sorted(HERE.glob("*.trace")):
        for i, line in enumerate(f.read_text().splitlines(), 1):
            for value in re.findall(r"=(\S+)", line):
                assert not re.search(r"\d", value), (
                    f"{f.name}:{i}: raw number leaked into golden arg: "
                    f"{line!r}")
