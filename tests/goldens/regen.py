#!/usr/bin/env python
"""Regenerate the committed golden traces — the one command of the golden
workflow:

    python tests/goldens/regen.py            # all scenarios
    python tests/goldens/regen.py attach_up  # just one

Each scenario in :mod:`tests.goldens.scenarios` is executed and its
canonical trace written to ``tests/goldens/<name>.trace``.  Review the
diff, then commit with ``REGEN_GOLDENS`` in the commit message — CI fails
any commit that touches a ``.trace`` file without the marker.
"""

from __future__ import annotations

import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO = HERE.parent.parent
for p in (str(REPO / "src"), str(REPO)):
    if p not in sys.path:
        sys.path.insert(0, p)

from tests.goldens.scenarios import SCENARIOS  # noqa: E402


def main(argv: list[str]) -> int:
    names = argv or sorted(SCENARIOS)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        print(f"unknown scenario(s): {', '.join(unknown)}\n"
              f"known: {', '.join(sorted(SCENARIOS))}", file=sys.stderr)
        return 2
    for name in names:
        lines = SCENARIOS[name]()
        out = HERE / f"{name}.trace"
        out.write_text("\n".join(lines) + "\n")
        print(f"wrote {out.relative_to(REPO)} ({len(lines)} lines)")
    print("\nReview the diff and commit with REGEN_GOLDENS in the message.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
