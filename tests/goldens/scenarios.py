"""The golden-trace scenarios: one canonical switch trace per situation.

Each scenario builds a fresh stack, runs exactly one attach or detach under
a tracer, validates well-formedness, and returns the *canonical* rendering
(:func:`repro.trace.canonical_lines`): event kinds, nesting, phase ordering
and symbolic args — never raw cycle values — so the goldens are stable
across cost-model tuning and only change when the switch pipeline's
*structure* changes.

Regenerate with ``python tests/goldens/regen.py`` and commit the result
with ``REGEN_GOLDENS`` in the commit message (CI rejects golden changes
without the marker).
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro import Machine, Mercury, faults, small_config, trace
from repro.errors import SwitchAborted


def _stack(num_cpus: int = 1) -> tuple[Machine, Mercury]:
    cfg = dataclasses.replace(small_config(), num_cpus=num_cpus)
    machine = Machine(cfg)
    mercury = Mercury(machine)
    mercury.create_kernel()
    return machine, mercury


def _canon(tracer: trace.Tracer) -> list[str]:
    events = tracer.events()
    trace.validate(events, dropped=tracer.dropped)
    return trace.canonical_lines(events)


def attach_up() -> list[str]:
    """Uniprocessor attach: the paper's headline ~0.2 ms path (§7.4)."""
    machine, mercury = _stack(num_cpus=1)
    with trace.tracing(machine) as tracer:
        mercury.attach()
    return _canon(tracer)


def detach_up() -> list[str]:
    """Uniprocessor detach (attach runs untraced first)."""
    machine, mercury = _stack(num_cpus=1)
    mercury.attach()
    with trace.tracing(machine) as tracer:
        mercury.detach()
    return _canon(tracer)


def attach_smp() -> list[str]:
    """Two-CPU attach: IPI + gather + overlapped secondary reload (§5.4)."""
    machine, mercury = _stack(num_cpus=2)
    with trace.tracing(machine) as tracer:
        mercury.attach()
    return _canon(tracer)


def detach_smp() -> list[str]:
    """Two-CPU detach through the same rendezvous protocol."""
    machine, mercury = _stack(num_cpus=2)
    mercury.attach()
    with trace.tracing(machine) as tracer:
        mercury.detach()
    return _canon(tracer)


def attach_rollback_up() -> list[str]:
    """Attach aborted by a persistent transfer fault: the trace must show
    the fault, the newest-first undo steps, and the abort."""
    machine, mercury = _stack(num_cpus=1)
    mercury.engine.max_retries = 0
    plan = faults.FaultPlan()
    plan.arm(faults.TRANSFER_HYPERCALL, times=None)
    with trace.tracing(machine) as tracer, faults.injected(plan):
        try:
            mercury.attach()
        except SwitchAborted:
            pass
        else:
            raise AssertionError("fault plan failed to abort the attach")
    return _canon(tracer)


def detach_rollback_smp() -> list[str]:
    """Two-CPU detach aborted by a secondary reload failure after the
    control processor committed its own work (§5.1.3's hard case)."""
    machine, mercury = _stack(num_cpus=2)
    mercury.attach()
    mercury.engine.max_retries = 0
    plan = faults.FaultPlan()
    plan.arm(faults.RELOAD_SECONDARY, cpu_id=1, times=None)
    with trace.tracing(machine) as tracer, faults.injected(plan):
        try:
            mercury.detach()
        except SwitchAborted:
            pass
        else:
            raise AssertionError("fault plan failed to abort the detach")
    return _canon(tracer)


def _recovery(num_cpus: int, site: str) -> list[str]:
    """Detect → emergency-detach → re-precache → re-attach, traced.

    The stack hosts a guest (the victim population of every VMM fault),
    the watchdog convicts in one scan, and the microreboot runs to
    completion — so the golden pins the whole chaos-to-recovery span tree:
    ``watchdog.corruption`` → ``recovery.microreboot`` wrapping
    ``recovery.emergency-detach`` / ``recovery.re-precache`` /
    ``recovery.re-attach`` and the guest re-host instants."""
    from repro.core.recovery import RecoveryManager
    from repro.watchdog import Watchdog

    machine, mercury = _stack(num_cpus=num_cpus)
    mercury.attach()
    mercury.host_guest(image_pages=8)
    watchdog = Watchdog(mercury, suspect_scans=1)
    manager = RecoveryManager(mercury)
    with trace.tracing(machine) as tracer:
        faults.inject_vmm_fault(site, mercury)
        verdict = watchdog.scan()
        if verdict is None:
            raise AssertionError(f"{site} escaped the watchdog scan")
        record = manager.recover(verdict)
        if not record.success:
            raise AssertionError(f"recovery from {site} failed")
    return _canon(tracer)


def recovery_up() -> list[str]:
    """Uniprocessor microreboot from a corrupted page-info table."""
    return _recovery(num_cpus=1, site=faults.VMM_PAGEINFO_CORRUPT)


def recovery_smp() -> list[str]:
    """Two-CPU microreboot from a dropped trap vector: the emergency
    detach reloads the secondary inline (no rendezvous — the VMM state is
    distrusted), then the re-attach runs the normal SMP protocol."""
    return _recovery(num_cpus=2, site=faults.VMM_TRAP_VECTOR_DROPPED)


SCENARIOS: dict[str, Callable[[], list[str]]] = {
    "attach_up": attach_up,
    "detach_up": detach_up,
    "attach_smp": attach_smp,
    "detach_smp": detach_smp,
    "attach_rollback_up": attach_rollback_up,
    "detach_rollback_smp": detach_rollback_smp,
    "recovery_up": recovery_up,
    "recovery_smp": recovery_smp,
}
