"""Cross-validation: EPT dirty logging vs generation-based dirty logging.

Migration's pre-copy uses the frame write-generation counters; the HVM
extension offers EPT write-protection as the hardware-assisted
alternative.  Both must identify the same dirty set for the same writes.
"""

import pytest

from repro import Machine, small_config
from repro.core.hvm import HvmMercury
from repro.errors import PageValidationError


@pytest.fixture
def hvm_guest(machine):
    h = HvmMercury(machine)
    h.create_kernel(image_pages=16)
    h.attach()
    return h


def _write_through_ept(hvm, frame, value):
    """A guest write under dirty logging: the EPT protection trips, the
    VMM logs + unprotects (log-and-continue), the write proceeds."""
    try:
        hvm.ept.check(frame, write=True)
    except PageValidationError:
        hvm.ept.unprotect(frame)
    hvm.machine.memory.write(frame, value)


def test_both_trackers_see_the_same_dirty_set(hvm_guest):
    hvm = hvm_guest
    mem = hvm.machine.memory
    frames = [int(f) for f in mem.frames_owned_by(0)[:10]]

    gen_before = {f: int(mem.generation[f]) for f in frames}
    hvm.enable_dirty_logging()

    dirtied = frames[2:5]
    for f in dirtied:
        _write_through_ept(hvm, f, f"dirty-{f}")

    ept_dirty = set(hvm.dirty_frames_and_reset())
    gen_dirty = {f for f in frames
                 if int(mem.generation[f]) != gen_before[f]}
    assert ept_dirty == gen_dirty == set(dirtied)


def test_dirty_logging_rounds_reset(hvm_guest):
    hvm = hvm_guest
    mem = hvm.machine.memory
    frames = [int(f) for f in mem.frames_owned_by(0)[:6]]
    hvm.enable_dirty_logging()
    _write_through_ept(hvm, frames[0], "round1")
    assert hvm.dirty_frames_and_reset() == [frames[0]]
    # the reset re-protected everything: a fresh round starts clean
    _write_through_ept(hvm, frames[1], "round2")
    assert hvm.dirty_frames_and_reset() == [frames[1]]


def test_clean_round_reports_nothing(hvm_guest):
    hvm = hvm_guest
    hvm.enable_dirty_logging()
    assert hvm.dirty_frames_and_reset() == []


def test_reads_do_not_dirty(hvm_guest):
    hvm = hvm_guest
    mem = hvm.machine.memory
    frame = int(mem.frames_owned_by(0)[0])
    hvm.enable_dirty_logging()
    hvm.ept.check(frame, write=False)   # reads pass protection untouched
    mem.read(frame)
    assert hvm.dirty_frames_and_reset() == []
