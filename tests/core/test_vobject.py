"""Virtualization objects: refcounting, indirection cost, both
implementations' hardware effects."""

import pytest

from repro.core.native_vo import NativeVO
from repro.core.virtual_vo import VirtualVO
from repro.errors import ConsistencyViolation, HypercallError
from repro.hw.cpu import PrivilegeLevel
from repro.hw.paging import AddressSpace, Pte


# ---------------------------------------------------------------------------
# refcounting (§5.1.1)
# ---------------------------------------------------------------------------

def test_sensitive_ops_are_refcounted(machine):
    vo = NativeVO(machine)
    cpu = machine.boot_cpu
    assert not vo.busy()
    vo.irq_disable(cpu)       # one sensitive op: enters and exits
    assert not vo.busy()
    assert vo.entries == 1
    vo.irq_enable(cpu)
    assert vo.entries == 2


def test_refcount_nonzero_during_execution(machine):
    """While inside a sensitive op the VO must report busy — the condition
    that blocks a mode switch."""
    vo = NativeVO(machine)
    cpu = machine.boot_cpu
    seen = []
    orig = vo.machine.intc.bind_line

    def spy(line, cpu_id, vector):
        seen.append(vo.refcount)
        return orig(line, cpu_id, vector)

    vo.machine.intc.bind_line = spy
    vo.bind_irq(cpu, "timer", 0, 0x20)
    assert seen == [1]  # busy while the sensitive body ran
    assert not vo.busy()


def test_refcount_underflow_detected(machine):
    vo = NativeVO(machine)
    with pytest.raises(ConsistencyViolation):
        vo.exit(machine.boot_cpu)


def test_indirection_cost_charged(machine):
    vo = NativeVO(machine)
    cpu = machine.boot_cpu
    t0 = cpu.rdtsc()
    vo.irq_disable(cpu)
    assert cpu.rdtsc() - t0 >= cpu.cost.cyc_vo_indirect


def test_nested_sensitive_ops_accumulate(machine):
    vo = NativeVO(machine)
    cpu = machine.boot_cpu
    vo.enter(cpu)
    vo.enter(cpu)
    assert vo.refcount == 2
    vo.exit(cpu)
    assert vo.busy()
    vo.exit(cpu)
    assert not vo.busy()


# ---------------------------------------------------------------------------
# NativeVO hardware effects
# ---------------------------------------------------------------------------

def test_native_write_cr3_hits_hardware(machine):
    vo = NativeVO(machine)
    cpu = machine.boot_cpu
    aspace = AddressSpace(machine.memory, owner=0)
    vo.write_cr3(cpu, aspace.pgd_frame)
    assert cpu.cr3 == aspace.pgd_frame


def test_native_kernel_entry_exit_privilege(machine):
    vo = NativeVO(machine)
    cpu = machine.boot_cpu
    vo.kernel_entry(cpu)
    assert cpu.pl == PrivilegeLevel.PL0
    vo.kernel_exit(cpu)
    assert cpu.pl == PrivilegeLevel.PL3


def test_native_set_pte_and_clear(machine):
    vo = NativeVO(machine)
    cpu = machine.boot_cpu
    aspace = AddressSpace(machine.memory, owner=0)
    frame = machine.memory.alloc(0)
    vo.set_pte(cpu, aspace, 0x3000, Pte(frame=frame))
    assert aspace.get_pte(0x3000).frame == frame
    vo.clear_pte(cpu, aspace, 0x3000)
    assert aspace.get_pte(0x3000) is None


def test_native_update_pte_flags_invalidates_tlb(machine):
    vo = NativeVO(machine)
    cpu = machine.boot_cpu
    aspace = AddressSpace(machine.memory, owner=0)
    frame = machine.memory.alloc(0)
    vo.set_pte(cpu, aspace, 0x3000, Pte(frame=frame))
    cpu.tlb.fill(0x3, frame, True)
    vo.update_pte_flags(cpu, aspace, 0x3000, writable=False)
    assert 0x3 not in cpu.tlb
    assert not aspace.get_pte(0x3000).writable


# ---------------------------------------------------------------------------
# VirtualVO behaviour
# ---------------------------------------------------------------------------

@pytest.fixture
def virt(machine, warm_vmm):
    dom = warm_vmm.create_domain("d", domain_id=0, is_driver_domain=True)
    warm_vmm.activate()
    return machine.boot_cpu, machine, warm_vmm, dom, \
        VirtualVO(machine, warm_vmm, dom)


def test_virtual_unpinned_writes_are_direct(virt):
    """Xen lifecycle fidelity: page tables under construction are plain
    memory; no hypercalls until the pin."""
    cpu, machine, vmm, dom, vo = virt
    aspace = AddressSpace(machine.memory, owner=0)
    dom.register_aspace(aspace)
    frame = machine.memory.alloc(0)
    served0 = vmm.hypercalls_served
    vo.set_pte(cpu, aspace, 0x3000, Pte(frame=frame))
    assert vmm.hypercalls_served == served0  # direct write


def test_virtual_pinned_writes_use_hypercalls(virt):
    cpu, machine, vmm, dom, vo = virt
    aspace = AddressSpace(machine.memory, owner=0)
    frame = machine.memory.alloc(0)
    vo.set_pte(cpu, aspace, 0x3000, Pte(frame=frame))
    vo.new_address_space(cpu, aspace)     # registers + pins
    served0 = vmm.hypercalls_served
    f2 = machine.memory.alloc(0)
    vo.set_pte(cpu, aspace, 0x4000, Pte(frame=f2))
    assert vmm.hypercalls_served == served0 + 1


def test_virtual_kernel_runs_deprivileged(virt):
    cpu, machine, vmm, dom, vo = virt
    vo.kernel_entry(cpu)
    assert cpu.pl == PrivilegeLevel.PL1   # not PL0!
    vo.kernel_exit(cpu)
    assert cpu.pl == PrivilegeLevel.PL3


def test_virtual_syscall_costs_more_than_native(machine, warm_vmm):
    dom = warm_vmm.create_domain("d", domain_id=0, is_driver_domain=True)
    warm_vmm.activate()
    cpu = machine.boot_cpu
    native, virtual = NativeVO(machine), VirtualVO(machine, warm_vmm, dom)
    t0 = cpu.rdtsc()
    native.kernel_entry(cpu); native.kernel_exit(cpu)
    native_cost = cpu.rdtsc() - t0
    t0 = cpu.rdtsc()
    virtual.kernel_entry(cpu); virtual.kernel_exit(cpu)
    virtual_cost = cpu.rdtsc() - t0
    assert virtual_cost > native_cost


def test_virtual_write_cr3_requires_registered_aspace(virt):
    cpu, machine, vmm, dom, vo = virt
    rogue = AddressSpace(machine.memory, owner=0)
    with pytest.raises(HypercallError):
        vo.write_cr3(cpu, rogue.pgd_frame)


def test_virtual_write_cr3_pins_then_loads(virt):
    cpu, machine, vmm, dom, vo = virt
    aspace = AddressSpace(machine.memory, owner=0)
    dom.register_aspace(aspace)
    vo.write_cr3(cpu, aspace.pgd_frame)
    assert cpu.cr3 == aspace.pgd_frame
    assert aspace.pgd_frame in vmm.page_info.pinned


def test_virtual_irq_flags_are_virtual(virt):
    cpu, machine, vmm, dom, vo = virt
    vo.irq_disable(cpu)
    assert dom.vcpus[0].saved_if is False
    assert cpu.interrupts_enabled       # hardware flag untouched
    vo.irq_enable(cpu)
    assert dom.vcpus[0].saved_if is True


def test_non_driver_domain_denied_direct_io(machine, warm_vmm):
    dom = warm_vmm.create_domain("domU", domain_id=1)  # not a driver domain
    warm_vmm.activate()
    vo = VirtualVO(machine, warm_vmm, dom)
    cpu = machine.boot_cpu
    from repro.hw.devices import BlockRequest, Packet
    with pytest.raises(HypercallError):
        vo.disk_submit(cpu, BlockRequest(op="read", block=0))
    with pytest.raises(HypercallError):
        vo.net_transmit(cpu, Packet("a", "b", "udp", 10))
    with pytest.raises(HypercallError):
        vo.bind_irq(cpu, "eth0", 0, 0x22)


def test_virtual_destroy_unpins(virt):
    cpu, machine, vmm, dom, vo = virt
    aspace = AddressSpace(machine.memory, owner=0)
    vo.new_address_space(cpu, aspace)
    pgd = aspace.pgd_frame
    vo.destroy_address_space(cpu, aspace)
    assert pgd not in vmm.page_info.pinned
    assert aspace not in dom.aspaces


def test_apply_pte_region_batches(virt):
    cpu, machine, vmm, dom, vo = virt
    aspace = AddressSpace(machine.memory, owner=0)
    vo.new_address_space(cpu, aspace)
    frames = [machine.memory.alloc(0) for _ in range(40)]
    served0 = vmm.hypercalls_served
    vo.apply_pte_region(cpu, aspace,
                        [(0x10000 + i * 4096, Pte(frame=f))
                         for i, f in enumerate(frames)])
    batches = vmm.hypercalls_served - served0
    assert 1 <= batches <= (40 // cpu.cost.mmu_batch_size) + 1
    assert aspace.mapped_count() == 40
