"""Lazy-MMU batching: queueing, flush points, and the flush-before-commit
invariant (the ReHype-style "drain queued state before any mode transition"
discipline)."""

from __future__ import annotations

import pytest

from repro.core.invariants import check_all, check_lazy_mmu
from repro.core.mercury import Mode, PagingMode
from repro.hw.paging import Pte
from repro.params import PAGE_SIZE

#: scratch vaddrs well away from the process image
VADDR = 0x4000_0000


def _pinned_setup(mercury):
    """Attach and hand back (cpu, vo, current task's pinned aspace)."""
    mercury.attach()
    kernel = mercury.kernel
    cpu = mercury.machine.boot_cpu
    return cpu, kernel, kernel.scheduler.current.aspace


def _fresh_frame(mercury):
    frame = mercury.machine.memory.alloc(mercury.kernel.owner_id)
    mercury.kernel.vmem.claim_frame(frame)
    return frame


def test_region_queues_then_flushes_one_batch(mercury):
    cpu, kernel, aspace = _pinned_setup(mercury)
    vo = kernel.vo
    frame = _fresh_frame(mercury)
    before = mercury.vmm.hypercall_counts.get("update_va_mapping", 0)

    vo.lazy_mmu_begin(cpu)
    vo.set_pte(cpu, aspace, VADDR, Pte(frame=frame))
    # queued, not applied: the structural table must not see it yet
    assert vo.lazy_mmu_pending() == 1
    assert aspace.get_pte(VADDR) is None
    vo.lazy_mmu_end(cpu)

    assert vo.lazy_mmu_pending() == 0
    assert aspace.get_pte(VADDR).frame == frame
    # went out as a batched mmu_update, not the single-PTE path
    assert mercury.vmm.hypercall_counts.get("update_va_mapping", 0) == before
    assert mercury.vmm.mmu_batches >= 1


def test_nested_regions_flush_only_at_outermost_end(mercury):
    cpu, kernel, aspace = _pinned_setup(mercury)
    vo = kernel.vo
    frame = _fresh_frame(mercury)

    vo.lazy_mmu_begin(cpu)
    vo.lazy_mmu_begin(cpu)
    vo.set_pte(cpu, aspace, VADDR, Pte(frame=frame))
    vo.lazy_mmu_end(cpu)
    assert vo.lazy_mmu_pending() == 1  # inner end must not flush
    vo.lazy_mmu_end(cpu)
    assert vo.lazy_mmu_pending() == 0
    assert aspace.get_pte(VADDR).frame == frame


def test_rmw_sees_its_own_queued_writes(mercury):
    """update_pte_flags inside a region must base its read-modify-write on
    the queued (pending) value, not the stale structural table."""
    cpu, kernel, aspace = _pinned_setup(mercury)
    vo = kernel.vo
    frame = _fresh_frame(mercury)

    vo.lazy_mmu_begin(cpu)
    vo.set_pte(cpu, aspace, VADDR, Pte(frame=frame, writable=True))
    vo.update_pte_flags(cpu, aspace, VADDR, writable=False, cow=True)
    vo.lazy_mmu_end(cpu)

    pte = aspace.get_pte(VADDR)
    assert pte.frame == frame
    assert pte.writable is False and pte.cow is True


def test_tlb_flush_and_cr3_load_flush_mid_region(mercury):
    cpu, kernel, aspace = _pinned_setup(mercury)
    vo = kernel.vo

    vo.lazy_mmu_begin(cpu)
    vo.set_pte(cpu, aspace, VADDR, Pte(frame=_fresh_frame(mercury)))
    vo.flush_tlb(cpu)
    assert vo.lazy_mmu_pending() == 0  # observable point: queue drained
    vo.set_pte(cpu, aspace, VADDR + PAGE_SIZE,
               Pte(frame=_fresh_frame(mercury)))
    vo.write_cr3(cpu, aspace.pgd_frame)
    assert vo.lazy_mmu_pending() == 0
    vo.lazy_mmu_end(cpu)


def test_mode_switch_mid_region_drains_before_commit(mercury):
    """A detach fired while a lazy region is open must drain the queue
    before the VO pointer swap — and the orphaned lazy_mmu_end afterwards
    is a harmless no-op on the retired region."""
    cpu, kernel, aspace = _pinned_setup(mercury)
    vo = kernel.vo
    frame = _fresh_frame(mercury)

    vo.lazy_mmu_begin(cpu)
    vo.set_pte(cpu, aspace, VADDR, Pte(frame=frame))
    assert vo.lazy_mmu_pending() == 1

    mercury.detach()
    assert mercury.mode is Mode.NATIVE
    # drained at commit: applied through the VMM before it deactivated
    assert vo.lazy_mmu_pending() == 0
    assert aspace.get_pte(VADDR).frame == frame

    # the region was retired; balanced end on either VO changes nothing
    vo.lazy_mmu_end(cpu)
    kernel.vo.lazy_mmu_end(cpu)
    assert vo.lazy_mmu_pending() == 0
    assert not check_all(mercury)


def test_invariant_flags_pending_queue(mercury):
    cpu, kernel, aspace = _pinned_setup(mercury)
    vo = kernel.vo
    assert check_lazy_mmu(mercury) == []
    vo.lazy_mmu_begin(cpu)
    vo.set_pte(cpu, aspace, VADDR, Pte(frame=_fresh_frame(mercury)))
    violations = check_lazy_mmu(mercury)
    assert violations and "lazy-MMU" in violations[0]
    vo.lazy_mmu_end(cpu)
    assert check_lazy_mmu(mercury) == []


def test_native_mode_markers_are_noops(mercury):
    kernel = mercury.kernel
    cpu = mercury.machine.boot_cpu
    aspace = kernel.scheduler.current.aspace
    frame = _fresh_frame(mercury)
    with kernel.lazy_mmu(cpu):
        kernel.vo.set_pte(cpu, aspace, VADDR, Pte(frame=frame))
        # native PTE writes are plain stores: applied immediately
        assert aspace.get_pte(VADDR).frame == frame
        assert kernel.vo.lazy_mmu_pending() == 0


def test_shadow_mode_markers_are_noops(machine):
    from repro import Mercury
    mercury = Mercury(machine, paging=PagingMode.SHADOW)
    mercury.create_kernel(image_pages=8)
    mercury.attach()
    kernel = mercury.kernel
    cpu = machine.boot_cpu
    aspace = kernel.scheduler.current.aspace
    frame = _fresh_frame(mercury)
    with kernel.lazy_mmu(cpu):
        # every shadow write traps individually; nothing may queue
        kernel.vo.set_pte(cpu, aspace, VADDR, Pte(frame=frame))
        assert aspace.get_pte(VADDR).frame == frame
        assert kernel.vo.lazy_mmu_pending() == 0
    assert mercury.pager.verify_coherent(aspace)


def test_fork_exit_avoid_single_pte_hypercalls(mercury):
    """The whole point: process churn in virtual mode must ride the batched
    mmu_update path, leaving update_va_mapping to genuine single-PTE work
    (fault fixups)."""
    mercury.attach()
    kernel = mercury.kernel
    cpu = mercury.machine.boot_cpu
    child = kernel.spawn_process(cpu, "worker", image_pages=16)
    kernel.run_and_reap(cpu, child)
    counts = mercury.vmm.hypercall_counts
    assert counts.get("mmu_update", 0) > 0
    assert counts.get("update_va_mapping", 0) == 0
    assert mercury.vmm.mmu_batched_updates > 0
