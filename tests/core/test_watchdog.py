"""Unit tests for the VMI-style corruption watchdog.

The watchdog's contract: a healthy attached stack scans clean; each
``VMM_SITES`` corruption is detected and named; liveness-style checks use
the double-observation rule; scans are skipped while native or while a
recovery is mid-flight; the periodic timer reschedules itself and stops
cleanly; counters surface through the metrics API.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import Machine, Mercury, faults, small_config
from repro.core.mercury import Mode
from repro.core.recovery import RecoveryManager
from repro.errors import VmmCorruption
from repro.metrics import MetricsCollector
from repro.watchdog import CYC_SCAN, Watchdog


def _stack(ncpus: int = 1, guest: bool = True):
    cfg = dataclasses.replace(small_config(), num_cpus=ncpus)
    mercury = Mercury(Machine(cfg))
    mercury.create_kernel(image_pages=16)
    mercury.attach()
    if guest:
        mercury.host_guest(image_pages=8)
    return mercury


# site -> invariant the verdict must name
EXPECTED_INVARIANT = {
    faults.VMM_PAGEINFO_CORRUPT: "page-info",
    faults.VMM_CHANNEL_WEDGED: "channel-masks",
    faults.VMM_BACKEND_DEAD: "backend-liveness",
    faults.VMM_GRANT_POISONED: "grant-refs",
    faults.VMM_REFCOUNT_BALLOON: "vo-refcount",
    faults.VMM_TRAP_VECTOR_DROPPED: "trap-table",
}


def test_healthy_attached_stack_scans_clean():
    mercury = _stack()
    watchdog = Watchdog(mercury, suspect_scans=1)
    for _ in range(3):
        assert watchdog.scan() is None
    assert watchdog.scans == 3
    assert watchdog.detections == 0
    assert watchdog.pending_verdict is None


def test_scan_skipped_while_native():
    cfg = small_config()
    mercury = Mercury(Machine(cfg))
    mercury.create_kernel(image_pages=16)
    assert mercury.mode is Mode.NATIVE
    watchdog = Watchdog(mercury)
    assert watchdog.scan() is None
    assert watchdog.scans == 0  # skipped, not a clean pass


@pytest.mark.parametrize("site", sorted(EXPECTED_INVARIANT))
def test_each_vmm_site_detected_and_named(site):
    mercury = _stack()
    watchdog = Watchdog(mercury, suspect_scans=1)
    assert watchdog.scan() is None
    faults.inject_vmm_fault(site, mercury)
    verdict = watchdog.scan()
    assert isinstance(verdict, VmmCorruption)
    assert verdict.invariant == EXPECTED_INVARIANT[site]
    assert watchdog.pending_verdict is verdict
    assert verdict.detected_cycles == mercury.machine.clock.cycles


def test_verdict_names_carry_detail():
    mercury = _stack()
    watchdog = Watchdog(mercury, suspect_scans=1)
    faults.inject_vmm_fault(faults.VMM_TRAP_VECTOR_DROPPED, mercury)
    verdict = watchdog.scan()
    assert "vector" in verdict.detail
    assert verdict.invariant in str(verdict)


@pytest.mark.parametrize("site", [faults.VMM_CHANNEL_WEDGED,
                                  faults.VMM_BACKEND_DEAD])
def test_liveness_checks_use_double_observation(site):
    """A backend legitimately mid-poll (or a channel masked around a
    wait) must survive one scan; only a *persistently* wedged victim is
    corrupt."""
    mercury = _stack()
    watchdog = Watchdog(mercury, suspect_scans=2)
    faults.inject_vmm_fault(site, mercury)
    assert watchdog.scan() is None, "first observation is only a suspicion"
    verdict = watchdog.scan()
    assert verdict is not None
    assert verdict.invariant == EXPECTED_INVARIANT[site]


def test_suspect_counter_resets_when_condition_clears():
    mercury = _stack()
    watchdog = Watchdog(mercury, suspect_scans=2)
    back = mercury._backends[0]
    back._in_poll = True
    assert watchdog.scan() is None
    back._in_poll = False  # the poll finished: not wedged after all
    assert watchdog.scan() is None
    back._in_poll = True
    assert watchdog.scan() is None, "counter must have reset"


def test_first_verdict_is_kept_and_take_verdict_clears():
    mercury = _stack()
    watchdog = Watchdog(mercury, suspect_scans=1)
    faults.inject_vmm_fault(faults.VMM_REFCOUNT_BALLOON, mercury)
    first = watchdog.scan()
    second = watchdog.scan()
    assert second is not None
    assert watchdog.pending_verdict is first
    assert watchdog.take_verdict() is first
    assert watchdog.pending_verdict is None
    assert watchdog.detections == 2


def test_scan_charges_flat_cycle_cost():
    mercury = _stack()
    watchdog = Watchdog(mercury, suspect_scans=1)
    clock = mercury.machine.clock
    before = clock.cycles
    watchdog.scan()
    assert clock.cycles - before == CYC_SCAN


def test_periodic_timer_scans_and_stops():
    mercury = _stack()
    watchdog = Watchdog(mercury, suspect_scans=1)
    machine = mercury.machine
    watchdog.start(interval_cycles=1_000)
    assert watchdog.running
    for _ in range(3):
        machine.clock.advance(1_000)
        machine.poll()
    assert watchdog.scans == 3
    watchdog.stop()
    assert not watchdog.running
    machine.clock.advance(5_000)
    machine.poll()
    assert watchdog.scans == 3


def test_scan_skipped_during_recovery(monkeypatch):
    mercury = _stack()
    watchdog = Watchdog(mercury, suspect_scans=1)
    manager = RecoveryManager(mercury)
    faults.inject_vmm_fault(faults.VMM_PAGEINFO_CORRUPT, mercury)
    monkeypatch.setattr(manager, "_in_progress", True)
    assert watchdog.scan() is None
    assert watchdog.scans == 0


def test_counters_surface_through_metrics_api():
    mercury = _stack()
    watchdog = Watchdog(mercury, suspect_scans=1)
    manager = RecoveryManager(mercury)
    watchdog.scan()
    faults.inject_vmm_fault(faults.VMM_GRANT_POISONED, mercury)
    verdict = watchdog.scan()
    record = manager.recover(verdict)
    assert record.success
    snap = MetricsCollector(mercury.machine, kernel=mercury.kernel,
                            mercury=mercury).snapshot()
    assert snap.watchdog_scans == watchdog.scans >= 2
    assert snap.watchdog_detections == 1
    assert snap.recoveries == 1
    assert snap.recovery_failures == 0
    assert snap.emergency_detaches == 1


def test_rings_check_covers_all_backend_rings():
    mercury = _stack()
    watchdog = Watchdog(mercury, suspect_scans=1)
    # one guest: BlkBack.ring + NetBack.tx_ring/rx_ring
    assert len(list(watchdog._rings())) == 3
    ring = mercury._backends[0].ring
    ring.c.rsp_prod = ring.c.req_cons + 1  # response without a request
    verdict = watchdog.scan()
    assert verdict is not None
    assert verdict.invariant == "ring-indices"
