"""State transfer (§5.1.2) and hardware reloading (§5.1.3) in isolation."""

import pytest

from repro.core import transfer
from repro.core.accounting import AccountingStrategy
from repro.core.reload import reload_control_processor, reload_secondary
from repro.errors import ConsistencyViolation
from repro.hw.cpu import PrivilegeLevel


def test_transfer_page_tables_roundtrip(mercury):
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    vmm = mercury.vmm
    dom = mercury.ensure_domain()
    n = transfer.transfer_page_tables_to_virtual(
        cpu, k, vmm, dom, AccountingStrategy.RECOMPUTE)
    assert n == sum(a.num_pt_pages() for a in k.aspaces)
    assert all(a in dom.aspaces for a in k.aspaces)
    assert all(a.pgd_frame in vmm.page_info.pinned for a in k.aspaces)
    m = transfer.transfer_page_tables_to_native(cpu, k, vmm, dom)
    assert m == n
    assert dom.aspaces == []
    assert all(a.pgd_frame not in vmm.page_info.pinned for a in k.aspaces)


def test_transfer_segments_counts_fixups(mercury):
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    for _ in range(3):
        k.syscall(cpu, "fork")
    fixed = transfer.transfer_segments(cpu, k, new_dpl=1)
    # every task with a cached interrupt frame (the 3 forked children —
    # init has never been suspended by an interrupt) gets rewritten
    assert fixed == 3
    # a second transfer to the same DPL touches nothing
    assert transfer.transfer_segments(cpu, k, new_dpl=1) == 0


def test_transfer_segments_charges_fixup_cost(mercury):
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    k.syscall(cpu, "fork")
    t0 = cpu.rdtsc()
    fixed = transfer.transfer_segments(cpu, k, new_dpl=1)
    assert cpu.rdtsc() - t0 >= fixed * cpu.cost.cyc_iret_fixup


def test_transfer_irq_bindings(mercury):
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    vmm = mercury.vmm
    dom = mercury.ensure_domain()
    transfer.transfer_irq_bindings_to_virtual(cpu, k, vmm, dom)
    assert cpu.idt_base.owner == "vmm"
    assert set(dom.trap_table) == set(k.idt.gates)
    transfer.transfer_irq_bindings_to_native(cpu, k)
    assert cpu.idt_base is k.idt


def test_reload_requires_interrupts_disabled(mercury):
    cpu = mercury.machine.boot_cpu
    assert cpu.interrupts_enabled
    with pytest.raises(ConsistencyViolation):
        reload_control_processor(cpu, mercury.kernel, PrivilegeLevel.PL0)


def test_reload_restores_current_cr3(mercury):
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    cpu.cr3 = 0xdead
    cpu.interrupts_enabled = False
    try:
        reload_control_processor(cpu, k, PrivilegeLevel.PL0)
    finally:
        cpu.interrupts_enabled = True
    assert cpu.cr3 == k.scheduler.current.aspace.pgd_frame


def test_reload_flushes_tlb(mercury):
    cpu = mercury.machine.boot_cpu
    cpu.tlb.fill(9, 90, True)
    cpu.interrupts_enabled = False
    try:
        reload_control_processor(cpu, mercury.kernel, PrivilegeLevel.PL0)
    finally:
        cpu.interrupts_enabled = True
    assert 9 not in cpu.tlb


def test_reload_edits_iret_frame(mercury):
    cpu = mercury.machine.boot_cpu
    cpu._iret_pl = PrivilegeLevel.PL0
    cpu.interrupts_enabled = False
    try:
        reload_control_processor(cpu, mercury.kernel, PrivilegeLevel.PL1)
    finally:
        cpu.interrupts_enabled = True
    assert cpu._iret_pl == PrivilegeLevel.PL1
    del cpu._iret_pl


def test_reload_secondary_touches_own_cpu_only(mercury):
    """Secondary reload never needs the uninterruptible guard of the CP
    (its caller, the rendezvous IPI handler, provides it)."""
    cpu = mercury.machine.boot_cpu
    reload_secondary(cpu, mercury.kernel, PrivilegeLevel.PL0)
    assert cpu.cr3 == mercury.kernel.scheduler.current.aspace.pgd_frame
