"""Spot-checks of specific sentences in the paper's design sections."""

import pytest

from repro import Machine, Mercury, PagingMode, small_config
from repro.core.mercury import Mode


def test_vo_execution_is_nonblocking(mercury):
    """§5.1.1: 'almost all execution in the virtualization object is short
    (because it is non-blocking) or synchronous' — device waits happen
    OUTSIDE the VO, so the refcount cannot wedge a switch behind a slow
    disk.  We assert the VO is quiescent while the kernel waits for I/O."""
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    observed = []
    original_wait = k.wait_for

    def spying_wait(cpu_, predicate, **kw):
        observed.append(k.vo.refcount)
        return original_wait(cpu_, predicate, **kw)

    k.wait_for = spying_wait
    fd = k.syscall(cpu, "open", "/io", True)
    k.syscall(cpu, "write", fd, "x", 4096)
    k.syscall(cpu, "fsync", fd)  # real device wait happens in here
    k.wait_for = original_wait
    assert observed, "fsync never waited for the device"
    assert all(rc == 0 for rc in observed), \
        "the VO was held across a blocking device wait"


def test_precached_vmm_memory_pressure_is_small(mercury):
    """§4.1: 'a VMM occupies only a reasonably small chunk of memory' —
    the resident VMM must reserve well under 15% of the machine."""
    total = mercury.machine.memory.num_frames
    assert mercury.precache_info.reserved_frames / total <= 0.15


def test_interception_cannot_be_bypassed(mercury):
    """§3.1: 'the interception of privileged instructions is mandatory and
    cannot be bypassed' — in virtual mode a privileged instruction from
    the de-privileged kernel always lands in the VMM."""
    from repro.hw.cpu import PrivilegeLevel
    mercury.attach()
    cpu = mercury.machine.boot_cpu
    traps0 = mercury.vmm.traps_emulated
    cpu.set_privilege(PrivilegeLevel.PL1)
    cpu.privileged_op("cli")
    cpu.set_privilege(PrivilegeLevel.PL3)
    assert mercury.vmm.traps_emulated == traps0 + 1
    mercury.detach()


def test_mode_switch_is_reversible_arbitrarily_often():
    """§1: 'the virtualizing process is reversible' — 20 round trips with
    zero cumulative state drift in switch cost.  The paper's full-recompute
    attach costs the same every time; with the incremental recompute the
    first attach pays the full validation and every later one settles on a
    cheaper, equally drift-free steady state."""
    machine = Machine(small_config())
    mercury = Mercury(machine, incremental_attach=False)
    k = mercury.create_kernel(image_pages=16)
    costs = []
    for _ in range(20):
        costs.append(mercury.attach().cycles)
        mercury.detach()
    assert len(set(costs)) == 1, "switch cost drifted across round trips"


def test_incremental_attach_settles_with_no_drift():
    """The incremental recompute must be just as reversible: after the
    first (full) attach, every round trip costs exactly the same, and no
    more than the full recompute would."""
    machine = Machine(small_config())
    mercury = Mercury(machine)
    k = mercury.create_kernel(image_pages=16)
    costs = []
    for _ in range(20):
        costs.append(mercury.attach().cycles)
        mercury.detach()
    assert len(set(costs[1:])) == 1, "steady-state switch cost drifted"
    assert costs[1] < costs[0], \
        "incremental attach should beat the first full recompute"
    assert mercury.mmu_log.full_recomputes == 1
    assert mercury.mmu_log.roots_revalidated == 0


def test_checkpoint_in_shadow_virtual_mode():
    """Checkpoint/restore composes with the shadow-paging alternative."""
    from repro.scenarios.checkpoint import checkpoint, restore
    machine = Machine(small_config(mem_kb=32768))
    mercury = Mercury(machine, paging=PagingMode.SHADOW)
    k = mercury.create_kernel(image_pages=8)
    cpu = machine.boot_cpu
    fd = k.syscall(cpu, "open", "/shadow-ckpt", True)
    k.syscall(cpu, "write", fd, "v", 4096)
    mercury.attach()
    image = checkpoint(mercury)
    assert mercury.mode is Mode.PARTIAL_VIRTUAL
    k.fs.inodes.clear()
    restore(image, mercury)
    assert k.fs.exists("/shadow-ckpt")
    # shadows are coherent for every restored aspace
    for aspace in k.aspaces:
        assert mercury.pager.verify_coherent(aspace)
    mercury.detach()


def test_only_performance_critical_code_lives_in_the_vo(mercury):
    """§5.3: 'non-performance-critical sensitive code is not included in a
    VO and relies instead on trap-and-emulation' — the VO's method surface
    is the §5.3 groups, nothing kitchen-sink."""
    from repro.core.vobject import VirtualizationObject
    sensitive_methods = {
        name for name in dir(VirtualizationObject)
        if not name.startswith("_") and callable(
            getattr(VirtualizationObject, name))
        and name not in ("enter", "exit", "busy")
    }
    # CPU ops, entry/exit paths, MMU ops (including the lazy-MMU batching
    # region markers — PTE-update paths, squarely performance-critical),
    # I/O ops — and nothing else
    assert sensitive_methods == {
        "write_cr3", "load_idt", "set_segment_dpl", "irq_disable",
        "irq_enable", "stack_switch", "kernel_entry", "kernel_exit",
        "fault_entry", "set_pte", "clear_pte", "update_pte_flags",
        "apply_pte_region", "lazy_mmu_begin", "lazy_mmu_end",
        "lazy_mmu_flush", "lazy_mmu_drain", "lazy_mmu_pending",
        "new_address_space", "destroy_address_space",
        "flush_tlb", "invlpg", "bind_irq", "disk_submit", "net_transmit",
    }
