"""Mercury top level: modes, hosting, pre-caching, guards."""

import pytest

from repro import Machine, Mercury, small_config
from repro.core.mercury import Mode
from repro.core.switch import Direction
from repro.errors import ModeSwitchError


def test_precache_happens_at_construction(machine):
    mc = Mercury(machine)
    assert mc.vmm.state.value == "warm"
    assert mc.precache_info.reserved_frames > 0
    assert mc.precache_info.reserved_kb == mc.precache_info.reserved_frames * 4


def test_precache_boot_charge_optional():
    m1 = Machine(small_config())
    mc1 = Mercury(m1, charge_boot_time=True)
    assert m1.clock.cycles >= mc1.precache_info.warmup_cycles
    m2 = Machine(small_config())
    Mercury(m2, charge_boot_time=False)
    assert m2.clock.cycles == 0


def test_attach_is_orders_of_magnitude_faster_than_cold_boot(mercury):
    """The §4.1 space-time trade-off: the pre-cached attach must be
    vastly cheaper than booting a VMM."""
    from repro.core.precache import COLD_BOOT_CYCLES
    rec = mercury.attach()
    assert rec.cycles * 1000 < COLD_BOOT_CYCLES


def test_single_kernel_per_mercury(mercury):
    with pytest.raises(ModeSwitchError):
        mercury.create_kernel()


def test_domain_created_once_with_kernel_identity(mercury):
    d1 = mercury.ensure_domain()
    d2 = mercury.ensure_domain()
    assert d1 is d2
    assert d1.domain_id == mercury.kernel.owner_id
    assert d1.is_driver_domain


def test_host_guest_requires_attached_vmm(mercury):
    with pytest.raises(ModeSwitchError):
        mercury.host_guest()


def test_host_guest_end_to_end(mercury):
    mercury.attach()
    guest = mercury.host_guest(name="domU", image_pages=8)
    assert guest in mercury.guests
    assert guest.owner_id != mercury.kernel.owner_id
    cpu = mercury.machine.boot_cpu
    # the guest is a working OS: processes and files work through Mercury
    pid = guest.syscall(cpu, "fork")
    guest.run_and_reap(cpu, guest.procs.get(pid))
    fd = guest.syscall(cpu, "open", "/in-guest", True)
    guest.syscall(cpu, "write", fd, "hosted", 10)
    guest.syscall(cpu, "fsync", fd)


def test_detach_refused_while_hosting(mercury):
    mercury.attach()
    guest = mercury.host_guest()
    with pytest.raises(ModeSwitchError):
        mercury.detach()
    mercury.shutdown_guest(guest)
    mercury.detach()
    assert mercury.mode is Mode.NATIVE


def test_shutdown_unknown_guest_rejected(mercury):
    mercury.attach()
    with pytest.raises(ModeSwitchError):
        mercury.shutdown_guest(mercury.kernel)


def test_full_virtualize_from_native(mercury):
    mercury.full_virtualize()
    assert mercury.mode is Mode.FULL_VIRTUAL
    mercury.departial()
    assert mercury.mode is Mode.PARTIAL_VIRTUAL
    mercury.detach()


def test_departial_requires_full(mercury):
    with pytest.raises(ModeSwitchError):
        mercury.departial()


def test_mean_switch_us(mercury):
    assert mercury.mean_switch_us(Direction.TO_VIRTUAL) is None
    mercury.attach()
    mercury.detach()
    mercury.attach()
    mercury.detach()
    up = mercury.mean_switch_us(Direction.TO_VIRTUAL)
    down = mercury.mean_switch_us(Direction.TO_NATIVE)
    assert up > down > 0


def test_adopt_kernel_rejects_foreign_vo(machine):
    from repro.core.native_vo import NativeVO
    from repro.guestos.kernel import Kernel
    mc = Mercury(machine)
    foreign = Kernel(machine, NativeVO(machine), name="foreign")
    with pytest.raises(ModeSwitchError):
        mc.adopt_kernel(foreign)


def test_guests_property_is_a_copy(mercury):
    mercury.attach()
    guests = mercury.guests
    guests.append("bogus")
    assert "bogus" not in mercury.guests
