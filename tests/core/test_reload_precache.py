"""Coverage for :mod:`repro.core.reload` and :mod:`repro.core.precache`.

The reload-ordering assertions (§4.3/§5.1.3: CR3/IDT/GDT reloaded inside
the uninterruptible switch handler, GDT before CR3, TLB flushed last) are
made against the cycle-domain trace — the reload steps are observable as
instants nested in the ``reload.cp`` / ``reload.secondary`` spans.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import Machine, Mercury, small_config, trace
from repro.core.precache import (COLD_BOOT_CYCLES, WARMUP_CYCLES,
                                 precache_vmm)
from repro.core.reload import reload_control_processor
from repro.errors import ConsistencyViolation
from repro.hw.cpu import PrivilegeLevel


def _find(span, name):
    """All descendants (and self) named ``name``, in tree order."""
    return [n for n in span.walk() if n.name == name]


def _single_root(tracer, cpu_id=0):
    forests = trace.build_span_trees(tracer.events())
    roots = forests[cpu_id]
    assert len(roots) == 1
    return roots[0]


def _traced_switch(mercury, direction):
    with trace.tracing(mercury.machine) as tracer:
        if direction == "attach":
            mercury.attach()
        else:
            mercury.detach()
    assert trace.validate(tracer.events(), dropped=tracer.dropped) == []
    return tracer


# ---------------------------------------------------------------------------
# reload ordering (§5.1.3)
# ---------------------------------------------------------------------------

def test_attach_reload_order_and_no_guest_idt(mercury):
    """Attach reloads GDT then CR3 then flushes the TLB — and does *not*
    load the guest IDT: virtual mode runs on the VMM's forwarding IDT,
    installed by the IRQ-binding transfer step."""
    tracer = _traced_switch(mercury, "attach")
    root = _single_root(tracer)
    (reload_cp,) = _find(root, "reload.cp")
    steps = [c.name for c in reload_cp.children]
    assert steps == ["reload.gdt", "reload.cr3", "reload.tlb-flush"]
    assert _find(root, "reload.idt") == []


def test_detach_reload_order_includes_guest_idt(mercury):
    """Detach hands the hardware back to the guest: GDT, then the guest's
    own IDT, then CR3, then the TLB flush."""
    mercury.attach()
    tracer = _traced_switch(mercury, "detach")
    root = _single_root(tracer)
    (reload_cp,) = _find(root, "reload.cp")
    steps = [c.name for c in reload_cp.children]
    assert steps == ["reload.gdt", "reload.idt", "reload.cr3",
                     "reload.tlb-flush"]


def test_reload_runs_inside_the_uninterruptible_commit(mercury):
    """The reload phase nests inside the switch-commit span (the
    uninterruptible handler), *after* the IRQ-binding transfer settled
    which IDT the hardware should own."""
    tracer = _traced_switch(mercury, "attach")
    root = _single_root(tracer)
    (commit,) = _find(root, "switch.commit")
    assert _find(commit, "reload.cp"), "reload.cp not inside switch.commit"
    order = [c.name for c in commit.children]
    assert order.index("transfer.irq-bindings") < order.index("reload.cp")


def test_secondary_reload_order_on_smp():
    """Each secondary performs the same register reload sequence from its
    rendezvous IPI handler, on its own CPU track."""
    cfg = dataclasses.replace(small_config(), num_cpus=2)
    mercury = Mercury(Machine(cfg))
    mercury.create_kernel(image_pages=16)
    mercury.attach()
    with trace.tracing(mercury.machine) as tracer:
        mercury.detach()
    events = tracer.events()
    assert trace.validate(events, dropped=tracer.dropped) == []
    forests = trace.build_span_trees(events)
    (secondary_root,) = forests[1]
    assert secondary_root.name == "reload.secondary"
    steps = [c.name for c in secondary_root.children]
    assert steps == ["reload.gdt", "reload.idt", "reload.cr3",
                     "reload.tlb-flush"]


def test_reload_refuses_interruptible_entry(mercury):
    """§5.1.3: state reloading must not be interrupted — entering the CP
    reload with interrupts enabled is a consistency violation."""
    cpu = mercury.machine.boot_cpu
    cpu.interrupts_enabled = True
    with pytest.raises(ConsistencyViolation):
        reload_control_processor(cpu, mercury.kernel, PrivilegeLevel.PL1)


# ---------------------------------------------------------------------------
# pre-caching (§4.1)
# ---------------------------------------------------------------------------

def test_precache_reserves_memory_and_charges_boot_once():
    machine = Machine(small_config())
    before = machine.clock.cycles
    vmm, info = precache_vmm(machine)
    assert machine.clock.cycles - before == WARMUP_CYCLES
    assert info.warmup_cycles == WARMUP_CYCLES
    assert info.reserved_frames > 0
    assert info.reserved_kb == info.reserved_frames * 4
    assert not vmm.active  # resident but inactive


def test_precache_without_boot_charge_is_free():
    machine = Machine(small_config())
    before = machine.clock.cycles
    _, info = precache_vmm(machine, charge_boot_time=False)
    assert machine.clock.cycles == before
    assert info.warmup_cycles == 0


def test_attach_rides_the_precached_vmm(mercury):
    """The whole point of §4.1: with the VMM pre-cached, the attach itself
    costs orders of magnitude less than a cold VMM boot would."""
    assert mercury.precache_info.reserved_kb > 0
    record = mercury.attach()
    assert record.cycles < WARMUP_CYCLES < COLD_BOOT_CYCLES
