"""SMP rendezvous (§5.4): IPIs, shared-variable handshake, scaling."""

import pytest

from repro import Machine, Mercury, small_config
from repro.core.mercury import Mode
from repro.core.smp import SmpCoordinator
from repro.hw.cpu import PrivilegeLevel


@pytest.fixture
def mercury_smp():
    machine = Machine(small_config(num_cpus=2))
    mc = Mercury(machine)
    mc.create_kernel(image_pages=16)
    return mc


def _mercury_with(ncpus):
    machine = Machine(small_config(num_cpus=ncpus))
    mc = Mercury(machine)
    mc.create_kernel(image_pages=16)
    return mc


def test_smp_attach_uses_rendezvous(mercury_smp):
    rec = mercury_smp.attach()
    assert rec.rendezvous is not None
    r = rec.rendezvous
    assert r.num_cpus == 2
    assert r.ipis_sent == 1
    assert r.start <= r.gathered <= r.finish
    assert r.cp_done <= r.finish and r.secondaries_done <= r.finish


def test_up_attach_has_no_rendezvous(mercury):
    rec = mercury.attach()
    assert rec.rendezvous is None


def test_all_cpus_reach_target_mode(mercury_smp):
    mercury_smp.attach()
    for cpu in mercury_smp.machine.cpus:
        assert cpu.idt_base.owner == "vmm"
        assert cpu.gdt[1].dpl == 1
    mercury_smp.detach()
    for cpu in mercury_smp.machine.cpus:
        assert cpu.idt_base.owner == mercury_smp.kernel.name
        assert cpu.gdt[1].dpl == 0


def test_shared_count_covers_every_cpu(mercury_smp):
    mercury_smp.attach()
    smp = mercury_smp.engine.smp
    assert smp.ready_count == 2
    assert smp.go_flag is True
    assert smp.done_count == 2


def test_rendezvous_consumes_its_ipis(mercury_smp):
    from repro.hw.interrupts import VEC_SV_RENDEZVOUS
    mercury_smp.attach()
    for cpu in mercury_smp.machine.cpus:
        assert mercury_smp.machine.intc.pending_count(cpu.cpu_id) == 0


def test_secondaries_reenabled_after_switch(mercury_smp):
    mercury_smp.attach()
    assert all(c.interrupts_enabled for c in mercury_smp.machine.cpus)


def test_secondary_work_overlaps_cp_work(mercury_smp):
    """The secondaries' reloads must not serialize after the CP's heavy
    work: total <= cp_done unless a secondary straggles."""
    rec = mercury_smp.attach()
    r = rec.rendezvous
    assert r.finish == max(r.cp_done, r.secondaries_done)


def test_switch_time_grows_slowly_with_cores():
    """The §8 scalability concern: gather cost rises with core count but
    the per-CPU reloads stay parallel, so 8 cores must cost far less than
    8x the 2-core switch."""
    times = {}
    for ncpus in (2, 4, 8):
        mc = _mercury_with(ncpus)
        rec = mc.attach()
        times[ncpus] = rec.cycles
        mc.detach()
    assert times[4] >= times[2]
    assert times[8] >= times[4]
    assert times[8] < times[2] * 4


def test_smp_roundtrip_workload_intact(mercury_smp):
    k = mercury_smp.kernel
    cpu = mercury_smp.machine.boot_cpu
    fd = k.syscall(cpu, "open", "/smp", True)
    k.syscall(cpu, "write", fd, "x", 10)
    mercury_smp.attach()
    pid = k.syscall(cpu, "fork")
    k.run_and_reap(cpu, k.procs.get(pid))
    mercury_smp.detach()
    assert k.fs.exists("/smp")
    assert mercury_smp.mode is Mode.NATIVE


def test_coordinator_direct_api(machine2):
    """The rendezvous is usable standalone with arbitrary work."""
    coord = SmpCoordinator(machine2)
    ran = []
    result = coord.coordinated_switch(
        machine2.boot_cpu,
        cp_work=lambda c: ran.append(("cp", c.cpu_id)),
        secondary_work=lambda c: ran.append(("sec", c.cpu_id)))
    assert ("cp", 0) in ran and ("sec", 1) in ran
    assert result.total_cycles >= 0
    assert result.gather_cycles > 0
