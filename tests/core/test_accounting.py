"""Accounting strategies: ACTIVE tracking must be semantically equivalent
to RECOMPUTE — the §5.1.2 correctness condition, property-tested."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Machine, Mercury, small_config
from repro.core.accounting import AccountingStrategy
from repro.vmm.page_info import PageInfoTable, PageType
from repro.params import PAGE_SIZE


def _fresh_table(mercury):
    """What RECOMPUTE would produce right now."""
    table = PageInfoTable(mercury.machine.memory)
    table.recompute(mercury.machine.boot_cpu, mercury.kernel.aspaces,
                    mercury.kernel.owner_id)
    return table


def test_active_tracking_matches_recompute_after_boot(mercury_active):
    reference = _fresh_table(mercury_active)
    assert mercury_active.vmm.page_info.semantically_equal(reference)


def test_active_tracking_matches_after_fork_exit(mercury_active):
    k = mercury_active.kernel
    cpu = mercury_active.machine.boot_cpu
    pid = k.syscall(cpu, "fork")
    k.run_and_reap(cpu, k.procs.get(pid))
    assert mercury_active.vmm.page_info.semantically_equal(
        _fresh_table(mercury_active))


def test_active_tracking_matches_after_mmap_cycle(mercury_active):
    k = mercury_active.kernel
    cpu = mercury_active.machine.boot_cpu
    base = k.syscall(cpu, "mmap", 8 * PAGE_SIZE, True)
    assert mercury_active.vmm.page_info.semantically_equal(
        _fresh_table(mercury_active))
    k.syscall(cpu, "munmap", base, 8 * PAGE_SIZE)
    assert mercury_active.vmm.page_info.semantically_equal(
        _fresh_table(mercury_active))


def test_active_tracking_has_running_cost(machine):
    """The 2-3% native-mode overhead the paper measured: ACTIVE charges
    per PT operation, RECOMPUTE charges nothing until the switch."""
    mc_active = Mercury(machine, strategy=AccountingStrategy.ACTIVE)
    k = mc_active.create_kernel(image_pages=16)
    cpu = machine.boot_cpu
    t0 = cpu.rdtsc()
    pid = k.syscall(cpu, "fork")
    k.run_and_reap(cpu, k.procs.get(pid))
    active_cost = cpu.rdtsc() - t0

    m2 = Machine(small_config())
    mc_rec = Mercury(m2, strategy=AccountingStrategy.RECOMPUTE)
    k2 = mc_rec.create_kernel(image_pages=16)
    cpu2 = m2.boot_cpu
    t0 = cpu2.rdtsc()
    pid = k2.syscall(cpu2, "fork")
    k2.run_and_reap(cpu2, k2.procs.get(pid))
    recompute_cost = cpu2.rdtsc() - t0

    assert active_cost > recompute_cost
    overhead = (active_cost - recompute_cost) / recompute_cost
    assert overhead < 0.10  # small, as the paper's 2-3%


def test_active_switch_is_faster_than_recompute_switch():
    """The other side of the trade-off: ACTIVE shortens the attach."""
    durations = {}
    for strategy in (AccountingStrategy.ACTIVE, AccountingStrategy.RECOMPUTE):
        m = Machine(small_config())
        mc = Mercury(m, strategy=strategy)
        k = mc.create_kernel(image_pages=16)
        cpu = m.boot_cpu
        for _ in range(4):
            k.syscall(cpu, "fork")
        rec = mc.attach()
        durations[strategy] = rec.cycles
        mc.detach()
    assert durations[AccountingStrategy.ACTIVE] < \
        durations[AccountingStrategy.RECOMPUTE]


def test_attach_with_active_strategy_is_correct(mercury_active):
    """After an ACTIVE-strategy attach, the VMM must enforce isolation
    exactly as after a recompute."""
    mercury_active.attach()
    k = mercury_active.kernel
    cpu = mercury_active.machine.boot_cpu
    # the VMM now validates: a fork in virtual mode works end to end
    pid = k.syscall(cpu, "fork")
    k.run_and_reap(cpu, k.procs.get(pid))
    mercury_active.detach()


@settings(max_examples=15, deadline=None)
@given(st.lists(st.sampled_from(["fork", "reap", "mmap", "munmap", "touch"]),
                max_size=14))
def test_property_active_equals_recompute(ops):
    """THE §5.1.2 equivalence: after any workload, actively-tracked page
    info semantically equals a from-scratch recompute."""
    machine = Machine(small_config())
    mc = Mercury(machine, strategy=AccountingStrategy.ACTIVE)
    k = mc.create_kernel(image_pages=8)
    cpu = machine.boot_cpu
    children = []
    regions = []
    for op in ops:
        if op == "fork" and len(children) < 4:
            pid = k.syscall(cpu, "fork")
            children.append(k.procs.get(pid))
        elif op == "reap" and children:
            k.run_and_reap(cpu, children.pop())
        elif op == "mmap":
            base = k.syscall(cpu, "mmap", 3 * PAGE_SIZE, True)
            regions.append(base)
        elif op == "munmap" and regions:
            k.syscall(cpu, "munmap", regions.pop(), 3 * PAGE_SIZE)
        elif op == "touch":
            task = k.scheduler.current
            base = k.syscall(cpu, "mmap", PAGE_SIZE)
            k.vmem.access(cpu, task, base, write=True)

    reference = PageInfoTable(machine.memory)
    reference.recompute(cpu, k.aspaces, k.owner_id)
    assert mc.vmm.page_info.semantically_equal(reference)
