"""The deterministic fault-injection engine (:mod:`repro.faults`) and the
switch engine's transactional recovery from single transient faults.

The crash matrix (tests/integration/test_switch_crash_matrix.py) exercises
every site terminally; here we pin down the plan mechanics themselves —
hit ordinals, fire counts, CPU filters, determinism — and the happy
recovery path: one transient fault, one rollback, one backoff retry, one
commit.
"""

from __future__ import annotations

import pytest

from repro import Machine, Mercury, faults, small_config
from repro.core.invariants import check_all
from repro.core.mercury import Mode
from repro.core.switch import MAX_SWITCH_RETRIES, RETRY_PERIOD_MS
from repro.errors import HypercallError, SwitchAborted
from repro.hw.paging import Pte
from repro.metrics import MetricsCollector


# ---------------------------------------------------------------------------
# plan mechanics (no machine needed)
# ---------------------------------------------------------------------------

def test_unknown_site_is_rejected_at_arm_time():
    plan = faults.FaultPlan()
    with pytest.raises(KeyError):
        plan.arm("transfer.typo-site")


def test_site_lookup():
    s = faults.site(faults.PT_TRANSFER_ABORT)
    assert s.name == faults.PT_TRANSFER_ABORT
    assert s.during_switch
    assert not s.smp_only


def test_registry_shape():
    names = {s.name for s in faults.ALL_SITES}
    assert len(names) == len(faults.ALL_SITES)  # no duplicate names
    # the matrix relies on the split: every switch site is during_switch
    assert all(s.during_switch for s in faults.SWITCH_SITES)
    assert all(not s.during_switch for s in faults.WORKLOAD_SITES)


def test_trigger_ordinal_and_count():
    """Fire on hits 3 and 4 only: deterministic by construction."""
    plan = faults.FaultPlan()
    plan.arm(faults.TRANSFER_HYPERCALL, trigger_at=3, times=2)
    fired = [plan.check(faults.TRANSFER_HYPERCALL) for _ in range(6)]
    assert fired == [False, False, True, True, False, False]
    assert plan.injected == 2
    assert plan.log == [(faults.TRANSFER_HYPERCALL, None)] * 2


def test_persistent_fault_fires_forever():
    plan = faults.FaultPlan()
    plan.arm(faults.REFCOUNT_STUCK, trigger_at=2, times=None)
    fired = [plan.check(faults.REFCOUNT_STUCK) for _ in range(5)]
    assert fired == [False, True, True, True, True]


def test_cpu_filter_only_hits_the_armed_cpu():
    plan = faults.FaultPlan()
    plan.arm(faults.RELOAD_SECONDARY, times=None, cpu_id=1)
    assert not plan.check(faults.RELOAD_SECONDARY, cpu_id=0)
    assert plan.check(faults.RELOAD_SECONDARY, cpu_id=1)
    assert plan.log == [(faults.RELOAD_SECONDARY, 1)]


def test_same_plan_same_workload_same_injections():
    """The determinism contract: identical plans against identical hit
    sequences produce identical audit logs."""
    def run():
        plan = faults.FaultPlan()
        plan.arm(faults.IPI_DROPPED, trigger_at=2, times=1, cpu_id=1)
        plan.arm(faults.TRANSFER_HYPERCALL, trigger_at=1, times=2)
        for cpu_id in (0, 1, 0, 1, 1):
            plan.check(faults.IPI_DROPPED, cpu_id=cpu_id)
            plan.check(faults.TRANSFER_HYPERCALL, cpu_id=cpu_id)
        return plan.log
    assert run() == run()


def test_fire_is_noop_without_a_plan():
    faults.clear_plan()
    before = faults.injected_total()
    assert faults.fire(faults.TRANSFER_HYPERCALL) is False
    assert faults.injected_total() == before


def test_injected_context_manager_installs_and_clears():
    plan = faults.FaultPlan()
    plan.arm(faults.TRANSFER_HYPERCALL)
    assert faults.active_plan() is None
    with faults.injected(plan) as p:
        assert faults.active_plan() is p
        assert faults.fire(faults.TRANSFER_HYPERCALL)
    assert faults.active_plan() is None


def test_disarm_and_armed_sites():
    plan = faults.FaultPlan()
    plan.arm(faults.TRANSFER_HYPERCALL)
    plan.arm(faults.REFCOUNT_STUCK)
    assert plan.armed_sites() == sorted(
        [faults.TRANSFER_HYPERCALL, faults.REFCOUNT_STUCK])
    plan.disarm(faults.TRANSFER_HYPERCALL)
    assert plan.armed_sites() == [faults.REFCOUNT_STUCK]
    plan.disarm_all()
    assert plan.armed_sites() == []


# ---------------------------------------------------------------------------
# transient faults: rollback + backoff retry + commit
# ---------------------------------------------------------------------------

def test_transient_transfer_fault_retries_and_commits(mercury):
    plan = faults.FaultPlan()
    plan.arm(faults.TRANSFER_HYPERCALL, times=1)
    with faults.injected(plan):
        rec = mercury.attach()
    assert rec is not None
    assert mercury.mode is Mode.PARTIAL_VIRTUAL
    assert rec.retries >= 1
    assert rec.rollbacks >= 1
    engine = mercury.engine
    assert engine.switch_rollbacks >= 1
    assert engine.rollback_steps >= 1
    assert engine.switch_aborts == 0
    assert check_all(mercury) == []


def test_refcount_stuck_counts_failed_attempts(mercury):
    plan = faults.FaultPlan()
    plan.arm(faults.REFCOUNT_STUCK, times=2)
    with faults.injected(plan):
        rec = mercury.attach()
    assert rec is not None
    assert mercury.engine.failed_attempts == 2
    assert rec.retries == 2
    assert rec.rollbacks == 0  # never reached the transfer pipeline
    assert mercury.engine.retry_histogram == {2: 1}


def test_retry_accounting_is_per_switch(mercury):
    """A later switch must not inherit an earlier switch's retry count."""
    plan = faults.FaultPlan()
    plan.arm(faults.REFCOUNT_STUCK, times=1)
    with faults.injected(plan):
        rec1 = mercury.attach()
    assert rec1.retries == 1
    rec2 = mercury.detach()
    assert rec2.retries == 0
    assert mercury.engine.retry_histogram == {1: 1, 0: 1}
    assert mercury.engine.pending_retries == 0


def test_persistent_fault_aborts_after_the_retry_budget(mercury):
    plan = faults.FaultPlan()
    plan.arm(faults.TRANSFER_HYPERCALL, times=None)
    with faults.injected(plan):
        with pytest.raises(SwitchAborted) as ei:
            mercury.attach()
    exc = ei.value
    assert exc.retries == MAX_SWITCH_RETRIES
    assert isinstance(exc.last_error, HypercallError)
    engine = mercury.engine
    assert engine.switch_aborts == 1
    assert engine.switch_rollbacks == MAX_SWITCH_RETRIES + 1
    assert engine.pending_retries == 0  # abort abandons the attempt
    assert mercury.mode is Mode.NATIVE
    assert check_all(mercury) == []
    # the system is not wedged: a clean retry commits
    assert mercury.attach() is not None
    assert check_all(mercury) == []


def test_busy_abort_unwinds_the_pending_request(mercury):
    plan = faults.FaultPlan()
    plan.arm(faults.REFCOUNT_STUCK, times=None)
    with faults.injected(plan):
        with pytest.raises(SwitchAborted):
            mercury.attach()
    engine = mercury.engine
    assert engine.switch_aborts == 1
    assert engine.switch_rollbacks >= 1
    assert engine.failed_attempts == MAX_SWITCH_RETRIES + 1
    assert mercury.mode is Mode.NATIVE


def test_backoff_is_exponential_and_capped(mercury):
    """10, 20, 40, 80 ms, then pinned at 160 ms: the abort lands ~790 ms
    after the request, not 80 ms (unbounded 10 ms loop) and not seconds
    (uncapped doubling)."""
    plan = faults.FaultPlan()
    plan.arm(faults.REFCOUNT_STUCK, times=None)
    freq = mercury.machine.config.cost.freq_mhz
    start = mercury.machine.clock.cycles
    with faults.injected(plan):
        with pytest.raises(SwitchAborted):
            mercury.attach()
    elapsed_ms = (mercury.machine.clock.cycles - start) / (freq * 1000)
    expected = sum(min(RETRY_PERIOD_MS * 2 ** i, 160)
                   for i in range(MAX_SWITCH_RETRIES))
    assert expected <= elapsed_ms <= expected * 1.25


def test_metrics_snapshot_carries_dependability_counters(mercury):
    collector = MetricsCollector(mercury.machine, kernel=mercury.kernel,
                                 mercury=mercury)
    before = collector.snapshot()
    plan = faults.FaultPlan()
    plan.arm(faults.TRANSFER_HYPERCALL, times=1)
    with faults.injected(plan):
        mercury.attach()
    delta = collector.snapshot() - before
    assert delta.faults_injected == 1
    assert delta.switch_rollbacks == 1
    assert delta.switch_retries >= 1
    assert delta.switch_aborts == 0
    assert delta.mode_switches == 1
    assert sum(delta.retry_histogram.values()) == 1


def test_secondary_reload_fault_recovers_on_smp(machine2):
    mercury = Mercury(machine2)
    mercury.create_kernel(image_pages=16)
    plan = faults.FaultPlan()
    plan.arm(faults.RELOAD_SECONDARY, times=1, cpu_id=1)
    with faults.injected(plan):
        rec = mercury.attach()
    assert rec is not None
    assert rec.rollbacks >= 1
    assert mercury.mode is Mode.PARTIAL_VIRTUAL
    # the rollback must have left every secondary responsive
    assert all(c.interrupts_enabled for c in machine2.cpus
               if c is not machine2.boot_cpu)
    assert check_all(mercury) == []


# ---------------------------------------------------------------------------
# workload-time seam: the lazy-MMU queue survives a transient hypercall
# ---------------------------------------------------------------------------

def test_mmu_transient_fault_preserves_the_lazy_queue(mercury):
    """A transient mmu_update refusal mid-flush must re-queue the unapplied
    updates — losing them would mean PTEs the kernel believes written never
    reaching the tables."""
    mercury.attach()
    kernel = mercury.kernel
    cpu = mercury.machine.boot_cpu
    vo = kernel.vo
    aspace = kernel.scheduler.current.aspace
    frame = mercury.machine.memory.alloc(kernel.owner_id)
    kernel.vmem.claim_frame(frame)
    vaddr = 0x4100_0000

    vo.lazy_mmu_begin(cpu)
    vo.set_pte(cpu, aspace, vaddr, Pte(frame=frame, writable=True))
    assert vo.lazy_mmu_pending() == 1

    plan = faults.FaultPlan()
    plan.arm(faults.MMU_UPDATE_TRANSIENT, times=1)
    with faults.injected(plan):
        with pytest.raises(HypercallError):
            vo.lazy_mmu_end(cpu)
    # nothing applied, nothing lost
    assert aspace.get_pte(vaddr) is None
    assert vo.lazy_mmu_pending() == 1

    # fault gone: the retried flush applies the queued update
    vo.lazy_mmu_flush(cpu)
    assert vo.lazy_mmu_pending() == 0
    assert aspace.get_pte(vaddr).frame == frame
    assert check_all(mercury) == []
