"""The mode-switch engine: commit protocol, retry timer, measurements."""

import pytest

from repro.core.mercury import Mode
from repro.core.switch import Direction
from repro.errors import ModeSwitchError
from repro.hw.cpu import PrivilegeLevel
from repro.hw.interrupts import VEC_SV_ATTACH


def test_attach_then_detach_roundtrip(mercury):
    k = mercury.kernel
    rec_a = mercury.attach()
    assert mercury.mode is Mode.PARTIAL_VIRTUAL
    assert k.vo is mercury.virtual_vo
    assert mercury.vmm.active
    rec_d = mercury.detach()
    assert mercury.mode is Mode.NATIVE
    assert k.vo is mercury.native_vo
    assert not mercury.vmm.active
    assert rec_a.direction is Direction.TO_VIRTUAL
    assert rec_d.direction is Direction.TO_NATIVE


def test_switch_is_interrupt_driven(mercury):
    """The request must travel through the dedicated vector, not a direct
    call (§4.1: 'execution mode switches can be done through triggering
    the corresponding interrupt line')."""
    delivered0 = mercury.machine.intc.delivered
    mercury.attach()
    assert mercury.machine.intc.delivered > delivered0


def test_rdtsc_measured_durations(mercury):
    rec = mercury.attach()
    assert rec.end_tsc > rec.start_tsc
    assert rec.us() > 0
    rec2 = mercury.detach()
    # §7.4: attach (page-info recompute) costs more than detach
    assert rec.cycles > rec2.cycles


def test_attach_processes_pt_pages(mercury):
    cpu = mercury.machine.boot_cpu
    for _ in range(3):
        mercury.kernel.syscall(cpu, "fork")
    rec = mercury.attach()
    # init + 3 children, each with >= 1 PT page
    assert rec.pt_pages >= 4


def test_double_attach_rejected(mercury):
    mercury.attach()
    with pytest.raises(ModeSwitchError):
        mercury.attach()


def test_detach_while_native_rejected(mercury):
    with pytest.raises(ModeSwitchError):
        mercury.detach()


def test_busy_vo_defers_switch_until_refcount_zero(mercury):
    """§5.1.1: a switch requested while sensitive code runs must not
    commit; the retry timer lands it once the count drops."""
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    k.vo.enter(cpu)   # simulate a long-running sensitive section
    rec = mercury.attach(wait=False)
    assert rec is None
    assert mercury.mode is Mode.NATIVE
    assert mercury.engine.failed_attempts == 1
    k.vo.exit(cpu)    # section ends
    # the 10 ms retry timer is armed; draining it commits the switch
    mercury._drain_until_committed(0)
    assert mercury.engine.records, "retry never committed"
    assert mercury.mode is Mode.PARTIAL_VIRTUAL  # engine updated the mode
    rec = mercury.engine.records[-1]
    assert rec.retries >= 1


def test_retry_period_is_10ms(mercury):
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    k.vo.enter(cpu)
    t0 = mercury.machine.clock.cycles
    mercury.attach(wait=False)
    k.vo.exit(cpu)
    mercury._drain_until_committed(0)
    elapsed_ms = (mercury.machine.clock.cycles - t0) / (3000 * 1000)
    assert 9.5 <= elapsed_ms <= 25  # one or two 10 ms periods


def test_switch_survives_workload_before_and_after(mercury):
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    fd = k.syscall(cpu, "open", "/pre", True)
    k.syscall(cpu, "write", fd, "before", 10)
    mercury.attach()
    # the file is still there; new work proceeds in virtual mode
    assert k.fs.exists("/pre")
    pid = k.syscall(cpu, "fork")
    k.run_and_reap(cpu, k.procs.get(pid))
    mercury.detach()
    assert k.fs.exists("/pre")
    k.syscall(cpu, "lseek", fd, 0)
    assert k.syscall(cpu, "read", fd, 10) == ["before"]


def test_segment_dpl_follows_mode(mercury):
    cpu = mercury.machine.boot_cpu
    assert cpu.gdt[1].dpl == 0
    mercury.attach()
    assert cpu.gdt[1].dpl == 1          # de-privileged kernel segments
    assert mercury.kernel.vo.data.kernel_segment_dpl == 1
    mercury.detach()
    assert cpu.gdt[1].dpl == 0


def test_stack_cached_selectors_fixed_up(mercury):
    """§5.1.2: suspended tasks' interrupt frames cache selectors with the
    old privilege level; the switch must rewrite them or the first IRET
    faults."""
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    pid = k.syscall(cpu, "fork")
    child = k.procs.get(pid)
    assert child.stack_cached_selector_dpl == 0
    mercury.attach()
    assert child.stack_cached_selector_dpl == 1
    mercury.detach()
    assert child.stack_cached_selector_dpl == 0


def test_idt_ownership_follows_mode(mercury):
    cpu = mercury.machine.boot_cpu
    assert cpu.idt_base.owner == mercury.kernel.name
    mercury.attach()
    assert cpu.idt_base.owner == "vmm"
    mercury.detach()
    assert cpu.idt_base.owner == mercury.kernel.name


def test_page_tables_pinned_only_in_virtual_mode(mercury):
    init = mercury.kernel.scheduler.current
    pgd = init.aspace.pgd_frame
    assert pgd not in mercury.vmm.page_info.pinned
    mercury.attach()
    assert pgd in mercury.vmm.page_info.pinned
    mercury.detach()
    assert pgd not in mercury.vmm.page_info.pinned


def test_repeated_roundtrips_are_stable(mercury):
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    for i in range(5):
        mercury.attach()
        pid = k.syscall(cpu, "fork")
        k.run_and_reap(cpu, k.procs.get(pid))
        mercury.detach()
        pid = k.syscall(cpu, "fork")
        k.run_and_reap(cpu, k.procs.get(pid))
    assert len(mercury.switch_records) == 10


def test_interrupts_reenabled_after_switch(mercury):
    mercury.attach()
    assert mercury.machine.boot_cpu.interrupts_enabled
    mercury.detach()
    assert mercury.machine.boot_cpu.interrupts_enabled
