"""Hardware-assisted self-virtualization (the §8 extension): VMCS, EPT,
and the HVM switch path."""

import pytest

from repro import Machine, Mercury, small_config
from repro.core.hvm import HvmMercury, HvmMode
from repro.errors import HardwareError, ModeSwitchError, PageValidationError
from repro.hw.vtx import EptTable, Vmcs, VtxUnit


# ---------------------------------------------------------------------------
# VT-x primitives
# ---------------------------------------------------------------------------

def test_vmxon_vmxoff_lifecycle(machine):
    unit = VtxUnit(machine.boot_cpu)
    unit.vmxon()
    assert unit.vmx_on
    with pytest.raises(HardwareError):
        unit.vmxon()
    unit.vmxoff()
    assert not unit.vmx_on
    with pytest.raises(HardwareError):
        unit.vmxoff()


def test_vmentry_requires_vmx(machine):
    unit = VtxUnit(machine.boot_cpu)
    with pytest.raises(HardwareError):
        unit.vmentry(Vmcs(1))


def test_vmcs_capture_and_entry_roundtrip(machine):
    cpu = machine.boot_cpu
    from repro.hw.paging import AddressSpace
    aspace = AddressSpace(machine.memory, owner=0)
    cpu.write_cr3(aspace.pgd_frame)
    vmcs = Vmcs(1)
    vmcs.capture_guest(cpu)
    assert vmcs.guest.cr3 == aspace.pgd_frame

    cpu.cr3 = None  # clobber
    unit = VtxUnit(cpu)
    unit.vmxon()
    unit.vmentry(vmcs)
    assert cpu.cr3 == aspace.pgd_frame   # one operation restored it
    assert vmcs.launched and vmcs.vmentries == 1


def test_vmexit_counts(machine):
    cpu = machine.boot_cpu
    unit = VtxUnit(cpu)
    unit.vmxon()
    vmcs = Vmcs(1)
    unit.vmentry(vmcs)
    unit.vmexit("test")
    assert vmcs.vmexits == 1
    with pytest.raises(HardwareError):
        VtxUnit(cpu).vmexit("no vmcs")


# ---------------------------------------------------------------------------
# EPT
# ---------------------------------------------------------------------------

def test_ept_builds_from_ownership(machine):
    cpu = machine.boot_cpu
    mine = [machine.memory.alloc(7) for _ in range(5)]
    machine.memory.alloc(9)  # foreign
    ept = EptTable(machine.memory, domain_id=7)
    n = ept.build(cpu)
    assert n == 5
    for f in mine:
        ept.check(f, write=True)  # no exception


def test_ept_blocks_foreign_frames(machine):
    cpu = machine.boot_cpu
    foreign = machine.memory.alloc(9)
    ept = EptTable(machine.memory, domain_id=7)
    ept.build(cpu)
    with pytest.raises(PageValidationError):
        ept.check(foreign, write=False)
    assert ept.violations == 1


def test_ept_write_protection(machine):
    cpu = machine.boot_cpu
    mine = machine.memory.alloc(7)
    ept = EptTable(machine.memory, domain_id=7)
    ept.build(cpu)
    ept.protect(mine)
    ept.check(mine, write=False)          # reads fine
    with pytest.raises(PageValidationError):
        ept.check(mine, write=True)
    ept.unprotect(mine)
    ept.check(mine, write=True)


def test_ept_build_is_cheap_per_frame(machine):
    """The §8 claim: EPT eases page-state tracking — building it must be
    orders cheaper than the software recompute per frame."""
    cpu = machine.boot_cpu
    for _ in range(100):
        machine.memory.alloc(7)
    ept = EptTable(machine.memory, domain_id=7)
    t0 = cpu.rdtsc()
    ept.build(cpu)
    per_frame = (cpu.rdtsc() - t0) / 100
    assert per_frame < cpu.cost.cyc_pte_validate * 64  # << a PT-page scan


# ---------------------------------------------------------------------------
# HvmMercury
# ---------------------------------------------------------------------------

@pytest.fixture
def hvm(machine):
    h = HvmMercury(machine)
    h.create_kernel(image_pages=16)
    return h


def test_hvm_attach_detach_roundtrip(hvm):
    rec = hvm.attach()
    assert hvm.mode is HvmMode.GUEST
    assert hvm.kernel.vo is hvm.hvm_vo
    assert rec.ept_frames > 0
    rec2 = hvm.detach()
    assert hvm.mode is HvmMode.NATIVE
    assert hvm.kernel.vo is hvm.native_vo
    assert rec.cycles > 0 and rec2.cycles > 0


def test_hvm_double_attach_rejected(hvm):
    hvm.attach()
    with pytest.raises(ModeSwitchError):
        hvm.attach()


def test_hvm_guest_keeps_native_page_table_semantics(hvm):
    """The EPT benefit: the guest's own PTEs stay directly writable; fork
    works with no pinning and no hypercalls."""
    hvm.attach()
    k = hvm.kernel
    cpu = hvm.machine.boot_cpu
    pid = k.syscall(cpu, "fork")
    k.run_and_reap(cpu, k.procs.get(pid))
    hvm.detach()


def test_hvm_guest_fork_costs_near_native(hvm, machine):
    """HVM removes the paravirtual MMU tax from fork (no mmu_update
    hypercalls); only exit-controlled ops (CR3 loads on ctx switch) pay."""
    cpu = machine.boot_cpu
    k = hvm.kernel

    def fork_cost():
        t0 = cpu.rdtsc()
        pid = k.syscall(cpu, "fork")
        k.run_and_reap(cpu, k.procs.get(pid))
        return cpu.rdtsc() - t0

    native = fork_cost()
    hvm.attach()
    guest = fork_cost()
    hvm.detach()
    assert guest < native * 1.5   # vs the ~4x paravirtual penalty


def test_hvm_attach_faster_than_software_attach(machine):
    """The headline §8 prediction: VMCS+EPT make the switch cheaper than
    the transfer/reload/recompute path."""
    hvm = HvmMercury(machine)
    k = hvm.create_kernel(image_pages=16)
    cpu = machine.boot_cpu
    for _ in range(6):
        k.syscall(cpu, "fork")
    hvm_rec = hvm.attach()
    hvm.detach()

    m2 = Machine(small_config())
    sw = Mercury(m2)
    k2 = sw.create_kernel(image_pages=16)
    for _ in range(6):
        k2.syscall(m2.boot_cpu, "fork")
    sw_rec = sw.attach()
    sw.detach()

    assert hvm_rec.cycles < sw_rec.cycles


def test_hvm_dirty_logging(hvm):
    hvm.attach()
    hvm.enable_dirty_logging()
    import numpy as np
    assert not hvm.ept.writable.any()
    # a write trips protection; the handler would re-enable + log
    frame = int(hvm.machine.memory.frames_owned_by(0)[0])
    with pytest.raises(PageValidationError):
        hvm.ept.check(frame, write=True)
    hvm.ept.unprotect(frame)  # the log-and-continue step
    assert hvm.dirty_frames_and_reset() == [frame]


def test_hvm_mean_switch_us(hvm):
    assert hvm.mean_switch_us("to_guest") is None
    hvm.attach(); hvm.detach()
    hvm.attach(); hvm.detach()
    assert hvm.mean_switch_us("to_guest") > hvm.mean_switch_us("to_native")
