"""Failure-resistant switching and the tree rendezvous (§8 extensions)."""

import pytest

from repro import Machine, Mercury, small_config
from repro.core.failsafe import FailsafeSwitch, SwitchVetoed
from repro.core.mercury import Mode
from repro.core.smp_tree import TreeSmpCoordinator, use_tree_protocol
from repro.errors import ModeSwitchError


# ---------------------------------------------------------------------------
# failsafe switching
# ---------------------------------------------------------------------------

def test_clean_switch_commits(mercury):
    guard = FailsafeSwitch(mercury)
    report = guard.attach()
    assert report.committed
    assert report.anomalies_found == []
    assert mercury.mode is Mode.PARTIAL_VIRTUAL
    report = guard.detach()
    assert report.committed
    assert mercury.mode is Mode.NATIVE


def test_corrupted_os_vetoes_switch_without_repair(mercury):
    guard = FailsafeSwitch(mercury, repair=False)
    k = mercury.kernel
    t = k.scheduler.current
    k.scheduler.runqueue.extend([t, t])
    with pytest.raises(SwitchVetoed) as e:
        guard.attach()
    assert "runqueue" in e.value.anomalies
    assert mercury.mode is Mode.NATIVE   # nothing half-switched
    # the OS is still functional in its original mode
    cpu = mercury.machine.boot_cpu
    pid = k.syscall(cpu, "fork")
    k.run_and_reap(cpu, k.procs.get(pid))


def test_repair_then_commit(mercury):
    guard = FailsafeSwitch(mercury, repair=True)
    k = mercury.kernel
    t = k.scheduler.current
    k.scheduler.runqueue.extend([t, t])
    report = guard.attach()
    assert report.committed
    assert report.repaired == ["runqueue"]
    assert mercury.mode is Mode.PARTIAL_VIRTUAL
    pids = [x.pid for x in k.scheduler.runqueue]
    assert len(pids) == len(set(pids))


def test_multiple_anomalies_all_repaired(mercury):
    guard = FailsafeSwitch(mercury)
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    fd = k.syscall(cpu, "open", "/f", True)
    k.syscall(cpu, "write", fd, "x", 100)
    k.fs.inodes["/f"].nlink = -1
    t = k.scheduler.current
    k.scheduler.runqueue.extend([t, t])
    report = guard.attach()
    assert set(report.repaired) == {"runqueue", "fs-metadata"}
    assert report.committed


def test_mid_transfer_failure_rolls_back(mercury, monkeypatch):
    """If the transfer machinery itself explodes, the OS must come back in
    its original mode, functional."""
    from repro.core import transfer

    def boom(*args, **kwargs):
        raise RuntimeError("simulated transfer wreck")

    monkeypatch.setattr(transfer, "transfer_irq_bindings_to_virtual", boom)
    guard = FailsafeSwitch(mercury)
    with pytest.raises(RuntimeError):
        guard.attach()
    report = guard.history[-1]
    assert report.rolled_back and not report.committed
    assert mercury.mode is Mode.NATIVE
    assert mercury.kernel.vo is mercury.native_vo
    assert not mercury.vmm.active
    # still alive
    cpu = mercury.machine.boot_cpu
    pid = mercury.kernel.syscall(cpu, "fork")
    mercury.kernel.run_and_reap(cpu, mercury.kernel.procs.get(pid))
    # and a later clean attach (with the fault removed) works
    monkeypatch.undo()
    assert guard.attach().committed


def test_history_records_everything(mercury):
    guard = FailsafeSwitch(mercury)
    guard.attach()
    guard.detach()
    assert len(guard.history) == 2
    assert all(r.committed for r in guard.history)


# ---------------------------------------------------------------------------
# tree rendezvous
# ---------------------------------------------------------------------------

def _smp_mercury(ncpus, tree=False):
    machine = Machine(small_config(num_cpus=ncpus))
    mc = Mercury(machine)
    mc.create_kernel(image_pages=16)
    if tree:
        use_tree_protocol(mc)
    return mc


def test_tree_depth():
    assert TreeSmpCoordinator.tree_depth(1) == 0
    assert TreeSmpCoordinator.tree_depth(2) == 1
    assert TreeSmpCoordinator.tree_depth(4) == 2
    assert TreeSmpCoordinator.tree_depth(16) == 4
    assert TreeSmpCoordinator.tree_depth(15) == 4


def test_tree_switch_reaches_every_cpu():
    mc = _smp_mercury(4, tree=True)
    rec = mc.attach()
    assert rec.rendezvous.num_cpus == 4
    assert rec.rendezvous.ipis_sent == 3   # n-1 notifications, tree-routed
    for cpu in mc.machine.cpus:
        assert cpu.idt_base.owner == "vmm"
        assert cpu.interrupts_enabled
    mc.detach()
    for cpu in mc.machine.cpus:
        assert cpu.idt_base.owner == mc.kernel.name


def test_tree_protocol_equivalent_outcome():
    """Flat and tree must produce identical post-switch state."""
    flat = _smp_mercury(4, tree=False)
    tree = _smp_mercury(4, tree=True)
    flat.attach()
    tree.attach()
    for a, b in zip(flat.machine.cpus, tree.machine.cpus):
        assert a.idt_base.owner == b.idt_base.owner == "vmm"
        assert a.gdt[1].dpl == b.gdt[1].dpl == 1


def test_tree_gathers_faster_at_scale():
    """The §8 motivation: O(log n) gather beats O(n) once cores abound."""
    flat = _smp_mercury(16, tree=False)
    tree = _smp_mercury(16, tree=True)
    rec_flat = flat.attach()
    rec_tree = tree.attach()
    assert rec_tree.rendezvous.gather_cycles < \
        rec_flat.rendezvous.gather_cycles


def test_tree_workload_roundtrip():
    mc = _smp_mercury(8, tree=True)
    k = mc.kernel
    cpu = mc.machine.boot_cpu
    fd = k.syscall(cpu, "open", "/tree", True)
    k.syscall(cpu, "write", fd, "x", 10)
    mc.attach()
    pid = k.syscall(cpu, "fork")
    k.run_and_reap(cpu, k.procs.get(pid))
    mc.detach()
    assert k.fs.exists("/tree")
