"""Shadow paging mode (ablation A4, §3.2.2's road not taken)."""

import pytest

from repro import Machine, Mercury, small_config
from repro.core.mercury import Mode, PagingMode
from repro.errors import VMMError
from repro.hw.paging import AddressSpace, Pte
from repro.params import PAGE_SIZE
from repro.vmm.shadow import SHADOW_OWNER, ShadowPager


@pytest.fixture
def shadow_mercury(machine):
    mc = Mercury(machine, paging=PagingMode.SHADOW)
    mc.create_kernel(name="shadow-linux", image_pages=16)
    return mc


# ---------------------------------------------------------------------------
# the pager in isolation
# ---------------------------------------------------------------------------

def test_build_translates_every_mapping(machine, cpu):
    mem = machine.memory
    guest = AddressSpace(mem, owner=0)
    frames = [mem.alloc(0) for _ in range(4)]
    for i, f in enumerate(frames):
        guest.set_pte(0x1000 + i * PAGE_SIZE, Pte(frame=f, writable=(i % 2 == 0)))
    pager = ShadowPager(mem, domain_id=0)
    shadow = pager.build(cpu, guest)
    assert pager.verify_coherent(guest)
    assert shadow.pgd_frame != guest.pgd_frame
    assert mem.owner_of(shadow.pgd_frame) == SHADOW_OWNER


def test_sync_pte_propagates_changes(machine, cpu):
    mem = machine.memory
    guest = AddressSpace(mem, owner=0)
    f1, f2 = mem.alloc(0), mem.alloc(0)
    guest.set_pte(0x1000, Pte(frame=f1))
    pager = ShadowPager(mem, domain_id=0)
    pager.build(cpu, guest)
    guest.set_pte(0x1000, Pte(frame=f2, writable=False))  # guest writes
    pager.sync_pte(cpu, guest, 0x1000)                    # trap emulation
    assert pager.verify_coherent(guest)
    shadow = pager.shadow_of(guest)
    assert shadow.get_pte(0x1000).frame == f2
    assert pager.syncs == 1


def test_sync_clears_removed_entries(machine, cpu):
    mem = machine.memory
    guest = AddressSpace(mem, owner=0)
    guest.set_pte(0x1000, Pte(frame=mem.alloc(0)))
    pager = ShadowPager(mem, domain_id=0)
    pager.build(cpu, guest)
    guest.clear_pte(0x1000)
    pager.sync_pte(cpu, guest, 0x1000)
    assert pager.shadow_of(guest).get_pte(0x1000) is None


def test_drop_all_frees_shadow_frames(machine, cpu):
    mem = machine.memory
    guest = AddressSpace(mem, owner=0)
    guest.set_pte(0x1000, Pte(frame=mem.alloc(0)))
    pager = ShadowPager(mem, domain_id=0)
    free_before = mem.free_frames
    pager.build(cpu, guest)
    assert mem.free_frames < free_before   # the memory tax
    pager.drop_all(cpu)
    assert mem.free_frames == free_before
    with pytest.raises(VMMError):
        pager.shadow_of(guest)


# ---------------------------------------------------------------------------
# full shadow-mode Mercury
# ---------------------------------------------------------------------------

def test_shadow_attach_runs_on_shadow_root(shadow_mercury):
    mc = shadow_mercury
    cpu = mc.machine.boot_cpu
    guest_pgd = mc.kernel.scheduler.current.aspace.pgd_frame
    mc.attach()
    assert mc.mode is Mode.PARTIAL_VIRTUAL
    assert cpu.cr3 != guest_pgd              # hardware runs the shadow
    shadow = mc.pager.shadow_of(mc.kernel.scheduler.current.aspace)
    assert cpu.cr3 == shadow.pgd_frame
    mc.detach()
    assert cpu.cr3 == guest_pgd              # back on the guest's own root


def test_shadow_mode_workload_and_coherence(shadow_mercury):
    mc = shadow_mercury
    k = mc.kernel
    cpu = mc.machine.boot_cpu
    mc.attach()
    pid = k.syscall(cpu, "fork")
    k.run_and_reap(cpu, k.procs.get(pid))
    base = k.syscall(cpu, "mmap", 4 * PAGE_SIZE, True)
    # every live aspace's shadow tracks its guest exactly
    for aspace in k.aspaces:
        assert mc.pager.verify_coherent(aspace)
    k.syscall(cpu, "munmap", base, 4 * PAGE_SIZE)
    mc.detach()


def test_shadow_detach_releases_memory_tax(shadow_mercury):
    mc = shadow_mercury
    mc.attach()
    assert mc.pager.shadow_frames_in_use() > 0
    mc.detach()
    assert mc.pager.shadow_frames_in_use() == 0


def test_shadow_roundtrip_preserves_state(shadow_mercury):
    mc = shadow_mercury
    k = mc.kernel
    cpu = mc.machine.boot_cpu
    fd = k.syscall(cpu, "open", "/s", True)
    k.syscall(cpu, "write", fd, "shadowed", 10)
    mc.attach()
    mc.detach()
    assert k.fs.exists("/s")
    pid = k.syscall(cpu, "fork")
    k.run_and_reap(cpu, k.procs.get(pid))


def test_shadow_never_pins_guest_tables(shadow_mercury):
    """Shadow mode's defining property: guest tables stay out of the
    MMU, so no pinning/validation ever happens."""
    mc = shadow_mercury
    mc.attach()
    assert mc.vmm.page_info.pinned == set()
    mc.detach()


def test_shadow_runtime_costs_more_per_pte_than_direct():
    """The runtime half of the §3.2.2 trade-off: each PT update traps and
    re-translates, costing more than the direct-mode hypercall."""
    def fork_cost(paging):
        m = Machine(small_config(mem_kb=65536))
        mc = Mercury(m, paging=paging)
        k = mc.create_kernel(image_pages=128)
        mc.attach()
        cpu = m.boot_cpu
        t0 = cpu.rdtsc()
        pid = k.syscall(cpu, "fork")
        k.run_and_reap(cpu, k.procs.get(pid))
        return cpu.rdtsc() - t0

    assert fork_cost(PagingMode.SHADOW) > fork_cost(PagingMode.DIRECT)
