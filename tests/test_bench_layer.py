"""The bench layer itself: runners, normalization, report formatting."""

import math

import pytest

from repro.bench.report import (format_app_table, format_lmbench_table,
                                format_relative_figure, format_switch_times)
from repro.bench.runner import relative_to_native


def test_relative_to_native_higher_is_better():
    table = {"OSDB-IR": {"N-L": 100.0, "X-0": 80.0}}
    rel = relative_to_native(table)
    assert rel["OSDB-IR"]["N-L"] == pytest.approx(1.0)
    assert rel["OSDB-IR"]["X-0"] == pytest.approx(0.8)


def test_relative_to_native_inverts_lower_is_better_rows():
    # build time: 100 s native, 110 s virtualized -> relative 0.909
    table = {"Linux build": {"N-L": 100.0, "X-0": 110.0},
             "ping": {"N-L": 100.0, "X-0": 125.0}}
    rel = relative_to_native(table)
    assert rel["Linux build"]["X-0"] == pytest.approx(100 / 110)
    assert rel["ping"]["X-0"] == pytest.approx(0.8)


def test_relative_to_native_skips_rows_without_baseline():
    rel = relative_to_native({"orphan": {"X-0": 5.0}})
    assert rel == {}


def test_relative_handles_zero_values():
    rel = relative_to_native({"ping": {"N-L": 10.0, "X-0": 0.0}})
    assert rel["ping"]["X-0"] == 0.0


def test_format_lmbench_table_layout():
    table = {"Fork Process": {"N-L": 98.0, "X-0": 482.0},
             "Page Fault": {"N-L": 1.22, "X-0": 3.09}}
    text = format_lmbench_table(table, "T", keys=("N-L", "X-0"))
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "Fork Process" in text and "482.00" in text
    # rows print in the paper's order: fork before page fault
    assert text.index("Fork Process") < text.index("Page Fault")
    assert "microseconds" in text


def test_format_lmbench_table_handles_missing_configs():
    table = {"Fork Process": {"N-L": 98.0}}
    text = format_lmbench_table(table, "T", keys=("N-L", "X-0"))
    assert "N-L" in text
    assert "X-0" not in text  # absent columns are dropped, not NaN'd


def test_format_app_table_units():
    table = {"dbench": {"N-L": 12.5}, "ping": {"N-L": 113.0}}
    text = format_app_table(table, "apps", keys=("N-L",))
    assert "MB/s" in text and "µs" in text


def test_format_relative_figure():
    rel = {"dbench": {"N-L": 1.0, "X-U": 1.05}}
    text = format_relative_figure(rel, "fig", keys=("N-L", "X-U"))
    assert "1.050" in text
    assert "higher is better" in text


def test_format_switch_times_mentions_paper():
    text = format_switch_times(204.0, 46.0)
    assert "0.204 ms" in text
    assert "0.22" in text and "0.06" in text


def test_bare_metal_vo_has_no_indirection_cost(machine):
    from repro.bench.configs import BareMetalVO
    vo = BareMetalVO(machine)
    cpu = machine.boot_cpu
    t0 = cpu.rdtsc()
    vo.enter(cpu)
    vo.exit(cpu)
    assert cpu.rdtsc() == t0  # truly free, unlike Mercury's NativeVO
