"""Shared fixtures: small machines, booted kernels, Mercury stacks."""

from __future__ import annotations

import pytest

from repro import Machine, Mercury, small_config
from repro.core.accounting import AccountingStrategy
from repro.core.native_vo import NativeVO
from repro.guestos.kernel import Kernel
from repro.hw.machine import reset_machine_ids
from repro.vmm.hypervisor import Hypervisor


def pytest_runtest_setup(item):
    # machine names/NIC addresses must not depend on how many machines
    # earlier tests built (a plain hook, not an autouse fixture, so
    # hypothesis's function_scoped_fixture health check stays quiet)
    reset_machine_ids()


@pytest.fixture
def machine():
    """A small 1-CPU machine (16 MiB)."""
    return Machine(small_config())


@pytest.fixture
def machine2():
    """A small 2-CPU machine."""
    return Machine(small_config(num_cpus=2))


@pytest.fixture
def kernel(machine):
    """A booted native kernel (plain NativeVO, no Mercury)."""
    k = Kernel(machine, NativeVO(machine), owner_id=0, name="test-linux")
    k.boot(image_pages=16)
    return k


@pytest.fixture
def mercury(machine):
    """Mercury with a booted kernel, in native mode."""
    mc = Mercury(machine)
    mc.create_kernel(name="test-linux", image_pages=16)
    return mc


@pytest.fixture
def mercury_active(machine):
    """Active-accounting Mercury with a booted kernel."""
    mc = Mercury(machine, strategy=AccountingStrategy.ACTIVE)
    mc.create_kernel(name="test-linux", image_pages=16)
    return mc


@pytest.fixture
def warm_vmm(machine):
    """A warmed-up (pre-cached) but inactive hypervisor."""
    vmm = Hypervisor(machine)
    vmm.warm_up()
    return vmm


@pytest.fixture
def cpu(machine):
    return machine.boot_cpu
