"""Metrics collector, report formatting, and the CLI entry point."""

import pytest

from repro import Machine, Mercury, small_config
from repro.metrics import MetricsCollector, MetricsSnapshot, format_report


@pytest.fixture
def collector(mercury):
    return MetricsCollector(mercury.machine, kernel=mercury.kernel,
                            mercury=mercury)


def test_snapshot_diff(collector, mercury):
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    before = collector.snapshot()
    pid = k.syscall(cpu, "fork")
    k.run_and_reap(cpu, k.procs.get(pid))
    delta = collector.snapshot() - before
    assert delta.forks == 1
    assert delta.syscalls == 3   # fork, exit, wait
    assert delta.cycles > 0
    assert delta.hypercalls == 0  # native mode


def test_measure_wrapper(collector, mercury):
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    result, delta = collector.measure(k.syscall, cpu, "getpid")
    assert result == k.scheduler.current.pid
    assert delta.syscalls == 1


def test_virtual_mode_shows_hypercalls(collector, mercury):
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    mercury.attach()
    before = collector.snapshot()
    pid = k.syscall(cpu, "fork")
    k.run_and_reap(cpu, k.procs.get(pid))
    delta = collector.snapshot() - before
    assert delta.hypercalls > 0
    assert delta.page_validations > 0
    mercury.detach()


def test_mode_switches_counted(collector, mercury):
    before = collector.snapshot()
    mercury.attach()
    mercury.detach()
    delta = collector.snapshot() - before
    assert delta.mode_switches == 2


def test_rates():
    s = MetricsSnapshot(tlb_hits=90, tlb_misses=10,
                        cache_hits=3, cache_misses=1)
    assert s.tlb_hit_rate == pytest.approx(0.9)
    assert s.cache_hit_rate == pytest.approx(0.75)
    assert MetricsSnapshot().tlb_hit_rate == 0.0


def test_format_report_mentions_activity(collector, mercury):
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    _, delta = collector.measure(
        lambda: (k.syscall(cpu, "fork"),
                 k.run_and_reap(cpu, k.procs.get(
                     max(k.procs.tasks)))))
    text = format_report(delta, "run")
    assert "forks" in text
    assert "syscalls" in text
    assert "µs" in text


def test_cli_switch_target(capsys):
    from repro.__main__ import main
    assert main(["switch", "--mem-kb", "16384"]) == 0
    out = capsys.readouterr().out
    assert "native -> virtual" in out
    assert "virtual -> native" in out


def test_cli_quick_table(capsys):
    from repro.__main__ import main
    assert main(["table1", "--quick", "--mem-kb", "65536"]) == 0
    out = capsys.readouterr().out
    assert "Fork Process" in out
    assert "X-0" in out and "M-V" not in out  # quick: two columns


def test_cli_rejects_unknown_target():
    from repro.__main__ import main
    with pytest.raises(SystemExit):
        main(["table9"])
