"""SimScheduler mechanics: ordering, blocking, determinism, failure modes.

These tests exercise the scheduler with plain bookkeeping generators (no
guest kernel) so every assertion is about scheduling order alone; the
contended-switch behaviour built on top lives in
``tests/sim/test_contended_switch.py``.
"""

from __future__ import annotations

import pytest

from repro import Machine, small_config
from repro.hw.clock import Clock
from repro.sim import (Join, SimDeadlock, SimError, SimScheduler, SimState,
                       Sleep, WaitFor, Yield, run_to_completion)
from repro.sim.scheduler import active, preempt_point


@pytest.fixture
def sched(machine):
    return SimScheduler(machine)


def logger(log, name, yields):
    """A task that logs (name, i) around each yield point."""
    for i, point in enumerate(yields):
        log.append((name, i))
        yield point


# ----------------------------------------------------------------------
# run_to_completion: the sequential compatibility path
# ----------------------------------------------------------------------

def test_run_to_completion_returns_generator_value():
    def gen():
        yield
        yield Yield()
        return 42

    assert run_to_completion(gen()) == 42


def test_run_to_completion_sleep_advances_given_clock():
    clock = Clock()

    def gen():
        yield Sleep(500)
        yield Sleep(250)

    run_to_completion(gen(), clock=clock)
    assert clock.cycles == 750


def test_run_to_completion_sleep_without_clock_is_noop():
    def gen():
        yield Sleep(500)

    run_to_completion(gen())  # no clock: time simply does not advance


def test_run_to_completion_rejects_blocking_waitfor():
    def gen():
        yield WaitFor(lambda: False)

    with pytest.raises(SimError):
        run_to_completion(gen())


def test_run_to_completion_passes_satisfied_waitfor():
    def gen():
        yield WaitFor(lambda: True)
        return "ok"

    assert run_to_completion(gen()) == "ok"


# ----------------------------------------------------------------------
# ordering: (cycle, seq) is the whole story
# ----------------------------------------------------------------------

def test_same_cycle_tasks_round_robin_in_spawn_order(sched):
    log = []
    sched.spawn(logger(log, "a", [None, None]), name="a")
    sched.spawn(logger(log, "b", [None, None]), name="b")
    sched.run()
    assert log == [("a", 0), ("b", 0), ("a", 1), ("b", 1)]


def test_sleep_orders_resumption_by_deadline(sched):
    log = []
    sched.spawn(logger(log, "late", [Sleep(1000)]), name="late")
    sched.spawn(logger(log, "early", [Sleep(100), None]), name="early")
    sched.run()
    # first slices run in spawn order at cycle 0; wakeups by deadline
    assert log == [("late", 0), ("early", 0), ("early", 1)]


def test_sleep_advances_clock_to_deadline(sched, machine):
    seen = []

    def napper():
        yield Sleep(5000)
        seen.append(machine.clock.cycles)

    sched.spawn(napper(), name="napper")
    sched.run()
    assert seen == [5000]


def test_timer_events_interleave_with_task_wakeups(sched, machine):
    """A timer deadline between two task resume points fires between them."""
    log = []
    machine.clock.schedule(300, lambda: log.append(("timer", machine.clock.cycles)))

    def task():
        yield Sleep(100)
        log.append(("task", machine.clock.cycles))
        yield Sleep(400)
        log.append(("task", machine.clock.cycles))

    sched.spawn(task(), name="t")
    sched.run()
    assert log == [("task", 100), ("timer", 300), ("task", 500)]


def test_same_deadline_timer_vs_task_breaks_tie_by_seq(sched, machine):
    log = []

    def task():
        # the Sleep wakeup gets its seq ticket when the slice parks, i.e.
        # before the timer below is scheduled from the other task
        yield Sleep(200)
        log.append("task")

    def scheduler_task():
        machine.clock.schedule(200, lambda: log.append("timer"))
        yield

    sched.spawn(task(), name="sleeper")
    sched.spawn(scheduler_task(), name="armer")
    sched.run()
    assert log == ["task", "timer"]


# ----------------------------------------------------------------------
# blocking: WaitFor / Join
# ----------------------------------------------------------------------

def test_waitfor_blocks_until_predicate_holds(sched):
    box = []

    def producer():
        yield Sleep(1000)
        box.append("ready")

    def consumer():
        yield WaitFor(lambda: bool(box), desc="box filled")
        box.append("consumed")

    sched.spawn(consumer(), name="consumer")
    sched.spawn(producer(), name="producer")
    sched.run()
    assert box == ["ready", "consumed"]


def test_join_waits_for_task_result(sched):
    def worker():
        yield Sleep(500)
        return 7

    def waiter(w):
        yield Join(w)
        return w.result * 2

    w = sched.spawn(worker(), name="worker")
    j = sched.spawn(waiter(w), name="waiter")
    sched.run()
    assert j.result == 14
    assert w.state is SimState.DONE


def test_satisfied_waitfor_never_blocks(sched):
    def gen():
        yield WaitFor(lambda: True)
        return "through"

    task = sched.spawn(gen(), name="t")
    sched.run()
    assert task.result == "through"
    assert task.slices == 2  # both slices ran; no blocked residence


# ----------------------------------------------------------------------
# failure modes
# ----------------------------------------------------------------------

def test_deadlock_raises_and_names_blocked_tasks(sched):
    def stuck():
        yield WaitFor(lambda: False, desc="never")

    sched.spawn(stuck(), name="stuck-one")
    with pytest.raises(SimDeadlock, match="stuck-one"):
        sched.run()


def test_task_exception_propagates_and_marks_failed(sched):
    def boom():
        yield
        raise ValueError("kaput")

    task = sched.spawn(boom(), name="boom")
    with pytest.raises(ValueError, match="kaput"):
        sched.run()
    assert task.state is SimState.FAILED
    assert isinstance(task.error, ValueError)


def test_unknown_yield_value_raises_simerror(sched):
    def weird():
        yield "not-a-yield-point"

    sched.spawn(weird(), name="weird")
    with pytest.raises(SimError, match="weird"):
        sched.run()


def test_max_steps_guards_runaway_loops(machine):
    sched = SimScheduler(machine, max_steps=50)

    def forever():
        while True:
            yield

    sched.spawn(forever(), name="forever")
    with pytest.raises(SimError, match="50 steps"):
        sched.run()


def test_nested_run_rejected(sched, machine):
    def inner():
        other = SimScheduler(machine)
        with pytest.raises(SimError, match="already installed"):
            other.run()
        yield

    sched.spawn(inner(), name="nest")
    sched.run()


def test_active_slot_installed_only_while_running(sched):
    states = []

    def probe():
        states.append(active())
        yield

    assert active() is None
    sched.spawn(probe(), name="probe")
    sched.run()
    assert states == [sched]
    assert active() is None


def test_preempt_point_is_noop_without_scheduler(machine):
    assert preempt_point(machine.boot_cpu) == 0


# ----------------------------------------------------------------------
# determinism: same scenario, same trace, bit for bit
# ----------------------------------------------------------------------

def _interleaving_run():
    machine = Machine(small_config())
    sched = SimScheduler(machine)
    log = []

    def worker(name, naps):
        for n in naps:
            yield Sleep(n)
            log.append((name, machine.clock.cycles))

    def ticker():
        for _ in range(4):
            machine.clock.schedule(130, lambda: log.append(
                ("tick", machine.clock.cycles)))
            yield Sleep(130)

    sched.spawn(worker("a", [100, 100, 100]), name="a")
    sched.spawn(worker("b", [70, 140, 70]), name="b")
    sched.spawn(ticker(), name="tick")
    sched.run()
    return log


def test_interleaving_is_bit_reproducible():
    first = _interleaving_run()
    second = _interleaving_run()
    assert first == second
    # and the interleaving is genuinely mixed, not accidentally serial
    assert len({name for name, _ in first}) == 3
