"""Generator conversion safety net: every workload run as a solo task under
the SimScheduler is cycle-identical to its sequential ``run_*`` wrapper.

This is the invariant that keeps the committed §7 benchmark numbers valid:
yield points change *where* control can be taken away, never *what* the
workload costs when nothing takes it."""

from __future__ import annotations

from repro import Machine, small_config
from repro.bench.configs import BareMetalVO
from repro.guestos.kernel import Kernel
from repro.hw.machine import reset_machine_ids
from repro.sim import SimScheduler
from repro.workloads.dbench import dbench_task, run_dbench
from repro.workloads.iperf import iperf_task, run_iperf
from repro.workloads.kbuild import kbuild_task, run_kbuild
from repro.workloads.lmbench import lmbench_task, run_lmbench
from repro.workloads.osdb import osdb_ir_task, run_osdb_ir


def _native(mem_kb=131072):
    m = Machine(small_config(mem_kb=mem_kb))
    k = Kernel(m, BareMetalVO(m), name="eq-native")
    k.boot(image_pages=64)
    return k, m.boot_cpu


def _net_pair():
    a = Machine(small_config())
    b = Machine(small_config(), clock=a.clock)
    a.link_to(b)
    ka = Kernel(a, BareMetalVO(a), name="send")
    kb = Kernel(b, BareMetalVO(b), name="recv")
    ka.boot(image_pages=8)
    kb.boot(image_pages=8)
    return ka, kb


def _solo(task_gen, kernel, cpu):
    """Run one generator task to completion under a real scheduler."""
    sched = SimScheduler(kernel.machine)
    task = sched.spawn(task_gen, name="solo", cpu=cpu, kernel=kernel)
    sched.run()
    return task.result


def test_kbuild_solo_sim_matches_sequential():
    reset_machine_ids()
    k1, c1 = _native()
    seq = run_kbuild(k1, c1, files=8, link_every=4)
    seq_cycles = k1.machine.clock.cycles

    reset_machine_ids()
    k2, c2 = _native()
    sim = _solo(kbuild_task(k2, c2, files=8, link_every=4), k2, c2)
    assert k2.machine.clock.cycles == seq_cycles
    assert sim.elapsed_us == seq.elapsed_us
    assert (sim.files_compiled, sim.links) == (seq.files_compiled, seq.links)


def test_iperf_solo_sim_matches_sequential():
    reset_machine_ids()
    ka, kb = _net_pair()
    seq = run_iperf(ka, kb, proto="tcp", total_bytes=256 * 1024)
    seq_cycles = ka.machine.clock.cycles

    reset_machine_ids()
    ka2, kb2 = _net_pair()
    sim = _solo(iperf_task(ka2, kb2, "tcp", 256 * 1024), ka2,
                ka2.machine.boot_cpu)
    assert ka2.machine.clock.cycles == seq_cycles
    assert sim.mbit_s == seq.mbit_s
    assert sim.bytes_sent == seq.bytes_sent


def test_dbench_solo_sim_matches_sequential():
    reset_machine_ids()
    k1, c1 = _native()
    seq = run_dbench(k1, c1, clients=2, files_per_client=4)
    seq_cycles = k1.machine.clock.cycles

    reset_machine_ids()
    k2, c2 = _native()
    sim = _solo(dbench_task(k2, c2, clients=2, files_per_client=4), k2, c2)
    assert k2.machine.clock.cycles == seq_cycles
    assert (sim.ops, sim.bytes_moved, sim.elapsed_us) == \
        (seq.ops, seq.bytes_moved, seq.elapsed_us)


def test_osdb_ir_solo_sim_matches_sequential():
    reset_machine_ids()
    k1, c1 = _native()
    seq = run_osdb_ir(k1, c1, rows=120, queries=30)
    seq_cycles = k1.machine.clock.cycles

    reset_machine_ids()
    k2, c2 = _native()
    sim = _solo(osdb_ir_task(k2, c2, rows=120, queries=30), k2, c2)
    assert k2.machine.clock.cycles == seq_cycles
    assert sim.elapsed_us == seq.elapsed_us


def test_lmbench_solo_sim_matches_sequential():
    reset_machine_ids()
    k1, c1 = _native()
    seq = run_lmbench(k1, c1)
    seq_cycles = k1.machine.clock.cycles

    reset_machine_ids()
    k2, c2 = _native()
    sim = _solo(lmbench_task(k2, c2), k2, c2)
    assert k2.machine.clock.cycles == seq_cycles
    assert sim.rows == seq.rows
