"""Acceptance: a mode switch contends with a *real* running workload.

The fault-injection suite proves the retry protocol against synthetic
``REFCOUNT_STUCK`` plans; this suite proves it against the genuine article.
Under the simulation scheduler, kbuild and iperf cross sensitive-code
windows (syscalls, context switches, page-table updates) whose preempt
point sits *before* the VO refcount is released — so an attach delivered
there observes ``refcount > 0``, arms the §5.1.1 backoff timer, and commits
only on a later, quiescent delivery.
"""

from __future__ import annotations

import pytest

from repro.bench.underload import run_switch_under_load


@pytest.fixture(scope="module")
def contended():
    # small but reliably contended: the first storm rounds land while
    # kbuild slices still hold the work CPU
    return run_switch_under_load(files=6, rounds=3)


def test_attach_observes_workload_refcount(contended):
    """The busy observations are genuine: each records the nonzero VO
    refcount held by a workload inside sensitive code — no fault plan is
    installed anywhere in this scenario."""
    busy = [e for e in contended.trace_events if e.name == "switch.busy"]
    assert busy, "no switch ever found the VO busy"
    assert all(e.args["refcount"] > 0 for e in busy)
    assert contended.busy_attempts == len(busy)


def test_busy_switch_retries_via_timer_then_commits(contended):
    """Every busy observation arms the retry timer; every request still
    commits (zero aborts), and the commits that needed a retry say so."""
    names = [e.name for e in contended.trace_events]
    assert names.count("switch.retry-armed") == contended.busy_attempts
    assert contended.busy_attempts >= 1
    assert contended.aborts == 0
    assert contended.records == 2 * contended.rounds
    retried = [r for r in contended.per_switch_retries if r >= 1]
    assert len(retried) == contended.busy_attempts
    # the retry histogram tells the same story as the per-record counts
    assert contended.retry_histogram.get(0, 0) + len(retried) == \
        contended.records


def test_trace_interleaves_busy_inside_workload_span(contended):
    """Order within the trace: each busy instant happens between a
    workload slice beginning and the eventual committed instant."""
    events = contended.trace_events
    first_busy = next(i for i, e in enumerate(events)
                      if e.name == "switch.busy")
    commits_after = [e for e in events[first_busy:]
                     if e.name == "switch.committed"]
    slices_before = [e for e in events[:first_busy]
                     if e.name == "sim.slice" and e.kind == "B"
                     and e.args and e.args.get("task") in ("kbuild", "iperf")]
    assert slices_before, "busy observed before any workload ran"
    assert commits_after, "busy observation never resolved to a commit"


def test_contended_latency_dominated_by_retry_period(contended):
    """A retried attach waits out (at least) the 10 ms retry period; an
    uncontended one costs ~tens of microseconds.  Both appear here."""
    freq_khz = contended.freq_mhz * 1000
    retry_floor_cycles = 10 * freq_khz  # RETRY_PERIOD_MS
    lats = contended.attach_latency_cycles + contended.detach_latency_cycles
    retried = [lat for lat, r in zip(lats, _interleaved(contended))
               if r >= 1]
    quick = [lat for lat, r in zip(lats, _interleaved(contended)) if r == 0]
    assert retried and quick
    assert all(lat >= retry_floor_cycles for lat in retried)
    assert all(lat < retry_floor_cycles // 10 for lat in quick)


def _interleaved(result):
    """per_switch_retries is in commit order == request order here (each
    request waits for its commit before the next is issued); re-split it
    to match attach+detach latency concatenation order."""
    attach = result.per_switch_retries[0::2]
    detach = result.per_switch_retries[1::2]
    return attach + detach


def test_workloads_complete_and_mode_round_trips(contended):
    assert contended.kbuild_elapsed_us > 0
    assert contended.iperf_mbit_s > 0
    assert contended.records % 2 == 0  # every attach paired with a detach


def test_scenario_is_bit_reproducible(contended):
    again = run_switch_under_load(files=6, rounds=3)
    assert again.canonical_output() == contended.canonical_output()


def test_minimal_single_round_storm():
    result = run_switch_under_load(files=4, rounds=1)
    # one attach + one detach: the machine ends where it started
    assert result.records == 2
    assert result.aborts == 0
